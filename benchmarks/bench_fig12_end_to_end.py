"""Fig. 12 — end-to-end fio READ bandwidth in a full SSD.

The paper replaces the Cosmos+ OpenSSD's storage controller with BABOL
and runs fio sequential/random READ workloads while varying the channel
"ways" (LUNs) from 1 to 8 on Hynix parts with a 1 GHz core.  Headline
numbers at 8 ways: BABOL-RTOS within 2% (seq) / 3% (random) of the
stock controller, BABOL-Coroutine within 8% / 9%.

Here the stock Cosmos+ controller is the asynchronous hardware
baseline; all three controllers run under an identical FTL + host
stack, prefilled with data, driven by the fio-like generator.
"""

import pytest

from repro.baselines import AsyncHwController
from repro.core import BabolController, ControllerConfig
from repro.core.softenv import GHZ
from repro.flash import HYNIX_V7
from repro.ftl import FtlConfig, PageMappedFtl
from repro.host import FioJob, HostInterface, run_fio
from repro.onfi import NVDDR2_200
from repro.sim import Simulator

from benchmarks.conftest import print_table

WAYS = [1, 2, 4, 8]
IODEPTH = 16


def build_stack(kind: str, ways: int):
    sim = Simulator()
    if kind == "cosmos":
        controller = AsyncHwController(
            sim, vendor=HYNIX_V7, lun_count=ways, interface=NVDDR2_200,
            track_data=False,
        )
    else:
        controller = BabolController(
            sim,
            ControllerConfig(
                vendor=HYNIX_V7, lun_count=ways, interface=NVDDR2_200,
                runtime=kind, cpu_freq_hz=GHZ, track_data=False,
            ),
        )
    ftl = PageMappedFtl(
        sim, controller,
        FtlConfig(blocks_per_lun=8, overprovision_blocks=2,
                  gc_staging_base=48 * 1024 * 1024),
    )
    hic = HostInterface(sim, ftl, iodepth=IODEPTH)
    return sim, controller, ftl, hic


def bandwidth(kind: str, ways: int, pattern: str) -> float:
    sim, controller, ftl, hic = build_stack(kind, ways)
    working_set = min(ftl.logical_pages, 64 * ways)
    ftl.prefill(working_set)
    job = FioJob(pattern=pattern, io_count=24 * ways + 16, iodepth=IODEPTH, seed=9)
    result = run_fio(sim, hic, job)
    return result.bandwidth_mb_s


def run_experiment():
    data = {}
    for pattern in ("sequential", "random"):
        for kind in ("cosmos", "rtos", "coroutine"):
            for ways in WAYS:
                data[(pattern, kind, ways)] = bandwidth(kind, ways, pattern)
    return data


@pytest.mark.benchmark(group="fig12")
def test_fig12_end_to_end(benchmark):
    data = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    for pattern in ("sequential", "random"):
        rows = []
        for ways in WAYS:
            base = data[(pattern, "cosmos", ways)]
            rtos = data[(pattern, "rtos", ways)]
            coro = data[(pattern, "coroutine", ways)]
            rows.append([
                str(ways), f"{base:.1f}", f"{rtos:.1f}", f"{coro:.1f}",
                f"{(base - rtos) / base * 100:+.1f}%",
                f"{(base - coro) / base * 100:+.1f}%",
            ])
        print_table(
            f"Fig. 12: fio {pattern} READ bandwidth (MB/s), Hynix, 1 GHz",
            ["ways", "Cosmos+ (async HW)", "BABOL-RTOS", "BABOL-Coro",
             "RTOS deficit", "Coro deficit"],
            rows,
        )

    for pattern in ("sequential", "random"):
        # Scaling: every controller gains bandwidth with more ways.
        for kind in ("cosmos", "rtos", "coroutine"):
            assert (
                data[(pattern, kind, 8)] > data[(pattern, kind, 1)] * 1.5
            ), f"{kind} does not scale with ways ({pattern})"
        # The paper's headline: at 8 ways the busy channel hides the
        # software latency — RTOS within a few percent, Coro a bit more.
        base = data[(pattern, "cosmos", 8)]
        rtos_deficit = (base - data[(pattern, "rtos", 8)]) / base
        coro_deficit = (base - data[(pattern, "coroutine", 8)]) / base
        assert rtos_deficit < 0.05, f"RTOS deficit {rtos_deficit:.1%} ({pattern})"
        assert coro_deficit < 0.15, f"Coro deficit {coro_deficit:.1%} ({pattern})"
        # And the gap shrinks as the channel gets busier.
        coro_deficit_1way = (
            data[(pattern, "cosmos", 1)] - data[(pattern, "coroutine", 1)]
        ) / data[(pattern, "cosmos", 1)]
        assert coro_deficit < coro_deficit_1way

    benchmark.extra_info["seq_rtos_deficit_pct"] = round(
        (data[("sequential", "cosmos", 8)] - data[("sequential", "rtos", 8)])
        / data[("sequential", "cosmos", 8)] * 100, 1,
    )

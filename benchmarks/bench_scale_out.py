"""Scale-out sweep — multi-channel array throughput vs channels × QD.

Beyond the paper's single-channel figures: one BABOL channel controller
per channel, LPNs striped round-robin by :class:`ShardedFtl`, and the
queue-depth host engine keeping every channel's queue pair full.  The
table shows simulated bandwidth scaling as channels grow (near-linear —
channels share nothing) and how queue depth trades bandwidth for tail
latency within a channel.
"""

import pytest

from repro.host import ScaleEngine, ScaleJob, build_scale_stack, run_scale_workload
from repro.sim import Simulator

from benchmarks.conftest import print_table

CHANNELS = [1, 2, 4, 8]
DEPTHS = [8, 32]
IOS = 192


def run_cell(channels: int, depth: int):
    sim = Simulator()
    _, ftl = build_scale_stack(sim, channels=channels, luns_per_channel=4,
                               vendor="hynix")
    engine = ScaleEngine(sim, ftl, queue_depth=depth)
    return run_scale_workload(sim, engine, ScaleJob(io_count=IOS))


def run_experiment():
    return {
        (ch, qd): run_cell(ch, qd)
        for ch in CHANNELS
        for qd in DEPTHS
    }


@pytest.mark.benchmark(group="scale")
def test_scale_out_sweep(benchmark):
    data = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    for qd in DEPTHS:
        base = data[(1, qd)].throughput_mb_s
        rows = []
        for ch in CHANNELS:
            result = data[(ch, qd)]
            rows.append([
                str(ch), f"{result.throughput_mb_s:.1f}",
                f"{result.iops:.0f}",
                f"{result.p99_latency_ns / 1000:.1f}",
                f"{result.throughput_mb_s / base:.2f}x",
            ])
        print_table(
            f"Scale-out: {IOS} sequential READs, 4 LUNs/channel, QD{qd}",
            ["channels", "MB/s (sim)", "IOPS", "p99 µs", "scaling"],
            rows,
        )

    benchmark.extra_info["qd32_scaling_1to4"] = round(
        data[(4, 32)].throughput_mb_s / data[(1, 32)].throughput_mb_s, 2)

"""Scale-out sweep — multi-channel array throughput vs channels × QD.

Beyond the paper's single-channel figures: one BABOL channel controller
per channel, LPNs striped round-robin by :class:`ShardedFtl`, and the
queue-depth host engine keeping every channel's queue pair full.  The
table shows simulated bandwidth scaling as channels grow (near-linear —
channels share nothing) and how queue depth trades bandwidth for tail
latency within a channel.

Script mode measures the fidelity tiers against each other::

    python benchmarks/bench_scale_out.py --fidelity=tlm

runs the 8ch x QD32 cell under both backends and reports *sim-ops per
wall-second* (completed host commands divided by the wall-clock time of
the workload phase) for each, plus the TLM speedup.  Cells are run
paired and interleaved, keeping the best of ``--trials`` rounds, so the
ratio is stable against machine noise even though the absolute
wall-clock numbers are not.
"""

import sys
import time
from pathlib import Path

if __package__ in (None, ""):  # script mode: `python benchmarks/...`
    _root = Path(__file__).resolve().parent.parent
    sys.path.insert(0, str(_root / "src"))
    sys.path.insert(0, str(_root))

import dataclasses

import pytest

from repro.config import FtlSpec, StackSpec, build_stack
from repro.host import ScaleEngine, ScaleJob, run_scale_workload
from repro.host.hic import HostOpcode
from repro.sim import Simulator

from benchmarks.conftest import print_table

CHANNELS = [1, 2, 4, 8]
DEPTHS = [8, 32]
IOS = 192

# The fidelity comparison cell pinned by the acceptance criteria.
SPEEDUP_CHANNELS = 8
SPEEDUP_DEPTH = 32
SPEEDUP_IOS = 1920

#: The sweep's stack template; per-cell channels/fidelity are swept via
#: dataclasses.replace.
BASE_STACK = StackSpec(luns_per_channel=4, ftl=FtlSpec())


def run_cell(channels: int, depth: int, fidelity: str = "waveform",
             job: ScaleJob | None = None):
    sim = Simulator()
    _, ftl = build_stack(sim, dataclasses.replace(
        BASE_STACK, channels=channels, fidelity=fidelity))
    engine = ScaleEngine(sim, ftl, queue_depth=depth)
    return run_scale_workload(sim, engine, job or ScaleJob(io_count=IOS))


def run_experiment():
    return {
        (ch, qd): run_cell(ch, qd)
        for ch in CHANNELS
        for qd in DEPTHS
    }


@pytest.mark.benchmark(group="scale")
def test_scale_out_sweep(benchmark):
    data = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    for qd in DEPTHS:
        base = data[(1, qd)].throughput_mb_s
        rows = []
        for ch in CHANNELS:
            result = data[(ch, qd)]
            rows.append([
                str(ch), f"{result.throughput_mb_s:.1f}",
                f"{result.iops:.0f}",
                f"{result.p99_latency_ns / 1000:.1f}",
                f"{result.throughput_mb_s / base:.2f}x",
            ])
        print_table(
            f"Scale-out: {IOS} sequential READs, 4 LUNs/channel, QD{qd}",
            ["channels", "MB/s (sim)", "IOPS", "p99 µs", "scaling"],
            rows,
        )

    benchmark.extra_info["qd32_scaling_1to4"] = round(
        data[(4, 32)].throughput_mb_s / data[(1, 32)].throughput_mb_s, 2)


# ---------------------------------------------------------------------------
# Fidelity-tier comparison (script mode)
# ---------------------------------------------------------------------------

#: The jobs timed in the comparison.  Sustained sequential writes are
#: the headline cell: long tPROG busy windows are where the waveform
#: tier pays per-segment simulation for every poll round while the TLM
#: tier sleeps straight to the die-ready nanosecond.  Random reads are
#: reported alongside as the conservative case — a read's wall cost is
#: dominated by the page-payload error injection both tiers share.
SPEEDUP_JOBS = (
    ("seq-write", ScaleJob(pattern="sequential", opcode=HostOpcode.WRITE,
                           io_count=SPEEDUP_IOS)),
    ("rand-read", ScaleJob(pattern="random", opcode=HostOpcode.READ,
                           io_count=SPEEDUP_IOS, seed=7)),
)


def _timed_cell(fidelity: str, job: ScaleJob,
                stack: StackSpec | None = None) -> tuple[float, object]:
    """(workload wall seconds, ScaleRunResult) for one cell."""
    sim = Simulator()
    _, ftl = build_stack(sim, dataclasses.replace(
        stack or BASE_STACK, channels=SPEEDUP_CHANNELS, fidelity=fidelity))
    engine = ScaleEngine(sim, ftl, queue_depth=SPEEDUP_DEPTH)
    t0 = time.perf_counter()
    result = run_scale_workload(sim, engine, job)
    return time.perf_counter() - t0, result


def run_fidelity_comparison(trials: int = 3, quiet: bool = False,
                            stack: StackSpec | None = None) -> dict:
    """Best-of-``trials`` paired comparison at 8ch x QD32.

    Returns ``{job_name: {"waveform": ops/s, "tlm": ops/s,
    "speedup": float, "commands": int}}``.
    """
    report = {}
    for name, job in SPEEDUP_JOBS:
        best = {"waveform": float("inf"), "tlm": float("inf")}
        results = {}
        for _ in range(max(trials, 1)):
            for fidelity in ("waveform", "tlm"):
                wall, result = _timed_cell(fidelity, job, stack=stack)
                best[fidelity] = min(best[fidelity], wall)
                results[fidelity] = result
        ops = {fid: results[fid].commands / best[fid] for fid in best}
        report[name] = {
            "waveform": ops["waveform"],
            "tlm": ops["tlm"],
            "speedup": ops["tlm"] / ops["waveform"],
            "commands": results["tlm"].commands,
        }
    if not quiet:
        rows = [
            [name,
             f"{cell['commands']}",
             f"{cell['waveform']:.0f}",
             f"{cell['tlm']:.0f}",
             f"{cell['speedup']:.1f}x"]
            for name, cell in report.items()
        ]
        print_table(
            f"Fidelity tiers at {SPEEDUP_CHANNELS}ch x QD{SPEEDUP_DEPTH} "
            f"(best of {trials}, workload phase)",
            ["job", "sim-ops", "waveform ops/wall-s", "tlm ops/wall-s",
             "tlm speedup"],
            rows,
        )
    return report


def _main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--fidelity", choices=("waveform", "tlm"), default=None,
        help="compare execution backends at 8ch x QD32 and report "
             "sim-ops/wall-second (the named tier is the subject; both "
             "tiers run so the speedup is paired)",
    )
    parser.add_argument("--trials", type=int, default=3,
                        help="paired rounds per cell; best is kept")
    parser.add_argument("--spec", metavar="FILE", default=None,
                        help="experiment spec whose stack section "
                             "replaces the built-in stack template "
                             "(channels/fidelity stay pinned to the "
                             "comparison cell)")
    parser.add_argument("--set", dest="overrides", action="append",
                        default=[], metavar="KEY=VALUE",
                        help="dotted spec override, e.g. "
                             "--set stack.luns_per_channel=8")
    args = parser.parse_args(argv)

    if args.fidelity is None:
        parser.error("script mode needs --fidelity=waveform|tlm "
                     "(use pytest for the scaling sweep)")
    stack = None
    if args.spec or args.overrides:
        from repro.config import ExperimentSpec, apply_overrides
        from repro.config.io import load_spec_dict

        document = load_spec_dict(args.spec) if args.spec else {}
        apply_overrides(document, args.overrides)
        spec = ExperimentSpec.from_dict(document)
        stack = spec.stack
        if stack.ftl is None:
            stack = dataclasses.replace(stack, ftl=FtlSpec())
        print(f"spec: {spec.name} spec_hash={spec.spec_hash()}")
    report = run_fidelity_comparison(trials=args.trials, stack=stack)
    headline = report["seq-write"]["speedup"]
    print(f"\nheadline (seq-write) tlm speedup: {headline:.1f}x "
          f"{'(>= 10x: PASS)' if headline >= 10 else '(< 10x)'}")
    return 0


if __name__ == "__main__":
    raise SystemExit(_main())

"""Table II — lines of code per operation across controllers.

The paper counts the lines implementing READ, PROGRAM, and ERASE in a
synchronous hardware controller (420/420/327), the Cosmos+ asynchronous
one (454/260/203), and BABOL (58/44/27).  This bench measures the
*actual source in this repository* with the tokenizing LoC counter:
hardware baselines are Python stand-ins for Verilog (written at one
state per signal phase), so absolute numbers sit below the paper's
Verilog counts, but the ordering and the BABOL reduction factor are
genuine measurements.
"""

import pytest

from repro.analysis import operation_loc_table

from benchmarks.conftest import print_table

PAPER = {
    "READ": {"sync_hw": 420, "async_hw": 454, "babol": 58},
    "PROGRAM": {"sync_hw": 420, "async_hw": 260, "babol": 44},
    "ERASE": {"sync_hw": 327, "async_hw": 203, "babol": 27},
}


@pytest.mark.benchmark(group="table2")
def test_table2_lines_of_code(benchmark):
    table = benchmark.pedantic(operation_loc_table, rounds=1, iterations=1)

    rows = []
    for op in ("READ", "PROGRAM", "ERASE"):
        measured = table[op]
        paper = PAPER[op]
        rows.append([
            op,
            f"{measured['sync_hw']} ({paper['sync_hw']})",
            f"{measured['async_hw']} ({paper['async_hw']})",
            f"{measured['babol']} ({paper['babol']})",
            f"{measured['sync_hw'] / measured['babol']:.1f}x "
            f"({paper['sync_hw'] / paper['babol']:.1f}x)",
        ])
    print_table(
        "Table II: LoC per operation — measured (paper)",
        ["Operation", "Sync HW [50]", "Async HW [25]", "BABOL", "reduction"],
        rows,
    )

    for op, row in table.items():
        # Ordering: BABOL is the smallest implementation for every op.
        assert row["babol"] < row["async_hw"], op
        assert row["babol"] < row["sync_hw"], op
        # Factor: a substantial reduction against the synchronous HW
        # design (the paper's is ~7-12x against Verilog; our Python
        # stand-in for Verilog is denser, so require >= 1.8x).
        assert row["sync_hw"] / row["babol"] >= 1.8, op

    benchmark.extra_info["babol_read_loc"] = table["READ"]["babol"]

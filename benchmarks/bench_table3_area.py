"""Table III — FPGA resources per controller type.

Vivado reports for the paper: Sync HW 9343 LUT / 13021 FF / 11.5 BRAM;
Async HW (Cosmos+) 3909 / 3745 / 8; BABOL 3539 / 3635 / 6.  This bench
runs the structural area model over each controller's module inventory
and checks both the ordering (BABOL smallest — the complex logic moved
to software) and rough agreement with the paper's magnitudes.
"""

import pytest

from repro.analysis import estimate_area
from repro.analysis.area import babol_inventory
from repro.baselines import AsyncHwController, SyncHwController
from repro.sim import Simulator

from benchmarks.conftest import print_table

PAPER = {
    "sync_hw": (9343, 13021, 11.5),
    "async_hw": (3909, 3745, 8.0),
    "babol": (3539, 3635, 6.0),
}


def run_model():
    sync = SyncHwController(Simulator(), lun_count=8, track_data=False)
    asyn = AsyncHwController(Simulator(), lun_count=8, track_data=False)
    return {
        "sync_hw": estimate_area(sync.inventory()),
        "async_hw": estimate_area(asyn.inventory()),
        "babol": estimate_area(babol_inventory(8)),
    }


@pytest.mark.benchmark(group="table3")
def test_table3_fpga_resources(benchmark):
    estimates = benchmark.pedantic(run_model, rounds=1, iterations=1)

    rows = []
    for name, label in (("sync_hw", "Synchronous HW [50]"),
                        ("async_hw", "Asynchronous HW [25]"),
                        ("babol", "BABOL")):
        est = estimates[name]
        lut, ff, bram = PAPER[name]
        rows.append([
            label,
            f"{est.lut} ({lut})",
            f"{est.ff} ({ff})",
            f"{est.bram:g} ({bram:g})",
        ])
    print_table("Table III: FPGA resources — modeled (paper)",
                ["Controller", "LUT", "FF", "BRAM"], rows)

    sync, asyn, babol = estimates["sync_hw"], estimates["async_hw"], estimates["babol"]
    # Ordering: the paper's central claim.
    assert sync.lut > asyn.lut > babol.lut
    assert sync.ff > asyn.ff > babol.ff
    assert sync.bram > asyn.bram > babol.bram
    # Rough magnitude agreement (the model is calibrated once, globally).
    for name, estimate in estimates.items():
        lut, ff, bram = PAPER[name]
        assert estimate.lut == pytest.approx(lut, rel=0.35), name
        assert estimate.ff == pytest.approx(ff, rel=0.35), name
        assert estimate.bram == pytest.approx(bram, rel=0.35), name

    benchmark.extra_info["babol_lut"] = babol.lut

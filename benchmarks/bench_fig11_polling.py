"""Fig. 11 — logic-analyzer breakdown of the polling period.

The paper connects a Keysight 16862A and observes that the RTOS
controller polls READ STATUS far more frequently than the coroutine
controller, whose polling cycle is "in the order of 30 µs" on the 1 GHz
ARM core — the source of its single-LUN latency deficit.

This bench reproduces the experiment: one LUN, 1 GHz, a stream of READs
(Algorithm 2), the simulated analyzer on the channel.  It prints the
captured timeline of one READ for both runtimes (the textual equivalent
of the paper's screenshots) and asserts the period gap.
"""

import pytest

from repro.analysis import LogicAnalyzer, render_timeline
from repro.flash import HYNIX_V7
from repro.onfi import NVDDR2_200

from benchmarks.conftest import build_babol, print_table


def capture(runtime: str, reads: int = 8):
    sim, controller = build_babol(HYNIX_V7, 1, NVDDR2_200, runtime)
    analyzer = LogicAnalyzer(controller.channel)
    for i in range(reads):
        controller.run_to_completion(controller.read_page(0, 1, i, 0))
    summary = analyzer.polling_summary()
    per_read_ns = sim.now / reads
    return analyzer, summary, per_read_ns


@pytest.mark.benchmark(group="fig11")
def test_fig11_polling_period(benchmark):
    def experiment():
        results = {}
        for runtime in ("rtos", "coroutine"):
            analyzer, summary, per_read_ns = capture(runtime)
            results[runtime] = (analyzer, summary, per_read_ns)
        return results

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)

    rows = []
    for runtime, (analyzer, summary, per_read_ns) in results.items():
        rows.append([
            runtime,
            str(summary.count),
            f"{summary.mean_ns / 1000:.1f}",
            f"{summary.min_ns / 1000:.1f}",
            f"{summary.max_ns / 1000:.1f}",
            f"{per_read_ns / 1000:.1f}",
        ])
    print_table(
        "Fig. 11: READ STATUS polling (1 LUN, 1 GHz ARM)",
        ["runtime", "polls", "period mean (us)", "min", "max", "READ latency (us)"],
        rows,
    )
    for runtime, (analyzer, _, _) in results.items():
        print(f"\n-- analyzer capture, first READ ({runtime}) --")
        first = [e for e in analyzer.events if e.time_ns < 300_000]
        print(render_timeline(first[:18]))

    rtos = results["rtos"][1]
    coro = results["coroutine"][1]

    # The paper's headline: ~30 us per coroutine polling cycle, with the
    # RTOS polling much faster; the delay difference shows up directly
    # in single-LUN READ latency.
    assert 20_000 <= coro.mean_ns <= 40_000
    assert rtos.mean_ns < coro.mean_ns / 5
    assert results["coroutine"][2] > results["rtos"][2]

    benchmark.extra_info.update({
        "coro_poll_period_us": round(coro.mean_ns / 1000, 1),
        "rtos_poll_period_us": round(rtos.mean_ns / 1000, 1),
    })

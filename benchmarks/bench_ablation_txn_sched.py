"""Ablation A — transaction scheduling policy.

BABOL deliberately leaves the transaction scheduler to the SSD
Architect (Section V).  This ablation quantifies the design space the
software-defined approach opens: FIFO vs. LUN round-robin vs. priority
(data-first, poll-deferring) vs. priority with poll aging, on a
saturated 8-LUN channel at both speeds.

Findings this pins down: the policy is worth a few percent at
saturation, poll deferral is mildly beneficial, and aggressive poll
aging *hurts* (promoted polls buy detections that cost more completion
round trips than they save) — evidence that policy iteration in
software is valuable, which is the programmability argument itself.
"""

import pytest

from repro.core.softenv.txn_scheduler import (
    FifoTxnScheduler,
    PriorityTxnScheduler,
    RoundRobinTxnScheduler,
)
from repro.core import BabolController, ControllerConfig
from repro.core.softenv import GHZ
from repro.flash import HYNIX_V7
from repro.onfi import NVDDR2_100, NVDDR2_200
from repro.sim import Simulator

from benchmarks.conftest import print_table, read_throughput_mb_s

POLICIES = {
    "fifo": lambda: FifoTxnScheduler(),
    "round-robin": lambda: RoundRobinTxnScheduler(),
    "priority": lambda: PriorityTxnScheduler(),
    "priority+aging": lambda: PriorityTxnScheduler(age_threshold_ns=50_000),
}


def run_policy(policy_factory, interface) -> float:
    sim = Simulator()
    controller = BabolController(
        sim,
        ControllerConfig(vendor=HYNIX_V7, lun_count=8, interface=interface,
                         runtime="coroutine", cpu_freq_hz=GHZ, track_data=False),
        txn_scheduler=policy_factory(),
    )
    return read_throughput_mb_s(sim, controller, 8)


def run_all():
    return {
        (name, iface_name): run_policy(factory, iface)
        for name, factory in POLICIES.items()
        for iface_name, iface in (("100MT/s", NVDDR2_100), ("200MT/s", NVDDR2_200))
    }


@pytest.mark.benchmark(group="ablation-txn-sched")
def test_ablation_transaction_scheduler(benchmark):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = [
        [name,
         f"{results[(name, '100MT/s')]:.1f}",
         f"{results[(name, '200MT/s')]:.1f}"]
        for name in POLICIES
    ]
    print_table(
        "Ablation A: Coroutine txn scheduling policy (8 LUNs, 1 GHz, MB/s)",
        ["policy", "100MT/s", "200MT/s"], rows,
    )

    # Every policy lands in the same regime (scheduling is a few-percent
    # effect at saturation, not an order-of-magnitude one).
    for iface in ("100MT/s", "200MT/s"):
        values = [results[(name, iface)] for name in POLICIES]
        assert max(values) < min(values) * 1.15
    # Aggressive aging is not better than plain priority.
    assert (
        results[("priority+aging", "200MT/s")]
        <= results[("priority", "200MT/s")] * 1.02
    )

"""Table I — Flash memory parameters.

Prints the vendor constants and *measures* them in simulation: tR from
the R/B# busy window of a real READ, and the page transfer times at
100/200 MT/s from the wire model.  Paper values: Hynix 100 µs, Toshiba
78 µs, Micron 53 µs reads; 16384 B pages; 185 µs / 100 µs transfers.
"""

import pytest

from repro.flash import HYNIX_V7, MICRON_B47R, TOSHIBA_BICS5
from repro.onfi import NVDDR2_100, NVDDR2_200
from repro.sim import Simulator
from repro.flash.lun import Lun, LunState

from benchmarks.conftest import print_table

VENDORS = {"Hynix": HYNIX_V7, "Toshiba": TOSHIBA_BICS5, "Micron": MICRON_B47R}


def measure_tr_ns(vendor, samples: int = 12) -> float:
    """Mean array-busy window of READ confirms on a fresh LUN."""
    from tests.helpers import cmd_addr_segment, full_address
    from repro.onfi.commands import CMD
    from repro.onfi.geometry import PhysicalAddress

    sim = Simulator()
    lun = Lun(sim, vendor, position=0, seed=5, track_data=False)
    codec = lun.codec
    total = 0
    for i in range(samples):
        addr = PhysicalAddress(block=1, page=i)
        lun.deliver_segment(cmd_addr_segment(CMD.READ_1ST, codec.encode(addr)))
        sim.run()
        start = sim.now
        lun.deliver_segment(cmd_addr_segment(CMD.READ_2ND))
        sim.run()
        assert lun.state is LunState.IDLE
        total += sim.now - start
    return total / samples


@pytest.mark.benchmark(group="table1")
def test_table1_flash_parameters(benchmark):
    def experiment():
        rows = []
        measured = {}
        for name, vendor in VENDORS.items():
            tr_us = measure_tr_ns(vendor) / 1000.0
            measured[name] = tr_us
            rows.append([f"Page read time ({name})", f"{tr_us:.0f} us",
                         f"{vendor.timing.t_read_ns / 1000:.0f} us (spec)"])
        page = HYNIX_V7.geometry
        rows.append(["Page read size", f"{page.page_size} B", "16384 B (paper)"])
        t100 = NVDDR2_100.transfer_ns(page.full_page_size) / 1000.0
        t200 = NVDDR2_200.transfer_ns(page.full_page_size) / 1000.0
        rows.append(["Page transfer time (100 MT/s)", f"{t100:.0f} us", "185 us (paper)"])
        rows.append(["Page transfer time (200 MT/s)", f"{t200:.0f} us", "100 us (paper)"])
        print_table("Table I: Flash Memory Parameters (measured)",
                    ["Parameter", "Measured", "Reference"], rows)
        return measured, t100, t200

    measured, t100, t200 = benchmark.pedantic(experiment, rounds=1, iterations=1)

    # Shape assertions: measured tR within the vendor jitter band and in
    # the Table I ordering Hynix > Toshiba > Micron.
    assert measured["Hynix"] == pytest.approx(100.0, rel=0.10)
    assert measured["Toshiba"] == pytest.approx(78.0, rel=0.10)
    assert measured["Micron"] == pytest.approx(53.0, rel=0.10)
    assert measured["Hynix"] > measured["Toshiba"] > measured["Micron"]
    assert t100 == pytest.approx(185.0, rel=0.05)
    assert t200 == pytest.approx(100.0, rel=0.10)
    benchmark.extra_info.update(
        {f"tR_{k}_us": round(v, 1) for k, v in measured.items()}
    )

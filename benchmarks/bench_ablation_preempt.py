"""Ablation E — suspend/resume preemption for latency-critical reads.

The erase/program-suspension literature the paper cites ([23], [54])
promises large read-tail-latency wins.  With BABOL the mechanism is two
vendor latches and the policy is a Python class
(:class:`~repro.core.preempt.PreemptiveLunManager`); this bench
quantifies what it buys: read latency distributions for reads arriving
while a 3.5 ms Hynix erase is in flight, with and without preemption,
plus the cost paid by the erase itself.
"""

import pytest

from repro.analysis import summarize_latencies
from repro.core import BabolController, ControllerConfig
from repro.core.preempt import PreemptiveLunManager
from repro.flash import HYNIX_V7
from repro.sim import Simulator, Timeout

from benchmarks.conftest import print_table

ARRIVALS_US = [200, 900, 1700, 2500]  # read arrivals across the erase window


def run_policy(preemptive: bool):
    read_latencies = []
    erase_spans = []
    sim = Simulator()
    controller = BabolController(
        sim,
        ControllerConfig(vendor=HYNIX_V7, lun_count=1, runtime="rtos",
                         track_data=False),
    )
    manager = PreemptiveLunManager(controller, lun=0)

    def background():
        start = sim.now
        if preemptive:
            yield from manager.erase(5)
        else:
            task = controller.erase_block(0, 5)
            yield from controller.wait(task)
        erase_spans.append(sim.now - start)

    def reader(page, arrival_us):
        yield Timeout(arrival_us * 1000)
        start = sim.now
        if preemptive:
            yield from manager.read(1, page, 0)
        else:
            task = controller.read_page(0, 1, page, 0)
            yield from controller.wait(task)
        read_latencies.append(sim.now - start)

    sim.spawn(background())
    for page, arrival in enumerate(ARRIVALS_US):
        sim.spawn(reader(page, arrival))
    sim.run()
    return summarize_latencies(read_latencies), erase_spans[0]


def run_all():
    return {
        "blocking": run_policy(preemptive=False),
        "preemptive": run_policy(preemptive=True),
    }


@pytest.mark.benchmark(group="ablation-preempt")
def test_ablation_preemptive_reads(benchmark):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    for name, (stats, erase_ns) in results.items():
        rows.append([
            name,
            f"{stats.mean_ns / 1000:.0f}",
            f"{stats.max_ns / 1000:.0f}",
            f"{erase_ns / 1000:.0f}",
        ])
    print_table(
        "Ablation E: reads arriving during a Hynix erase (us)",
        ["policy", "read mean", "read max", "erase span"], rows,
    )

    blocking, erase_blocking = results["blocking"]
    preemptive, erase_preemptive = results["preemptive"]
    # Reads queued behind the erase see multi-millisecond latency;
    # preemption brings them back to near-native read latency.
    assert preemptive.max_ns < blocking.max_ns / 3
    assert preemptive.mean_ns < blocking.mean_ns / 3
    # The erase pays for it (suspend + nested reads + resume) but is not
    # destroyed.
    assert erase_preemptive > erase_blocking
    assert erase_preemptive < erase_blocking * 2.5

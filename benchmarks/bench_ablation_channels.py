"""Ablation D — multi-channel scaling and the shared-CPU question.

The paper's controllers drive one channel; a real SSD bundles several
(Fig. 1).  When BABOL's software half runs every channel on one shared
core (the Cosmos+ has two ARM cores for the whole device), scheduling
work from different channels contends.  This ablation sweeps channel
count × {shared core, core per channel} for both runtimes and measures
aggregate READ throughput.

Expected shape: near-linear channel scaling for per-channel cores; the
shared core saturates once the aggregate transaction rate exhausts its
serialized cycles — much earlier for the heavyweight coroutine runtime.
"""

import pytest

from repro.core import StorageConfig, StorageController
from repro.core.controller import ControllerConfig
from repro.core.softenv import GHZ
from repro.flash import HYNIX_V7
from repro.sim import Simulator
from repro.sim.kernel import NS_PER_S

from benchmarks.conftest import print_table

CHANNELS = [1, 2, 4]
LUNS = 4
READS_PER_LUN = 8


def aggregate_throughput(runtime: str, channels: int, shared_cpu: bool) -> float:
    sim = Simulator()
    storage = StorageController(
        sim,
        StorageConfig(
            channel_count=channels,
            shared_cpu=shared_cpu,
            channel=ControllerConfig(
                vendor=HYNIX_V7, lun_count=LUNS, runtime=runtime,
                cpu_freq_hz=GHZ, track_data=False,
            ),
        ),
    )
    total_luns = channels * LUNS
    done = {"pages": 0}

    def driver(lun):
        for i in range(READS_PER_LUN):
            task = storage.read_page(lun, 1, i, 0)
            yield from storage.wait(task)
            done["pages"] += 1

    for lun in range(total_luns):
        sim.spawn(driver(lun))
    sim.run()
    payload = done["pages"] * HYNIX_V7.geometry.page_size
    return payload / (sim.now / NS_PER_S) / 1e6


def run_all():
    return {
        (runtime, channels, shared): aggregate_throughput(runtime, channels, shared)
        for runtime in ("rtos", "coroutine")
        for channels in CHANNELS
        for shared in (True, False)
    }


@pytest.mark.benchmark(group="ablation-channels")
def test_ablation_multichannel_cpu_sharing(benchmark):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    for runtime in ("rtos", "coroutine"):
        rows = [
            [str(channels),
             f"{results[(runtime, channels, True)]:.1f}",
             f"{results[(runtime, channels, False)]:.1f}"]
            for channels in CHANNELS
        ]
        print_table(
            f"Ablation D: {runtime} aggregate throughput (MB/s), "
            f"{LUNS} LUNs/channel, 1 GHz",
            ["channels", "shared core", "core per channel"], rows,
        )

    for runtime in ("rtos", "coroutine"):
        # Channel scaling holds in both CPU arrangements.
        for shared in (True, False):
            assert (
                results[(runtime, 4, shared)]
                > results[(runtime, 1, shared)] * 2.0
            )
        # Dedicated cores never lose to the shared one.
        for channels in CHANNELS:
            assert (
                results[(runtime, channels, False)]
                >= results[(runtime, channels, True)] * 0.98
            )
    # The heavyweight runtime pays more for sharing at 4 channels.
    coro_cost = 1 - results[("coroutine", 4, True)] / results[("coroutine", 4, False)]
    rtos_cost = 1 - results[("rtos", 4, True)] / results[("rtos", 4, False)]
    assert coro_cost >= rtos_cost - 0.02

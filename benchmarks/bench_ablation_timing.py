"""Ablation C — µFSM-fused preambles vs. per-latch segments.

Section IV-B assigns intra-segment timing to the µFSMs.  A naive
decomposition would emit one channel segment per latch cycle (one per
command byte, one per address phase), each paying its own chip-enable
setup/hold and arbitration.  The C/A Writer instead fuses a whole latch
vector into one segment.  This ablation measures what that fusion is
worth on the wire.
"""

import pytest

from repro.core.ops.base import poll_until_ready
from repro.core.transaction import TxnKind
from repro.core.ufsm.ca_writer import addr, cmd
from repro.flash import HYNIX_V7
from repro.onfi import NVDDR2_200
from repro.onfi.commands import CMD
from repro.onfi.geometry import PhysicalAddress

from benchmarks.conftest import build_babol, print_table

READS = 12


def fused_read_op(ctx, codec, address, dram_address):
    """Algorithm 2 as shipped: one fused preamble segment."""
    from repro.core.ops.read import read_page_op

    result = yield from read_page_op(ctx, codec, address, dram_address)
    return result


def per_latch_read_op(ctx, codec, address, dram_address):
    """The naive variant: every latch is its own segment/transaction."""
    bank = ctx.ufsm
    for latches in ([cmd(CMD.READ_1ST)], [addr(codec.encode(address))],
                    [cmd(CMD.READ_2ND)]):
        txn = ctx.transaction(TxnKind.CMD_ADDR, label="split-preamble")
        txn.add_segment(bank.ca_writer.emit(latches, chip_mask=ctx.chip_mask))
        yield from ctx.add_transaction(txn)
    yield from poll_until_ready(ctx)
    nbytes = codec.geometry.full_page_size
    handle = ctx.packetizer.from_flash(dram_address, nbytes)
    for latches in ([cmd(CMD.CHANGE_READ_COL_1ST)],
                    [addr(codec.encode_column(address.column))],
                    [cmd(CMD.CHANGE_READ_COL_2ND)]):
        txn = ctx.transaction(TxnKind.CMD_ADDR, label="split-ccol")
        txn.add_segment(bank.ca_writer.emit(latches, chip_mask=ctx.chip_mask))
        yield from ctx.add_transaction(txn)
    txn = ctx.transaction(TxnKind.DATA_OUT, label="split-transfer")
    txn.add_segment(bank.timer.emit(bank.ca_writer.timing.tCCS,
                                    chip_mask=ctx.chip_mask))
    txn.add_segment(bank.data_reader.emit(nbytes, handle, chip_mask=ctx.chip_mask))
    yield from ctx.add_transaction(txn)
    return 0x40, handle


def mean_latency_us(op, runtime: str = "rtos") -> float:
    sim, controller = build_babol(HYNIX_V7, 1, NVDDR2_200, runtime)
    total = 0
    for i in range(READS):
        start = sim.now
        task = controller.submit(
            op, 0, codec=controller.codec,
            address=PhysicalAddress(block=1, page=i), dram_address=0,
        )
        controller.run_to_completion(task)
        total += sim.now - start
    return total / READS / 1000.0


def run_all():
    return {
        "fused": mean_latency_us(fused_read_op),
        "per-latch": mean_latency_us(per_latch_read_op),
    }


@pytest.mark.benchmark(group="ablation-timing")
def test_ablation_fused_vs_per_latch_segments(benchmark):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    penalty = (results["per-latch"] - results["fused"]) / results["fused"] * 100
    print_table(
        "Ablation C: READ latency, fused preamble vs per-latch segments",
        ["variant", "mean latency (us)"],
        [["fused (C/A Writer)", f"{results['fused']:.1f}"],
         ["per-latch segments", f"{results['per-latch']:.1f}"],
         ["penalty", f"{penalty:+.1f}%"]],
    )
    # Splitting the preamble costs real time: extra CE windows plus a
    # software round trip per latch.
    assert results["per-latch"] > results["fused"] * 1.02

"""Ablation B — status polling vs. fixed timed waits.

Algorithm 2 polls READ STATUS instead of waiting a fixed tR "because
this time is highly variable" (Section V).  The alternative is a Timer
wait sized to worst-case tR.  This ablation measures both on a
single-LUN READ stream per runtime.

Expected shape: polling wins for the RTOS runtime (fast polls track the
actual tR), while for the coroutine runtime the ~30 µs polling cycle
eats most of the benefit — polling is only as good as the poller.
"""

import pytest

from repro.core.ops import read_page_op, read_page_timed_wait_op
from repro.flash import HYNIX_V7
from repro.onfi import NVDDR2_200
from repro.onfi.geometry import PhysicalAddress
from repro.sim import Simulator

from benchmarks.conftest import build_babol, print_table

READS = 16
# Worst case tR with the vendor jitter band plus safety margin, as a
# datasheet-driven implementation would size it.
WORST_CASE_TR_NS = int(HYNIX_V7.timing.t_read_ns * (1 + HYNIX_V7.timing.jitter) * 1.05)


def mean_latency_us(runtime: str, timed: bool) -> float:
    sim, controller = build_babol(HYNIX_V7, 1, NVDDR2_200, runtime)
    total = 0
    for i in range(READS):
        start = sim.now
        if timed:
            task = controller.submit(
                read_page_timed_wait_op, 0, codec=controller.codec,
                address=PhysicalAddress(block=1, page=i), dram_address=0,
                wait_ns=WORST_CASE_TR_NS,
            )
        else:
            task = controller.submit(
                read_page_op, 0, codec=controller.codec,
                address=PhysicalAddress(block=1, page=i), dram_address=0,
            )
        controller.run_to_completion(task)
        total += sim.now - start
    return total / READS / 1000.0


def run_all():
    return {
        (runtime, variant): mean_latency_us(runtime, timed=(variant == "timed"))
        for runtime in ("rtos", "coroutine")
        for variant in ("poll", "timed")
    }


@pytest.mark.benchmark(group="ablation-polling")
def test_ablation_polling_vs_timed_wait(benchmark):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    for runtime in ("rtos", "coroutine"):
        poll = results[(runtime, "poll")]
        timed = results[(runtime, "timed")]
        rows.append([runtime, f"{poll:.1f}", f"{timed:.1f}",
                     f"{(timed - poll) / timed * 100:+.1f}%"])
    print_table(
        "Ablation B: READ latency, polling vs worst-case timed wait (us)",
        ["runtime", "poll (Alg. 2)", "timed wait", "polling benefit"], rows,
    )

    # RTOS polling tracks real tR closely and beats the padded wait.
    assert results[("rtos", "poll")] < results[("rtos", "timed")]
    # The coroutine's slow polling cycle erodes (or inverts) the benefit.
    rtos_benefit = results[("rtos", "timed")] - results[("rtos", "poll")]
    coro_benefit = results[("coroutine", "timed")] - results[("coroutine", "poll")]
    assert coro_benefit < rtos_benefit

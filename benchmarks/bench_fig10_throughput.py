"""Fig. 10 — READ throughput of BABOL controllers vs. the hardware
baseline across packages, channel speeds, CPU frequencies, and LUN
counts.

Regenerates every series of the figure: {Hynix, Toshiba, Micron} ×
{100, 200 MT/s} × {HW, RTOS, Coro} × CPU {150 MHz*, 200 MHz, 400 MHz,
1 GHz} × LUNs {2, 4, 8} (Micron channels are wired for 2 LUNs only).

Shape assertions (the paper's observations):
  * throughput grows with LUN count for every controller;
  * software controllers speed up with CPU frequency;
  * the RTOS controller is within a few percent of hardware at
    >= 200 MHz with 8 LUNs;
  * the coroutine controller needs the 1 GHz core and approaches the
    hardware baseline at high LUN counts;
  * both software controllers degrade badly on the 150 MHz soft-core.
"""

import pytest

from repro.flash import HYNIX_V7, MICRON_B47R, TOSHIBA_BICS5
from repro.onfi import NVDDR2_100, NVDDR2_200

from benchmarks.conftest import (
    CPU_POINTS,
    build_babol,
    build_hw,
    print_table,
    read_throughput_mb_s,
)

VENDORS = {"Hynix": HYNIX_V7, "Toshiba": TOSHIBA_BICS5, "Micron": MICRON_B47R}
INTERFACES = {"100MT/s": NVDDR2_100, "200MT/s": NVDDR2_200}


def run_grid():
    """Compute the full Fig. 10 grid; returns {key: MB/s}."""
    grid = {}
    for vendor_name, vendor in VENDORS.items():
        lun_counts = [2] if vendor.luns_per_channel == 2 else [2, 4, 8]
        for iface_name, interface in INTERFACES.items():
            for luns in lun_counts:
                sim, hw = build_hw(vendor, luns, interface)
                grid[(vendor_name, iface_name, luns, "HW", "-")] = (
                    read_throughput_mb_s(sim, hw, luns)
                )
                for cpu_name, freq in CPU_POINTS.items():
                    for runtime, tag in (("rtos", "RTOS"), ("coroutine", "Coro")):
                        sim, controller = build_babol(
                            vendor, luns, interface, runtime, cpu_freq_hz=freq
                        )
                        grid[(vendor_name, iface_name, luns, tag, cpu_name)] = (
                            read_throughput_mb_s(sim, controller, luns)
                        )
    return grid


def print_grid(grid):
    for vendor_name in VENDORS:
        rows = []
        lun_counts = sorted({k[2] for k in grid if k[0] == vendor_name})
        for iface_name in INTERFACES:
            for luns in lun_counts:
                row = [iface_name, str(luns),
                       f"{grid[(vendor_name, iface_name, luns, 'HW', '-')]:.1f}"]
                for cpu_name in CPU_POINTS:
                    for tag in ("RTOS", "Coro"):
                        row.append(
                            f"{grid[(vendor_name, iface_name, luns, tag, cpu_name)]:.1f}"
                        )
                rows.append(row)
        headers = ["Channel", "LUNs", "HW"]
        for cpu_name in CPU_POINTS:
            headers += [f"RTOS@{cpu_name}", f"Coro@{cpu_name}"]
        print_table(f"Fig. 10: READ throughput (MB/s) — {vendor_name}",
                    headers, rows)


@pytest.mark.benchmark(group="fig10")
def test_fig10_throughput_grid(benchmark):
    grid = benchmark.pedantic(run_grid, rounds=1, iterations=1)
    print_grid(grid)

    def get(vendor, iface, luns, tag, cpu="-"):
        return grid[(vendor, iface, luns, tag, cpu)]

    for vendor_name, vendor in VENDORS.items():
        if vendor.luns_per_channel == 2:
            continue
        for iface_name in INTERFACES:
            # Trend 1: performance improves with LUN count until the
            # channel saturates (at 100 MT/s two Hynix LUNs already
            # pipeline perfectly for hardware, so "no regression" is the
            # saturated form of the trend).
            assert (
                get(vendor_name, iface_name, 8, "HW")
                > get(vendor_name, iface_name, 2, "HW") * 0.95
            )
            for tag in ("RTOS", "Coro"):
                assert (
                    get(vendor_name, iface_name, 8, tag, "1GHz")
                    > get(vendor_name, iface_name, 2, tag, "1GHz") * 1.05
                )
            # Trend 2: faster CPUs never hurt, and they matter a lot for
            # the heavyweight coroutine runtime on the fast channel.
            for tag in ("RTOS", "Coro"):
                assert (
                    get(vendor_name, iface_name, 8, tag, "1GHz")
                    >= get(vendor_name, iface_name, 8, tag, "150MHz*") * 0.99
                )
        assert (
            get(vendor_name, "200MT/s", 8, "Coro", "1GHz")
            > get(vendor_name, "200MT/s", 8, "Coro", "150MHz*") * 1.3
        )
        # RTOS viability: within 10% of hardware at 200 MHz+, 8 LUNs.
        for cpu in ("200MHz", "400MHz", "1GHz"):
            assert (
                get(vendor_name, "200MT/s", 8, "RTOS", cpu)
                > get(vendor_name, "200MT/s", 8, "HW") * 0.90
            )
        # Coroutine viability needs the fast core: close to HW at 1 GHz,
        # far from it on the soft-core.
        assert (
            get(vendor_name, "200MT/s", 8, "Coro", "1GHz")
            > get(vendor_name, "200MT/s", 8, "HW") * 0.85
        )
        assert (
            get(vendor_name, "200MT/s", 8, "Coro", "150MHz*")
            < get(vendor_name, "200MT/s", 8, "HW") * 0.75
        )
        # Busy 100 MT/s channels mask software latency: at 8 LUNs and
        # 1 GHz both runtimes sit within a few percent of hardware
        # (the regime where the paper's coroutine controller even edges
        # ahead; see EXPERIMENTS.md for the residual gap discussion).
        assert (
            get(vendor_name, "100MT/s", 8, "Coro", "1GHz")
            > get(vendor_name, "100MT/s", 8, "HW") * 0.93
        )
        assert (
            get(vendor_name, "100MT/s", 8, "RTOS", "1GHz")
            > get(vendor_name, "100MT/s", 8, "HW") * 0.97
        )

    # Micron (2-LUN wiring): grid exists and follows the same CPU trend.
    assert get("Micron", "200MT/s", 2, "Coro", "1GHz") > get(
        "Micron", "200MT/s", 2, "Coro", "150MHz*"
    )
    benchmark.extra_info["cells"] = len(grid)

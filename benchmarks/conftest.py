"""Shared builders for the benchmark harness.

Every bench regenerates one table or figure of the paper's evaluation
(Section VI).  Wall-clock time of the simulation is irrelevant — the
measurements are *simulated* nanoseconds — so benches run one round and
report the paper-comparable metrics through ``extra_info`` and stdout.
Run with ``pytest benchmarks/ --benchmark-only -s`` to see the tables.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from repro.baselines import AsyncHwController, SyncHwController
from repro.core import BabolController, ControllerConfig
from repro.core.softenv import GHZ, MHZ
from repro.flash.vendors import VendorProfile
from repro.host import measure_read_throughput
from repro.onfi.datamodes import DataInterface
from repro.sim import Simulator

CPU_POINTS = {
    "150MHz*": 150 * MHZ,   # '*' = soft-core in the paper's Fig. 10
    "200MHz": 200 * MHZ,
    "400MHz": 400 * MHZ,
    "1GHz": GHZ,
}


def build_babol(
    vendor: VendorProfile,
    lun_count: int,
    interface: DataInterface,
    runtime: str,
    cpu_freq_hz: int = GHZ,
    seed: int = 0,
) -> tuple[Simulator, BabolController]:
    sim = Simulator()
    controller = BabolController(
        sim,
        ControllerConfig(
            vendor=vendor, lun_count=lun_count, interface=interface,
            runtime=runtime, cpu_freq_hz=cpu_freq_hz, track_data=False,
            seed=seed,
        ),
    )
    return sim, controller


def build_hw(
    vendor: VendorProfile,
    lun_count: int,
    interface: DataInterface,
    kind: str = "sync",
    seed: int = 0,
):
    sim = Simulator()
    cls = SyncHwController if kind == "sync" else AsyncHwController
    controller = cls(
        sim, vendor=vendor, lun_count=lun_count, interface=interface,
        track_data=False, seed=seed,
    )
    return sim, controller


def read_throughput_mb_s(sim, controller, lun_count, reads_per_lun=14,
                         warmup_per_lun=3) -> float:
    result = measure_read_throughput(
        sim, controller, lun_count,
        reads_per_lun=reads_per_lun, warmup_per_lun=warmup_per_lun,
    )
    return result.throughput_mb_s


def print_table(title: str, headers: list[str], rows: list[list[str]]) -> None:
    widths = [
        max(len(str(headers[i])), *(len(str(row[i])) for row in rows))
        for i in range(len(headers))
    ]
    line = "  ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    print(f"\n== {title} ==")
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(str(cell).ljust(w) for cell, w in zip(row, widths)))

"""LUN (Logical Unit) behavioural state machine.

A LUN consumes the decoded actions of waveform segments addressed to it
(chip-enable selected) and reacts the way an ONFI-compliant die does:
latching commands and addresses, going busy for the array times of its
vendor profile, exposing a status register, and moving data between the
flash array, its page/cache registers, and the controller's DMA handles.

The model enforces protocol legality: a command latched while the LUN is
array-busy (other than status/reset/suspend) raises
:class:`LunProtocolError`, which is how tests prove the controllers
never violate ONFI sequencing.
"""

from __future__ import annotations

import enum
from typing import Optional

import numpy as np

from repro.flash.array import FlashArray
from repro.flash.cell import CellMode, profile_for
from repro.flash.vendors import VendorProfile
from repro.onfi.commands import CMD, CommandClass, classify_opcode, opcode_name
from repro.onfi.features import FeatureAddress, FeatureStore
from repro.onfi.geometry import AddressCodec, PhysicalAddress
from repro.onfi.signals import (
    Action,
    AddressLatch,
    CommandLatch,
    DataInAction,
    DataOutAction,
    IdleWait,
    WaveformSegment,
)
from repro.onfi.status import StatusRegister
from repro.sim import Simulator
from repro.sim.sync import Trigger


class LunProtocolError(RuntimeError):
    """An ONFI sequencing violation by the controller under test."""


class LunState(enum.Enum):
    IDLE = "idle"
    AWAIT_ADDRESS = "await_address"
    AWAIT_CONFIRM = "await_confirm"
    ARRAY_BUSY = "array_busy"
    CACHE_BUSY = "cache_busy"
    SUSPENDED = "suspended"


class _DataSource(enum.Enum):
    NONE = "none"
    STATUS = "status"
    REGISTER = "register"
    FEATURE = "feature"
    ID = "id"
    PARAM_PAGE = "param_page"


class _BusyKind(enum.Enum):
    READ = "read"
    PROGRAM = "program"
    ERASE = "erase"
    FEATURE = "feature"
    RESET = "reset"
    PARAM = "param"
    DUMMY = "dummy"


_SUSPENDABLE = {_BusyKind.PROGRAM, _BusyKind.ERASE}


class _PendingCompletion:
    """A deferred die-side completion (busy end, cache hand-off).

    Wraps the kernel event so the TLM tier can *catch up*: when a later
    segment's logical action time passes this completion, the LUN fires
    it early — at its recorded nanosecond — instead of waiting for real
    kernel time to reach it.  Duck-types the event surface the LUN's
    suspend/reset paths rely on (``pending``, ``cancel``), so the
    waveform tier behaves exactly as before the wrapper existed.

    ``order`` is the creation sequence number: it reproduces the kernel
    heap's FIFO tie-break when a completion and a die action land on
    the same nanosecond (completions scheduled *before* the current
    segment's actions win the tie; ones scheduled during it lose).
    """

    __slots__ = ("lun", "time", "order", "fn", "event", "done")

    def __init__(self, lun: "Lun", time_ns: int, order: int, fn):
        self.lun = lun
        self.time = time_ns
        self.order = order
        self.fn = fn
        self.done = False
        self.event = lun.sim.schedule(time_ns - lun.sim.now, self._on_event)

    @property
    def pending(self) -> bool:
        return not self.done

    def cancel(self) -> None:
        if self.done:
            return
        self.done = True
        self.event.cancel()
        self.lun._pending_completions.remove(self)

    def _on_event(self) -> None:
        if self.done:
            return
        self.done = True
        self.lun._pending_completions.remove(self)
        self.fn()

    def fire_early(self) -> None:
        """Catch-up: run at the recorded logical time (TLM only)."""
        if self.done:
            return
        self.done = True
        self.event.cancel()
        self.lun._pending_completions.remove(self)
        self.lun._action_time = self.time
        self.fn()


class Lun:
    """One logical unit of a flash package."""

    def __init__(
        self,
        sim: Simulator,
        profile: VendorProfile,
        position: int = 0,
        seed: int = 0,
        track_data: bool = True,
    ):
        self.sim = sim
        self.profile = profile
        self.position = position
        self.geometry = profile.geometry
        self.codec = AddressCodec(self.geometry)
        self.array = FlashArray(
            self.geometry,
            native_mode=profile.native_cell_mode,
            endurance_cycles=profile.endurance_cycles,
            track_data=track_data,
            seed=seed,
            factory_bad_rate=profile.factory_bad_rate,
        )
        self.status = StatusRegister()
        self.features = FeatureStore()
        self.rb_trigger = Trigger(sim)  # fires on busy->ready transitions
        self.rb_taps: list = []  # probes called with (lun, busy) on R/B# edges
        self._san_flash = None      # FlashSanitizer when attached
        self._san_liveness = None   # LivenessSanitizer when attached
        self._fault_hook = None     # FaultInjector when attached (repro.faults)
        self._rng = np.random.default_rng(seed ^ 0x5A5A)

        self.state = LunState.IDLE
        self._pending_opcode: Optional[int] = None
        self._addr_format = "full"
        self._data_source = _DataSource.NONE
        self._column = 0
        self._row_addr: Optional[PhysicalAddress] = None
        self._feature_addr = 0
        self._id_area = 0
        self._status_addr_pending = False
        self._cache_program_active = False

        planes = self.geometry.planes
        self._page_register: list[Optional[np.ndarray]] = [None] * planes
        self._cache_register: list[Optional[np.ndarray]] = [None] * planes
        self._active_plane = 0
        self._mp_queue: list[PhysicalAddress] = []
        self._cache_next_row: Optional[PhysicalAddress] = None

        # Logical clock (TLM tier).  While a transaction's segments are
        # delivered inline, die actions run at logical times computed
        # from segment offsets; _now() reads this instead of sim.now so
        # timestamps (array aging, busy deadlines, status samples) are
        # identical to the waveform tier.  None means "real time".
        self._action_time: Optional[int] = None
        self._pending_completions: list[_PendingCompletion] = []
        self._completion_seq = 0
        # Nanosecond of the most recent STATUS byte sampled from this
        # die — the poll fast-forward in ops/base reads it to measure
        # the polling period.
        self.last_status_sample_ns: Optional[int] = None

        # Array operations in flight (confirmed, not yet committed):
        # dicts of {kind, targets, begun}.  A power cut consults this to
        # tear partially-programmed pages and mark interrupted erases.
        self.inflight_ops: list[dict] = []

        self._pslc_override = False
        self._busy_kind: Optional[_BusyKind] = None
        self._busy_event = None
        self._busy_until = 0
        self._busy_finish = None
        self._suspend_remaining = 0
        self._suspend_pending = False
        self._suspended_kind: Optional[_BusyKind] = None
        self._suspended_finish = None
        self._sets_status = True

        # Statistics exposed to the analysis layer.
        self.op_counts: dict[str, int] = {}
        self.busy_ns_total = 0
        self.reads_completed = 0
        self.programs_completed = 0
        self.erases_completed = 0

    # ------------------------------------------------------------------
    # Segment delivery (called by the channel model)
    # ------------------------------------------------------------------

    def deliver_segment(self, segment: WaveformSegment) -> None:
        """Schedule processing of each decoded action at its offset."""
        for offset, action in segment.actions:
            self.sim.schedule(offset, lambda a=action: self._process(a))

    def deliver_segment_inline(self, segment: WaveformSegment,
                               base_ns: int) -> None:
        """TLM delivery: run each action now, at its logical nanosecond.

        ``base_ns`` is the segment's logical start (the transaction's
        start plus preceding segment durations).  Before each action,
        pending completions whose recorded time precedes it fire early
        ("catch-up"), so ordering against busy windows — intra-
        transaction timer waits spanning tFEAT, status samples racing
        tR — matches the waveform tier exactly.

        When no completion is pending at segment start the catch-up
        scan is skipped entirely: a completion scheduled *by* this
        segment's own actions carries ``order >= epoch``, which the
        scan would never fire early anyway.
        """
        if not self._pending_completions:
            try:
                for offset, action in segment.actions:
                    self._action_time = base_ns + offset
                    self._process(action)
            finally:
                self._action_time = None
            return
        epoch = self._completion_seq
        try:
            for offset, action in segment.actions:
                at = base_ns + offset
                self._run_due_completions(at, epoch)
                self._action_time = at
                self._process(action)
        finally:
            self._action_time = None

    def _now(self) -> int:
        """The die's clock: logical action time under TLM, sim.now else."""
        at = self._action_time
        return at if at is not None else self.sim.now

    def _schedule_completion(self, duration: int, fn) -> _PendingCompletion:
        """Schedule ``fn`` at ``_now() + duration`` (kernel time), kept
        on the pending list so the TLM tier can catch it up early."""
        self._completion_seq += 1
        rec = _PendingCompletion(
            self, self._now() + duration, self._completion_seq, fn)
        self._pending_completions.append(rec)
        return rec

    def _run_due_completions(self, at_ns: int, epoch: int) -> None:
        """Fire, in (time, order) order, every pending completion the
        waveform tier would have run before an action at ``at_ns``.

        A completion tied at ``at_ns`` fires first only when it was
        scheduled before the current segment started (order < epoch) —
        mirroring the kernel heap's FIFO tie-break.
        """
        while self._pending_completions:
            due = None
            for rec in self._pending_completions:
                if rec.time > at_ns or (rec.time == at_ns
                                        and rec.order >= epoch):
                    continue
                if due is None or (rec.time, rec.order) < (due.time, due.order):
                    due = rec
            if due is None:
                return
            due.fire_early()

    def next_completion_ns(self) -> Optional[int]:
        """Earliest pending die-side completion, or None (idle or hung).

        The TLM poll fast-forward reads this to find when the die will
        go ready; a hung die (injected fault) has no pending completion,
        so polls against it keep running at full rate and the watchdog
        fires on the exact waveform nanosecond.
        """
        if not self._pending_completions:
            return None
        return min(rec.time for rec in self._pending_completions)

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------

    @property
    def is_busy(self) -> bool:
        """R/B# pin view: low (busy) while an array op is in flight."""
        return self.state in (LunState.ARRAY_BUSY,)

    @property
    def pslc_active(self) -> bool:
        return self._pslc_override or self.features.pslc_enabled

    def page_register_view(self, plane: int = 0) -> Optional[np.ndarray]:
        return self._page_register[plane]

    # ------------------------------------------------------------------
    # Action dispatch
    # ------------------------------------------------------------------

    def _process(self, action: Action) -> None:
        if isinstance(action, CommandLatch):
            self._on_command(action.opcode)
        elif isinstance(action, AddressLatch):
            self._on_address(action.address_bytes)
        elif isinstance(action, DataOutAction):
            self._on_data_out(action)
        elif isinstance(action, DataInAction):
            self._on_data_in(action)
        elif isinstance(action, IdleWait):
            pass  # pure time; nothing latched
        else:  # pragma: no cover - guarded by the Action union
            raise LunProtocolError(f"unknown action {action!r}")

    def _on_command(self, opcode: int) -> None:
        name = opcode_name(opcode)
        self.op_counts[name] = self.op_counts.get(name, 0) + 1
        cls = classify_opcode(opcode)

        if self.state is LunState.ARRAY_BUSY and cls not in (
            CommandClass.STATUS,
            CommandClass.RESET,
        ) and opcode != CMD.VENDOR_SUSPEND:
            if self._san_flash is not None:
                self._san_flash.on_busy_violation(self, opcode)
            raise LunProtocolError(
                f"opcode {opcode_name(opcode)} latched while LUN {self.position} is busy"
            )

        if cls is CommandClass.STATUS:
            if self._san_liveness is not None:
                self._san_liveness.on_status_poll(self)
            self._data_source = _DataSource.STATUS
            # READ STATUS ENHANCED carries a row address (die select on
            # multi-LUN packages); it is legal while the array is busy,
            # so it must not disturb the busy state machine.
            self._status_addr_pending = opcode == CMD.READ_STATUS_ENHANCED
            return
        if cls is CommandClass.RESET:
            self._do_reset()
            return
        if opcode == CMD.VENDOR_SUSPEND:
            self._do_suspend()
            return
        if opcode == CMD.VENDOR_RESUME:
            self._do_resume()
            return
        if opcode == CMD.VENDOR_PSLC_ENTER:
            if not self.profile.supports_pslc:
                raise LunProtocolError(f"{self.profile.name} has no pSLC opcode")
            self._pslc_override = True
            return
        if opcode == CMD.VENDOR_PSLC_EXIT:
            self._pslc_override = False
            return

        if cls is CommandClass.READ:
            self._pending_opcode = opcode
            self._addr_format = "full"
            self.state = LunState.AWAIT_ADDRESS
        elif cls is CommandClass.READ_CONFIRM:
            self._confirm_read(queue_more=(opcode == CMD.MP_READ_2ND))
        elif cls is CommandClass.CACHE_READ_CONFIRM:
            self._confirm_cache_read(final=False)
        elif cls is CommandClass.CACHE_READ_END:
            self._confirm_cache_read(final=True)
        elif cls is CommandClass.CHANGE_READ_COLUMN:
            if opcode == CMD.CHANGE_READ_COL_1ST:
                self._pending_opcode = opcode
                self._addr_format = "col"
                self.state = LunState.AWAIT_ADDRESS
            elif opcode == CMD.CHANGE_READ_COL_ENH_1ST:
                # Enhanced variant carries a full address (selects the
                # plane whose register subsequent bursts read from).
                self._pending_opcode = opcode
                self._addr_format = "full"
                self.state = LunState.AWAIT_ADDRESS
            else:  # 0xE0 confirm: register data now readable
                self._data_source = _DataSource.REGISTER
                self.state = LunState.IDLE
        elif cls is CommandClass.PROGRAM:
            self._pending_opcode = opcode
            self._addr_format = "full"
            self.state = LunState.AWAIT_ADDRESS
        elif cls is CommandClass.PROGRAM_CONFIRM:
            self._confirm_program(cache=False, queue_more=(opcode == CMD.MP_PROGRAM_2ND))
        elif cls is CommandClass.CACHE_PROGRAM_CONFIRM:
            self._confirm_program(cache=True)
        elif cls is CommandClass.CHANGE_WRITE_COLUMN:
            self._pending_opcode = opcode
            self._addr_format = "col"
            self.state = LunState.AWAIT_ADDRESS
        elif cls is CommandClass.ERASE:
            self._pending_opcode = opcode
            self._addr_format = "row"
            self.state = LunState.AWAIT_ADDRESS
        elif cls is CommandClass.ERASE_CONFIRM:
            self._confirm_erase(queue_more=(opcode == CMD.MP_ERASE_2ND))
        elif cls is CommandClass.IDENT:
            self._pending_opcode = opcode
            self._addr_format = "one"
            self.state = LunState.AWAIT_ADDRESS
        elif cls is CommandClass.FEATURES:
            self._pending_opcode = opcode
            self._addr_format = "one"
            self.state = LunState.AWAIT_ADDRESS
        else:
            raise LunProtocolError(f"unsupported opcode 0x{opcode:02X}")

    # ------------------------------------------------------------------
    # Address handling
    # ------------------------------------------------------------------

    def _on_address(self, address_bytes: tuple[int, ...]) -> None:
        if getattr(self, "_status_addr_pending", False):
            # Enhanced-status die select; single-die positions ignore it.
            self._status_addr_pending = False
            return
        if self.state is not LunState.AWAIT_ADDRESS or self._pending_opcode is None:
            raise LunProtocolError("address latched without a preceding command")
        opcode = self._pending_opcode

        if self._addr_format == "full":
            addr = self.codec.decode(address_bytes)
            self._row_addr = addr
            self._column = addr.column
            self._active_plane = self.codec.plane_of(addr)
        elif self._addr_format == "row":
            row = self.codec.decode_row(address_bytes)
            block, page = divmod(row, self.geometry.pages_per_block)
            self._row_addr = PhysicalAddress(block=block, page=page)
            self._active_plane = self.codec.plane_of(self._row_addr)
        elif self._addr_format == "col":
            self._column = self.codec.decode_column(address_bytes)
        elif self._addr_format == "one":
            value = address_bytes[0]
            if classify_opcode(opcode) is CommandClass.FEATURES:
                self._feature_addr = value
            else:
                self._id_area = value
        else:  # pragma: no cover
            raise LunProtocolError(f"bad address format {self._addr_format}")

        self.state = LunState.AWAIT_CONFIRM
        # Commands whose effect happens right after the address phase.
        if opcode == CMD.GET_FEATURES:
            self._begin_busy(
                _BusyKind.FEATURE,
                self.profile.timing.t_feat_ns,
                finish=lambda: self._arm(_DataSource.FEATURE),
            )
        elif opcode == CMD.READ_ID:
            self._data_source = _DataSource.ID
            self.state = LunState.IDLE
        elif opcode == CMD.READ_PARAMETER_PAGE:
            self._begin_busy(
                _BusyKind.PARAM,
                self.profile.timing.t_param_read_ns,
                finish=lambda: self._arm(_DataSource.PARAM_PAGE),
            )
        elif opcode == CMD.CHANGE_WRITE_COL:
            # Mid-program column move: stay armed for the confirm cycle.
            self.state = (
                LunState.AWAIT_CONFIRM if self._row_addr is not None else LunState.IDLE
            )

    def _arm(self, source: _DataSource) -> None:
        self._data_source = source

    # ------------------------------------------------------------------
    # Data movement
    # ------------------------------------------------------------------

    def _on_data_out(self, action: DataOutAction) -> None:
        data = self._produce_data(action.nbytes)
        if action.dma_handle is not None:
            action.dma_handle.deliver(data)

    def _produce_data(self, nbytes: int) -> np.ndarray:
        source = self._data_source
        if source is _DataSource.STATUS:
            self.last_status_sample_ns = self._now()
            return np.full(nbytes, self.status.value(), dtype=np.uint8)
        if source is _DataSource.REGISTER:
            register = self._page_register[self._active_plane]
            if register is None:
                if self._san_flash is not None:
                    self._san_flash.on_unarmed_read(
                        self, "data out with an empty page register"
                    )
                raise LunProtocolError("data out with an empty page register")
            end = min(self._column + nbytes, len(register))
            # A view is safe to hand out: DmaHandle.deliver copies
            # before the register can change again.
            chunk = register[self._column:end]
            if len(chunk) < nbytes:
                pad = np.full(nbytes - len(chunk), 0xFF, dtype=np.uint8)
                chunk = np.concatenate([chunk, pad])
            self._column = end
            return chunk
        if source is _DataSource.FEATURE:
            params = self.features.get(self._feature_addr)
            return np.array(list(params)[:nbytes], dtype=np.uint8)
        if source is _DataSource.ID:
            return np.array(self.profile.id_bytes(self._id_area)[:nbytes], dtype=np.uint8)
        if source is _DataSource.PARAM_PAGE:
            page = self.profile.parameter_page()
            reps = -(-nbytes // len(page))  # parameter page repeats per ONFI
            return np.tile(page, reps)[:nbytes]
        if self._san_flash is not None:
            self._san_flash.on_unarmed_read(
                self, "data out requested with no data source armed"
            )
        raise LunProtocolError("data out requested with no data source armed")

    def _on_data_in(self, action: DataInAction) -> None:
        if self._pending_opcode == CMD.SET_FEATURES:
            data = self._fetch(action, 4)
            params = tuple(int(b) for b in data[:4])
            finish = lambda: self.features.set(self._feature_addr, params)  # noqa: E731
            if self._fault_hook is not None and self._fault_hook.on_set_features(
                self, self._feature_addr, params
            ):
                # Injected FEATURE DROP: the die goes busy for tFEAT and
                # acknowledges, but the register write is silently lost.
                finish = None
            self._begin_busy(
                _BusyKind.FEATURE,
                self.profile.timing.t_feat_ns,
                finish=finish,
            )
            return
        # Program path: fill the page register at the given column.
        register = self._ensure_register(self._active_plane)
        data = self._fetch(action, action.nbytes)
        start = action.column or self._column
        end = min(start + len(data), len(register))
        register[start:end] = data[: end - start]
        self._column = end

    def _fetch(self, action: DataInAction, nbytes: int) -> np.ndarray:
        if action.dma_handle is None:
            raise LunProtocolError("data-in burst without a DMA source")
        data = action.dma_handle.fetch(nbytes)
        return np.asarray(data, dtype=np.uint8)

    def _ensure_register(self, plane: int) -> np.ndarray:
        if self._page_register[plane] is None:
            self._page_register[plane] = np.full(
                self.geometry.full_page_size, 0xFF, dtype=np.uint8
            )
        return self._page_register[plane]

    # ------------------------------------------------------------------
    # Array operations (confirm commands)
    # ------------------------------------------------------------------

    def _effective_mode(self) -> Optional[CellMode]:
        return CellMode.PSLC if self.pslc_active else None

    def _sample(self, mean_ns: int, scale: float = 1.0) -> int:
        """Array time with bounded uniform jitter (tR is 'highly variable')."""
        jitter = self.profile.timing.jitter
        low = mean_ns * scale * (1.0 - jitter)
        high = mean_ns * scale * (1.0 + jitter)
        return max(int(self._rng.uniform(low, high)), 1)

    def _read_time_ns(self) -> int:
        mode = self._effective_mode()
        scale = profile_for(mode).read_time_scale if mode else 1.0
        return self._sample(self.profile.timing.t_read_ns, scale)

    def _program_time_ns(self) -> int:
        mode = self._effective_mode()
        scale = profile_for(mode).program_time_scale if mode else 1.0
        return self._sample(self.profile.timing.t_prog_ns, scale)

    def _confirm_read(self, queue_more: bool) -> None:
        addr = self._require_row()
        if queue_more:
            # Multi-plane queue cycle: short inter-plane busy, then ready
            # for the next plane's 0x00/address.
            self._mp_queue.append(addr)
            self._begin_busy(_BusyKind.DUMMY, self.profile.timing.t_dbsy_ns)
            return
        targets = self._mp_queue + [addr]
        self._mp_queue = []
        duration = self._read_time_ns()

        def finish() -> None:
            for target in targets:
                plane = self.codec.plane_of(target)
                self._page_register[plane] = self.array.load_page(
                    target,
                    now_ns=self._now(),
                    read_retry_level=self.features.read_retry_level,
                    cell_mode_override=self._effective_mode(),
                )
            self._active_plane = self.codec.plane_of(targets[-1])
            self._column = targets[-1].column
            self._data_source = _DataSource.REGISTER
            self.reads_completed += len(targets)

        self._begin_busy(_BusyKind.READ, duration, finish=finish)

    def _confirm_cache_read(self, final: bool) -> None:
        """READ CACHE SEQUENTIAL / END (interleaves tR with transfers)."""
        if self._row_addr is None:
            raise LunProtocolError("cache read without a prior page read")
        plane = self._active_plane
        register = self._page_register[plane]
        if register is None:
            if self._san_flash is not None:
                self._san_flash.on_unarmed_read(
                    self, "cache read before the first tR completed"
                )
            raise LunProtocolError("cache read before the first tR completed")
        # Move current page data to the cache register; it is immediately
        # readable while the array fetches the next sequential page.
        self._cache_register[plane] = register
        next_row = self._next_sequential(self._row_addr)
        if final or next_row is None:
            self._data_source = _DataSource.REGISTER
            self._page_register[plane] = self._cache_register[plane]
            self._column = 0
            return
        self._row_addr = next_row
        duration = self._read_time_ns()
        self.status.begin_cache_phase()
        self.state = LunState.CACHE_BUSY

        def finish() -> None:
            self._page_register[plane] = self.array.load_page(
                next_row,
                now_ns=self._now(),
                read_retry_level=self.features.read_retry_level,
                cell_mode_override=self._effective_mode(),
            )
            self.reads_completed += 1

        # Cache-busy does not hold RDY low; serve data from the cache reg.
        self._data_source = _DataSource.REGISTER
        swap = self._cache_register[plane]
        self._page_register[plane], self._cache_register[plane] = swap, None
        self._column = 0
        self._schedule_completion(duration, lambda: self._cache_finish(finish))

    def _cache_finish(self, finish) -> None:
        finish()
        if self.state is LunState.CACHE_BUSY:
            self.state = LunState.IDLE
            self.status.finish_operation()
            self.rb_trigger.fire(self)
            self._notify_rb(False)

    def _next_sequential(self, addr: PhysicalAddress) -> Optional[PhysicalAddress]:
        if addr.page + 1 < self.geometry.pages_per_block:
            return PhysicalAddress(block=addr.block, page=addr.page + 1)
        return None

    def _confirm_program(self, cache: bool, queue_more: bool = False) -> None:
        addr = self._require_row()
        if queue_more:
            self._mp_queue.append(addr)
            self._begin_busy(_BusyKind.DUMMY, self.profile.timing.t_dbsy_ns)
            return
        if self._cache_program_active:
            raise LunProtocolError(
                "program confirm while a cache program is still in the array"
                " (poll ARDY first)"
            )
        targets = self._mp_queue + [addr]
        self._mp_queue = []
        duration = self._program_time_ns()
        mode = self._effective_mode()
        registers = {
            self.codec.plane_of(t): self._ensure_register(self.codec.plane_of(t)).copy()
            for t in targets
        }
        inflight = {"kind": "program", "targets": list(targets),
                    "begun": self._now()}
        self.inflight_ops.append(inflight)

        def finish() -> None:
            if inflight in self.inflight_ops:
                self.inflight_ops.remove(inflight)
            failed = False
            if self._fault_hook is not None and self._fault_hook.on_program(
                self, targets
            ):
                # Injected PROGRAM FAIL: the array never commits and the
                # die raises the ONFI FAIL bit, exactly like a grown-bad
                # page refusing to verify.
                failed = True
            else:
                for target in targets:
                    plane = self.codec.plane_of(target)
                    ok = self.array.program(
                        target, registers[plane], now_ns=self._now(),
                        cell_mode=mode, begun_ns=inflight["begun"],
                    )
                    failed = failed or not ok
            self.programs_completed += len(targets)
            self.status.finish_operation(failed=failed)

        if cache:
            # Cache program: the array works in the background while the
            # interface stays usable (RDY without ARDY), so the next
            # page's data can stream in during tPROG.
            self._cache_program_active = True
            self.status.begin_operation()
            self.status.begin_cache_phase()
            self.state = LunState.IDLE
            self.busy_ns_total += duration

            def cache_done() -> None:
                self._cache_program_active = False
                finish()
                self.rb_trigger.fire(self)
                self._notify_rb(False)

            self._schedule_completion(duration, cache_done)
        else:
            self._begin_busy(
                _BusyKind.PROGRAM, duration, finish=finish, sets_status=False
            )

    def _confirm_erase(self, queue_more: bool) -> None:
        addr = self._require_row()
        if queue_more:
            self._mp_queue.append(addr)
            self._begin_busy(_BusyKind.DUMMY, self.profile.timing.t_dbsy_ns)
            return
        targets = self._mp_queue + [addr]
        self._mp_queue = []
        duration = self._sample(self.profile.timing.t_bers_ns)
        mode = self._effective_mode()
        inflight = {"kind": "erase", "targets": list(targets),
                    "begun": self._now()}
        self.inflight_ops.append(inflight)

        def finish() -> None:
            if inflight in self.inflight_ops:
                self.inflight_ops.remove(inflight)
            failed = False
            if self._fault_hook is not None and self._fault_hook.on_erase(
                self, targets
            ):
                failed = True
            else:
                for target in targets:
                    ok = self.array.erase(target.block, cell_mode=mode,
                                          now_ns=self._now(),
                                          begun_ns=inflight["begun"])
                    failed = failed or not ok
            self.erases_completed += len(targets)
            self.status.finish_operation(failed=failed)

        self._begin_busy(_BusyKind.ERASE, duration, finish=finish, sets_status=False)

    def _require_row(self) -> PhysicalAddress:
        if self._row_addr is None or self.state is not LunState.AWAIT_CONFIRM:
            raise LunProtocolError("confirm latched without a full address")
        return self._row_addr

    # ------------------------------------------------------------------
    # Busy machinery, reset, suspend/resume
    # ------------------------------------------------------------------

    def _begin_busy(
        self,
        kind: _BusyKind,
        duration: int,
        finish=None,
        sets_status: bool = True,
    ) -> None:
        if self._fault_hook is not None:
            duration = self._fault_hook.on_busy(self, kind.value, duration)
        self.status.begin_operation()
        self.state = LunState.ARRAY_BUSY
        self._busy_kind = kind
        self._busy_finish = finish
        self._sets_status = sets_status
        if duration is None:
            # Injected die hang: R/B# stays low forever.  No completion
            # is scheduled; only a RESET (legal while busy) cancels the
            # operation — which never committed — and revives the die.
            self._busy_until = -1
            self._busy_event = None
            self._notify_rb(True)
            return
        self._busy_until = self._now() + duration
        self.busy_ns_total += duration
        self._busy_event = self._schedule_completion(duration, self._finish_busy)
        self._notify_rb(True)

    def _notify_rb(self, busy: bool) -> None:
        """R/B# pin edge: reset liveness poll budget, feed analyzer taps."""
        if self._san_liveness is not None:
            self._san_liveness.on_progress(self)
        for tap in self.rb_taps:
            tap(self, busy)

    def _finish_busy(self) -> None:
        finish, self._busy_finish = self._busy_finish, None
        self._busy_kind = None
        self._busy_event = None
        # A nested operation during a suspension returns the LUN to its
        # suspended state, not to idle.
        self.state = LunState.SUSPENDED if self._suspend_pending else LunState.IDLE
        if finish is not None:
            finish()
        if self._sets_status:
            self.status.finish_operation()
        elif self.status.rdy is False:
            # finish() forgot to settle status; settle it defensively.
            self.status.finish_operation()
        self.rb_trigger.fire(self)
        self._notify_rb(False)

    def _do_reset(self) -> None:
        if self._busy_event is not None and self._busy_event.pending:
            self._busy_event.cancel()
        self._busy_finish = None
        self.inflight_ops.clear()  # aborted ops never reached the array
        self._mp_queue = []
        self._pslc_override = False
        self._data_source = _DataSource.NONE
        self._suspend_remaining = 0
        self._suspend_pending = False
        self._cache_program_active = False
        self.status.suspended = False
        self._begin_busy(_BusyKind.RESET, self.profile.timing.t_reset_ns)

    def _do_suspend(self) -> None:
        if not self.profile.supports_suspend:
            raise LunProtocolError(f"{self.profile.name} has no suspend opcode")
        if self.state is not LunState.ARRAY_BUSY or self._busy_kind not in _SUSPENDABLE:
            raise LunProtocolError("suspend latched with no suspendable operation")
        if self._busy_event is not None:  # a hung busy has no event
            self._busy_event.cancel()
        self._suspend_remaining = max(self._busy_until - self._now(), 0)
        self._suspended_kind = self._busy_kind
        self._suspended_finish = self._busy_finish
        self._suspend_pending = True
        self._busy_kind = None
        self._busy_finish = None
        self.state = LunState.SUSPENDED
        self.status.rdy = True
        self.status.ardy = True
        self.status.suspended = True
        self.rb_trigger.fire(self)
        self._notify_rb(False)

    def _do_resume(self) -> None:
        if not self._suspend_pending or self.state is LunState.ARRAY_BUSY:
            raise LunProtocolError("resume latched while not suspended")
        self.status.suspended = False
        self._suspend_pending = False
        remaining = self._suspend_remaining + self.profile.timing.t_resume_ns
        kind = self._suspended_kind
        finish = self._suspended_finish
        self._suspend_remaining = 0
        self._begin_busy(kind, remaining, finish=finish, sets_status=False)

    def describe(self) -> str:
        return (
            f"LUN{self.position} [{self.profile.name}] state={self.state.value} "
            f"reads={self.reads_completed} programs={self.programs_completed} "
            f"erases={self.erases_completed}"
        )

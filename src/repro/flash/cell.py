"""Cell modes and their timing/reliability scalars.

A physical block can be operated in its native mode (TLC for the paper's
parts) or in pseudo-SLC mode, which programs only the fast page of every
cell.  pSLC trades capacity for speed and endurance (the Fig. 8
Algorithm 3 use case); the scalars below express those trades relative
to the native mode.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class CellMode(enum.Enum):
    SLC = "slc"
    MLC = "mlc"
    TLC = "tlc"
    QLC = "qlc"
    PSLC = "pslc"  # native multi-level cells operated one-bit-per-cell


@dataclass(frozen=True)
class CellModeProfile:
    """Relative behaviour of one cell mode.

    Attributes:
        bits_per_cell: information density.
        read_time_scale: tR multiplier relative to the native mode.
        program_time_scale: tPROG multiplier.
        rber_scale: raw bit-error-rate multiplier.
        endurance_scale: P/E cycle budget multiplier.
        capacity_scale: usable fraction of the native block capacity.
    """

    bits_per_cell: int
    read_time_scale: float
    program_time_scale: float
    rber_scale: float
    endurance_scale: float
    capacity_scale: float


CELL_MODE_PROFILES: dict[CellMode, CellModeProfile] = {
    CellMode.SLC: CellModeProfile(
        bits_per_cell=1, read_time_scale=0.30, program_time_scale=0.25,
        rber_scale=0.01, endurance_scale=20.0, capacity_scale=1.0,
    ),
    CellMode.MLC: CellModeProfile(
        bits_per_cell=2, read_time_scale=0.60, program_time_scale=0.55,
        rber_scale=0.20, endurance_scale=3.0, capacity_scale=1.0,
    ),
    CellMode.TLC: CellModeProfile(
        bits_per_cell=3, read_time_scale=1.0, program_time_scale=1.0,
        rber_scale=1.0, endurance_scale=1.0, capacity_scale=1.0,
    ),
    CellMode.QLC: CellModeProfile(
        bits_per_cell=4, read_time_scale=1.8, program_time_scale=2.2,
        rber_scale=4.0, endurance_scale=0.3, capacity_scale=1.0,
    ),
    # pSLC on a TLC part: one bit per cell => 1/3 of the capacity, with
    # SLC-like speed and reliability (HyperStone [14], Fig. 8 Alg. 3).
    CellMode.PSLC: CellModeProfile(
        bits_per_cell=1, read_time_scale=0.35, program_time_scale=0.30,
        rber_scale=0.02, endurance_scale=10.0, capacity_scale=1.0 / 3.0,
    ),
}


def profile_for(mode: CellMode) -> CellModeProfile:
    return CELL_MODE_PROFILES[mode]

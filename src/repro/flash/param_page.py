"""ONFI parameter page serialization.

Every ONFI package carries a parameter page describing its geometry and
capabilities, fetched with READ PARAMETER PAGE (0xEC).  The layout here
follows the ONFI 5.1 field offsets for the subset of fields this
reproduction consumes, including the trailing CRC-16 integrity check
(polynomial 0x8005, initial value 0x4F4E, as the standard specifies).
"""

from __future__ import annotations

import numpy as np

from repro.onfi.geometry import Geometry

PARAMETER_PAGE_SIZE = 256
_CRC_POLY = 0x8005
_CRC_INIT = 0x4F4E


def crc16_onfi(data: bytes | np.ndarray) -> int:
    """ONFI parameter-page CRC-16 (MSB-first, poly 0x8005, init 0x4F4E)."""
    crc = _CRC_INIT
    for byte in bytes(data):
        crc ^= byte << 8
        for _ in range(8):
            if crc & 0x8000:
                crc = (crc << 1) ^ _CRC_POLY
            else:
                crc <<= 1
            crc &= 0xFFFF
    return crc


def build_parameter_page(
    manufacturer: str,
    model: str,
    geometry: Geometry,
    luns_per_package: int,
    timing_mode_mask: int = 0x3F,
) -> np.ndarray:
    """Serialize a 256-byte parameter page."""
    page = np.zeros(PARAMETER_PAGE_SIZE, dtype=np.uint8)
    page[0:4] = [ord(c) for c in "ONFI"]
    # Features/opt-commands words (bytes 4..9) left permissive.
    page[4] = 0xFF
    page[6] = 0xFF

    def put_str(offset: int, length: int, text: str) -> None:
        encoded = text.encode("ascii")[:length].ljust(length, b" ")
        page[offset:offset + length] = list(encoded)

    put_str(32, 12, manufacturer)
    put_str(44, 20, model)

    def put_u32(offset: int, value: int) -> None:
        page[offset:offset + 4] = [(value >> (8 * i)) & 0xFF for i in range(4)]

    def put_u16(offset: int, value: int) -> None:
        page[offset:offset + 2] = [value & 0xFF, (value >> 8) & 0xFF]

    put_u32(80, geometry.page_size)            # data bytes per page
    put_u16(84, geometry.spare_size)           # spare bytes per page
    put_u32(92, geometry.pages_per_block)      # pages per block
    put_u32(96, geometry.blocks_per_lun)       # blocks per LUN
    page[100] = luns_per_package               # LUNs per package
    page[101] = (geometry.row_cycles << 4) | geometry.col_cycles
    page[110] = geometry.planes
    put_u16(129, timing_mode_mask)             # supported timing modes

    crc = crc16_onfi(page[:254])
    page[254] = crc & 0xFF
    page[255] = (crc >> 8) & 0xFF
    return page


def parse_parameter_page(page: np.ndarray) -> dict:
    """Decode the fields written by :func:`build_parameter_page`.

    Raises ``ValueError`` on a bad signature or CRC mismatch, which is
    how the boot sequence detects an unreliable SDR link.
    """
    page = np.asarray(page, dtype=np.uint8)
    if len(page) < PARAMETER_PAGE_SIZE:
        raise ValueError("parameter page truncated")
    if bytes(page[0:4]) != b"ONFI":
        raise ValueError("bad parameter-page signature")
    stored_crc = int(page[254]) | (int(page[255]) << 8)
    if crc16_onfi(page[:254]) != stored_crc:
        raise ValueError("parameter-page CRC mismatch")

    def get_u32(offset: int) -> int:
        return sum(int(page[offset + i]) << (8 * i) for i in range(4))

    def get_u16(offset: int) -> int:
        return int(page[offset]) | (int(page[offset + 1]) << 8)

    return {
        "manufacturer": bytes(page[32:44]).decode("ascii").rstrip(),
        "model": bytes(page[44:64]).decode("ascii").rstrip(),
        "page_size": get_u32(80),
        "spare_size": get_u16(84),
        "pages_per_block": get_u32(92),
        "blocks_per_lun": get_u32(96),
        "luns_per_package": int(page[100]),
        "row_cycles": int(page[101]) >> 4,
        "col_cycles": int(page[101]) & 0x0F,
        "planes": int(page[110]),
        "timing_mode_mask": get_u16(129),
    }

"""Spare-area (OOB) metadata records for power-loss protection.

Every page the FTL programs carries a small out-of-band record in the
block's spare area: the logical page it holds, a monotonically
increasing write sequence number, and a commit marker byte that is the
*last* thing the die latches.  A page torn by a power cut mid-tPROG
never presents a valid record — the commit marker, the magic, or the
checksum fails — which is exactly how the SPOR mount path tells a
committed page from a torn one without any out-of-band oracle.

Record kinds:

=========   ==========================================================
``host``    a host data page; ``lpn``/``seq`` identify the version
``gc``      a GC relocation; carries the *original* write ``seq`` (the
            copy is the same logical version, so replay by highest seq
            can never prefer a stale relocation over a newer write)
``ckpt``    one chunk of an FTL checkpoint (``chunk``/``chunks``)
``journal`` one incremental-journal page
=========   ==========================================================

The wire format is 24 bytes (fits any spare area the vendors model):

    [0]      magic (0xB5)
    [1]      kind
    [2:6]    lpn            (LE u32; 0xFFFFFFFF when not applicable)
    [6:14]   seq            (LE u64)
    [14:18]  payload_len    (LE u32; meta pages: valid bytes in page)
    [18:20]  chunk          (LE u16; checkpoint chunk index)
    [20:22]  chunks         (LE u16; checkpoint chunk count)
    [22]     commit marker  (0xC3)
    [23]     checksum       (sum of bytes [0:23] mod 256)
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

OOB_MAGIC = 0xB5
OOB_COMMIT = 0xC3
OOB_RECORD_BYTES = 24
_NO_LPN = 0xFFFFFFFF

KIND_HOST = 1
KIND_GC = 2
KIND_CKPT = 3
KIND_JOURNAL = 4

_KIND_NAMES = {
    KIND_HOST: "host",
    KIND_GC: "gc",
    KIND_CKPT: "ckpt",
    KIND_JOURNAL: "journal",
}


@dataclass(frozen=True)
class OobRecord:
    """One decoded spare-area record."""

    kind: int
    lpn: int = _NO_LPN
    seq: int = 0
    payload_len: int = 0
    chunk: int = 0
    chunks: int = 0

    @property
    def kind_name(self) -> str:
        return _KIND_NAMES.get(self.kind, f"kind{self.kind}")

    @property
    def is_data(self) -> bool:
        return self.kind in (KIND_HOST, KIND_GC)

    @property
    def is_meta(self) -> bool:
        return self.kind in (KIND_CKPT, KIND_JOURNAL)


def encode_oob(record: OobRecord, spare_size: int) -> np.ndarray:
    """Serialize a record into ``spare_size`` bytes (0xFF padded)."""
    if spare_size < OOB_RECORD_BYTES:
        raise ValueError(
            f"spare area of {spare_size}B cannot hold a {OOB_RECORD_BYTES}B "
            "OOB record"
        )
    if record.kind not in _KIND_NAMES:
        raise ValueError(f"unknown OOB kind {record.kind}")
    raw = bytearray(OOB_RECORD_BYTES)
    raw[0] = OOB_MAGIC
    raw[1] = record.kind
    raw[2:6] = int(record.lpn).to_bytes(4, "little")
    raw[6:14] = int(record.seq).to_bytes(8, "little")
    raw[14:18] = int(record.payload_len).to_bytes(4, "little")
    raw[18:20] = int(record.chunk).to_bytes(2, "little")
    raw[20:22] = int(record.chunks).to_bytes(2, "little")
    raw[22] = OOB_COMMIT
    raw[23] = sum(raw[:23]) % 256
    out = np.full(spare_size, 0xFF, dtype=np.uint8)
    out[:OOB_RECORD_BYTES] = np.frombuffer(bytes(raw), dtype=np.uint8)
    return out


def decode_oob(data) -> "OobRecord | None":
    """Decode a spare-area buffer; ``None`` when invalid or torn.

    A page interrupted mid-program never carries the commit marker and
    checksum consistently, so decode failure *is* the torn-page signal.
    """
    if data is None:
        return None
    raw = bytes(np.asarray(data, dtype=np.uint8)[:OOB_RECORD_BYTES].tobytes())
    if len(raw) < OOB_RECORD_BYTES:
        return None
    if raw[0] != OOB_MAGIC or raw[22] != OOB_COMMIT:
        return None
    if raw[23] != sum(raw[:23]) % 256:
        return None
    kind = raw[1]
    if kind not in _KIND_NAMES:
        return None
    return OobRecord(
        kind=kind,
        lpn=int.from_bytes(raw[2:6], "little"),
        seq=int.from_bytes(raw[6:14], "little"),
        payload_len=int.from_bytes(raw[14:18], "little"),
        chunk=int.from_bytes(raw[18:20], "little"),
        chunks=int.from_bytes(raw[20:22], "little"),
    )

"""Vendor profiles for the three Table I packages.

The paper evaluates Hynix, Toshiba, and Micron SO-DIMMs.  Table I pins
the page read times (100/78/53 µs), page size (16384 B), and transfer
times; the per-channel wiring (8/8/2 LUNs) comes from Section VI.
Program/erase times and the remaining knobs follow typical 3D-TLC
datasheet values — the experiments only exercise READs, so those only
need to be plausible.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from functools import lru_cache
from typing import Callable, Optional

import numpy as np

from repro.flash.cell import CellMode
from repro.flash.param_page import build_parameter_page
from repro.onfi.geometry import Geometry
from repro.sim.kernel import NS_PER_US


@dataclass(frozen=True)
class VendorTiming:
    """Category-3 (array-side) times for one part, in nanoseconds."""

    t_read_ns: int                 # tR: array -> page register
    t_prog_ns: int                 # tPROG
    t_bers_ns: int                 # tBERS
    t_dbsy_ns: int = 500           # inter-plane queue busy
    t_param_read_ns: int = 25_000  # parameter-page fetch
    t_reset_ns: int = 5_000        # idle RESET
    t_resume_ns: int = 5_000       # suspend->resume penalty
    t_feat_ns: int = 1_000         # SET/GET FEATURES busy
    t_poll_min_ns: int = 200       # minimum legal READ STATUS poll period
    jitter: float = 0.08           # bounded uniform tR/tPROG variation


@dataclass(frozen=True)
class VendorProfile:
    """Everything the simulator needs to stand in for one package type."""

    name: str
    manufacturer: str
    timing: VendorTiming
    geometry: Geometry = field(default_factory=Geometry)
    native_cell_mode: CellMode = CellMode.TLC
    endurance_cycles: int = 3000
    luns_per_channel: int = 8
    luns_per_package: int = 1
    supports_pslc: bool = True
    supports_suspend: bool = True
    supports_cache: bool = True
    factory_bad_rate: float = 0.0  # fraction of blocks shipped defective
    interfaces: tuple[str, ...] = ("SDR-mode0", "NV-DDR2-100", "NV-DDR2-200")
    jedec_id: int = 0x00
    # Per-vendor operation programs: (op_name, program_builder) pairs.
    # The op-IR registry consults these before its built-in table, so a
    # package quirk is a profile change, not an edit to the op library
    # (the paper's new-package bring-up story).  A tuple of pairs — not
    # a dict — keeps the profile hashable for the lru_cache below.
    op_overrides: tuple[tuple[str, Callable], ...] = ()
    # Per-vendor interface-timing tightening: (TimingSet field, ns)
    # pairs applied on top of the ONFI mode values by ``timing_set``.
    # Vendors may demand *more* margin than the mode minimum (a slow
    # tWHR on a budget die); they can never relax below the mode.
    timing_overrides: tuple[tuple[str, int], ...] = ()

    def timing_set(self, mode_name: str):
        """The ONFI mode's :class:`TimingSet`, tightened per vendor."""
        from repro.onfi.timing import timing_for_mode

        timing = timing_for_mode(mode_name)
        for name, value in self.timing_overrides:
            if value > getattr(timing, name):
                timing = replace(timing, **{name: value})
        return timing

    def with_op_override(self, name: str, builder: Callable) -> "VendorProfile":
        """A copy of this profile with ``name`` resolved to ``builder``."""
        kept = tuple(pair for pair in self.op_overrides if pair[0] != name)
        return replace(self, op_overrides=kept + ((name, builder),))

    def op_override(self, name: str) -> Optional[Callable]:
        """The overriding program builder for ``name``, if any."""
        for key, builder in self.op_overrides:
            if key == name:
                return builder
        return None

    def id_bytes(self, area: int = 0x00) -> tuple[int, ...]:
        """READ ID response (address 0x00: JEDEC; 0x20: ONFI signature)."""
        if area == 0x20:
            return (0x4F, 0x4E, 0x46, 0x49, 0x00)  # "ONFI"
        density_code = (self.geometry.capacity_bytes >> 33) & 0xFF
        return (self.jedec_id, density_code, self.geometry.planes, self.luns_per_package, 0x00)

    def parameter_page(self) -> np.ndarray:
        return _parameter_page_cached(self)


@lru_cache(maxsize=None)
def _parameter_page_cached(profile: VendorProfile) -> np.ndarray:
    return build_parameter_page(
        manufacturer=profile.manufacturer,
        model=profile.name,
        geometry=profile.geometry,
        luns_per_package=profile.luns_per_package,
    )


# --- the three Table I parts -------------------------------------------

HYNIX_V7 = VendorProfile(
    name="H25B1T8",
    manufacturer="SK HYNIX",
    timing=VendorTiming(
        t_read_ns=100 * NS_PER_US,
        t_prog_ns=700 * NS_PER_US,
        t_bers_ns=3_500 * NS_PER_US,
    ),
    luns_per_channel=8,
    jedec_id=0xAD,
)

TOSHIBA_BICS5 = VendorProfile(
    name="TH58LJT2",
    manufacturer="TOSHIBA",
    timing=VendorTiming(
        t_read_ns=78 * NS_PER_US,
        t_prog_ns=620 * NS_PER_US,
        t_bers_ns=3_000 * NS_PER_US,
    ),
    luns_per_channel=8,
    jedec_id=0x98,
)

MICRON_B47R = VendorProfile(
    name="MT29F2T08",
    manufacturer="MICRON",
    timing=VendorTiming(
        t_read_ns=53 * NS_PER_US,
        t_prog_ns=560 * NS_PER_US,
        t_bers_ns=2_800 * NS_PER_US,
    ),
    luns_per_channel=2,
    jedec_id=0x2C,
)

VENDOR_PROFILES: dict[str, VendorProfile] = {
    "hynix": HYNIX_V7,
    "toshiba": TOSHIBA_BICS5,
    "micron": MICRON_B47R,
}


def profile_by_name(name: str) -> VendorProfile:
    try:
        return VENDOR_PROFILES[name.lower()]
    except KeyError:
        raise KeyError(
            f"unknown vendor {name!r}; known: {sorted(VENDOR_PROFILES)}"
        ) from None

"""Flash package: one or more LUNs behind a chip-enable pin.

The channel's chip-enable bitmap selects packages; within a package the
LUN-select bits of the row address pick the die.  The paper's channels
gather 2–16 LUNs; our channel model wires ``luns_per_channel`` LUN
positions and this class groups them the way the SO-DIMM does.
"""

from __future__ import annotations

from repro.flash.lun import Lun
from repro.flash.vendors import VendorProfile
from repro.sim import Simulator


class Package:
    """A physical package containing ``luns_per_package`` LUNs."""

    def __init__(
        self,
        sim: Simulator,
        profile: VendorProfile,
        first_position: int = 0,
        seed: int = 0,
        track_data: bool = True,
    ):
        self.sim = sim
        self.profile = profile
        self.first_position = first_position
        self.luns = [
            Lun(
                sim,
                profile,
                position=first_position + i,
                seed=seed + i,
                track_data=track_data,
            )
            for i in range(profile.luns_per_package)
        ]

    @property
    def positions(self) -> range:
        return range(self.first_position, self.first_position + len(self.luns))

    def lun_at(self, position: int) -> Lun:
        index = position - self.first_position
        if not 0 <= index < len(self.luns):
            raise IndexError(f"position {position} not in {self.positions}")
        return self.luns[index]

    @property
    def any_busy(self) -> bool:
        """Shared R/B# pin view: low if any die in the package is busy."""
        return any(lun.is_busy for lun in self.luns)

    def describe(self) -> str:
        return (
            f"Package[{self.profile.manufacturer} {self.profile.name}] "
            f"positions {list(self.positions)}"
        )


def build_channel_population(
    sim: Simulator,
    profile: VendorProfile,
    lun_count: int,
    seed: int = 0,
    track_data: bool = True,
) -> list[Lun]:
    """Instantiate ``lun_count`` LUN positions for one channel."""
    if lun_count <= 0:
        raise ValueError("lun_count must be positive")
    luns: list[Lun] = []
    position = 0
    while len(luns) < lun_count:
        package = Package(
            sim, profile, first_position=position, seed=seed + position,
            track_data=track_data,
        )
        for lun in package.luns:
            if len(luns) < lun_count:
                luns.append(lun)
        position += profile.luns_per_package
    return luns

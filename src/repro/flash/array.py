"""Flash array storage: blocks, pages, wear state, and page I/O.

The array is the persistent core of a LUN.  Pages are stored lazily
(only programmed pages allocate memory), wear is tracked per block, and
every page load runs through the error model so the ECC / read-retry
machinery upstream sees realistic corruption.

For throughput experiments where payload content is irrelevant, the
array can run with ``track_data=False``: reads then return a
deterministic synthetic pattern without per-page allocation, making
long Fig. 10/12 sweeps cheap while exercising the identical timing
paths.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.flash.cell import CellMode, profile_for
from repro.flash.errors import ErrorModel
from repro.onfi.geometry import Geometry, PhysicalAddress

ERASED_BYTE = 0xFF


class ProgramEraseError(RuntimeError):
    """Raised on illegal array usage (reprogram without erase, etc.)."""


@dataclass
class Block:
    """Erase-block state."""

    index: int
    erase_count: int = 0
    cell_mode: CellMode = CellMode.TLC
    optimal_retry_level: int = 0
    pages: dict[int, np.ndarray] = field(default_factory=dict)
    programmed: set[int] = field(default_factory=set)
    programmed_at_ns: dict[int, int] = field(default_factory=dict)
    worn_out: bool = False
    # Power-loss media state: spare-area records committed with each
    # page, pages caught mid-tPROG by a power cut (indeterminate cell
    # charge), and the interrupted-erase flag (cells read erased but
    # are unreliable until the erase is re-run).
    oob: dict[int, np.ndarray] = field(default_factory=dict)
    torn: set[int] = field(default_factory=set)
    erase_interrupted: bool = False

    def is_programmed(self, page: int) -> bool:
        return page in self.programmed


class FlashArray:
    """All blocks of one LUN plus the wear/error bookkeeping."""

    def __init__(
        self,
        geometry: Geometry,
        native_mode: CellMode = CellMode.TLC,
        error_model: Optional[ErrorModel] = None,
        endurance_cycles: int = 3000,
        track_data: bool = True,
        seed: int = 0,
        factory_bad_rate: float = 0.0,
    ):
        geometry.validate()
        if not 0.0 <= factory_bad_rate < 1.0:
            raise ValueError("factory_bad_rate must be in [0, 1)")
        self.geometry = geometry
        self.native_mode = native_mode
        self.error_model = error_model or ErrorModel(seed=seed)
        self.endurance_cycles = endurance_cycles
        self.track_data = track_data
        self._blocks: dict[int, Block] = {}
        self._pattern_cache: Optional[np.ndarray] = None
        # Factory bad blocks: shipped-defective erase blocks that the
        # manufacturer marks in the spare area.  Deterministic per seed.
        bad_count = int(geometry.blocks_per_lun * factory_bad_rate)
        if bad_count:
            rng = np.random.default_rng(seed ^ 0xBAD)
            chosen = rng.choice(geometry.blocks_per_lun, size=bad_count,
                                replace=False)
            self.factory_bad_blocks = {int(b) for b in chosen}
        else:
            self.factory_bad_blocks = set()
        self.reads = 0
        self.programs = 0
        self.erases = 0
        # Spare-area records staged by the FTL for the next program of
        # (block, page); attached atomically when the program commits.
        self._staged_oob: dict[tuple[int, int], np.ndarray] = {}
        # Power-cut freeze: once set, no array mutation whose *logical
        # end time* is at or past this nanosecond commits.  Operations
        # already in flight (begun before the cut) leave torn pages or
        # interrupted erases instead — identical under both fidelity
        # tiers, because the decision depends only on logical times.
        self.power_fail_ns: Optional[int] = None
        self.seed = seed

    # -- block access -----------------------------------------------------

    def block(self, index: int) -> Block:
        if not 0 <= index < self.geometry.blocks_per_lun:
            raise ProgramEraseError(f"block {index} out of range")
        existing = self._blocks.get(index)
        if existing is None:
            existing = Block(
                index=index,
                cell_mode=self.native_mode,
                optimal_retry_level=self.error_model.sample_optimal_retry_level(),
                worn_out=index in self.factory_bad_blocks,
            )
            self._blocks[index] = existing
        return existing

    def is_bad(self, index: int) -> bool:
        """Factory-marked or grown-bad (worn out) block."""
        return self.block(index).worn_out

    # -- operations ------------------------------------------------------

    def erase(
        self,
        block_index: int,
        cell_mode: Optional[CellMode] = None,
        now_ns: int = 0,
        begun_ns: Optional[int] = None,
    ) -> bool:
        """Erase a block, optionally re-dedicating it to ``cell_mode``.

        Returns True on success, False when the block is worn out (the
        LUN reports this as a status FAIL).  ``now_ns`` is the logical
        completion time and ``begun_ns`` the tBERS start: when a power
        cut intervenes, an erase begun before the cut leaves the block
        in the interrupted-erase state instead of completing.
        """
        block = self.block(block_index)
        if block.worn_out:
            return False
        freeze = self.power_fail_ns
        if freeze is not None and now_ns >= freeze:
            if begun_ns is not None and begun_ns < freeze:
                self.interrupt_erase(block_index)
            return True  # nothing past the cut is observable anyway
        block.pages.clear()
        block.programmed.clear()
        block.programmed_at_ns.clear()
        block.oob.clear()
        block.torn.clear()
        block.erase_interrupted = False
        self._staged_oob = {
            key: value for key, value in self._staged_oob.items()
            if key[0] != block_index
        }
        block.erase_count += 1
        if cell_mode is not None:
            block.cell_mode = cell_mode
        budget = self.endurance_cycles * profile_for(block.cell_mode).endurance_scale
        if block.erase_count >= budget:
            block.worn_out = True
        self.erases += 1
        return True

    def program(
        self,
        addr: PhysicalAddress,
        data: np.ndarray,
        now_ns: int = 0,
        cell_mode: Optional[CellMode] = None,
        begun_ns: Optional[int] = None,
    ) -> bool:
        """Program one full page.  NAND forbids in-place rewrites.

        ``begun_ns`` is the tPROG start time; a program caught by a
        power cut (committed at ``now_ns`` past the cut, begun before
        it) tears the page instead of committing it.
        """
        block = self.block(addr.block)
        if block.is_programmed(addr.page):
            raise ProgramEraseError(
                f"page {addr.describe()} already programmed (erase first)"
            )
        staged = self._staged_oob.pop((addr.block, addr.page), None)
        if block.worn_out:
            return False
        freeze = self.power_fail_ns
        if freeze is not None and now_ns >= freeze:
            if begun_ns is not None and begun_ns < freeze:
                self._tear(block, addr.page)
            return True  # the "success" is never observed: power is gone
        if cell_mode is not None:
            block.cell_mode = cell_mode
        full = self.geometry.full_page_size
        if self.track_data:
            page = np.full(full, ERASED_BYTE, dtype=np.uint8)
            n = min(len(data), full)
            page[:n] = np.asarray(data[:n], dtype=np.uint8)
            block.pages[addr.page] = page
        block.programmed.add(addr.page)
        block.programmed_at_ns[addr.page] = now_ns
        if staged is not None:
            block.oob[addr.page] = staged
        self.programs += 1
        return True

    # -- power-loss media state --------------------------------------------

    def stage_oob(self, block: int, page: int, spare: np.ndarray) -> None:
        """Stage the spare-area record for the next program of a page.

        The FTL stages this before issuing the program op; the array
        attaches it when (and only when) the program actually commits,
        so a torn or failed program never presents a valid record.
        """
        self._staged_oob[(block, page)] = np.asarray(spare, dtype=np.uint8)

    def read_oob(self, block: int, page: int) -> Optional[np.ndarray]:
        """The committed spare-area bytes of a page (None if absent).

        A torn page returns deterministic garbage that never decodes as
        a valid :class:`~repro.flash.oob.OobRecord`.
        """
        info = self.block(block)
        if page in info.torn:
            return self._torn_bytes(block, page, 64)
        return info.oob.get(page)

    def mark_torn(self, addr: PhysicalAddress) -> None:
        """Tear a page: a program was in flight when power died.

        The cells hold indeterminate charge — modeled as deterministic
        garbage content and an undecodable spare area.  The page counts
        as programmed (it is not erased, so it cannot be reprogrammed
        without an erase).
        """
        block = self.block(addr.block)
        if addr.page in block.programmed and addr.page not in block.torn:
            return  # already committed before the cut; nothing to tear
        self._tear(block, addr.page)

    def _tear(self, block: Block, page: int) -> None:
        block.programmed.add(page)
        block.torn.add(page)
        block.programmed_at_ns.setdefault(page, self.power_fail_ns or 0)
        block.oob.pop(page, None)
        if self.track_data:
            block.pages[page] = self._torn_bytes(
                block.index, page, self.geometry.full_page_size
            )

    def interrupt_erase(self, block_index: int) -> None:
        """Power died mid-tBERS: cells read erased but are unreliable.

        The erase count is *not* bumped (the cycle never completed);
        the SPOR mount re-erases such blocks before reuse.
        """
        block = self.block(block_index)
        block.pages.clear()
        block.programmed.clear()
        block.programmed_at_ns.clear()
        block.oob.clear()
        block.torn.clear()
        block.erase_interrupted = True

    def _torn_bytes(self, block: int, page: int, nbytes: int) -> np.ndarray:
        """Deterministic per-page garbage for torn cells."""
        rng = np.random.default_rng(
            (self.seed & 0xFFFF) ^ (block << 20) ^ (page << 4) ^ 0x70_51
        )
        return rng.integers(0, 256, size=nbytes, dtype=np.uint8)

    def set_power_fail(self, at_ns: Optional[int]) -> None:
        self.power_fail_ns = at_ns

    def media_image(self) -> dict:
        """Deep-copy the persistent media state (for crash/remount)."""
        blocks = {}
        for index, block in self._blocks.items():
            blocks[index] = {
                "erase_count": block.erase_count,
                "cell_mode": block.cell_mode,
                "optimal_retry_level": block.optimal_retry_level,
                "pages": {p: v.copy() for p, v in block.pages.items()},
                "programmed": set(block.programmed),
                "programmed_at_ns": dict(block.programmed_at_ns),
                "worn_out": block.worn_out,
                "oob": {p: v.copy() for p, v in block.oob.items()},
                "torn": set(block.torn),
                "erase_interrupted": block.erase_interrupted,
            }
        return {"blocks": blocks}

    def restore_media(self, image: dict) -> None:
        """Load a :meth:`media_image` into this (freshly built) array."""
        self._blocks.clear()
        self._staged_oob.clear()
        self.power_fail_ns = None
        for index, state in image["blocks"].items():
            block = Block(
                index=index,
                erase_count=state["erase_count"],
                cell_mode=state["cell_mode"],
                optimal_retry_level=state["optimal_retry_level"],
                pages={p: v.copy() for p, v in state["pages"].items()},
                programmed=set(state["programmed"]),
                programmed_at_ns=dict(state["programmed_at_ns"]),
                worn_out=state["worn_out"],
                oob={p: v.copy() for p, v in state["oob"].items()},
                torn=set(state["torn"]),
                erase_interrupted=state["erase_interrupted"],
            )
            self._blocks[index] = block

    def load_page(
        self,
        addr: PhysicalAddress,
        now_ns: int = 0,
        read_retry_level: int = 0,
        cell_mode_override: Optional[CellMode] = None,
    ) -> np.ndarray:
        """Read a raw page with injected bit errors.

        ``read_retry_level`` is the controller-selected voltage step;
        error injection is minimized when it matches the block's
        sampled optimum.
        """
        block = self.block(addr.block)
        mode = cell_mode_override or block.cell_mode
        self.reads += 1
        if not block.is_programmed(addr.page):
            return self._erased_page()
        retention_ns = max(now_ns - block.programmed_at_ns.get(addr.page, 0), 0)
        rate = self.error_model.rber(
            mode=mode,
            pe_cycles=block.erase_count,
            retention_hours=retention_ns / 3.6e12,
            read_offset_distance=read_retry_level - block.optimal_retry_level,
        )
        data = self._page_bytes(block, addr.page).copy()
        self.error_model.inject(data, rate)
        return data

    def pristine_page(self, addr: PhysicalAddress) -> np.ndarray:
        """Oracle accessor: the stored bytes without error injection.

        The behavioural ECC engine (see :mod:`repro.ecc.bch`) compares
        received data against this to count true bit errors — the
        simulation stand-in for algebraic decoding.
        """
        block = self.block(addr.block)
        if not block.is_programmed(addr.page):
            return self._erased_page()
        return self._page_bytes(block, addr.page).copy()

    # -- capacity & wear reporting -----------------------------------------

    def usable_pages(self, block_index: int) -> int:
        """Pages usable in the block's current cell mode (pSLC shrinks)."""
        block = self.block(block_index)
        scale = profile_for(block.cell_mode).capacity_scale
        return max(int(self.geometry.pages_per_block * scale), 1)

    def wear_summary(self) -> dict[str, float]:
        counts = [b.erase_count for b in self._blocks.values()] or [0]
        return {
            "touched_blocks": float(len(self._blocks)),
            "max_erase": float(max(counts)),
            "mean_erase": float(sum(counts)) / len(counts),
        }

    # -- internals ---------------------------------------------------------

    def _page_bytes(self, block: Block, page: int) -> np.ndarray:
        if self.track_data:
            return block.pages[page]
        return self._pattern()

    def _erased_page(self) -> np.ndarray:
        return np.full(self.geometry.full_page_size, ERASED_BYTE, dtype=np.uint8)

    def _pattern(self) -> np.ndarray:
        if self._pattern_cache is None:
            size = self.geometry.full_page_size
            self._pattern_cache = (np.arange(size) % 251).astype(np.uint8)
        return self._pattern_cache

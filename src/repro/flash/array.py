"""Flash array storage: blocks, pages, wear state, and page I/O.

The array is the persistent core of a LUN.  Pages are stored lazily
(only programmed pages allocate memory), wear is tracked per block, and
every page load runs through the error model so the ECC / read-retry
machinery upstream sees realistic corruption.

For throughput experiments where payload content is irrelevant, the
array can run with ``track_data=False``: reads then return a
deterministic synthetic pattern without per-page allocation, making
long Fig. 10/12 sweeps cheap while exercising the identical timing
paths.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.flash.cell import CellMode, profile_for
from repro.flash.errors import ErrorModel
from repro.onfi.geometry import Geometry, PhysicalAddress

ERASED_BYTE = 0xFF


class ProgramEraseError(RuntimeError):
    """Raised on illegal array usage (reprogram without erase, etc.)."""


@dataclass
class Block:
    """Erase-block state."""

    index: int
    erase_count: int = 0
    cell_mode: CellMode = CellMode.TLC
    optimal_retry_level: int = 0
    pages: dict[int, np.ndarray] = field(default_factory=dict)
    programmed: set[int] = field(default_factory=set)
    programmed_at_ns: dict[int, int] = field(default_factory=dict)
    worn_out: bool = False

    def is_programmed(self, page: int) -> bool:
        return page in self.programmed


class FlashArray:
    """All blocks of one LUN plus the wear/error bookkeeping."""

    def __init__(
        self,
        geometry: Geometry,
        native_mode: CellMode = CellMode.TLC,
        error_model: Optional[ErrorModel] = None,
        endurance_cycles: int = 3000,
        track_data: bool = True,
        seed: int = 0,
        factory_bad_rate: float = 0.0,
    ):
        geometry.validate()
        if not 0.0 <= factory_bad_rate < 1.0:
            raise ValueError("factory_bad_rate must be in [0, 1)")
        self.geometry = geometry
        self.native_mode = native_mode
        self.error_model = error_model or ErrorModel(seed=seed)
        self.endurance_cycles = endurance_cycles
        self.track_data = track_data
        self._blocks: dict[int, Block] = {}
        self._pattern_cache: Optional[np.ndarray] = None
        # Factory bad blocks: shipped-defective erase blocks that the
        # manufacturer marks in the spare area.  Deterministic per seed.
        bad_count = int(geometry.blocks_per_lun * factory_bad_rate)
        if bad_count:
            rng = np.random.default_rng(seed ^ 0xBAD)
            chosen = rng.choice(geometry.blocks_per_lun, size=bad_count,
                                replace=False)
            self.factory_bad_blocks = {int(b) for b in chosen}
        else:
            self.factory_bad_blocks = set()
        self.reads = 0
        self.programs = 0
        self.erases = 0

    # -- block access -----------------------------------------------------

    def block(self, index: int) -> Block:
        if not 0 <= index < self.geometry.blocks_per_lun:
            raise ProgramEraseError(f"block {index} out of range")
        existing = self._blocks.get(index)
        if existing is None:
            existing = Block(
                index=index,
                cell_mode=self.native_mode,
                optimal_retry_level=self.error_model.sample_optimal_retry_level(),
                worn_out=index in self.factory_bad_blocks,
            )
            self._blocks[index] = existing
        return existing

    def is_bad(self, index: int) -> bool:
        """Factory-marked or grown-bad (worn out) block."""
        return self.block(index).worn_out

    # -- operations ------------------------------------------------------

    def erase(self, block_index: int, cell_mode: Optional[CellMode] = None) -> bool:
        """Erase a block, optionally re-dedicating it to ``cell_mode``.

        Returns True on success, False when the block is worn out (the
        LUN reports this as a status FAIL).
        """
        block = self.block(block_index)
        if block.worn_out:
            return False
        block.pages.clear()
        block.programmed.clear()
        block.programmed_at_ns.clear()
        block.erase_count += 1
        if cell_mode is not None:
            block.cell_mode = cell_mode
        budget = self.endurance_cycles * profile_for(block.cell_mode).endurance_scale
        if block.erase_count >= budget:
            block.worn_out = True
        self.erases += 1
        return True

    def program(
        self,
        addr: PhysicalAddress,
        data: np.ndarray,
        now_ns: int = 0,
        cell_mode: Optional[CellMode] = None,
    ) -> bool:
        """Program one full page.  NAND forbids in-place rewrites."""
        block = self.block(addr.block)
        if block.is_programmed(addr.page):
            raise ProgramEraseError(
                f"page {addr.describe()} already programmed (erase first)"
            )
        if block.worn_out:
            return False
        if cell_mode is not None:
            block.cell_mode = cell_mode
        full = self.geometry.full_page_size
        if self.track_data:
            page = np.full(full, ERASED_BYTE, dtype=np.uint8)
            n = min(len(data), full)
            page[:n] = np.asarray(data[:n], dtype=np.uint8)
            block.pages[addr.page] = page
        block.programmed.add(addr.page)
        block.programmed_at_ns[addr.page] = now_ns
        self.programs += 1
        return True

    def load_page(
        self,
        addr: PhysicalAddress,
        now_ns: int = 0,
        read_retry_level: int = 0,
        cell_mode_override: Optional[CellMode] = None,
    ) -> np.ndarray:
        """Read a raw page with injected bit errors.

        ``read_retry_level`` is the controller-selected voltage step;
        error injection is minimized when it matches the block's
        sampled optimum.
        """
        block = self.block(addr.block)
        mode = cell_mode_override or block.cell_mode
        self.reads += 1
        if not block.is_programmed(addr.page):
            return self._erased_page()
        retention_ns = max(now_ns - block.programmed_at_ns.get(addr.page, 0), 0)
        rate = self.error_model.rber(
            mode=mode,
            pe_cycles=block.erase_count,
            retention_hours=retention_ns / 3.6e12,
            read_offset_distance=read_retry_level - block.optimal_retry_level,
        )
        data = self._page_bytes(block, addr.page).copy()
        self.error_model.inject(data, rate)
        return data

    def pristine_page(self, addr: PhysicalAddress) -> np.ndarray:
        """Oracle accessor: the stored bytes without error injection.

        The behavioural ECC engine (see :mod:`repro.ecc.bch`) compares
        received data against this to count true bit errors — the
        simulation stand-in for algebraic decoding.
        """
        block = self.block(addr.block)
        if not block.is_programmed(addr.page):
            return self._erased_page()
        return self._page_bytes(block, addr.page).copy()

    # -- capacity & wear reporting -----------------------------------------

    def usable_pages(self, block_index: int) -> int:
        """Pages usable in the block's current cell mode (pSLC shrinks)."""
        block = self.block(block_index)
        scale = profile_for(block.cell_mode).capacity_scale
        return max(int(self.geometry.pages_per_block * scale), 1)

    def wear_summary(self) -> dict[str, float]:
        counts = [b.erase_count for b in self._blocks.values()] or [0]
        return {
            "touched_blocks": float(len(self._blocks)),
            "max_erase": float(max(counts)),
            "mean_erase": float(sum(counts)) / len(counts),
        }

    # -- internals ---------------------------------------------------------

    def _page_bytes(self, block: Block, page: int) -> np.ndarray:
        if self.track_data:
            return block.pages[page]
        return self._pattern()

    def _erased_page(self) -> np.ndarray:
        return np.full(self.geometry.full_page_size, ERASED_BYTE, dtype=np.uint8)

    def _pattern(self) -> np.ndarray:
        if self._pattern_cache is None:
            size = self.geometry.full_page_size
            self._pattern_cache = (np.arange(size) % 251).astype(np.uint8)
        return self._pattern_cache

"""Raw bit-error-rate model and bit-flip injection.

The model composes four multiplicative factors on a base RBER:

* **wear** — grows with the block's program/erase cycle count;
* **retention** — grows with time since the page was programmed;
* **cell mode** — pSLC blocks are far more reliable (cf. Fig. 8);
* **read offset** — the read-retry mechanism (SET FEATURES on the
  vendor retry register) shifts the read voltage; the error rate is
  minimized at a page-dependent optimal level and grows quadratically
  with the distance from it, which is the behaviour that makes a
  READ RETRY sweep (Park et al. [48]) converge.

Injection uses a seeded ``numpy`` generator so traces are reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.flash.cell import CellMode, profile_for


@dataclass(frozen=True)
class ErrorModelConfig:
    """Tunable constants of the RBER model."""

    base_rber: float = 2e-5
    wear_rber_per_kcycle: float = 4e-5
    retention_rber_per_hour: float = 1e-6
    retry_penalty_per_step: float = 6e-5
    max_retry_distance: int = 8

    def validate(self) -> None:
        if (self.base_rber < 0 or self.wear_rber_per_kcycle < 0
                or self.retention_rber_per_hour < 0
                or self.retry_penalty_per_step < 0):
            raise ValueError("error-rate constants must be non-negative")

    @classmethod
    def noiseless(cls) -> "ErrorModelConfig":
        """A zero-error configuration for exact data-path tests."""
        return cls(
            base_rber=0.0,
            wear_rber_per_kcycle=0.0,
            retention_rber_per_hour=0.0,
            retry_penalty_per_step=0.0,
        )


class ErrorModel:
    """Stateful error injector for one LUN."""

    def __init__(self, config: ErrorModelConfig | None = None, seed: int = 0):
        self.config = config or ErrorModelConfig()
        self.config.validate()
        self._rng = np.random.default_rng(seed)
        self.injected_bits_total = 0

    def rber(
        self,
        mode: CellMode,
        pe_cycles: int,
        retention_hours: float = 0.0,
        read_offset_distance: int = 0,
    ) -> float:
        """Effective raw bit error rate for a page read."""
        cfg = self.config
        distance = min(abs(read_offset_distance), cfg.max_retry_distance)
        rate = (
            cfg.base_rber
            + cfg.wear_rber_per_kcycle * (pe_cycles / 1000.0)
            + cfg.retention_rber_per_hour * max(retention_hours, 0.0)
            + cfg.retry_penalty_per_step * distance**2
        )
        return rate * profile_for(mode).rber_scale

    def expected_bit_errors(self, nbytes: int, rate: float) -> float:
        return nbytes * 8 * rate

    def inject(self, data: np.ndarray, rate: float) -> int:
        """Flip bits in-place at the given rate; returns the flip count."""
        nbits = data.size * 8
        if nbits == 0 or rate <= 0.0:
            return 0
        flips = int(self._rng.poisson(nbits * rate))
        if flips == 0:
            return 0
        flips = min(flips, nbits)
        positions = self._rng.integers(0, nbits, size=flips)
        byte_idx = positions >> 3
        bit_idx = (positions & 7).astype(np.uint8)
        # XOR per position; duplicate positions toggle twice (harmless,
        # physically a re-flip) and are rare at realistic rates.
        np.bitwise_xor.at(data, byte_idx, np.left_shift(np.uint8(1), bit_idx))
        self.injected_bits_total += flips
        return flips

    def sample_optimal_retry_level(self, span: int = 5) -> int:
        """Draw a page's optimal read-retry level (0 = factory default)."""
        return int(self._rng.integers(0, max(span, 1)))

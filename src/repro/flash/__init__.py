"""Behavioural NAND flash device models.

This subpackage replaces the commercial Flash packages of the paper's
testbed: LUN state machines that decode the waveform segments emitted by
a controller, move data between arrays and page registers on Table I
timings, expose ONFI status/features, and inject bit errors according
to a wear/retention/read-offset model.
"""

from repro.flash.cell import CellMode, CELL_MODE_PROFILES
from repro.flash.errors import ErrorModel, ErrorModelConfig
from repro.flash.array import Block, FlashArray
from repro.flash.lun import Lun, LunProtocolError, LunState
from repro.flash.package import Package
from repro.flash.param_page import build_parameter_page, parse_parameter_page
from repro.flash.vendors import (
    HYNIX_V7,
    MICRON_B47R,
    TOSHIBA_BICS5,
    VENDOR_PROFILES,
    VendorProfile,
    profile_by_name,
)

__all__ = [
    "CellMode",
    "CELL_MODE_PROFILES",
    "ErrorModel",
    "ErrorModelConfig",
    "Block",
    "FlashArray",
    "Lun",
    "LunProtocolError",
    "LunState",
    "Package",
    "build_parameter_page",
    "parse_parameter_page",
    "HYNIX_V7",
    "MICRON_B47R",
    "TOSHIBA_BICS5",
    "VENDOR_PROFILES",
    "VendorProfile",
    "profile_by_name",
]

"""One factory from spec to running stack.

:func:`build_experiment` is the single construction path behind every
CLI subcommand, benchmark, chaos campaign, and crash fuzzer: spec in,
``(sim, controllers, ftl, engine)`` out.  The construction order —
controllers, then the sharded FTL, then prefill, then the queue-depth
engine — is exactly the order the legacy per-subcommand wiring used,
so a spec-built stack is byte-identical to a keyword-built one (pinned
by ``tests/test_config_build.py``).

``legacy_kwargs_to_spec`` is the deprecation adapter: it maps the old
``build_scale_stack(**kwargs)`` surface onto a :class:`StackSpec`, so
the old entry point keeps working for one release while warning.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Optional

from repro.config.specs import (
    ExperimentSpec,
    FtlSpec,
    GeometrySpec,
    SpecError,
    StackSpec,
    WorkloadSpec,
)


def stack_profile(stack: StackSpec):
    """The :class:`~repro.flash.vendors.VendorProfile` a stack resolves
    to: the named vendor with the spec's data-only overrides applied."""
    from repro.flash.vendors import profile_by_name

    profile = profile_by_name(stack.vendor)
    overrides = {
        name: value
        for name, value in stack.geometry.to_dict().items()
        if value is not None
    }
    if overrides:
        profile = dataclasses.replace(
            profile, geometry=dataclasses.replace(profile.geometry, **overrides)
        )
    if stack.factory_bad_rate is not None:
        profile = dataclasses.replace(
            profile, factory_bad_rate=stack.factory_bad_rate)
    if stack.timing_overrides:
        merged = dict(profile.timing_overrides)
        merged.update(stack.timing_overrides)
        profile = dataclasses.replace(
            profile, timing_overrides=tuple(sorted(merged.items())))
    return profile


def _interface(stack: StackSpec):
    from repro.onfi.datamodes import NVDDR2_100, NVDDR2_200

    return NVDDR2_200 if stack.interface_mt == 200 else NVDDR2_100


def build_controllers(sim, stack: StackSpec, profile=None,
                      diagnostics=None) -> list:
    """One :class:`BabolController` per channel, per the spec.

    ``profile`` overrides the resolved vendor profile — the escape
    hatch the ``build_scale_stack`` compatibility shim uses for
    unregistered ad-hoc profiles.
    """
    from repro.core.controller import BabolController, ControllerConfig
    from repro.flash.errors import ErrorModelConfig

    stack.validate()
    if profile is None:
        profile = stack_profile(stack)
    watchdog = None
    if stack.watchdog:
        from repro.core.recovery import Watchdog

        watchdog = Watchdog.for_vendor(profile)
    controllers = []
    for channel in range(stack.channels):
        config = ControllerConfig(
            vendor=profile,
            lun_count=stack.luns_per_channel,
            interface=_interface(stack),
            runtime=stack.runtime,
            cpu_freq_hz=stack.cpu_freq_hz,
            dram_size=stack.dram_size,
            track_data=stack.track_data,
            seed=stack.seed if stack.seed is not None else channel,
            fidelity=stack.fidelity,
            sanitizers=stack.sanitizers,
            watchdog=watchdog,
        )
        controller = BabolController(sim, config, diagnostics=diagnostics)
        if stack.noiseless:
            for lun in controller.luns:
                lun.array.error_model.config = ErrorModelConfig.noiseless()
        controllers.append(controller)
    return controllers


def build_stack(sim, stack: StackSpec, profile=None):
    """Controllers plus (when the spec asks for one) a sharded FTL.

    Returns ``(controllers, ftl)``; ``ftl`` is ``None`` when
    ``stack.ftl`` is, a :class:`~repro.ftl.ftl.ShardedFtl` otherwise —
    prefilled per the spec (default: the historical
    ``min(logical_pages, 64 * channels * luns)``).
    """
    controllers = build_controllers(sim, stack, profile=profile)
    if stack.ftl is None:
        return controllers, None
    from repro.ftl.ftl import ShardedFtl

    ftl = ShardedFtl(sim, controllers, stack.ftl.to_ftl_config())
    prefill = stack.ftl.prefill_pages
    if prefill is None:
        prefill = min(ftl.logical_pages,
                      64 * stack.channels * stack.luns_per_channel)
    if prefill:
        ftl.prefill(prefill)
    return controllers, ftl


@dataclass
class BuiltExperiment:
    """A stood-up experiment: the spec plus everything it built."""

    spec: ExperimentSpec
    sim: object
    controllers: list
    ftl: object = None
    engine: object = None

    @property
    def controller(self):
        """The single controller of a 1-channel stack."""
        if len(self.controllers) != 1:
            raise SpecError(
                f"experiment has {len(self.controllers)} channels; "
                f"use .controllers"
            )
        return self.controllers[0]

    def spec_hash(self) -> str:
        return self.spec.spec_hash()

    def scale_job(self, **overrides):
        """The :class:`~repro.host.engine.ScaleJob` this spec's
        workload describes (single-opcode mixes only)."""
        from repro.host.engine import ScaleJob

        workload = self.spec.workload
        kwargs = dict(
            pattern=workload.pattern,
            opcode=workload.opcode(),
            io_count=workload.io_count,
            seed=workload.seed,
            working_set_pages=workload.working_set_pages,
            dram_stride=workload.dram_stride,
            dram_base=workload.dram_base,
        )
        kwargs.update(overrides)
        return ScaleJob(**kwargs)

    def run_workload(self, job=None):
        """Drive the spec's workload through the engine; returns the
        :class:`~repro.host.engine.ScaleRunResult`."""
        from repro.host.engine import run_scale_workload

        if self.engine is None:
            raise SpecError(
                "experiment has no queue-depth engine (stack.ftl is null)"
            )
        return run_scale_workload(self.sim, self.engine,
                                  job or self.scale_job())


def build_experiment(spec: ExperimentSpec, sim=None,
                     record_acks: bool = False,
                     auto_dram: bool = False) -> BuiltExperiment:
    """Stand up the whole experiment one spec describes.

    A fresh :class:`~repro.sim.Simulator` is created unless ``sim`` is
    passed.  When the stack has an FTL, a
    :class:`~repro.host.engine.ScaleEngine` is built over it with the
    workload's queue depth and doorbell batch.
    """
    spec.validate()
    if sim is None:
        from repro.sim import Simulator

        sim = Simulator()
    controllers, ftl = build_stack(sim, spec.stack)
    engine = None
    if ftl is not None:
        from repro.host.engine import ScaleEngine

        workload = spec.workload
        engine = ScaleEngine(
            sim, ftl,
            queue_depth=workload.queue_depth,
            doorbell_batch=workload.doorbell_batch,
            record_acks=record_acks or workload.mix == "crashfuzz",
            auto_dram=auto_dram or workload.mix == "crashfuzz",
            dram_base=workload.dram_base,
            dram_stride=workload.dram_stride,
        )
    return BuiltExperiment(spec=spec, sim=sim, controllers=controllers,
                           ftl=ftl, engine=engine)


# ----------------------------------------------------------------------
# The deprecation adapter (old keyword surface -> spec)
# ----------------------------------------------------------------------

def _vendor_name(vendor) -> str:
    """Registry name for a vendor argument (name, profile, or None)."""
    from repro.flash.vendors import VENDOR_PROFILES

    if vendor is None:
        return "hynix"
    if isinstance(vendor, str):
        if vendor not in VENDOR_PROFILES:
            raise SpecError(
                f"vendor {vendor!r} unknown; known: {sorted(VENDOR_PROFILES)}"
            )
        return vendor
    for name, profile in VENDOR_PROFILES.items():
        if profile is vendor or profile == vendor:
            return name
    raise SpecError(
        f"vendor profile {getattr(vendor, 'name', vendor)!r} is not "
        f"registered; pass a registry name or register the profile"
    )


def legacy_kwargs_to_spec(
    channels: int = 4,
    luns_per_channel: int = 4,
    vendor=None,
    runtime: str = "coroutine",
    ftl_config=None,
    prefill_pages: Optional[int] = None,
    track_data: bool = False,
    fidelity: str = "waveform",
) -> StackSpec:
    """Map the historical ``build_scale_stack`` keywords to a spec.

    Raises :class:`SpecError` when the kwargs name something a data
    spec cannot (an unregistered ad-hoc vendor profile) — the shim
    handles that case with the ``profile`` escape hatch.
    """
    ftl_kwargs = {}
    if ftl_config is not None:
        ftl_kwargs = {
            "blocks_per_lun": ftl_config.blocks_per_lun,
            "overprovision_blocks": ftl_config.overprovision_blocks,
            "gc_free_threshold": ftl_config.gc_free_threshold,
            "gc_staging_base": ftl_config.gc_staging_base,
            "checkpoint_interval": ftl_config.checkpoint_interval,
            "journal_flush_records": ftl_config.journal_flush_records,
            "meta_blocks": ftl_config.meta_blocks,
        }
    spec = StackSpec(
        vendor=_vendor_name(vendor),
        channels=channels,
        luns_per_channel=luns_per_channel,
        runtime=runtime,
        track_data=track_data,
        fidelity=fidelity,
        ftl=FtlSpec(prefill_pages=prefill_pages, **ftl_kwargs),
        geometry=GeometrySpec(),
    )
    spec.validate()
    return spec


def workload_from_job(job, queue_depth: int = 32,
                      doorbell_batch: int = 4) -> WorkloadSpec:
    """A :class:`WorkloadSpec` mirroring a legacy ``ScaleJob``."""
    from repro.host.hic import HostOpcode

    mix = "read" if job.opcode is HostOpcode.READ else "write"
    return WorkloadSpec(
        mix=mix,
        pattern=job.pattern,
        io_count=job.io_count,
        queue_depth=queue_depth,
        doorbell_batch=doorbell_batch,
        seed=job.seed,
        working_set_pages=job.working_set_pages,
        dram_base=job.dram_base,
        dram_stride=job.dram_stride,
    )

"""Declarative experiment specs: the whole stack as data.

BABOL's claim is that the controller is *software-defined*; this
package makes the experiments software-defined too.  A
:class:`~repro.config.specs.StackSpec` describes a controller array
(vendor, geometry/timing overrides, fidelity tier, channels x LUNs,
DRAM, FTL sizing), a :class:`~repro.config.specs.WorkloadSpec`
describes what to push through it (mix, queue depth, doorbell
batching, op count, seed), a :class:`~repro.config.specs.CampaignSpec`
references a fault plan, and an
:class:`~repro.config.specs.ExperimentSpec` bundles all three under a
name.  Specs are frozen, validated at parse time, round-trip through
JSON and TOML, and carry a canonical content hash
(:meth:`~repro.config.specs.ExperimentSpec.spec_hash`) that every
emitted artifact embeds — so any result file names the exact
experiment that produced it.

:func:`~repro.config.build.build_experiment` is the single factory
every CLI subcommand, benchmark, chaos campaign, and fuzzer builds
stacks through.
"""

from repro.config.build import (
    BuiltExperiment,
    build_controllers,
    build_experiment,
    build_stack,
    legacy_kwargs_to_spec,
    stack_profile,
)
from repro.config.io import dump_spec, load_spec, load_spec_dict, to_toml
from repro.config.overrides import OverrideError, apply_overrides, parse_override
from repro.config.specs import (
    SPEC_SCHEMA,
    CampaignSpec,
    ExperimentSpec,
    FtlSpec,
    GeometrySpec,
    SpecError,
    StackSpec,
    WorkloadSpec,
    canonical_json,
)

__all__ = [
    "SPEC_SCHEMA",
    "BuiltExperiment",
    "CampaignSpec",
    "ExperimentSpec",
    "FtlSpec",
    "GeometrySpec",
    "OverrideError",
    "SpecError",
    "StackSpec",
    "WorkloadSpec",
    "apply_overrides",
    "build_controllers",
    "build_experiment",
    "build_stack",
    "canonical_json",
    "dump_spec",
    "legacy_kwargs_to_spec",
    "load_spec",
    "load_spec_dict",
    "parse_override",
    "stack_profile",
    "to_toml",
]

"""Typed, frozen, validated experiment specs.

One :class:`ExperimentSpec` is the complete description of a run:

* :class:`StackSpec` — the machine: vendor profile plus data-only
  geometry/timing overrides, channels x LUNs topology, runtime,
  interface speed, fidelity tier, DRAM size, sanitizers, watchdog,
  error model, and FTL sizing (:class:`FtlSpec`);
* :class:`WorkloadSpec` — what to push through it: mix, access
  pattern, op count, queue depth, doorbell batching, seed;
* :class:`CampaignSpec` — the fault plan to arm underneath it, by
  built-in name, file reference, or inline fault list, plus the
  crash-point fuzz knobs.

Specs are **frozen** (hashable, safely shareable), **validated at
parse time** (malformed documents never reach a simulator — e.g. the
TLM tier combined with a waveform-only sanitizer raises
:class:`~repro.core.backend.FidelityError` from ``from_dict``, not
from deep inside a run), **defaulted** (a sparse document means "the
stock experiment"), and **schema versioned** (documents carry
``schema``; readers reject documents newer than they understand).

Two canonical forms:

* ``to_dict(resolved=False)`` — sparse: only non-default fields, the
  form you check into ``examples/specs/``;
* ``to_dict(resolved=True)`` — every field materialized, the form
  embedded in artifacts and hashed.

:meth:`ExperimentSpec.spec_hash` is a content hash over the canonical
JSON of the *resolved* dict: two documents that resolve to the same
experiment hash identically whatever their key order or how many
defaults they spell out.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field, fields
from typing import Any, Optional

#: Serialization schema for spec documents.  Bump when a field changes
#: meaning; additive optional fields do not need a bump.
SPEC_SCHEMA = 1

_MIB = 1024 * 1024

VALID_RUNTIMES = ("coroutine", "rtos")
VALID_PATTERNS = ("sequential", "random")
VALID_INTERFACES = (100, 200)
#: Workload mixes.  "read"/"write" are single-opcode streams through
#: the queue-depth engine; "crashfuzz" is the fuzzer's seeded
#: ~65/25/5/5 write/read/trim/flush stream (see repro.analysis.crashfuzz).
VALID_MIXES = ("read", "write", "crashfuzz")
#: Sanitizers that sample per-segment bus traffic and therefore only
#: exist at waveform fidelity (mirrors Sanitizer.requires_waveform).
WAVEFORM_ONLY_SANITIZERS = frozenset({"bus", "flash"})


class SpecError(ValueError):
    """A malformed experiment spec (unknown field, bad value, bad combo)."""


def canonical_json(obj: Any) -> str:
    """Deterministic JSON: sorted keys, tight separators."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def _fidelities() -> tuple[str, ...]:
    from repro.core.backend import FIDELITIES

    return tuple(FIDELITIES)


# ----------------------------------------------------------------------
# dict <-> dataclass machinery
# ----------------------------------------------------------------------

def _check_keys(cls, data: dict, where: str) -> None:
    if not isinstance(data, dict):
        raise SpecError(f"{where} must be an object, got {type(data).__name__}")
    known = {f.name for f in fields(cls)}
    unknown = sorted(set(data) - known)
    if unknown:
        raise SpecError(
            f"unknown {where} field(s): {', '.join(unknown)} "
            f"(known: {', '.join(sorted(known))})"
        )


def _coerce_scalar(name: str, value, kind, where: str):
    """Type-check one scalar field; bool is not an int here."""
    if kind is int:
        if isinstance(value, bool) or not isinstance(value, int):
            raise SpecError(f"{where}.{name} must be an integer, got {value!r}")
    elif kind is float:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise SpecError(f"{where}.{name} must be a number, got {value!r}")
        value = float(value)
    elif kind is bool:
        if not isinstance(value, bool):
            raise SpecError(f"{where}.{name} must be a boolean, got {value!r}")
    elif kind is str:
        if not isinstance(value, str):
            raise SpecError(f"{where}.{name} must be a string, got {value!r}")
    return value


@dataclass(frozen=True)
class GeometrySpec:
    """Data-only overrides of the vendor's NAND geometry.

    ``None`` keeps the vendor profile's value.  This is how the chaos
    and crashfuzz harnesses' "full code paths, tiny state" shrunken
    arrays become spec files instead of ``dataclasses.replace`` calls.
    """

    page_size: Optional[int] = None
    spare_size: Optional[int] = None
    pages_per_block: Optional[int] = None
    blocks_per_plane: Optional[int] = None
    planes: Optional[int] = None

    def validate(self) -> None:
        for f in fields(self):
            value = getattr(self, f.name)
            if value is None:
                continue
            if isinstance(value, bool) or not isinstance(value, int) or value <= 0:
                raise SpecError(
                    f"stack.geometry.{f.name} must be a positive integer, "
                    f"got {value!r}"
                )

    @property
    def is_default(self) -> bool:
        return all(getattr(self, f.name) is None for f in fields(self))

    def to_dict(self, resolved: bool = False) -> dict:
        data = {}
        for f in fields(self):
            value = getattr(self, f.name)
            if resolved or value is not None:
                data[f.name] = value
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "GeometrySpec":
        _check_keys(cls, data, "stack.geometry")
        spec = cls(**data)
        spec.validate()
        return spec


@dataclass(frozen=True)
class FtlSpec:
    """FTL sizing, as data.  Defaults mirror the scale stack's
    historical ``build_scale_stack`` wiring (8 blocks/LUN, 2
    overprovisioned), not the larger ``FtlConfig`` class defaults."""

    blocks_per_lun: int = 8
    overprovision_blocks: int = 2
    gc_free_threshold: int = 2
    gc_staging_base: int = 48 * _MIB
    # Power-loss protection (0 = off, the volatile FTL).
    checkpoint_interval: int = 0
    journal_flush_records: int = 32
    meta_blocks: int = 2
    # None = the historical default: min(logical_pages, 64 * channels * luns).
    prefill_pages: Optional[int] = None

    def validate(self) -> None:
        from repro.ftl.ftl import FtlConfig

        if self.prefill_pages is not None and self.prefill_pages < 0:
            raise SpecError("stack.ftl.prefill_pages must be >= 0 or null")
        try:
            self.to_ftl_config().validate()
        except ValueError as exc:
            raise SpecError(f"stack.ftl: {exc}") from None
        del FtlConfig

    def to_ftl_config(self):
        from repro.ftl.ftl import FtlConfig

        return FtlConfig(
            blocks_per_lun=self.blocks_per_lun,
            gc_free_threshold=self.gc_free_threshold,
            overprovision_blocks=self.overprovision_blocks,
            gc_staging_base=self.gc_staging_base,
            checkpoint_interval=self.checkpoint_interval,
            journal_flush_records=self.journal_flush_records,
            meta_blocks=self.meta_blocks,
        )

    def to_dict(self, resolved: bool = False) -> dict:
        data = {}
        for f in fields(self):
            value = getattr(self, f.name)
            if resolved or value != f.default:
                data[f.name] = value
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "FtlSpec":
        _check_keys(cls, data, "stack.ftl")
        kwargs = {}
        for f in fields(cls):
            if f.name not in data:
                continue
            value = data[f.name]
            if f.name == "prefill_pages":
                if value is not None:
                    value = _coerce_scalar(f.name, value, int, "stack.ftl")
            else:
                value = _coerce_scalar(f.name, value, int, "stack.ftl")
            kwargs[f.name] = value
        spec = cls(**kwargs)
        spec.validate()
        return spec


@dataclass(frozen=True)
class StackSpec:
    """The machine: everything needed to stand up the controller array."""

    vendor: str = "hynix"
    channels: int = 1
    luns_per_channel: int = 4
    runtime: str = "coroutine"
    interface_mt: int = 200
    cpu_freq_hz: int = 1_000_000_000
    fidelity: str = "waveform"
    track_data: bool = False
    dram_size: int = 64 * _MIB
    # None = seed each channel controller with its channel index (the
    # scale stack's convention); an int seeds every controller alike.
    seed: Optional[int] = None
    # Zero the RBER error model so content checks see stored bytes.
    noiseless: bool = False
    # None = the vendor profile's factory_bad_rate.
    factory_bad_rate: Optional[float] = None
    # Runtime sanitizers attached at build ("bus", "flash", "memory",
    # "liveness", or "all"); empty = zero-overhead detached hooks.
    sanitizers: tuple = ()
    # Attach a per-vendor Watchdog bounding every busy-wait.
    watchdog: bool = False
    # Per-vendor interface-timing tightening: {TimingSet field: ns},
    # stored sorted so equal specs hash equally.
    timing_overrides: tuple = ()
    geometry: GeometrySpec = field(default_factory=GeometrySpec)
    # None = raw controllers, no FTL (demo/figure/trace workloads).
    ftl: Optional[FtlSpec] = None

    def validate(self) -> None:
        from repro.flash.vendors import VENDOR_PROFILES

        if self.vendor not in VENDOR_PROFILES:
            raise SpecError(
                f"stack.vendor {self.vendor!r} unknown; "
                f"known: {sorted(VENDOR_PROFILES)}"
            )
        if self.channels < 1:
            raise SpecError("stack.channels must be >= 1")
        if self.luns_per_channel < 1:
            raise SpecError("stack.luns_per_channel must be >= 1")
        if self.runtime not in VALID_RUNTIMES:
            raise SpecError(
                f"stack.runtime must be one of {VALID_RUNTIMES}, "
                f"got {self.runtime!r}"
            )
        if self.interface_mt not in VALID_INTERFACES:
            raise SpecError(
                f"stack.interface_mt must be one of {VALID_INTERFACES}, "
                f"got {self.interface_mt!r}"
            )
        if self.fidelity not in _fidelities():
            raise SpecError(
                f"stack.fidelity must be one of {_fidelities()}, "
                f"got {self.fidelity!r}"
            )
        if self.cpu_freq_hz <= 0:
            raise SpecError("stack.cpu_freq_hz must be positive")
        if self.dram_size <= 0:
            raise SpecError("stack.dram_size must be positive")
        if self.factory_bad_rate is not None and not (
                0.0 <= self.factory_bad_rate < 1.0):
            raise SpecError("stack.factory_bad_rate must be in [0, 1)")
        from repro.sanitize.base import resolve_names

        try:
            resolved = resolve_names(self.sanitizers or None)
        except ValueError as exc:
            raise SpecError(f"stack.sanitizers: {exc}") from None
        # The cross-tier contract, enforced at *parse* time: a spec
        # that would only explode once a channel is built is a spec
        # the validator failed.
        waveform_only = sorted(set(resolved) & WAVEFORM_ONLY_SANITIZERS)
        if waveform_only and self.fidelity != "waveform":
            from repro.core.backend import FidelityError

            raise FidelityError(
                f"sanitizer(s) {', '.join(waveform_only)} sample "
                f"per-segment bus traffic, which the "
                f"{self.fidelity!r} tier does not simulate — set "
                f"stack.fidelity to 'waveform' or select only "
                f"transaction-safe sanitizers (memory, liveness)"
            )
        for pair in self.timing_overrides:
            if (len(pair) != 2 or not isinstance(pair[0], str)
                    or isinstance(pair[1], bool)
                    or not isinstance(pair[1], int) or pair[1] < 0):
                raise SpecError(
                    f"stack.timing_overrides entries must map a TimingSet "
                    f"field name to a non-negative ns value, got {pair!r}"
                )
        self.geometry.validate()
        if self.ftl is not None:
            self.ftl.validate()

    def to_dict(self, resolved: bool = False) -> dict:
        data: dict = {}
        simple = ("vendor", "channels", "luns_per_channel", "runtime",
                  "interface_mt", "cpu_freq_hz", "fidelity", "track_data",
                  "dram_size", "seed", "noiseless", "factory_bad_rate",
                  "watchdog")
        defaults = {f.name: f.default for f in fields(self)}
        for name in simple:
            value = getattr(self, name)
            if resolved or value != defaults[name]:
                data[name] = value
        if resolved or self.sanitizers:
            data["sanitizers"] = list(self.sanitizers)
        if resolved or self.timing_overrides:
            data["timing_overrides"] = {
                name: ns for name, ns in self.timing_overrides
            }
        geometry = self.geometry.to_dict(resolved)
        if resolved or geometry:
            data["geometry"] = geometry
        if self.ftl is not None:
            data["ftl"] = self.ftl.to_dict(resolved)
        elif resolved:
            data["ftl"] = None
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "StackSpec":
        _check_keys(cls, data, "stack")
        kwargs: dict = {}
        scalars = {"vendor": str, "channels": int, "luns_per_channel": int,
                   "runtime": str, "interface_mt": int, "cpu_freq_hz": int,
                   "fidelity": str, "track_data": bool, "dram_size": int,
                   "noiseless": bool, "watchdog": bool}
        for name, kind in scalars.items():
            if name in data:
                kwargs[name] = _coerce_scalar(name, data[name], kind, "stack")
        if data.get("seed") is not None:
            kwargs["seed"] = _coerce_scalar("seed", data["seed"], int, "stack")
        if data.get("factory_bad_rate") is not None:
            kwargs["factory_bad_rate"] = _coerce_scalar(
                "factory_bad_rate", data["factory_bad_rate"], float, "stack")
        if "sanitizers" in data:
            names = data["sanitizers"]
            if isinstance(names, str):
                names = [part.strip() for part in names.split(",")
                         if part.strip()]
            if not isinstance(names, (list, tuple)) or not all(
                    isinstance(n, str) for n in names):
                raise SpecError(
                    "stack.sanitizers must be a list of names or a "
                    "comma-separated string"
                )
            kwargs["sanitizers"] = tuple(names)
        if "timing_overrides" in data:
            overrides = data["timing_overrides"]
            if not isinstance(overrides, dict):
                raise SpecError(
                    "stack.timing_overrides must be an object of "
                    "{field: ns}"
                )
            kwargs["timing_overrides"] = tuple(sorted(overrides.items()))
        if data.get("geometry"):
            kwargs["geometry"] = GeometrySpec.from_dict(data["geometry"])
        if data.get("ftl") is not None:
            kwargs["ftl"] = FtlSpec.from_dict(data["ftl"])
        spec = cls(**kwargs)
        spec.validate()
        return spec


@dataclass(frozen=True)
class WorkloadSpec:
    """What to push through the stack."""

    mix: str = "read"
    pattern: str = "sequential"
    io_count: int = 192
    queue_depth: int = 32
    doorbell_batch: int = 4
    seed: int = 42
    working_set_pages: int = 0    # 0 = the whole mapped range
    dram_base: int = 0
    dram_stride: int = 32 * 1024

    def validate(self) -> None:
        if self.mix not in VALID_MIXES:
            raise SpecError(
                f"workload.mix must be one of {VALID_MIXES}, got {self.mix!r}"
            )
        if self.pattern not in VALID_PATTERNS:
            raise SpecError(
                f"workload.pattern must be one of {VALID_PATTERNS}, "
                f"got {self.pattern!r}"
            )
        if self.io_count < 1:
            raise SpecError("workload.io_count must be >= 1")
        if self.queue_depth < 1:
            raise SpecError("workload.queue_depth must be >= 1")
        if self.doorbell_batch < 1:
            raise SpecError("workload.doorbell_batch must be >= 1")
        if self.doorbell_batch > self.queue_depth:
            raise SpecError(
                f"workload.doorbell_batch ({self.doorbell_batch}) cannot "
                f"exceed workload.queue_depth ({self.queue_depth}) — a "
                f"batch that never fills never rings"
            )
        if self.working_set_pages < 0:
            raise SpecError("workload.working_set_pages must be >= 0")
        if self.dram_base < 0 or self.dram_stride <= 0:
            raise SpecError(
                "workload.dram_base must be >= 0 and dram_stride positive"
            )

    def opcode(self):
        """The HostOpcode for single-opcode mixes."""
        from repro.host.hic import HostOpcode

        if self.mix == "read":
            return HostOpcode.READ
        if self.mix == "write":
            return HostOpcode.WRITE
        raise SpecError(
            f"workload.mix {self.mix!r} is not a single-opcode stream"
        )

    def to_dict(self, resolved: bool = False) -> dict:
        data = {}
        for f in fields(self):
            value = getattr(self, f.name)
            if resolved or value != f.default:
                data[f.name] = value
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "WorkloadSpec":
        _check_keys(cls, data, "workload")
        kinds = {"mix": str, "pattern": str, "io_count": int,
                 "queue_depth": int, "doorbell_batch": int, "seed": int,
                 "working_set_pages": int, "dram_base": int,
                 "dram_stride": int}
        kwargs = {
            name: _coerce_scalar(name, data[name], kinds[name], "workload")
            for name in data
        }
        spec = cls(**kwargs)
        spec.validate()
        return spec


@dataclass(frozen=True)
class CampaignSpec:
    """A fault plan reference plus the crash-fuzz sweep knobs.

    The plan itself comes from one of three places, checked in order:
    inline ``faults`` (a list of FaultSpec objects), a ``plan`` file
    path (ends in ``.json``), or a built-in plan name (currently
    ``chaos-default``).
    """

    plan: str = "chaos-default"
    seed: int = 4
    faults: tuple = ()            # inline FaultSpec dicts
    baselines: bool = True        # run hw baselines alongside BABOL
    # Crash-consistency fuzz knobs (repro crashfuzz).
    crash_seeds: int = 3
    crash_points: int = 50
    base_seed: int = 7

    def validate(self) -> None:
        if self.crash_seeds < 1 or self.crash_points < 1:
            raise SpecError(
                "campaign.crash_seeds and campaign.crash_points must be >= 1"
            )
        if not self.plan:
            raise SpecError("campaign.plan cannot be empty")
        if self.faults:
            from repro.faults.plan import FaultPlanError, FaultSpec

            for entry in self.faults:
                try:
                    FaultSpec.from_dict(dict(entry))
                except FaultPlanError as exc:
                    raise SpecError(f"campaign.faults: {exc}") from None

    def resolve_campaign(self):
        """The :class:`~repro.faults.plan.FaultCampaign` this references."""
        from repro.faults.plan import FaultCampaign, FaultSpec

        if self.faults:
            return FaultCampaign(
                name=self.plan, seed=self.seed,
                faults=[FaultSpec.from_dict(dict(entry))
                        for entry in self.faults],
            )
        if self.plan.endswith(".json"):
            # A plan file's own seed wins (matching the legacy
            # ``--campaign file.json`` semantics); campaign.seed applies
            # to the built-in plan and inline faults.
            return FaultCampaign.load(self.plan)
        if self.plan == "chaos-default":
            from repro.faults.chaos import default_campaign

            return default_campaign(self.seed)
        raise SpecError(
            f"campaign.plan {self.plan!r} is neither a built-in plan "
            f"name ('chaos-default'), a .json path, nor inline faults"
        )

    def to_dict(self, resolved: bool = False) -> dict:
        data: dict = {}
        for name in ("plan", "seed", "baselines", "crash_seeds",
                     "crash_points", "base_seed"):
            value = getattr(self, name)
            default = next(f.default for f in fields(self) if f.name == name)
            if resolved or value != default:
                data[name] = value
        if resolved or self.faults:
            data["faults"] = [dict(entry) for entry in self.faults]
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "CampaignSpec":
        _check_keys(cls, data, "campaign")
        kwargs: dict = {}
        kinds = {"plan": str, "seed": int, "baselines": bool,
                 "crash_seeds": int, "crash_points": int, "base_seed": int}
        for name, kind in kinds.items():
            if name in data:
                kwargs[name] = _coerce_scalar(name, data[name], kind,
                                              "campaign")
        if "faults" in data:
            entries = data["faults"]
            if not isinstance(entries, (list, tuple)):
                raise SpecError("campaign.faults must be a list of objects")
            kwargs["faults"] = tuple(
                tuple(sorted(entry.items())) if isinstance(entry, dict)
                else entry
                for entry in entries
            )
        spec = cls(**kwargs)
        spec.validate()
        return spec


@dataclass(frozen=True)
class ExperimentSpec:
    """The top-level document: a named (stack, workload, campaign)."""

    name: str = "experiment"
    description: str = ""
    stack: StackSpec = field(default_factory=StackSpec)
    workload: WorkloadSpec = field(default_factory=WorkloadSpec)
    campaign: Optional[CampaignSpec] = None

    def validate(self) -> None:
        if not self.name:
            raise SpecError("experiment name cannot be empty")
        self.stack.validate()
        self.workload.validate()
        if self.campaign is not None:
            self.campaign.validate()
        # Cross-section rule: a persistent-media workload mix needs a
        # persistence-enabled FTL — the fuzzer's verifier is meaningless
        # against a volatile stack.
        if self.workload.mix == "crashfuzz":
            if self.stack.ftl is None or \
                    self.stack.ftl.checkpoint_interval <= 0:
                raise SpecError(
                    "workload.mix 'crashfuzz' requires stack.ftl with "
                    "checkpoint_interval > 0 (crash consistency is only "
                    "checkable against persistent media)"
                )

    def to_dict(self, resolved: bool = False) -> dict:
        data: dict = {"schema": SPEC_SCHEMA, "name": self.name}
        if resolved or self.description:
            data["description"] = self.description
        data["stack"] = self.stack.to_dict(resolved)
        data["workload"] = self.workload.to_dict(resolved)
        if self.campaign is not None:
            data["campaign"] = self.campaign.to_dict(resolved)
        elif resolved:
            data["campaign"] = None
        return data

    def resolved(self) -> dict:
        """The fully-materialized document embedded in artifacts."""
        return self.to_dict(resolved=True)

    def spec_hash(self) -> str:
        """Canonical content hash (16 hex chars) of the resolved spec.

        Stable across key order, sparse-vs-explicit defaults, and
        JSON-vs-TOML source: only what the experiment *is* matters.
        """
        digest = hashlib.sha256(
            canonical_json(self.resolved()).encode("utf-8"))
        return digest.hexdigest()[:16]

    def replace(self, **kwargs) -> "ExperimentSpec":
        """``dataclasses.replace`` that re-validates."""
        spec = dataclasses.replace(self, **kwargs)
        spec.validate()
        return spec

    @classmethod
    def from_dict(cls, data: dict) -> "ExperimentSpec":
        if not isinstance(data, dict):
            raise SpecError(
                f"spec document must be an object, got {type(data).__name__}"
            )
        known = {"schema", "name", "description", "stack", "workload",
                 "campaign"}
        unknown = sorted(set(data) - known)
        if unknown:
            raise SpecError(
                f"unknown spec field(s): {', '.join(unknown)} "
                f"(known: {', '.join(sorted(known))})"
            )
        schema = data.get("schema", SPEC_SCHEMA)
        if not isinstance(schema, int) or isinstance(schema, bool):
            raise SpecError(f"schema must be an integer, got {schema!r}")
        if schema < 1 or schema > SPEC_SCHEMA:
            raise SpecError(
                f"spec schema {schema} unsupported (this build reads "
                f"1..{SPEC_SCHEMA})"
            )
        kwargs: dict = {}
        if "name" in data:
            kwargs["name"] = _coerce_scalar("name", data["name"], str, "spec")
        if "description" in data:
            kwargs["description"] = _coerce_scalar(
                "description", data["description"], str, "spec")
        if "stack" in data:
            kwargs["stack"] = StackSpec.from_dict(data["stack"])
        if "workload" in data:
            kwargs["workload"] = WorkloadSpec.from_dict(data["workload"])
        if data.get("campaign") is not None:
            kwargs["campaign"] = CampaignSpec.from_dict(data["campaign"])
        spec = cls(**kwargs)
        spec.validate()
        return spec

    def to_json(self, resolved: bool = False) -> str:
        return json.dumps(self.to_dict(resolved), indent=2, sort_keys=True)

"""Spec documents on disk: JSON and TOML, one loader.

JSON is the canonical interchange format (it is what artifacts embed).
TOML is accepted for hand-written specs — ``tomllib`` ships with
Python 3.11+; on 3.10 loading a ``.toml`` spec raises a clear
:class:`~repro.config.specs.SpecError` instead of an ImportError.

The writer side (:func:`to_toml`) is a minimal emitter covering the
spec document shape — nested tables, arrays of tables, and scalar
values.  ``None`` values are omitted (TOML has no null); the reader's
defaulting restores them, so a JSON → TOML → JSON round trip resolves
to the identical spec and therefore the identical ``spec_hash``.
"""

from __future__ import annotations

import json
from typing import Union

from repro.config.specs import ExperimentSpec, SpecError


def load_spec_dict(path: str) -> dict:
    """Read a raw spec document (sparse dict) from ``path``."""
    if path.endswith(".toml"):
        try:
            import tomllib
        except ImportError:  # Python 3.10
            raise SpecError(
                f"{path}: TOML specs need Python 3.11+ (tomllib); "
                f"convert to JSON with `repro spec show`"
            ) from None
        try:
            with open(path, "rb") as handle:
                return tomllib.load(handle)
        except tomllib.TOMLDecodeError as exc:
            raise SpecError(f"{path}: invalid TOML: {exc}") from None
    try:
        with open(path) as handle:
            return json.load(handle)
    except json.JSONDecodeError as exc:
        raise SpecError(f"{path}: invalid JSON: {exc}") from None


def load_spec(path: str) -> ExperimentSpec:
    """Load, default, and validate one spec document."""
    try:
        return ExperimentSpec.from_dict(load_spec_dict(path))
    except SpecError as exc:
        message = str(exc)
        if not message.startswith(path):
            raise SpecError(f"{path}: {message}") from None
        raise


def dump_spec(spec: ExperimentSpec, destination, resolved: bool = False) -> None:
    """Write ``spec`` as JSON to a path or file object."""
    rendered = spec.to_json(resolved=resolved) + "\n"
    if isinstance(destination, str):
        with open(destination, "w") as handle:
            handle.write(rendered)
    else:
        destination.write(rendered)


# ----------------------------------------------------------------------
# Minimal TOML emitter (spec-document shape only)
# ----------------------------------------------------------------------

_Scalar = Union[str, int, float, bool]


def _toml_scalar(value: _Scalar) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, (int, float)):
        return repr(value)
    if isinstance(value, str):
        return json.dumps(value)  # TOML basic strings are JSON-compatible
    raise SpecError(f"cannot render {value!r} as TOML")


def _is_scalar(value) -> bool:
    return isinstance(value, (str, int, float, bool))


def _emit_table(lines: list, prefix: str, table: dict) -> None:
    scalars = {}
    subtables = {}
    table_arrays = {}
    for key, value in table.items():
        if value is None:
            continue  # TOML has no null; the reader's defaulting restores it
        if isinstance(value, dict):
            subtables[key] = value
        elif isinstance(value, (list, tuple)) and value and all(
                isinstance(v, dict) for v in value):
            table_arrays[key] = value
        elif isinstance(value, (list, tuple)):
            if not all(_is_scalar(v) for v in value):
                raise SpecError(f"cannot render {key}={value!r} as TOML")
            scalars[key] = "[" + ", ".join(_toml_scalar(v) for v in value) + "]"
        elif _is_scalar(value):
            scalars[key] = _toml_scalar(value)
        else:
            raise SpecError(f"cannot render {key}={value!r} as TOML")
    if prefix and (scalars or not (subtables or table_arrays)):
        lines.append(f"[{prefix}]")
    for key, rendered in scalars.items():
        lines.append(f"{key} = {rendered}")
    if scalars:
        lines.append("")
    for key, sub in subtables.items():
        _emit_table(lines, f"{prefix}.{key}" if prefix else key, sub)
    for key, entries in table_arrays.items():
        name = f"{prefix}.{key}" if prefix else key
        for entry in entries:
            lines.append(f"[[{name}]]")
            for k, v in entry.items():
                if v is None:
                    continue
                lines.append(f"{k} = {_toml_scalar(v)}")
            lines.append("")


def to_toml(spec: ExperimentSpec, resolved: bool = False) -> str:
    """Render ``spec`` as a TOML document (see module docstring)."""
    lines: list = []
    _emit_table(lines, "", spec.to_dict(resolved=resolved))
    while lines and not lines[-1]:
        lines.pop()
    return "\n".join(lines) + "\n"

"""Dotted ``--set key=value`` overrides over a spec document.

``repro <cmd> --set stack.channels=8 --set workload.queue_depth=32``
edits the raw (sparse) spec dict *before* parsing, so every override
still goes through the same validation as a checked-in file.  Values
parse as JSON when they can (numbers, booleans, ``null``, lists,
quoted strings) and fall back to bare strings, so
``--set stack.vendor=micron`` works without quoting gymnastics.
"""

from __future__ import annotations

import json


class OverrideError(ValueError):
    """A malformed --set expression."""


def parse_override(expression: str) -> tuple:
    """``"a.b.c=value"`` -> ``(("a", "b", "c"), parsed_value)``."""
    if "=" not in expression:
        raise OverrideError(
            f"--set needs KEY=VALUE, got {expression!r}"
        )
    path, _, raw = expression.partition("=")
    path = path.strip()
    if not path:
        raise OverrideError(f"--set has an empty key: {expression!r}")
    keys = tuple(part.strip() for part in path.split("."))
    if any(not part for part in keys):
        raise OverrideError(f"--set has an empty path segment: {path!r}")
    raw = raw.strip()
    try:
        value = json.loads(raw)
    except json.JSONDecodeError:
        value = raw  # bare string (vendor names, patterns, ...)
    return keys, value


def apply_overrides(document: dict, expressions) -> dict:
    """Apply each ``KEY=VALUE`` to ``document`` in order; returns it.

    Intermediate objects are created as needed (``--set
    stack.ftl.checkpoint_interval=48`` works on a spec with no ``ftl``
    section), but overriding *through* a non-object is an error.
    """
    for expression in expressions:
        keys, value = parse_override(expression)
        node = document
        for key in keys[:-1]:
            child = node.get(key)
            if child is None:
                child = node[key] = {}
            elif not isinstance(child, dict):
                raise OverrideError(
                    f"--set {expression!r}: {key!r} is not an object"
                )
            node = child
        node[keys[-1]] = value
    return document

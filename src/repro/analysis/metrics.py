"""Shared latency/throughput summaries."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class LatencyStats:
    """Summary statistics of a latency sample (nanoseconds)."""

    count: int
    mean_ns: float
    p50_ns: float
    p99_ns: float
    min_ns: int
    max_ns: int

    def describe(self) -> str:
        return (
            f"n={self.count} mean={self.mean_ns / 1000:.1f}us "
            f"p50={self.p50_ns / 1000:.1f}us p99={self.p99_ns / 1000:.1f}us"
        )


def _percentile(ordered: Sequence[int], fraction: float) -> float:
    """Linear-interpolated percentile of a sorted sample.

    Matches ``numpy.percentile``'s default ("linear") method: the
    p-quantile sits at rank ``fraction * (n - 1)``, interpolating
    between the two bracketing order statistics — p50 of ``[1, 2]``
    is 1.5, not a truncated nearest rank.
    """
    if not ordered:
        return 0.0
    fraction = min(max(fraction, 0.0), 1.0)
    rank = fraction * (len(ordered) - 1)
    lower = int(rank)
    upper = min(lower + 1, len(ordered) - 1)
    weight = rank - lower
    return float(ordered[lower]) + (float(ordered[upper]) - float(ordered[lower])) * weight


def summarize_latencies(samples_ns: Sequence[int]) -> LatencyStats:
    """Summarize a latency sample; empty input yields all-zero stats."""
    if not samples_ns:
        return LatencyStats(0, 0.0, 0.0, 0.0, 0, 0)
    ordered = sorted(samples_ns)
    return LatencyStats(
        count=len(ordered),
        mean_ns=sum(ordered) / len(ordered),
        p50_ns=_percentile(ordered, 0.50),
        p99_ns=_percentile(ordered, 0.99),
        min_ns=ordered[0],
        max_ns=ordered[-1],
    )

"""Shared latency/throughput summaries."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class LatencyStats:
    """Summary statistics of a latency sample (nanoseconds)."""

    count: int
    mean_ns: float
    p50_ns: float
    p99_ns: float
    min_ns: int
    max_ns: int

    def describe(self) -> str:
        return (
            f"n={self.count} mean={self.mean_ns / 1000:.1f}us "
            f"p50={self.p50_ns / 1000:.1f}us p99={self.p99_ns / 1000:.1f}us"
        )


def _percentile(ordered: Sequence[int], fraction: float) -> float:
    if not ordered:
        return 0.0
    index = min(int(len(ordered) * fraction), len(ordered) - 1)
    return float(ordered[index])


def summarize_latencies(samples_ns: Sequence[int]) -> LatencyStats:
    """Summarize a latency sample; empty input yields all-zero stats."""
    if not samples_ns:
        return LatencyStats(0, 0.0, 0.0, 0.0, 0, 0)
    ordered = sorted(samples_ns)
    return LatencyStats(
        count=len(ordered),
        mean_ns=sum(ordered) / len(ordered),
        p50_ns=_percentile(ordered, 0.50),
        p99_ns=_percentile(ordered, 0.99),
        min_ns=ordered[0],
        max_ns=ordered[-1],
    )

"""Measurement and reporting tools.

* :mod:`logic_analyzer` — the stand-in for the Keysight 16862A of
  Section VI-B: taps the channel, records every segment and decoded
  event with exact nanosecond timestamps, measures polling periods.
* :mod:`waveform_render` — ASCII timing diagrams (Figs. 2/9/11 style).
* :mod:`loc` — source-line counting for the Table II comparison.
* :mod:`op_lint` — static protocol linter for declarative op programs.
* :mod:`cfg` — control-flow graphs over op-IR nodes, the structural
  pass shared by the linter's dead-code rule and the verifier.
* :mod:`opver` — static op-IR verifier: abstract interpretation
  proving protocol, timing, and liveness properties over every path.
* :mod:`diagnostics` — the unified Finding/DiagnosticReport engine the
  linters and the runtime sanitizers (:mod:`repro.sanitize`) share.
* :mod:`area` — the structural FPGA area model behind Table III.
* :mod:`metrics` — shared throughput/latency summaries.
"""

from repro.analysis.diagnostics import (
    EXIT_CLEAN,
    EXIT_FINDINGS,
    EXIT_INTERNAL,
    DiagnosticReport,
    Finding,
)
from repro.analysis.logic_analyzer import AnalyzerEvent, LogicAnalyzer
from repro.analysis.waveform_render import render_segment, render_timeline
from repro.analysis.loc import count_source_lines, operation_loc_table
from repro.analysis.op_lint import (
    LintCoverage,
    LintFinding,
    lint_all,
    lint_library,
    lint_program,
)
from repro.analysis.cfg import Cfg, CfgNode, build_cfg
from repro.analysis.opver import (
    VerifyCoverage,
    VerifyFinding,
    verify_library,
    verify_op,
    verify_program,
)
from repro.analysis.area import AreaEstimate, estimate_area
from repro.analysis.metrics import LatencyStats, summarize_latencies
from repro.analysis.timing_check import TimingChecker, TimingViolation

__all__ = [
    "EXIT_CLEAN",
    "EXIT_FINDINGS",
    "EXIT_INTERNAL",
    "DiagnosticReport",
    "Finding",
    "TimingChecker",
    "TimingViolation",
    "AnalyzerEvent",
    "LogicAnalyzer",
    "render_segment",
    "render_timeline",
    "count_source_lines",
    "operation_loc_table",
    "LintCoverage",
    "LintFinding",
    "lint_all",
    "lint_library",
    "lint_program",
    "Cfg",
    "CfgNode",
    "build_cfg",
    "VerifyCoverage",
    "VerifyFinding",
    "verify_library",
    "verify_op",
    "verify_program",
    "AreaEstimate",
    "estimate_area",
    "LatencyStats",
    "summarize_latencies",
]

"""ASCII waveform rendering.

Two views: a per-pin edge rendering of one segment (the Fig. 2 level of
detail) and an event timeline of a capture window (the Fig. 11
screenshot's information content).
"""

from __future__ import annotations

from typing import Iterable

from repro.analysis.logic_analyzer import AnalyzerEvent
from repro.onfi.datamodes import DataInterface
from repro.onfi.signals import Pin, WaveformSegment
from repro.onfi.timing import TimingSet

_RENDER_PINS = [Pin.CE, Pin.CLE, Pin.ALE, Pin.WE, Pin.RE, Pin.DQS, Pin.DQ]


def render_segment(
    segment: WaveformSegment,
    timing: TimingSet,
    interface: DataInterface,
    width: int = 72,
) -> str:
    """Render one segment's pins as ASCII traces.

    Control pins draw as ``▔``/``▁`` levels; DQ prints latched bytes at
    their positions.  Time is linearly compressed into ``width`` cells.
    """
    edges = segment.render_edges(timing, interface)
    span = max(segment.duration_ns, 1)
    scale = (width - 1) / span

    lines = []
    header = f"segment: {segment.describe()} ({segment.duration_ns} ns)"
    lines.append(header)
    for pin in _RENDER_PINS:
        pin_edges = [e for e in edges if e.pin is pin]
        if not pin_edges:
            continue
        if pin is Pin.DQ:
            row = [" "] * width
            for edge in pin_edges:
                pos = min(int(edge.t * scale), width - 3)
                text = f"{edge.value:02X}"
                for i, ch in enumerate(text):
                    if pos + i < width:
                        row[pos + i] = ch
            lines.append(f"{pin.value:>8} |{''.join(row)}|")
        else:
            # Active-low pins start high; others start low.
            level = 1 if pin in (Pin.CE, Pin.WE, Pin.RE) else 0
            row = []
            edge_iter = iter(sorted(pin_edges, key=lambda e: e.t))
            next_edge = next(edge_iter, None)
            for cell in range(width):
                t = cell / scale if scale else 0
                while next_edge is not None and next_edge.t <= t:
                    level = next_edge.value
                    next_edge = next(edge_iter, None)
                row.append("▔" if level else "▁")
            lines.append(f"{pin.value:>8} |{''.join(row)}|")
    return "\n".join(lines)


def render_timeline(
    events: Iterable[AnalyzerEvent],
    start_ns: int = 0,
    span_ns: int = 0,
    width: int = 78,
) -> str:
    """Render a capture window as a labeled event timeline.

    ``C`` = command latch, ``A`` = address, ``<`` = data out,
    ``>`` = data in.  Below the strip, each event is listed with its
    timestamp — the textual equivalent of the Fig. 11 screenshots.
    """
    events = [e for e in events if e.time_ns >= start_ns]
    if span_ns:
        events = [e for e in events if e.time_ns <= start_ns + span_ns]
    if not events:
        return "(empty capture)"
    t0 = events[0].time_ns
    t1 = events[-1].time_ns
    span = max(t1 - t0, 1)
    scale = (width - 1) / span

    glyphs = {"cmd": "C", "addr": "A", "data_out": "<", "data_in": ">", "wait": "."}
    strip = [" "] * width
    for event in events:
        pos = min(int((event.time_ns - t0) * scale), width - 1)
        strip[pos] = glyphs.get(event.kind, "?")

    lines = [f"|{''.join(strip)}|  ({span} ns)"]
    for event in events:
        offset_us = (event.time_ns - t0) / 1000.0
        lines.append(f"  +{offset_us:10.3f} us  {event.kind:<9} {event.detail}")
    return "\n".join(lines)

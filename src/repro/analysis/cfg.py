"""Control-flow graph over op-IR step nodes — the shared structural pass.

The op-IR keeps control flow explicit (:class:`Branch`, :class:`Loop`,
:class:`BreakIf`, :class:`Return`), so a program's control-flow graph
can be built without executing anything.  Two analysis layers consume
it:

* the static linter's dead-code rule (OPL009 in
  :mod:`repro.analysis.op_lint`) reports step nodes no execution can
  reach — code after a ``Return``, the body of a ``Loop(count=0)``, a
  ``Branch`` arm whose predicate is a constant;
* the op verifier (:mod:`repro.analysis.opver`) walks the same node
  tree and uses the graph to skip unreachable nodes, mirroring the
  interpreter, which never executes them.

Graph contract
--------------
One :class:`CfgNode` per IR *step* node (segments live inside their
``Txn``), plus a synthetic entry and exit.  Edges:

* a step node's fall-through successor is the next step on its path;
* ``Branch`` forks to the head of each arm that its predicate allows
  (a constant literal predicate prunes the other arm); empty arms fall
  through;
* ``Loop`` with positive ``count`` enters its body and receives a back
  edge from the body's tails; a zero/negative count skips the body
  entirely (the body becomes unreachable);
* ``BreakIf`` adds an edge to the innermost loop's continuation and
  falls through (the not-taken case);
* ``Return`` edges to the synthetic exit and ends its path.

Predicates that depend on runtime state (:class:`Reg`,
:class:`HandleRef`, :class:`E`, or any container holding one) are
*dynamic*: both arms are considered reachable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.opir.nodes import (
    Branch,
    BreakIf,
    E,
    HandleRef,
    Loop,
    OpProgram,
    Reg,
    Return,
)

__all__ = ["CfgNode", "Cfg", "build_cfg", "const_pred"]


def const_pred(pred) -> Optional[bool]:
    """Truth value of a predicate when it is a compile-time constant.

    Returns ``True``/``False`` for literals and literal containers,
    ``None`` when the predicate reads runtime state and both outcomes
    are possible.
    """
    if isinstance(pred, (Reg, HandleRef, E)):
        return None
    if isinstance(pred, (tuple, list)):
        if any(const_pred(item) is None for item in pred):
            # A container is truthy by length, but flag it dynamic so
            # nobody folds away an arm that inspects runtime values.
            return None
        return bool(pred)
    return bool(pred)


@dataclass
class CfgNode:
    """One vertex: an IR step node (or the synthetic entry/exit)."""

    index: int
    step: object  # IR step node; None for entry/exit
    path: str     # e.g. "nodes[3].then[0]"
    succs: list[int] = field(default_factory=list)
    preds: list[int] = field(default_factory=list)

    @property
    def synthetic(self) -> bool:
        return self.step is None

    def describe(self) -> str:
        kind = type(self.step).__name__ if self.step is not None else self.path
        return f"#{self.index} {kind} @ {self.path}"


class Cfg:
    """The control-flow graph of one :class:`OpProgram`."""

    def __init__(self, name: str):
        self.name = name
        self.nodes: list[CfgNode] = []
        self.entry = self._add(None, "entry")
        self.exit = self._add(None, "exit")

    # -- construction --------------------------------------------------

    def _add(self, step, path: str) -> int:
        node = CfgNode(index=len(self.nodes), step=step, path=path)
        self.nodes.append(node)
        return node.index

    def _link(self, src: int, dst: int) -> None:
        if dst not in self.nodes[src].succs:
            self.nodes[src].succs.append(dst)
            self.nodes[dst].preds.append(src)

    # -- queries -------------------------------------------------------

    def node_for(self, step) -> Optional[CfgNode]:
        """The vertex wrapping ``step`` (identity match), if any."""
        for node in self.nodes:
            if node.step is step:
                return node
        return None

    def reachable(self) -> set[int]:
        """Indices reachable from the entry node."""
        seen = {self.entry}
        stack = [self.entry]
        while stack:
            for succ in self.nodes[stack.pop()].succs:
                if succ not in seen:
                    seen.add(succ)
                    stack.append(succ)
        return seen

    def unreachable(self) -> list[CfgNode]:
        """Step vertices no execution can reach, in program order."""
        live = self.reachable()
        return [n for n in self.nodes
                if not n.synthetic and n.index not in live]

    def describe(self) -> str:
        lines = [f"cfg {self.name}: {len(self.nodes)} nodes"]
        for node in self.nodes:
            lines.append(f"  {node.describe()} -> {node.succs}")
        return "\n".join(lines)


def build_cfg(program: OpProgram) -> Cfg:
    """Build the control-flow graph of ``program``."""
    cfg = Cfg(program.name)
    frontier = _build_seq(cfg, program.nodes, "nodes", [cfg.entry], [])
    for index in frontier:
        cfg._link(index, cfg.exit)
    return cfg


def _build_seq(cfg: Cfg, nodes, prefix: str,
               frontier: list[int], loop_stack: list[list[int]]) -> list[int]:
    """Wire a node sequence; returns the tail frontier that falls
    through to whatever follows the sequence.

    Nodes are always materialized as vertices, even when the incoming
    frontier is empty — that is precisely how they end up with no
    predecessors and get reported unreachable.
    """
    for index, node in enumerate(nodes):
        path = f"{prefix}[{index}]"
        vertex = cfg._add(node, path)
        for src in frontier:
            cfg._link(src, vertex)

        if isinstance(node, Return):
            cfg._link(vertex, cfg.exit)
            frontier = []
        elif isinstance(node, Branch):
            taken = const_pred(node.pred)
            then_in = [vertex] if taken is not False else []
            else_in = [vertex] if taken is not True else []
            then_out = _build_seq(cfg, node.then, f"{path}.then",
                                  then_in, loop_stack)
            else_out = _build_seq(cfg, node.orelse, f"{path}.orelse",
                                  else_in, loop_stack)
            # An empty arm leaves its incoming frontier unchanged, so
            # the Branch vertex itself falls through — dedup the merge.
            frontier = list(dict.fromkeys(then_out + else_out))
        elif isinstance(node, Loop):
            if node.count > 0:
                breaks: list[int] = []
                loop_stack.append(breaks)
                body_out = _build_seq(cfg, node.body, f"{path}.body",
                                      [vertex], loop_stack)
                loop_stack.pop()
                for src in body_out:
                    cfg._link(src, vertex)  # back edge
                frontier = list(dict.fromkeys(body_out + breaks))
            else:
                # Zero-trip loop: the body is never entered.
                _build_seq(cfg, node.body, f"{path}.body", [], loop_stack)
                frontier = [vertex]
        elif isinstance(node, BreakIf):
            if loop_stack:
                loop_stack[-1].append(vertex)
            frontier = [vertex]
        else:
            frontier = [vertex]
    return frontier

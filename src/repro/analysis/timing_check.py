"""ONFI protocol/timing linter over logic-analyzer captures.

Controllers are validated on real rigs by staring at scope traces; the
simulated equivalent is automated.  Given a capture, the checker
verifies per-LUN ONFI sequencing and inter-event timing rules:

* a confirm command is followed by no non-status command until the LUN
  had time to raise R/B# (tWB respected before the next poll);
* a CHANGE READ COLUMN confirm is separated from the following data-out
  burst by at least tCCS;
* address latches immediately follow an address-bearing command;
* data-out bursts only occur after something armed a data source.

The checker runs over *decoded events*, so it validates any controller
on the channel — BABOL or the hardware baselines — which is how the
test suite proves all three emit legal ONFI.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.analysis.logic_analyzer import AnalyzerEvent, LogicAnalyzer
from repro.onfi.commands import CMD, CommandClass, classify_opcode, opcode_name
from repro.onfi.timing import TimingSet

_ADDRESS_BEARING = {
    CommandClass.READ,
    CommandClass.PROGRAM,
    CommandClass.ERASE,
    CommandClass.IDENT,
    CommandClass.FEATURES,
}
_CONFIRM = {
    CommandClass.READ_CONFIRM,
    CommandClass.CACHE_READ_CONFIRM,
    CommandClass.CACHE_READ_END,
    CommandClass.PROGRAM_CONFIRM,
    CommandClass.CACHE_PROGRAM_CONFIRM,
    CommandClass.ERASE_CONFIRM,
    CommandClass.RESET,
}
_ARMS_DATA_OUT = {
    CMD.READ_STATUS, CMD.READ_STATUS_ENHANCED, CMD.READ_ID,
    CMD.CHANGE_READ_COL_2ND, CMD.GET_FEATURES, CMD.READ_PARAMETER_PAGE,
}


@dataclass(frozen=True)
class TimingViolation:
    """One detected protocol/timing problem."""

    time_ns: int
    lun_mask: int
    rule: str
    detail: str

    def describe(self) -> str:
        return f"t={self.time_ns}ns mask=0b{self.lun_mask:b} [{self.rule}] {self.detail}"


@dataclass
class _LunTrack:
    last_confirm_ns: Optional[int] = None
    last_ccol_confirm_ns: Optional[int] = None
    awaiting_address: Optional[int] = None  # opcode expecting address next
    data_armed: bool = False
    read_pending: bool = False


class TimingChecker:
    """Validate a capture against the ONFI rules above."""

    def __init__(self, timing: TimingSet, lun_count: int = 16):
        self.timing = timing
        self.lun_count = lun_count
        self.violations: list[TimingViolation] = []
        self._tracks = [_LunTrack() for _ in range(lun_count)]

    # -- entry points ------------------------------------------------------

    def check_analyzer(self, analyzer: LogicAnalyzer) -> list[TimingViolation]:
        return self.check_events(analyzer.events)

    def check_events(self, events: list[AnalyzerEvent]) -> list[TimingViolation]:
        for event in events:
            for lun in range(self.lun_count):
                if event.chip_mask >> lun & 1:
                    self._feed(lun, event)
        return self.violations

    # -- per-LUN state machine ------------------------------------------------

    def _flag(self, event: AnalyzerEvent, rule: str, detail: str) -> None:
        self.violations.append(
            TimingViolation(
                time_ns=event.time_ns, lun_mask=event.chip_mask,
                rule=rule, detail=detail,
            )
        )

    def _feed(self, lun: int, event: AnalyzerEvent) -> None:
        track = self._tracks[lun]
        if event.kind == "cmd":
            self._on_command(track, event)
        elif event.kind == "addr":
            self._on_address(track, event)
        elif event.kind == "data_out":
            self._on_data_out(track, event)
        elif event.kind == "data_in":
            track.awaiting_address = None

    def _on_command(self, track: _LunTrack, event: AnalyzerEvent) -> None:
        opcode = event.opcode
        cls = classify_opcode(opcode) if opcode is not None else CommandClass.UNKNOWN

        if track.awaiting_address is not None and cls is not CommandClass.UNKNOWN:
            expecting = track.awaiting_address
            # A second command before the address is legal only for
            # multi-latch preambles that embed vendor prefixes; an
            # address-bearing command chained straight into a confirm
            # without any address is not.
            if cls in _CONFIRM:
                self._flag(
                    event, "confirm-without-address",
                    f"{opcode_name(opcode)} follows "
                    f"{opcode_name(expecting)} with no address latch",
                )
            track.awaiting_address = None

        # tWB: after a confirm, the controller must give the LUN tWB
        # before asking anything of it (status polls included).
        if (
            track.last_confirm_ns is not None
            and cls is CommandClass.STATUS
            and event.time_ns - track.last_confirm_ns < self.timing.tWB
        ):
            self._flag(
                event, "tWB",
                f"status poll {event.time_ns - track.last_confirm_ns}ns "
                f"after confirm (tWB={self.timing.tWB}ns)",
            )

        if cls in _ADDRESS_BEARING:
            track.awaiting_address = opcode
        if opcode in (CMD.READ_STATUS_ENHANCED, CMD.CHANGE_WRITE_COL):
            # Both carry address cycles despite their command class.
            track.awaiting_address = opcode
        if cls in _CONFIRM:
            track.last_confirm_ns = event.time_ns
            if cls is CommandClass.READ_CONFIRM:
                track.read_pending = True
        if opcode in _ARMS_DATA_OUT:
            track.data_armed = True
        if opcode == CMD.CHANGE_READ_COL_2ND:
            track.last_ccol_confirm_ns = event.time_ns
        if opcode == CMD.CHANGE_READ_COL_1ST or opcode == CMD.CHANGE_READ_COL_ENH_1ST:
            track.awaiting_address = opcode

    def _on_address(self, track: _LunTrack, event: AnalyzerEvent) -> None:
        if track.awaiting_address is None:
            self._flag(
                event, "orphan-address",
                f"address latch [{event.detail}] with no pending command",
            )
        track.awaiting_address = None

    def _on_data_out(self, track: _LunTrack, event: AnalyzerEvent) -> None:
        if not track.data_armed:
            self._flag(
                event, "unarmed-data-out",
                f"data burst {event.detail} with no arming command",
            )
        # tCCS between a column-change confirm and the burst.
        if (
            track.last_ccol_confirm_ns is not None
            and event.time_ns - track.last_ccol_confirm_ns < self.timing.tCCS
        ):
            self._flag(
                event, "tCCS",
                f"burst {event.time_ns - track.last_ccol_confirm_ns}ns after "
                f"CHANGE READ COLUMN (tCCS={self.timing.tCCS}ns)",
            )
        track.last_ccol_confirm_ns = None

    # -- reporting --------------------------------------------------------------

    @property
    def clean(self) -> bool:
        return not self.violations

    def report(self) -> str:
        if self.clean:
            return "timing check: clean"
        lines = [f"timing check: {len(self.violations)} violation(s)"]
        lines.extend("  " + v.describe() for v in self.violations[:20])
        return "\n".join(lines)

"""ONFI protocol/timing linter over logic-analyzer captures.

Controllers are validated on real rigs by staring at scope traces; the
simulated equivalent is automated.  Given a capture, the checker
verifies per-LUN ONFI sequencing and inter-event timing rules:

* a confirm command is followed by no non-status command until the LUN
  had time to raise R/B# (tWB respected before the next poll);
* a CHANGE READ COLUMN confirm is separated from the following data-out
  burst by at least tCCS;
* address latches immediately follow an address-bearing command;
* data-out bursts only occur after something armed a data source;
* a data-out burst directly following a command latch waits tWHR
  (WE# high to RE# low — the status-read turnaround);
* a multi-byte data-out burst after an R/B# ready edge waits tRR
  (captures taken with ``LogicAnalyzer(capture_rb=True)``);
* a command latch directly following a data-out burst waits tRHW
  (RE# high to WE# low — the data-to-command turnaround).

The checker runs over *decoded events*, so it validates any controller
on the channel — BABOL or the hardware baselines — which is how the
test suite proves all three emit legal ONFI.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.analysis.logic_analyzer import AnalyzerEvent, LogicAnalyzer
from repro.onfi.commands import CMD, CommandClass, classify_opcode, opcode_name
from repro.onfi.timing import TimingSet

_ADDRESS_BEARING = {
    CommandClass.READ,
    CommandClass.PROGRAM,
    CommandClass.ERASE,
    CommandClass.IDENT,
    CommandClass.FEATURES,
}
_CONFIRM = {
    CommandClass.READ_CONFIRM,
    CommandClass.CACHE_READ_CONFIRM,
    CommandClass.CACHE_READ_END,
    CommandClass.PROGRAM_CONFIRM,
    CommandClass.CACHE_PROGRAM_CONFIRM,
    CommandClass.ERASE_CONFIRM,
    CommandClass.RESET,
}
_ARMS_DATA_OUT = {
    CMD.READ_STATUS, CMD.READ_STATUS_ENHANCED, CMD.READ_ID,
    CMD.CHANGE_READ_COL_2ND, CMD.GET_FEATURES, CMD.READ_PARAMETER_PAGE,
}


def _burst_bytes(event: AnalyzerEvent) -> int:
    """Byte count of a data event (detail is rendered as '<N>B')."""
    detail = event.detail
    if detail.endswith("B") and detail[:-1].isdigit():
        return int(detail[:-1])
    return 0


@dataclass(frozen=True)
class TimingViolation:
    """One detected protocol/timing problem."""

    time_ns: int
    lun_mask: int
    rule: str
    detail: str

    def describe(self) -> str:
        return f"t={self.time_ns}ns mask=0b{self.lun_mask:b} [{self.rule}] {self.detail}"

    def to_finding(self, component: str = ""):
        """This violation as a TCK-namespaced diagnostics Finding."""
        from repro.analysis.diagnostics import Finding

        rule_id = _RULE_IDS.get(self.rule, "TCK000")
        return Finding(
            rule=rule_id,
            severity="error",
            message=f"[{self.rule}] {self.detail}",
            component=component or f"lun_mask=0b{self.lun_mask:b}",
            time_ns=self.time_ns,
        )


#: Stable diagnostics rule ids for the checker's named rules.
_RULE_IDS = {
    "confirm-without-address": "TCK001",
    "tWB": "TCK002",
    "orphan-address": "TCK003",
    "unarmed-data-out": "TCK004",
    "tCCS": "TCK005",
    "tWHR": "TCK006",
    "tRR": "TCK007",
    "tRHW": "TCK008",
}


@dataclass
class _LunTrack:
    last_confirm_ns: Optional[int] = None
    last_ccol_confirm_ns: Optional[int] = None
    awaiting_address: Optional[int] = None  # opcode expecting address next
    data_armed: bool = False
    read_pending: bool = False
    # Previous wire event (cmd/addr/data) for turnaround rules; R/B#
    # edges and idle waits do not count as wire activity.
    prev_kind: Optional[str] = None
    prev_time_ns: int = 0
    prev_end_ns: int = 0
    last_ready_ns: Optional[int] = None  # R/B# low->high edge, if captured


class TimingChecker:
    """Validate a capture against the ONFI rules above."""

    def __init__(self, timing: TimingSet, lun_count: int = 16):
        self.timing = timing
        self.lun_count = lun_count
        self.violations: list[TimingViolation] = []
        self._tracks = [_LunTrack() for _ in range(lun_count)]

    # -- entry points ------------------------------------------------------

    def check_analyzer(self, analyzer: LogicAnalyzer) -> list[TimingViolation]:
        return self.check_events(analyzer.events)

    def check_events(self, events: list[AnalyzerEvent]) -> list[TimingViolation]:
        # R/B# edge events are recorded when the pin toggles, while
        # segment events are recorded at transmit time with future
        # offsets — so a capture that includes both is not globally
        # time-ordered.  A stable sort restores the pin-level timeline
        # (and is a no-op for segment-only captures).
        for event in sorted(events, key=lambda e: e.time_ns):
            for lun in range(self.lun_count):
                if event.chip_mask >> lun & 1:
                    self._feed(lun, event)
        return self.violations

    # -- per-LUN state machine ------------------------------------------------

    def _flag(self, event: AnalyzerEvent, rule: str, detail: str) -> None:
        self.violations.append(
            TimingViolation(
                time_ns=event.time_ns, lun_mask=event.chip_mask,
                rule=rule, detail=detail,
            )
        )

    def _feed(self, lun: int, event: AnalyzerEvent) -> None:
        track = self._tracks[lun]
        if event.kind == "cmd":
            self._on_command(track, event)
        elif event.kind == "addr":
            self._on_address(track, event)
        elif event.kind == "data_out":
            self._on_data_out(track, event)
        elif event.kind == "data_in":
            track.awaiting_address = None
        elif event.kind == "rb":
            # R/B# edges inform tRR but are not wire activity: they must
            # not disturb the cmd/data adjacency the turnaround rules use.
            if event.detail == "ready":
                track.last_ready_ns = event.time_ns
            else:
                track.last_ready_ns = None
            return
        if event.kind in ("cmd", "addr", "data_out", "data_in"):
            track.prev_kind = event.kind
            track.prev_time_ns = event.time_ns
            track.prev_end_ns = event.end_ns

    def _on_command(self, track: _LunTrack, event: AnalyzerEvent) -> None:
        opcode = event.opcode
        cls = classify_opcode(opcode) if opcode is not None else CommandClass.UNKNOWN

        # tRHW: after a data-out burst, WE# must not fall until the
        # RE#-to-WE# turnaround has elapsed.
        if (
            track.prev_kind == "data_out"
            and event.time_ns - track.prev_end_ns < self.timing.tRHW
        ):
            self._flag(
                event, "tRHW",
                f"{opcode_name(opcode) if opcode is not None else 'cmd'} "
                f"latched {event.time_ns - track.prev_end_ns}ns after data out "
                f"(tRHW={self.timing.tRHW}ns)",
            )

        if track.awaiting_address is not None and cls is not CommandClass.UNKNOWN:
            expecting = track.awaiting_address
            # A second command before the address is legal only for
            # multi-latch preambles that embed vendor prefixes; an
            # address-bearing command chained straight into a confirm
            # without any address is not.
            if cls in _CONFIRM:
                self._flag(
                    event, "confirm-without-address",
                    f"{opcode_name(opcode)} follows "
                    f"{opcode_name(expecting)} with no address latch",
                )
            track.awaiting_address = None

        # tWB: after a confirm, the controller must give the LUN tWB
        # before asking anything of it (status polls included).
        if (
            track.last_confirm_ns is not None
            and cls is CommandClass.STATUS
            and event.time_ns - track.last_confirm_ns < self.timing.tWB
        ):
            self._flag(
                event, "tWB",
                f"status poll {event.time_ns - track.last_confirm_ns}ns "
                f"after confirm (tWB={self.timing.tWB}ns)",
            )

        if cls in _ADDRESS_BEARING:
            track.awaiting_address = opcode
        if opcode in (CMD.READ_STATUS_ENHANCED, CMD.CHANGE_WRITE_COL):
            # Both carry address cycles despite their command class.
            track.awaiting_address = opcode
        if cls in _CONFIRM:
            track.last_confirm_ns = event.time_ns
            if cls is CommandClass.READ_CONFIRM:
                track.read_pending = True
        if opcode in _ARMS_DATA_OUT:
            track.data_armed = True
        if opcode == CMD.CHANGE_READ_COL_2ND:
            track.last_ccol_confirm_ns = event.time_ns
        if opcode == CMD.CHANGE_READ_COL_1ST or opcode == CMD.CHANGE_READ_COL_ENH_1ST:
            track.awaiting_address = opcode

    def _on_address(self, track: _LunTrack, event: AnalyzerEvent) -> None:
        if track.awaiting_address is None:
            self._flag(
                event, "orphan-address",
                f"address latch [{event.detail}] with no pending command",
            )
        track.awaiting_address = None

    def _on_data_out(self, track: _LunTrack, event: AnalyzerEvent) -> None:
        if not track.data_armed:
            self._flag(
                event, "unarmed-data-out",
                f"data burst {event.detail} with no arming command",
            )
        # tWHR: RE# must not fall until the WE#-to-RE# turnaround after
        # the command latch has elapsed.  Scoped to bursts *directly*
        # following a command latch (status/ID-style reads): an address
        # phase in between means the burst is paced by other rules.
        if (
            track.prev_kind == "cmd"
            and event.time_ns - track.prev_time_ns < self.timing.tWHR
        ):
            self._flag(
                event, "tWHR",
                f"data out {event.time_ns - track.prev_time_ns}ns after "
                f"command latch (tWHR={self.timing.tWHR}ns)",
            )
        # tRR: after R/B# rises, RE# must stay high for tRR before the
        # page data streams out.  Single-byte bursts are status reads,
        # which are paced by tWHR, not tRR.
        if track.last_ready_ns is not None and _burst_bytes(event) > 1:
            gap = event.time_ns - track.last_ready_ns
            if gap < self.timing.tRR:
                self._flag(
                    event, "tRR",
                    f"data out {gap}ns after R/B# ready "
                    f"(tRR={self.timing.tRR}ns)",
                )
            track.last_ready_ns = None
        # tCCS between a column-change confirm and the burst.
        if (
            track.last_ccol_confirm_ns is not None
            and event.time_ns - track.last_ccol_confirm_ns < self.timing.tCCS
        ):
            self._flag(
                event, "tCCS",
                f"burst {event.time_ns - track.last_ccol_confirm_ns}ns after "
                f"CHANGE READ COLUMN (tCCS={self.timing.tCCS}ns)",
            )
        track.last_ccol_confirm_ns = None

    # -- reporting --------------------------------------------------------------

    @property
    def clean(self) -> bool:
        return not self.violations

    def report(self) -> str:
        if self.clean:
            return "timing check: clean"
        lines = [f"timing check: {len(self.violations)} violation(s)"]
        lines.extend("  " + v.describe() for v in self.violations[:20])
        return "\n".join(lines)

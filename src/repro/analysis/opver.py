"""Static op-IR verifier: ahead-of-time proofs over every program path.

The sanitizers (SAN2xx/3xx/4xx) and the logic-analyzer timing checker
(TCK) only see hazards on paths a workload happens to exercise, at
waveform fidelity.  This module promotes those runtime checks to
static proofs: it abstract-interprets a built
:class:`~repro.core.opir.nodes.OpProgram` against an ONFI die
automaton (mirroring :mod:`repro.flash.lun`) with an interval timing
domain (mirroring :mod:`repro.analysis.timing_check`), so a protocol
or timing bug is reported before anything runs — over *all* paths,
not just observed traces.

Rule namespaces (OPV — INTERNALS §13 has the full catalogue):

* **OPV1xx** — protocol automaton (static SAN2xx): OPV101 command
  latched while array-busy, OPV102 data-out with no proven data
  source, OPV103 static chip-select selecting zero/multiple dies,
  OPV104 cycle-grammar violations (orphan address, confirm without a
  full address, cache read without a prior read, unsuspendable
  suspend).
* **OPV2xx** — interval timing vs. the vendor-tightened
  :meth:`~repro.flash.vendors.VendorProfile.timing_set`: OPV201 tWB,
  OPV202 tWHR, OPV203 tRR, OPV204 tRHW, OPV205 tCCS, OPV206 minimum
  poll period.
* **OPV3xx** — liveness proofs: OPV301 a poll loop that provably
  exhausts its budget before the die can be ready, OPV302 a path
  whose array time provably blows the watchdog budget.
* **OPV4xx** — DMA/register def-use dataflow (static SAN3xx): OPV401
  transfer direction vs. handle source, OPV402 transfer byte count
  vs. minted window, OPV403 register read before any definition,
  OPV404 handle use not dominated by its declaration.
* **OPV5xx** — TLM summarizability: OPV501 explains (info severity)
  each reason :func:`~repro.core.opir.summarize.plan_check` demotes
  the program off the compiled-plan fast path.

Abstract domains
----------------
Time is tracked with closed intervals ``[lo, hi]`` (``hi`` may be
``inf``).  Within a transaction, offsets come from the *real* µFSM
emitters, so intra-segment timing is exact; between steps the verifier
assumes an arbitrary software gap ``[0, inf)`` and a ``SoftSleep(ns)``
guarantees at least ``ns``.  Array-busy windows carry the vendor's
jitter bounds; a window is *proven elapsed* only when its remaining
interval's upper bound reaches zero.  Branches fork the state and
join by interval hull / set intersection; loops run their (static)
trip count.  All checks fire only on *proven* violations — the stock
27-op library verifies clean for every vendor profile and NV-DDR2
mode, which the test suite pins.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional

from repro.analysis.cfg import const_pred
from repro.core.opir.compile import resolve_timer_ns
from repro.core.opir.nodes import (
    Branch,
    BreakIf,
    CallOp,
    DataXfer,
    DeclareHandle,
    E,
    HandleRef,
    LatchSeq,
    Loop,
    OpProgram,
    PollStatus,
    Reg,
    Return,
    SelectFirstReady,
    SetReg,
    SoftSleep,
    TimerWait,
    Txn,
    effective_poll_period,
)
from repro.core.ufsm.base import UfsmBank
from repro.dram import DmaHandle
from repro.onfi.commands import CMD, CommandClass, classify_opcode, opcode_name
from repro.onfi.datamodes import interface_by_name

INF = float("inf")

#: Per-poll-round CPU/dispatch allowance granted when proving that a
#: poll budget cannot outlast a busy window (OPV301).  Generous on
#: purpose: the proof must hold for any realistic scheduler.
POLL_CPU_ALLOWANCE_NS = 10_000

#: The two NV-DDR2 interface modes the library ships against.
DEFAULT_MODES = ("NV-DDR2-100", "NV-DDR2-200")

_CONFIRM_CLASSES = {
    CommandClass.READ_CONFIRM,
    CommandClass.CACHE_READ_CONFIRM,
    CommandClass.CACHE_READ_END,
    CommandClass.PROGRAM_CONFIRM,
    CommandClass.CACHE_PROGRAM_CONFIRM,
    CommandClass.ERASE_CONFIRM,
    CommandClass.RESET,
}

_SUSPENDABLE_KINDS = {"program", "erase", "unknown"}


# ---------------------------------------------------------------------------
# Interval arithmetic
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Iv:
    """A closed interval of nanoseconds; ``hi`` may be infinite."""

    lo: float
    hi: float

    @staticmethod
    def exact(ns: float) -> "Iv":
        return Iv(ns, ns)

    @staticmethod
    def at_least(ns: float) -> "Iv":
        return Iv(ns, INF)

    def __add__(self, other: "Iv") -> "Iv":
        return Iv(self.lo + other.lo, self.hi + other.hi)

    def minus(self, other: "Iv") -> "Iv":
        """Interval difference ``self - other`` (independent bounds)."""
        return Iv(self.lo - other.hi, self.hi - other.lo)

    def hull(self, other: "Iv") -> "Iv":
        return Iv(min(self.lo, other.lo), max(self.hi, other.hi))

    def describe(self) -> str:
        hi = "inf" if self.hi == INF else f"{self.hi:.0f}"
        return f"[{self.lo:.0f}, {hi}]ns"


# ---------------------------------------------------------------------------
# Findings
# ---------------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class VerifyFinding:
    """One verifier diagnosis, anchored to a node path."""

    rule: str
    severity: str  # "error" | "warning" | "info"
    program: str
    where: str
    message: str
    hint: str = ""

    def __str__(self) -> str:
        return (f"{self.severity.upper()} {self.rule} "
                f"{self.program} @ {self.where}: {self.message}")

    def to_finding(self):
        """This result as a diagnostics Finding (OPV namespace)."""
        from repro.analysis.diagnostics import Finding

        return Finding(
            rule=self.rule,
            severity=self.severity,
            message=self.message,
            component=f"{self.program} @ {self.where}",
            hint=self.hint,
        )


# ---------------------------------------------------------------------------
# Abstract die + timing state
# ---------------------------------------------------------------------------


@dataclass
class _Busy:
    kind: str          # "read"|"program"|"erase"|"feature"|"reset"|"param"|"dummy"|"unknown"
    remaining: Iv
    started_at: str = ""  # node path of the confirm, for messages


@dataclass
class _State:
    """The abstract state of one (conflated) target die plus the
    dataflow environment of the interpreter."""

    busy: Optional[_Busy] = None
    cache_busy: Optional[Iv] = None      # cache-read array fetch remaining
    cache_prog: Optional[Iv] = None      # cache-program array work remaining
    suspended: Optional[_Busy] = None
    pending_arm: Optional[str] = None    # source armed when busy completes
    pending_loads: bool = False          # ...and the page register fills

    armed: str = "none"   # none|status|register|feature|id|param|unknown
    register_loaded: str = "no"  # no|yes|maybe
    phase: str = "idle"   # idle|await_addr|await_confirm
    pending_opcode: Optional[int] = None
    addr_format: str = "full"
    have_row: bool = False
    status_addr_pending: bool = False
    pslc: bool = False

    # Timing trackers: time since an anchor event (None = no anchor /
    # arbitrarily long ago).  since_data_end may be transiently
    # negative inside the segment that carries the burst.
    since_confirm: Optional[Iv] = None
    since_ccol: Optional[Iv] = None
    since_cmd: Optional[Iv] = None
    since_data_end: Optional[Iv] = None
    ready_gap: Optional[Iv] = None
    prev_wire: Optional[str] = None      # cmd|addr|data_out|data_in

    # Dataflow environment.
    regs_def: set = field(default_factory=set)
    regs_maybe: set = field(default_factory=set)
    handles: dict = field(default_factory=dict)        # definitely declared
    handles_maybe: dict = field(default_factory=dict)  # declared on some path
    terminated: bool = False

    def clone(self) -> "_State":
        twin = _State(**{f.name: getattr(self, f.name)
                         for f in dataclasses.fields(self)})
        twin.regs_def = set(self.regs_def)
        twin.regs_maybe = set(self.regs_maybe)
        twin.handles = dict(self.handles)
        twin.handles_maybe = dict(self.handles_maybe)
        if self.busy is not None:
            twin.busy = _Busy(self.busy.kind, self.busy.remaining,
                              self.busy.started_at)
        if self.suspended is not None:
            twin.suspended = _Busy(self.suspended.kind,
                                   self.suspended.remaining,
                                   self.suspended.started_at)
        return twin

    # -- time ---------------------------------------------------------

    def advance(self, dt: Iv) -> None:
        """Let ``dt`` nanoseconds elapse (no wire activity)."""
        for name in ("since_confirm", "since_ccol", "since_cmd",
                     "since_data_end", "ready_gap"):
            anchor = getattr(self, name)
            if anchor is not None:
                setattr(self, name, anchor + dt)
        if self.busy is not None:
            remaining = self.busy.remaining.minus(dt)
            if remaining.hi <= 0:
                # Proven complete: the ready edge landed somewhere in
                # [-hi, -lo] nanoseconds ago.
                self.ready_gap = Iv(max(0.0, -remaining.hi),
                                    max(0.0, -remaining.lo))
                self._complete_busy()
            else:
                self.busy.remaining = remaining
        if self.cache_busy is not None:
            remaining = self.cache_busy.minus(dt)
            self.cache_busy = None if remaining.hi <= 0 else remaining
        if self.cache_prog is not None:
            remaining = self.cache_prog.minus(dt)
            self.cache_prog = None if remaining.hi <= 0 else remaining
        # A suspended operation's array clock is stopped: no change.

    def _complete_busy(self) -> None:
        self.busy = None
        if self.pending_arm is not None:
            self.armed = self.pending_arm
            if self.pending_loads:
                self.register_loaded = "yes"
            self.pending_arm = None
            self.pending_loads = False

    # -- join (Branch merge / loop exits) -----------------------------

    @staticmethod
    def _join_iv(a: Optional[Iv], b: Optional[Iv]) -> Optional[Iv]:
        # None means "arbitrarily long ago" — joining keeps the
        # tighter anchor so minimum-gap checks stay sound: the check
        # applies on the path where the anchor exists.
        if a is None:
            return b if b is None else Iv(b.lo, INF)
        if b is None:
            return Iv(a.lo, INF)
        return a.hull(b)

    @staticmethod
    def join(a: "_State", b: "_State") -> "_State":
        if a.terminated:
            return b
        if b.terminated:
            return a
        out = a.clone()
        # Busy windows: keep the pessimistic union.
        if a.busy is None and b.busy is None:
            out.busy = None
        else:
            busys = [s.busy for s in (a, b) if s.busy is not None]
            kind = busys[0].kind if all(x.kind == busys[0].kind
                                        for x in busys) else "unknown"
            remaining = busys[0].remaining
            for extra in busys[1:]:
                remaining = remaining.hull(extra.remaining)
            if len(busys) == 1:
                # The other path is already idle: may-busy at most.
                remaining = Iv(min(remaining.lo, 0.0), remaining.hi)
            out.busy = _Busy(kind, remaining, busys[0].started_at)
        for name in ("cache_busy", "cache_prog"):
            iva, ivb = getattr(a, name), getattr(b, name)
            if iva is None and ivb is None:
                setattr(out, name, None)
            else:
                merged = iva if iva is not None else ivb
                if iva is not None and ivb is not None:
                    merged = iva.hull(ivb)
                else:
                    merged = Iv(min(merged.lo, 0.0), merged.hi)
                setattr(out, name, merged)
        if a.suspended is None and b.suspended is None:
            out.suspended = None
        elif a.suspended is not None and b.suspended is not None:
            kind = (a.suspended.kind if a.suspended.kind == b.suspended.kind
                    else "unknown")
            out.suspended = _Busy(
                kind, a.suspended.remaining.hull(b.suspended.remaining))
        else:
            present = a.suspended or b.suspended
            out.suspended = _Busy("unknown", Iv(0, present.remaining.hi))
        out.pending_arm = (a.pending_arm if a.pending_arm == b.pending_arm
                           else a.pending_arm or b.pending_arm)
        out.pending_loads = a.pending_loads or b.pending_loads
        out.armed = a.armed if a.armed == b.armed else "unknown"
        out.register_loaded = (a.register_loaded
                               if a.register_loaded == b.register_loaded
                               else "maybe")
        out.phase = a.phase if a.phase == b.phase else "idle"
        out.pending_opcode = (a.pending_opcode
                              if a.pending_opcode == b.pending_opcode else None)
        out.have_row = a.have_row and b.have_row
        out.status_addr_pending = False
        out.pslc = a.pslc or b.pslc
        for name in ("since_confirm", "since_ccol", "since_cmd",
                     "since_data_end", "ready_gap"):
            setattr(out, name,
                    _State._join_iv(getattr(a, name), getattr(b, name)))
        out.prev_wire = a.prev_wire if a.prev_wire == b.prev_wire else None
        out.regs_def = a.regs_def & b.regs_def
        out.regs_maybe = a.regs_maybe | b.regs_maybe
        out.handles = {k: v for k, v in a.handles.items()
                       if k in b.handles}
        out.handles_maybe = {**a.handles_maybe, **b.handles_maybe}
        out.terminated = False
        return out


# ---------------------------------------------------------------------------
# Expression reads (OPV403 support)
# ---------------------------------------------------------------------------


def _reg_reads(value, out: set) -> None:
    if isinstance(value, Reg):
        out.add(value.name)
    elif isinstance(value, E):
        args = value.args[1:] if value.op == "hook" else value.args
        for arg in args:
            _reg_reads(arg, out)
    elif isinstance(value, (tuple, list)):
        for item in value:
            _reg_reads(item, out)


def _has_dynamic(value) -> bool:
    if isinstance(value, (Reg, HandleRef, E)):
        return True
    if isinstance(value, (tuple, list)):
        return any(_has_dynamic(item) for item in value)
    return False


# ---------------------------------------------------------------------------
# The verifier
# ---------------------------------------------------------------------------


class _Verifier:
    def __init__(self, program: OpProgram, vendor, mode: str,
                 luns: Optional[int], watchdog_ns: Optional[int]):
        self.program = program
        self.vendor = vendor
        self.mode = mode
        self.bank = UfsmBank(interface_by_name(mode))
        # Checks run against the vendor-tightened timing set; segment
        # layout comes from the mode's own timing (what the emitters
        # guarantee on the wire).
        self.req = vendor.timing_set(mode) if vendor is not None \
            else self.bank.ca_writer.timing
        self.luns = luns if luns is not None \
            else getattr(vendor, "luns_per_channel", 8)
        if watchdog_ns is None:
            from repro.core.recovery import Watchdog

            watchdog_ns = Watchdog.for_vendor(vendor).budget_ns
        self.watchdog_ns = watchdog_ns
        self.findings: list[VerifyFinding] = []
        self.inexact = False
        self._poll_round_ns = self._status_round_ns()

    # -- plumbing -----------------------------------------------------

    def flag(self, rule: str, severity: str, where: str, message: str,
             hint: str = "") -> None:
        self.findings.append(VerifyFinding(
            rule=rule, severity=severity, program=self.program.name,
            where=where, message=message, hint=hint))

    def _status_round_ns(self) -> int:
        from repro.core.ufsm.ca_writer import cmd as cmd_latch

        latch = self.bank.ca_writer.emit([cmd_latch(CMD.READ_STATUS)])
        data = self.bank.data_reader.emit(1, DmaHandle(None, 0, 1))
        return latch.duration_ns + data.duration_ns

    def _jittered(self, mean_ns: float, scale: float = 1.0) -> Iv:
        jitter = self.vendor.timing.jitter if self.vendor is not None else 0.0
        base = mean_ns * scale
        return Iv(base * (1.0 - jitter), base * (1.0 + jitter))

    def _read_iv(self, st: _State) -> Iv:
        scale = 1.0
        if st.pslc:
            from repro.flash.cell import CellMode, profile_for

            scale = profile_for(CellMode.PSLC).read_time_scale
        return self._jittered(self.vendor.timing.t_read_ns, scale)

    def _prog_iv(self, st: _State) -> Iv:
        scale = 1.0
        if st.pslc:
            from repro.flash.cell import CellMode, profile_for

            scale = profile_for(CellMode.PSLC).program_time_scale
        return self._jittered(self.vendor.timing.t_prog_ns, scale)

    # -- entry --------------------------------------------------------

    def run(self) -> list[VerifyFinding]:
        state = _State()
        self._exec_nodes(self.program.nodes, "nodes", state, depth=0)
        self._plan_findings()
        return self.findings

    def _plan_findings(self) -> None:
        """OPV501: name each reason the TLM fast path demotes this
        program to the generic interpreter."""
        from repro.core.opir.summarize import plan_blockers

        try:
            blockers = plan_blockers(self.program, self.vendor)
        except Exception as exc:  # defensive: never crash the verifier
            self.flag("OPV501", "info", "nodes",
                      f"plan analysis failed: {exc}")
            return
        for where, reason in blockers:
            self.flag(
                "OPV501", "info", where,
                f"not TLM-plannable: {reason}",
                hint="the program runs on the exact interpreter path; "
                     "this is informational, not a defect",
            )

    # -- step walk ----------------------------------------------------

    def _exec_nodes(self, nodes, prefix: str, st: _State, depth: int) -> None:
        for index, node in enumerate(nodes):
            if st.terminated:
                return  # OPL009 reports the dead tail
            path = f"{prefix}[{index}]"
            if isinstance(node, Txn):
                self._exec_txn(node, path, st)
            elif isinstance(node, DeclareHandle):
                st.handles[node.name] = node
                st.handles_maybe[node.name] = node
            elif isinstance(node, PollStatus):
                self._exec_poll(node, path, st)
            elif isinstance(node, SoftSleep):
                self._check_reads(node.ns, path, st)
                if isinstance(node.ns, int):
                    st.advance(Iv.at_least(node.ns))
                else:
                    self.inexact = True
                    st.advance(Iv(0, INF))
            elif isinstance(node, SetReg):
                self._check_reads(node.expr, path, st)
                st.regs_def.add(node.name)
                st.regs_maybe.add(node.name)
            elif isinstance(node, CallOp):
                self._exec_call(node, path, st, depth)
            elif isinstance(node, Branch):
                self._exec_branch(node, path, st, depth)
            elif isinstance(node, Loop):
                self._exec_loop(node, path, st, depth)
            elif isinstance(node, BreakIf):
                # Loop-aware handling lives in _exec_loop; a stray
                # BreakIf outside a loop only defines its registers.
                self._check_reads(node.pred, path, st)
                for name, expr in node.sets:
                    self._check_reads(expr, path, st)
                    st.regs_maybe.add(name)
            elif isinstance(node, SelectFirstReady):
                self._exec_select(node, path, st)
            elif isinstance(node, Return):
                self._check_reads(node.expr, path, st)
                st.terminated = True

    def _exec_branch(self, node: Branch, path: str, st: _State,
                     depth: int) -> None:
        self._check_reads(node.pred, path, st)
        taken = const_pred(node.pred)
        if taken is True:
            self._exec_nodes(node.then, f"{path}.then", st, depth)
            return
        if taken is False:
            self._exec_nodes(node.orelse, f"{path}.orelse", st, depth)
            return
        then_state = st.clone()
        else_state = st.clone()
        self._exec_nodes(node.then, f"{path}.then", then_state, depth)
        self._exec_nodes(node.orelse, f"{path}.orelse", else_state, depth)
        merged = _State.join(then_state, else_state)
        if then_state.terminated and else_state.terminated:
            merged.terminated = True
        self._copy_into(st, merged)

    def _exec_loop(self, node: Loop, path: str, st: _State,
                   depth: int) -> None:
        if node.count <= 0:
            return
        st.regs_def.add(node.var)
        st.regs_maybe.add(node.var)
        exits: list[_State] = []
        for _ in range(node.count):
            self._exec_body_with_breaks(node.body, f"{path}.body", st,
                                        depth, exits)
            if st.terminated:
                break
        merged = st
        for snapshot in exits:
            merged = _State.join(merged, snapshot)
        self._copy_into(st, merged)

    def _exec_body_with_breaks(self, nodes, prefix: str, st: _State,
                               depth: int, exits: list) -> None:
        """One loop-body iteration, collecting BreakIf exit snapshots."""
        for index, node in enumerate(nodes):
            if st.terminated:
                return
            path = f"{prefix}[{index}]"
            if isinstance(node, BreakIf):
                self._check_reads(node.pred, path, st)
                snapshot = st.clone()
                for name, expr in node.sets:
                    snapshot.regs_def.add(name)
                    snapshot.regs_maybe.add(name)
                exits.append(snapshot)
                for name, _ in node.sets:
                    st.regs_maybe.add(name)
                self.inexact = True
            else:
                self._exec_one(node, path, st, depth)

    def _exec_one(self, node, path: str, st: _State, depth: int) -> None:
        """Dispatch one step node at an explicit path."""
        prefix, _, _ = path.rpartition("[")
        # Reuse _exec_nodes' dispatch for a single node by faking a
        # one-element sequence rooted at the node's own path.
        saved = node
        if isinstance(saved, Txn):
            self._exec_txn(saved, path, st)
        elif isinstance(saved, DeclareHandle):
            st.handles[saved.name] = saved
            st.handles_maybe[saved.name] = saved
        elif isinstance(saved, PollStatus):
            self._exec_poll(saved, path, st)
        elif isinstance(saved, SoftSleep):
            self._check_reads(saved.ns, path, st)
            if isinstance(saved.ns, int):
                st.advance(Iv.at_least(saved.ns))
            else:
                self.inexact = True
                st.advance(Iv(0, INF))
        elif isinstance(saved, SetReg):
            self._check_reads(saved.expr, path, st)
            st.regs_def.add(saved.name)
            st.regs_maybe.add(saved.name)
        elif isinstance(saved, CallOp):
            self._exec_call(saved, path, st, depth)
        elif isinstance(saved, Branch):
            self._exec_branch(saved, path, st, depth)
        elif isinstance(saved, Loop):
            self._exec_loop(saved, path, st, depth)
        elif isinstance(saved, SelectFirstReady):
            self._exec_select(saved, path, st)
        elif isinstance(saved, Return):
            self._check_reads(saved.expr, path, st)
            st.terminated = True

    @staticmethod
    def _copy_into(dst: _State, src: _State) -> None:
        if dst is src:
            return
        for f in dataclasses.fields(_State):
            setattr(dst, f.name, getattr(src, f.name))

    # -- dataflow -----------------------------------------------------

    def _check_reads(self, value, where: str, st: _State) -> None:
        reads: set = set()
        _reg_reads(value, reads)
        for name in sorted(reads):
            if name not in st.regs_maybe:
                self.flag(
                    "OPV403", "warning", where,
                    f"register {name!r} is read but never assigned on any "
                    f"path to this point — the interpreter yields None",
                    hint="SetReg the register (even to None) before "
                         "reading it, or drop the read",
                )
                st.regs_maybe.add(name)  # report once per register

    def _check_handle(self, node: DataXfer, where: str, st: _State) -> None:
        handle = node.handle
        if not isinstance(handle, HandleRef):
            return
        name = handle.name
        decl = st.handles_maybe.get(name)
        if decl is None:
            self.flag(
                "OPV404", "error", where,
                f"handle {name!r} is transferred but no execution path "
                f"declares it — the interpreter raises KeyError",
                hint="DeclareHandle must dominate every DataXfer that "
                     "references the handle",
            )
            return
        if name not in st.handles:
            self.flag(
                "OPV404", "warning", where,
                f"handle {name!r} is only declared on some paths to this "
                f"transfer",
            )
        source = decl.source
        if node.direction == "out" and source not in ("from_flash", "capture"):
            self.flag(
                "OPV401", "error", where,
                f"data-out burst sinks into handle {name!r} minted with "
                f"source={source!r} — a {source} window is never staged "
                f"for capture (the memory sanitizer flags this as an "
                f"unstaged DMA read at run time)",
                hint="mint data-out destinations with 'from_flash' or "
                     "'capture'",
            )
        if node.direction == "in" and source not in ("to_flash", "inline"):
            self.flag(
                "OPV401", "error", where,
                f"data-in burst sources from handle {name!r} minted with "
                f"source={source!r} — its DRAM window was never written "
                f"(SAN301 at run time)",
                hint="mint data-in sources with 'to_flash' or 'inline'",
            )
        declared = decl.nbytes or (len(decl.data)
                                   if source == "inline" else 0)
        if declared and node.nbytes != declared:
            self.flag(
                "OPV402", "error", where,
                f"transfer moves {node.nbytes} B but handle {name!r} was "
                f"minted for {declared} B (SAN303 at run time)",
                hint="size the DeclareHandle window to the burst",
            )

    # -- chip select --------------------------------------------------

    def _check_mask(self, mask, where: str, what: str) -> None:
        if mask is None:
            return  # the operation's single target die
        if not isinstance(mask, int):
            self.inexact = True  # runtime-computed mask (gang winner)
            return
        selected = bin(mask & ((1 << self.luns) - 1)).count("1")
        if selected == 1:
            return
        if selected == 0:
            self.flag(
                "OPV103", "error", where,
                f"{what} addressed to a deselected die (chip_mask="
                f"0b{mask:b} selects nothing on a {self.luns}-LUN "
                f"channel) — DQ would float (SAN203 at run time)",
                hint="set chip_mask to exactly one populated LUN position",
            )
        else:
            self.flag(
                "OPV103", "error", where,
                f"{what} with {selected} dies selected (chip_mask="
                f"0b{mask:b}) — multiple dies would drive DQ "
                f"simultaneously (SAN203 at run time)",
                hint="broadcast is legal for command/address latches "
                     "only; read data from one die at a time",
            )

    # -- transactions -------------------------------------------------

    def _exec_txn(self, node: Txn, path: str, st: _State) -> None:
        st.advance(Iv(0, INF))  # software gap before dispatch
        for index, segment in enumerate(node.segments):
            where = f"{path}.segments[{index}]"
            if isinstance(segment, LatchSeq):
                self._exec_latchseq(segment, where, st)
            elif isinstance(segment, TimerWait):
                self._exec_timer(segment, where, st)
            elif isinstance(segment, DataXfer):
                self._exec_xfer(segment, where, st)

    def _exec_latchseq(self, seg: LatchSeq, where: str, st: _State) -> None:
        if not seg.latches:
            return  # OPL005 reports it
        if seg.via_chip_control:
            self.inexact = True  # broadcast conflates the replica dies
        is_status = any(latch.kind == "cmd" and int(latch.value) in
                        (CMD.READ_STATUS, CMD.READ_STATUS_ENHANCED)
                        for latch in seg.latches)
        if is_status and not seg.via_chip_control:
            self._check_mask(seg.chip_mask, where, "status poll")
        try:
            emitted = self.bank.ca_writer.emit(list(seg.latches))
        except Exception as exc:
            self.flag("OPV104", "error", where, f"unlowerable latch "
                      f"sequence: {exc}")
            return
        cursor = 0
        for offset, action in emitted.actions:
            st.advance(Iv.exact(offset - cursor))
            cursor = offset
            kind = type(action).__name__
            if kind == "CommandLatch":
                self._on_command(action.opcode, where, st)
            elif kind == "AddressLatch":
                self._on_address(action.address_bytes, where, st)
        st.advance(Iv.exact(emitted.duration_ns - cursor))

    def _exec_timer(self, seg: TimerWait, where: str, st: _State) -> None:
        try:
            ns = resolve_timer_ns(self.bank, seg)
        except Exception:
            return  # OPL007 reports it
        if isinstance(ns, int):
            st.advance(Iv.exact(ns))
        else:
            self.inexact = True
            st.advance(Iv(0, INF))

    def _exec_xfer(self, seg: DataXfer, where: str, st: _State) -> None:
        if not isinstance(seg.nbytes, int) or seg.nbytes <= 0:
            return
        if seg.direction == "out":
            self._check_mask(seg.chip_mask, where, "data-out burst")
            emitted = self.bank.data_reader.emit(
                seg.nbytes, DmaHandle(None, 0, seg.nbytes))
        elif seg.direction == "in":
            emitted = self.bank.data_writer.emit(
                seg.nbytes, DmaHandle(None, 0, seg.nbytes),
                after_address=seg.after_address)
        else:
            return
        self._check_handle(seg, where, st)
        offset, _action = emitted.actions[0]
        st.advance(Iv.exact(offset))
        wire_ns = self.bank.interface.transfer_ns(seg.nbytes)
        if seg.direction == "out":
            self._on_data_out(seg.nbytes, where, st)
            st.since_data_end = Iv.exact(-wire_ns)
        else:
            self._on_data_in(seg.nbytes, where, st)
        st.prev_wire = "data_out" if seg.direction == "out" else "data_in"
        st.advance(Iv.exact(emitted.duration_ns - offset))

    # -- the ONFI automaton (mirrors repro.flash.lun) ------------------

    def _on_command(self, opcode: int, where: str, st: _State) -> None:
        cls = classify_opcode(opcode)

        # OPV204 — tRHW turnaround after a data-out burst.
        if (st.prev_wire == "data_out" and st.since_data_end is not None
                and st.since_data_end.lo < self.req.tRHW):
            self.flag(
                "OPV204", "error", where,
                f"{opcode_name(opcode)} can latch "
                f"{st.since_data_end.describe()} after a data-out burst "
                f"(tRHW={self.req.tRHW} ns)",
                hint="give the RE#-to-WE# turnaround time after a burst",
            )

        # OPV101 — command while array-busy (SAN201).
        if (st.busy is not None
                and cls not in (CommandClass.STATUS, CommandClass.RESET)
                and opcode != CMD.VENDOR_SUSPEND):
            certainty = ("always busy" if st.busy.remaining.lo > 0
                         else "may still be busy")
            self.flag(
                "OPV101", "error", where,
                f"opcode {opcode_name(opcode)} latches while the "
                f"{st.busy.kind} operation {certainty} "
                f"(remaining {st.busy.remaining.describe()}) — SAN201 / "
                f"LunProtocolError at run time",
                hint="poll READ STATUS until RDY (or suspend the "
                     "operation) before the next command",
            )
        if (st.cache_prog is not None
                and cls in (CommandClass.PROGRAM_CONFIRM,
                            CommandClass.CACHE_PROGRAM_CONFIRM)):
            self.flag(
                "OPV101", "error", where,
                f"{opcode_name(opcode)} confirms a program while a cache "
                f"program is still in the array "
                f"(remaining {st.cache_prog.describe()})",
                hint="poll ARDY before confirming the next cache page",
            )

        # OPV201 — tWB before a status poll after a confirm.
        if (cls is CommandClass.STATUS and st.since_confirm is not None
                and st.since_confirm.lo < self.req.tWB):
            self.flag(
                "OPV201", "error", where,
                f"status poll can follow the confirm by "
                f"{st.since_confirm.describe()} (tWB={self.req.tWB} ns)",
            )

        # State machine (mirror of Lun._on_command).
        if cls is CommandClass.STATUS:
            st.armed = "status"
            st.status_addr_pending = opcode == CMD.READ_STATUS_ENHANCED
        elif cls is CommandClass.RESET:
            st.busy = _Busy(
                "reset", Iv.exact(self.vendor.timing.t_reset_ns), where)
            st.pending_arm = None
            st.pending_loads = False
            st.suspended = None
            st.cache_prog = None
            st.cache_busy = None
            st.armed = "none"
            st.pslc = False
            st.phase = "idle"
            st.since_confirm = Iv.exact(0)
        elif opcode == CMD.VENDOR_SUSPEND:
            self._do_suspend(where, st)
        elif opcode == CMD.VENDOR_RESUME:
            if st.suspended is not None:
                st.busy = _Busy(
                    st.suspended.kind,
                    st.suspended.remaining
                    + Iv.exact(self.vendor.timing.t_resume_ns),
                    where)
                st.suspended = None
            # else: resuming an externally suspended op — unknowable.
        elif opcode == CMD.VENDOR_PSLC_ENTER:
            if not getattr(self.vendor, "supports_pslc", True):
                self.flag("OPV104", "error", where,
                          f"{self.vendor.name} has no pSLC opcode")
            st.pslc = True
        elif opcode == CMD.VENDOR_PSLC_EXIT:
            st.pslc = False
        elif cls is CommandClass.READ:
            st.pending_opcode = opcode
            st.addr_format = "full"
            st.phase = "await_addr"
        elif cls is CommandClass.READ_CONFIRM:
            self._confirm(st, where, "read",
                          queue=(opcode == CMD.MP_READ_2ND))
        elif cls in (CommandClass.CACHE_READ_CONFIRM,
                     CommandClass.CACHE_READ_END):
            self._confirm_cache_read(
                st, where, final=(cls is CommandClass.CACHE_READ_END))
        elif cls is CommandClass.CHANGE_READ_COLUMN:
            if opcode == CMD.CHANGE_READ_COL_1ST:
                st.pending_opcode = opcode
                st.addr_format = "col"
                st.phase = "await_addr"
            elif opcode == CMD.CHANGE_READ_COL_ENH_1ST:
                st.pending_opcode = opcode
                st.addr_format = "full"
                st.phase = "await_addr"
            else:  # 0xE0 confirm: the register becomes readable
                st.armed = "register"
                st.phase = "idle"
                st.since_ccol = Iv.exact(0)
        elif cls is CommandClass.PROGRAM:
            st.pending_opcode = opcode
            st.addr_format = "full"
            st.phase = "await_addr"
        elif cls is CommandClass.PROGRAM_CONFIRM:
            self._confirm(st, where, "program",
                          queue=(opcode == CMD.MP_PROGRAM_2ND))
        elif cls is CommandClass.CACHE_PROGRAM_CONFIRM:
            if self._require_row(st, where):
                st.cache_prog = self._prog_iv(st)
                st.phase = "idle"
        elif cls is CommandClass.CHANGE_WRITE_COLUMN:
            st.pending_opcode = opcode
            st.addr_format = "col"
            st.phase = "await_addr"
        elif cls is CommandClass.ERASE:
            st.pending_opcode = opcode
            st.addr_format = "row"
            st.phase = "await_addr"
        elif cls is CommandClass.ERASE_CONFIRM:
            self._confirm(st, where, "erase",
                          queue=(opcode == CMD.MP_ERASE_2ND))
        elif cls is CommandClass.IDENT:
            st.pending_opcode = opcode
            st.addr_format = "one"
            st.phase = "await_addr"
        elif cls is CommandClass.FEATURES:
            st.pending_opcode = opcode
            st.addr_format = "one"
            st.phase = "await_addr"
        else:
            self.flag("OPV104", "error", where,
                      f"unsupported opcode 0x{opcode:02X} — the die "
                      f"model raises LunProtocolError")

        if cls in _CONFIRM_CLASSES:
            st.since_confirm = Iv.exact(0)
        st.prev_wire = "cmd"
        st.since_cmd = Iv.exact(0)

    def _do_suspend(self, where: str, st: _State) -> None:
        if not getattr(self.vendor, "supports_suspend", True):
            self.flag("OPV104", "error", where,
                      f"{self.vendor.name} has no suspend opcode")
            return
        if st.busy is not None:
            if st.busy.kind in _SUSPENDABLE_KINDS:
                st.suspended = st.busy
                st.busy = None
            else:
                self.flag(
                    "OPV104", "error", where,
                    f"suspend latches while the die runs a "
                    f"non-suspendable {st.busy.kind} operation — "
                    f"LunProtocolError at run time",
                    hint="only program/erase array times are suspendable",
                )
        else:
            # Called in isolation: a caller-owned program/erase may be
            # in flight (the composed preemptive-erase idiom).
            st.suspended = _Busy("unknown", Iv(0, INF), where)
            self.inexact = True

    def _require_row(self, st: _State, where: str) -> bool:
        if st.phase != "await_confirm" or not st.have_row:
            self.flag(
                "OPV104", "error", where,
                "confirm latched without a full address — "
                "LunProtocolError / TCK001 at run time",
                hint="issue the command, the full row address, then the "
                     "confirm cycle",
            )
            return False
        return True

    def _confirm(self, st: _State, where: str, kind: str,
                 queue: bool) -> None:
        if not self._require_row(st, where):
            return
        if queue:
            st.busy = _Busy(
                "dummy", Iv.exact(self.vendor.timing.t_dbsy_ns), where)
            st.phase = "idle"
            return
        if kind == "read":
            st.busy = _Busy("read", self._read_iv(st), where)
            st.pending_arm = "register"
            st.pending_loads = True
        elif kind == "program":
            st.busy = _Busy("program", self._prog_iv(st), where)
        else:
            st.busy = _Busy(
                "erase", self._jittered(self.vendor.timing.t_bers_ns), where)
        st.phase = "idle"

    def _confirm_cache_read(self, st: _State, where: str,
                            final: bool) -> None:
        if not st.have_row:
            self.flag(
                "OPV104", "error", where,
                "cache read confirm without a prior page read — "
                "LunProtocolError at run time",
                hint="issue a full PAGE READ before READ CACHE",
            )
        if st.register_loaded == "no":
            self.flag(
                "OPV102", "error", where,
                "cache read flips an empty page register — the first tR "
                "never completed on this path (SAN202 at run time)",
                hint="poll RDY after the initial PAGE READ confirm",
            )
        elif st.register_loaded == "maybe":
            self.flag(
                "OPV102", "warning", where,
                "cache read may flip an empty page register on some paths",
            )
        st.armed = "register"
        st.register_loaded = "yes"
        if not final:
            st.cache_busy = self._read_iv(st)

    def _on_address(self, address_bytes, where: str, st: _State) -> None:
        if st.status_addr_pending:
            st.status_addr_pending = False
            st.prev_wire = "addr"
            return
        if st.phase != "await_addr" or st.pending_opcode is None:
            self.flag(
                "OPV104", "error", where,
                f"address latch ({len(tuple(address_bytes))} cycle(s)) "
                f"with no pending address-bearing command — "
                f"LunProtocolError / TCK003 at run time",
                hint="latch the command the address belongs to first",
            )
            st.prev_wire = "addr"
            return
        opcode = st.pending_opcode
        if st.addr_format in ("full", "row"):
            st.have_row = True
        st.phase = "await_confirm"
        if opcode == CMD.GET_FEATURES:
            st.busy = _Busy(
                "feature", Iv.exact(self.vendor.timing.t_feat_ns), where)
            st.pending_arm = "feature"
            st.pending_loads = False
        elif opcode == CMD.READ_ID:
            st.armed = "id"
            st.phase = "idle"
        elif opcode == CMD.READ_PARAMETER_PAGE:
            st.busy = _Busy(
                "param", Iv.exact(self.vendor.timing.t_param_read_ns), where)
            st.pending_arm = "param"
            st.pending_loads = False
        elif opcode == CMD.CHANGE_WRITE_COL:
            st.phase = "await_confirm" if st.have_row else "idle"
        st.prev_wire = "addr"

    def _on_data_out(self, nbytes: int, where: str, st: _State) -> None:
        # Arming discipline (SAN202 mirror).
        if st.armed == "status":
            pass  # status is readable at any time, busy included
        elif st.pending_arm is not None and st.busy is not None:
            certainty = ("before" if st.busy.remaining.lo > 0
                         else "possibly before")
            self.flag(
                "OPV102", "error", where,
                f"data-out burst streams the {st.pending_arm} source "
                f"{certainty} the {st.busy.kind} array time elapses "
                f"(remaining {st.busy.remaining.describe()}) — SAN202 at "
                f"run time",
                hint="poll READ STATUS (or wait past the worst-case "
                     "array time) before streaming data out",
            )
        elif st.armed == "none":
            self.flag(
                "OPV102", "error", where,
                "data-out burst with no data source armed on any path "
                "(SAN202 at run time)",
                hint="arm a source first: status/ID read, E0 column "
                     "confirm, or a completed array read",
            )
        elif st.armed == "register" and st.register_loaded == "no":
            self.flag(
                "OPV102", "error", where,
                "data-out burst reads an empty page register — no array "
                "read completed on this path (SAN202 at run time)",
            )
        elif st.armed == "register" and st.register_loaded == "maybe":
            self.flag(
                "OPV102", "warning", where,
                "data-out burst may read an empty page register on some "
                "paths",
            )

        # OPV202 — tWHR when the burst directly follows a command latch.
        if (st.prev_wire == "cmd" and st.since_cmd is not None
                and st.since_cmd.lo < self.req.tWHR):
            self.flag(
                "OPV202", "error", where,
                f"data-out can start {st.since_cmd.describe()} after the "
                f"command latch (tWHR={self.req.tWHR} ns)",
                hint="insert TimerWait(param='tWHR') (the C/A writer "
                     "only pads status/ID latches)",
            )
        # OPV203 — tRR after the R/B# ready edge (multi-byte bursts).
        if nbytes > 1 and st.ready_gap is not None:
            if st.ready_gap.lo < self.req.tRR:
                self.flag(
                    "OPV203", "error", where,
                    f"data-out can start {st.ready_gap.describe()} after "
                    f"R/B# ready (tRR={self.req.tRR} ns)",
                )
            st.ready_gap = None
        # OPV205 — tCCS after a column-change confirm.
        if st.since_ccol is not None:
            if st.since_ccol.lo < self.req.tCCS:
                self.flag(
                    "OPV205", "error", where,
                    f"burst can start {st.since_ccol.describe()} after "
                    f"CHANGE READ COLUMN (tCCS={self.req.tCCS} ns)",
                    hint="insert TimerWait(param='tCCS') between E0 and "
                         "the burst",
                )
            st.since_ccol = None

    def _on_data_in(self, nbytes: int, where: str, st: _State) -> None:
        if st.pending_opcode == CMD.SET_FEATURES:
            st.busy = _Busy(
                "feature", Iv.exact(self.vendor.timing.t_feat_ns), where)
            return
        # Program load path: the page register fills.
        st.register_loaded = "yes"

    # -- polls, gang selection, calls ---------------------------------

    def _exec_poll(self, node: PollStatus, path: str, st: _State) -> None:
        # The liveness proofs (OPV3xx) run against the busy window as it
        # stands when the previous step hands off — the interpreter
        # enters the loop immediately, so the pre-gap lower bound is the
        # honest "the die still needs at least this much" figure.  The
        # unbounded software gap is applied afterwards, before the
        # success semantics.
        self._check_mask(node.chip_mask, path, "status poll")
        period = effective_poll_period(
            node.period_ns if isinstance(node.period_ns, int)
            or node.period_ns is None else None)
        round_ns = self._poll_round_ns + period

        # OPV206 — effective sampling interval vs. the vendor minimum.
        t_poll_min = getattr(self.vendor.timing, "t_poll_min_ns", 0)
        if round_ns < t_poll_min:
            self.flag(
                "OPV206", "warning", path,
                f"effective poll interval {round_ns} ns (one status round "
                f"trip + period {period} ns) is below the vendor minimum "
                f"poll interval ({t_poll_min} ns)",
                hint="raise period_ns so the die's status path is not "
                     "hammered",
            )

        waiting = st.busy
        if node.until == "array_ready" and waiting is None:
            for pending in (st.cache_busy, st.cache_prog):
                if pending is not None:
                    waiting = _Busy("cache", pending, path)
                    break
        if waiting is not None:
            remaining = waiting.remaining
            max_polls = node.max_polls if isinstance(node.max_polls, int) \
                else 0
            # OPV301 — the budget provably cannot outlast the array time.
            budget_ns = max_polls * (round_ns + POLL_CPU_ALLOWANCE_NS)
            if remaining.lo > 0 and budget_ns < remaining.lo:
                self.flag(
                    "OPV301", "error", path,
                    f"poll budget provably exhausts: {max_polls} poll(s) "
                    f"cover at most {budget_ns:.0f} ns (with a "
                    f"{POLL_CPU_ALLOWANCE_NS} ns/round allowance) but the "
                    f"{waiting.kind} operation needs at least "
                    f"{remaining.lo:.0f} ns — RuntimeError / SAN402 at "
                    f"run time",
                    hint="raise max_polls or pace the loop with "
                         "period_ns",
                )
            # OPV302 — the wait provably blows the watchdog budget.
            if remaining.lo >= self.watchdog_ns:
                self.flag(
                    "OPV302", "error", path,
                    f"the {waiting.kind} operation needs at least "
                    f"{remaining.lo:.0f} ns — past the watchdog budget "
                    f"({self.watchdog_ns} ns); OpTimeout is guaranteed",
                )
            if (period >= self.watchdog_ns
                    and remaining.lo > 0):
                self.flag(
                    "OPV302", "error", path,
                    f"poll period {period} ns meets the watchdog budget "
                    f"({self.watchdog_ns} ns) while the die is busy — "
                    f"the first sleep alone can trip OpTimeout",
                )

        # Success semantics: at least one round trip elapses, then the
        # polled condition holds.
        st.advance(Iv.at_least(self._poll_round_ns))
        st._complete_busy()
        if node.until == "array_ready":
            st.cache_busy = None
            st.cache_prog = None
        st.ready_gap = Iv(0, INF)
        st.armed = "status"  # the final sample latched READ STATUS
        if node.dest:
            st.regs_def.add(node.dest)
            st.regs_maybe.add(node.dest)

    def _exec_select(self, node: SelectFirstReady, path: str,
                     st: _State) -> None:
        st.advance(Iv(0, INF))
        for position in node.positions:
            if not isinstance(position, int) or position < 0 \
                    or position >= self.luns:
                self.flag(
                    "OPV103", "error", path,
                    f"gang poll position {position!r} is outside the "
                    f"{self.luns}-LUN channel",
                )
        st.advance(Iv.at_least(self._poll_round_ns))
        st._complete_busy()
        st.ready_gap = Iv(0, INF)
        st.armed = "status"
        st.regs_def.update((node.dest_pos, node.dest_mask))
        st.regs_maybe.update((node.dest_pos, node.dest_mask))
        self.inexact = True  # which replica wins is data-dependent

    def _exec_call(self, node: CallOp, path: str, st: _State,
                   depth: int) -> None:
        for _name, value in node.kwargs:
            self._check_reads(value, path, st)
        if node.dest:
            st.regs_def.add(node.dest)
            st.regs_maybe.add(node.dest)
        if depth >= 8:
            self.flag("OPV501", "info", path,
                      "call depth exceeds 8 — callee not analyzed")
            self._havoc(st)
            return
        if any(_has_dynamic(value) for _name, value in node.kwargs):
            # The callee's shape depends on runtime registers; its die
            # effects are unknowable here.  Every callee is verified
            # standalone by the library sweep, so only the composition
            # goes unchecked.
            self.inexact = True
            self._havoc(st)
            return
        from repro.core.opir.registry import _cached_program, _resolved_builder

        kwargs = dict(node.kwargs)
        try:
            builder = _resolved_builder(node.op, self.vendor)
            callee = _cached_program(builder, kwargs)
        except Exception as exc:
            self.flag("OPV501", "info", path,
                      f"callee {node.op!r} not buildable here: {exc}")
            self._havoc(st)
            return
        # The callee shares the die and the clock but gets a fresh
        # interpreter environment (registers/handles), exactly like
        # run_program does.
        saved = (st.regs_def, st.regs_maybe, st.handles, st.handles_maybe,
                 st.terminated)
        st.regs_def, st.regs_maybe = set(), set()
        st.handles, st.handles_maybe = {}, {}
        st.terminated = False
        self._exec_nodes(callee.nodes, f"{path}.{node.op}", st, depth + 1)
        st.regs_def, st.regs_maybe, st.handles, st.handles_maybe, \
            st.terminated = saved

    def _havoc(self, st: _State) -> None:
        """Forget everything a skipped callee could have changed."""
        st.busy = None
        st.cache_busy = None
        st.cache_prog = None
        st.pending_arm = None
        st.pending_loads = False
        st.armed = "unknown"
        st.register_loaded = "maybe"
        st.phase = "idle"
        st.pending_opcode = None
        st.status_addr_pending = False
        st.since_confirm = None
        st.since_ccol = None
        st.since_cmd = None
        st.since_data_end = None
        st.ready_gap = None
        st.prev_wire = None


# ---------------------------------------------------------------------------
# Public API
# ---------------------------------------------------------------------------


def verify_program(
    program: OpProgram,
    vendor,
    mode: str = "NV-DDR2-200",
    luns: Optional[int] = None,
    watchdog_ns: Optional[int] = None,
) -> list[VerifyFinding]:
    """All OPV findings for one built program (empty list == clean)."""
    verifier = _Verifier(program, vendor, mode, luns, watchdog_ns)
    return verifier.run()


def verify_op(name: str, vendor, mode: str = "NV-DDR2-200",
              luns: Optional[int] = None, **kwargs) -> list[VerifyFinding]:
    """Build the program for ``name`` (honouring vendor overrides) and
    verify it."""
    from repro.core.opir.registry import resolve_builder

    program = resolve_builder(name, vendor)(**kwargs)
    return verify_program(program, vendor, mode=mode, luns=luns)


@dataclasses.dataclass(frozen=True)
class VerifyCoverage:
    """What the library sweep actually verified vs. what is registered
    (stock programs plus every vendor ``op_overrides`` name)."""

    registered: tuple[str, ...]
    verified: tuple[str, ...]
    skipped: tuple[str, ...]
    vendors: int
    modes: tuple[str, ...]

    @property
    def complete(self) -> bool:
        return not self.skipped

    def describe(self) -> str:
        line = (f"coverage: {len(self.verified)}/{len(self.registered)} "
                f"registered programs verified across {self.vendors} "
                f"vendor(s) x {len(self.modes)} mode(s)")
        if self.skipped:
            line += f"; skipped: {', '.join(self.skipped)}"
        return line


def _vendor_op_names(vendor) -> list[str]:
    """Stock program names plus this vendor's override registrations."""
    from repro.core.opir.registry import list_ops

    names = list(list_ops())
    for name, _builder in getattr(vendor, "op_overrides", ()) or ():
        if name not in names:
            names.append(name)
    return names


def verify_library(
    vendors: Optional[Iterable] = None,
    modes: Iterable[str] = DEFAULT_MODES,
    kwargs_for: Optional[Callable[[object], dict]] = None,
) -> tuple[list[VerifyFinding], VerifyCoverage]:
    """Build and verify every registered op — including programs
    registered only through ``VendorProfile.op_overrides`` — for every
    vendor profile and data mode, with coverage accounting."""
    from repro.flash.vendors import VENDOR_PROFILES

    if kwargs_for is None:
        from repro.analysis.op_lint import sample_kwargs

        kwargs_for = sample_kwargs
    if vendors is None:
        vendors = list(VENDOR_PROFILES.values())
    else:
        vendors = list(vendors)
    modes = tuple(modes)
    findings: list[VerifyFinding] = []
    registered: set[str] = set()
    verified: set[str] = set()
    skipped: set[str] = set()
    for vendor in vendors:
        samples = kwargs_for(vendor)
        names = _vendor_op_names(vendor)
        registered.update(names)
        for name in names:
            if name not in samples:
                skipped.add(name)
                findings.append(VerifyFinding(
                    "OPV000", "warning", name, "-",
                    f"no sample kwargs for {name!r}; not verified for "
                    f"{vendor.name}"))
                continue
            from repro.core.opir.registry import resolve_builder

            program = resolve_builder(name, vendor)(**samples[name])
            for mode in modes:
                findings.extend(verify_program(program, vendor, mode=mode))
            verified.add(name)
    coverage = VerifyCoverage(
        registered=tuple(sorted(registered)),
        verified=tuple(sorted(verified)),
        skipped=tuple(sorted(skipped)),
        vendors=len(vendors),
        modes=modes,
    )
    return findings, coverage

"""Channel logic analyzer.

The paper connects a Keysight 16862A to the flash pins "to forego any
software timestamping probes that could inject some variance" — in
simulation the tap is exact by construction.  The analyzer records
every transmitted segment with its decoded actions and offers the
derived measurements Fig. 11 needs: READ STATUS polling periods and
per-operation phase timelines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.bus.channel import Channel
from repro.onfi.commands import CMD, opcode_name
from repro.onfi.signals import (
    AddressLatch,
    CommandLatch,
    DataInAction,
    DataOutAction,
    SegmentKind,
    WaveformSegment,
)


@dataclass(frozen=True)
class AnalyzerEvent:
    """One decoded channel event."""

    time_ns: int
    kind: str            # "cmd" | "addr" | "data_out" | "data_in" | "wait" | "rb"
    detail: str
    opcode: Optional[int]
    chip_mask: int
    duration_ns: int     # wire time of data bursts; 0 for latches/edges

    @property
    def end_ns(self) -> int:
        return self.time_ns + self.duration_ns


@dataclass
class PollingSummary:
    """READ STATUS polling-period statistics for one capture."""

    periods_ns: list[int] = field(default_factory=list)

    @property
    def count(self) -> int:
        return len(self.periods_ns)

    @property
    def mean_ns(self) -> float:
        return sum(self.periods_ns) / len(self.periods_ns) if self.periods_ns else 0.0

    @property
    def max_ns(self) -> int:
        return max(self.periods_ns, default=0)

    @property
    def min_ns(self) -> int:
        return min(self.periods_ns, default=0)


class LogicAnalyzer:
    """Tap a channel and record decoded events.

    Pass a :class:`repro.obs.Tracer` (or attach one to the simulator
    with ``sim.set_tracer``) and every decoded pin-level event is also
    mirrored into the trace on an ``analyzer/<channel>`` track — with
    the *same* integer-ns timestamps as the kernel's own spans, so a
    Perfetto view lines the capture up against ops, CPU time, and
    segment occupancy exactly.
    """

    def __init__(self, channel: Channel, tracer=None, capture_rb: bool = False):
        self.channel = channel
        self.tracer = tracer  # explicit override; else the sim's tracer
        self.events: list[AnalyzerEvent] = []
        self.segments: list[WaveformSegment] = []
        self._armed = True
        channel.add_tap(self._on_segment)
        if capture_rb:
            # Probe the R/B# pin of every LUN.  Edge events are recorded
            # when the pin toggles, so — unlike segment events, whose
            # action offsets are known at transmit time — they can land
            # out of order in ``events``; consumers that need a timeline
            # (the timing checker) sort by time_ns first.
            for lun in channel.luns:
                lun.rb_taps.append(self._on_rb)

    # -- capture control --------------------------------------------------

    def arm(self) -> None:
        self._armed = True

    def halt(self) -> None:
        self._armed = False

    def clear(self) -> None:
        self.events.clear()
        self.segments.clear()

    def _on_segment(self, time_ns: int, segment: WaveformSegment) -> None:
        if not self._armed:
            return
        self.segments.append(segment)
        first_event = len(self.events)
        for offset, action in segment.actions:
            t = time_ns + offset
            if isinstance(action, CommandLatch):
                self.events.append(AnalyzerEvent(
                    t, "cmd", opcode_name(action.opcode), action.opcode,
                    segment.chip_mask, 0,
                ))
            elif isinstance(action, AddressLatch):
                detail = ",".join(f"{b:02X}" for b in action.address_bytes)
                self.events.append(AnalyzerEvent(
                    t, "addr", detail, None, segment.chip_mask, 0,
                ))
            elif isinstance(action, DataOutAction):
                self.events.append(AnalyzerEvent(
                    t, "data_out", f"{action.nbytes}B", None,
                    segment.chip_mask,
                    self.channel.interface.transfer_ns(action.nbytes),
                ))
            elif isinstance(action, DataInAction):
                self.events.append(AnalyzerEvent(
                    t, "data_in", f"{action.nbytes}B", None,
                    segment.chip_mask,
                    self.channel.interface.transfer_ns(action.nbytes),
                ))
            else:
                self.events.append(AnalyzerEvent(
                    t, "wait", action.describe(), None, segment.chip_mask, 0,
                ))
        tracer = self.tracer if self.tracer is not None \
            else self.channel.sim._tracer
        if tracer is not None:
            track = f"analyzer/{self.channel.name}"
            for event in self.events[first_event:]:
                tracer.instant(
                    "analyzer", track, f"{event.kind}:{event.detail}",
                    event.time_ns, {"chip_mask": event.chip_mask},
                )

    def _on_rb(self, lun, busy: bool) -> None:
        if not self._armed:
            return
        self.events.append(AnalyzerEvent(
            lun.sim.now, "rb", "busy" if busy else "ready", None,
            1 << lun.position, 0,
        ))

    # -- derived measurements --------------------------------------------

    def command_times(self, opcode: int, chip_mask: Optional[int] = None) -> list[int]:
        """Timestamps of every latch of ``opcode`` (optionally one chip)."""
        return [
            event.time_ns
            for event in self.events
            if event.kind == "cmd" and event.opcode == opcode
            and (chip_mask is None or event.chip_mask & chip_mask)
        ]

    def polling_summary(self, chip_mask: Optional[int] = None) -> PollingSummary:
        """Gaps between consecutive READ STATUS latches (Fig. 11).

        Periods are computed *within* each operation: a non-status
        command latch (a new READ preamble, a column change) closes the
        current polling train, so inter-operation gaps — which include
        data transfers — never pollute the figure.
        """
        summary = PollingSummary()
        previous_poll: Optional[int] = None
        for event in self.events:
            if event.kind != "cmd":
                continue
            if chip_mask is not None and not event.chip_mask & chip_mask:
                continue
            if event.opcode in (CMD.READ_STATUS, CMD.READ_STATUS_ENHANCED):
                if previous_poll is not None:
                    summary.periods_ns.append(event.time_ns - previous_poll)
                previous_poll = event.time_ns
            else:
                previous_poll = None  # a different command breaks the train
        return summary

    def operation_phases(self, chip_mask: int = 0b1) -> list[tuple[str, int]]:
        """(phase-name, time) milestones of READs on one chip —
        the annotated screenshot view of Fig. 11."""
        phases = []
        for event in self.events:
            if not event.chip_mask & chip_mask:
                continue
            if event.opcode == CMD.READ_1ST:
                phases.append(("READ cmd+addr", event.time_ns))
            elif event.opcode == CMD.READ_STATUS:
                phases.append(("READ STATUS poll", event.time_ns))
            elif event.opcode == CMD.CHANGE_READ_COL_1ST:
                phases.append(("CHANGE READ COLUMN", event.time_ns))
            elif event.kind == "data_out" and not event.detail.startswith("1B"):
                phases.append(("data transfer", event.time_ns))
        return phases

    @property
    def captured_span_ns(self) -> int:
        if not self.events:
            return 0
        return self.events[-1].time_ns - self.events[0].time_ns

    # -- export ------------------------------------------------------------

    def to_tracer(self, tracer) -> int:
        """Replay the finished capture into ``tracer`` (post-hoc merge).

        Timestamps are the capture's own integer-ns values, so the
        replay lands in perfect alignment with any kernel-side spans
        already in the tracer.  Returns the number of events emitted.
        """
        track = f"analyzer/{self.channel.name}"
        for event in self.events:
            tracer.instant(
                "analyzer", track, f"{event.kind}:{event.detail}",
                event.time_ns, {"chip_mask": event.chip_mask},
            )
        return len(self.events)

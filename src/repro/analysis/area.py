"""Structural FPGA area model (Table III).

Vivado reports LUTs, flip-flops, and BRAM per controller.  Without a
synthesizer, we estimate from structure: every FSM state contributes
next-state/output logic (LUTs) and state-register bits (FFs), every
datapath register contributes FFs plus some muxing LUTs, and buffers
map to BRAM above a threshold (below it they synthesize to distributed
LUT-RAM).  The coefficients are calibrated once against the paper's
Table III Cosmos+ column and then applied uniformly, so the *relative*
ordering of the three controllers is a genuine output of their
structural inventories, not an input.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable

from repro.core.ufsm.base import HardwareInventory

# Calibration coefficients (fit to the Cosmos+ async controller row of
# Table III: 3909 LUT / 3745 FF / 8 BRAM).
LUT_PER_STATE = 14.0         # next-state + output decoding per state
LUT_PER_REGISTER_BIT = 0.3   # input muxing / enables
FF_PER_STATE_BIT = 1.0       # one FF per state-encoding bit
FF_PER_REGISTER_BIT = 1.0
BRAM_THRESHOLD_BITS = 4_096  # smaller buffers become LUT-RAM
BITS_PER_BRAM = 18_432       # one Xilinx RAMB18
LUT_PER_SMALL_BUFFER_BIT = 0.08


@dataclass
class AreaEstimate:
    """Estimated FPGA resources."""

    lut: int
    ff: int
    bram: float

    def __add__(self, other: "AreaEstimate") -> "AreaEstimate":
        return AreaEstimate(
            lut=self.lut + other.lut,
            ff=self.ff + other.ff,
            bram=self.bram + other.bram,
        )

    def describe(self) -> str:
        return f"LUT={self.lut} FF={self.ff} BRAM={self.bram:g}"


def estimate_module(inventory: HardwareInventory) -> AreaEstimate:
    """Estimate one module from its structural inventory."""
    state_bits = max(math.ceil(math.log2(max(inventory.fsm_states, 2))), 1)
    lut = (
        inventory.fsm_states * LUT_PER_STATE
        + inventory.registers_bits * LUT_PER_REGISTER_BIT
    )
    ff = state_bits * FF_PER_STATE_BIT + inventory.registers_bits * FF_PER_REGISTER_BIT
    bram = 0.0
    if inventory.buffer_bits >= BRAM_THRESHOLD_BITS:
        bram = max(round(inventory.buffer_bits / BITS_PER_BRAM * 2) / 2, 0.5)
    else:
        lut += inventory.buffer_bits * LUT_PER_SMALL_BUFFER_BIT
        ff += inventory.buffer_bits
    return AreaEstimate(lut=int(round(lut)), ff=int(round(ff)), bram=bram)


def estimate_area(modules: Iterable[HardwareInventory]) -> AreaEstimate:
    """Sum the estimates of a controller's module inventory."""
    total = AreaEstimate(lut=0, ff=0, bram=0.0)
    for module in modules:
        total = total + estimate_module(module)
    return total


def babol_inventory(lun_count: int = 8) -> list[HardwareInventory]:
    """BABOL's hardware half: the shared µFSM bank, the Packetizer, the
    executor queue, and thin per-LUN chip-enable plumbing.  The complex
    logic lives in software, which is why this list is short — the
    Table III claim."""
    from repro.core.ufsm.base import UfsmBank
    from repro.onfi.datamodes import NVDDR2_200

    bank = UfsmBank(NVDDR2_200)
    modules = [ufsm.inventory() for ufsm in bank.all()]
    modules.append(
        HardwareInventory(fsm_states=24, registers_bits=300, buffer_bits=36_864,
                          comment="packetizer DMA engine")
    )
    modules.append(
        HardwareInventory(fsm_states=16, registers_bits=400, buffer_bits=36_864,
                          comment="executor + transaction descriptor queue")
    )
    modules.append(
        HardwareInventory(fsm_states=2, registers_bits=2 * lun_count,
                          comment="chip-enable fan-out")
    )
    # Page-path elasticity buffers (shared, both directions).
    modules.append(
        HardwareInventory(fsm_states=4, registers_bits=64, buffer_bits=36_864,
                          comment="data-path FIFOs")
    )
    return modules

"""Scale-out performance sweep and the perf-regression gate.

``repro perf`` sweeps channel count × queue depth over the
:class:`~repro.host.engine.ScaleEngine` stack and serializes two kinds
of numbers into one report (``BENCH_scale.json``):

* **simulated** throughput/latency — a pure function of the topology
  and job, identical on every machine, so the CI gate can hold them to
  a tight tolerance;
* **host wall-clock** dispatch cost (µs of host CPU per simulated
  command, ``time.process_time`` so co-tenant noise is excluded) plus
  kernel primitive microbenchmarks — machine-dependent, gated only by a
  generous ceiling.

:func:`compare_reports` is the gate itself: it diffs a fresh report
against the checked-in baseline and returns human-readable regression
lines (empty means pass).
"""

from __future__ import annotations

import time
from typing import Optional

from repro.sim import Simulator
from repro.sim.kernel import Timeout

DEFAULT_THROUGHPUT_TOLERANCE = 0.10
# Host-CPU ceiling headroom over the machine that generated a baseline.
# Wide on purpose: the gate should catch a hot path going off a cliff
# (an accidental O(n) scan per event), not CI-runner generation gaps.
DISPATCH_CEILING_FACTOR = 8.0
DISPATCH_CEILING_FLOOR_US = 400.0


def kernel_microbench(events: int = 20_000, rounds: int = 3) -> dict:
    """Isolated cost of the two hottest kernel primitives, in ns of host
    CPU per simulated event (min over ``rounds`` to shed scheduler noise).
    """
    from repro.sim.sync import Trigger

    def timed_chain() -> float:
        sim = Simulator()

        def chain():
            for _ in range(events):
                yield Timeout(10)

        started = time.process_time()
        sim.run_process(chain(), name="kbench-timeout")
        return (time.process_time() - started) / events * 1e9

    def trigger_fanout() -> float:
        sim = Simulator()
        trigger = Trigger(sim)
        fires = max(events // 2, 1)

        def waiter():
            for _ in range(fires):
                yield from trigger.wait()

        def firer():
            for _ in range(fires):
                trigger.fire()
                yield Timeout(1)

        sim.spawn(waiter(), name="kbench-waiter")
        started = time.process_time()
        sim.run_process(firer(), name="kbench-firer")
        return (time.process_time() - started) / fires * 1e9

    return {
        "events": events,
        "timeout_ns_per_event": round(min(timed_chain() for _ in range(rounds)), 1),
        "trigger_ns_per_fire": round(min(trigger_fanout() for _ in range(rounds)), 1),
    }


def cell_key(channels: int, queue_depth: int) -> str:
    return f"c{channels}_qd{queue_depth}"


def perf_spec(
    channel_counts=(1, 2, 4),
    queue_depths=(8, 32),
    luns_per_channel: int = 4,
    io_count: int = 192,
    vendor: str = "hynix",
    pattern: str = "sequential",
    fidelity: str = "waveform",
):
    """The sweep's :class:`~repro.config.specs.ExperimentSpec` template.

    Channels and queue depth are pinned at the sweep *maxima* — per-cell
    values are sweep axes, not spec identity — so a ``--quick`` run and
    the full sweep over the same axes hash identically and a baseline
    check can insist on matching ``spec_hash``.
    """
    from repro.config.specs import (
        ExperimentSpec,
        FtlSpec,
        StackSpec,
        WorkloadSpec,
    )

    spec = ExperimentSpec(
        name="perf",
        stack=StackSpec(
            vendor=vendor,
            channels=max(channel_counts),
            luns_per_channel=luns_per_channel,
            fidelity=fidelity,
            ftl=FtlSpec(),
        ),
        workload=WorkloadSpec(
            mix="read",
            pattern=pattern,
            io_count=io_count,
            queue_depth=max(queue_depths),
        ),
    )
    spec.validate()
    return spec


def run_scale_cell(
    channels: int,
    queue_depth: int,
    luns_per_channel: int = 4,
    io_count: int = 192,
    vendor: str = "hynix",
    pattern: str = "sequential",
    doorbell_batch: int = 4,
    fidelity: str = "waveform",
    spec=None,
) -> dict:
    """One sweep cell: build the stack, run the job, report both the
    simulated outcome and the host CPU cost of driving it.

    ``spec`` (the sweep template from :func:`perf_spec`) supersedes the
    individual kwargs; ``channels``/``queue_depth`` are this cell's
    sweep-axis coordinates either way.
    """
    import dataclasses

    from repro.config.build import build_stack
    from repro.host.engine import ScaleEngine, ScaleJob, run_scale_workload

    if spec is None:
        spec = perf_spec(
            channel_counts=(channels,), queue_depths=(queue_depth,),
            luns_per_channel=luns_per_channel, io_count=io_count,
            vendor=vendor, pattern=pattern, fidelity=fidelity,
        )
    else:
        doorbell_batch = spec.workload.doorbell_batch
    workload = spec.workload
    sim = Simulator()
    _, ftl = build_stack(sim, dataclasses.replace(spec.stack,
                                                  channels=channels))
    engine = ScaleEngine(sim, ftl, queue_depth=queue_depth,
                         doorbell_batch=min(doorbell_batch, queue_depth))
    job = ScaleJob(pattern=workload.pattern, opcode=workload.opcode(),
                   io_count=workload.io_count, seed=workload.seed,
                   working_set_pages=workload.working_set_pages,
                   dram_stride=workload.dram_stride,
                   dram_base=workload.dram_base)
    started = time.process_time()
    result = run_scale_workload(sim, engine, job)
    wall_s = time.process_time() - started
    cell = result.to_json_obj()
    cell["fidelity"] = spec.stack.fidelity
    cell["host"] = {
        "dispatch_us_per_op": round(wall_s / max(result.commands, 1) * 1e6, 1),
        "wall_s": round(wall_s, 4),
    }
    return cell


def run_perf_sweep(
    channel_counts=(1, 2, 4),
    queue_depths=(8, 32),
    luns_per_channel: int = 4,
    io_count: int = 192,
    vendor: str = "hynix",
    pattern: str = "sequential",
    quick: bool = False,
    microbench_events: Optional[int] = None,
    fidelity: str = "waveform",
    spec=None,
) -> dict:
    """The full ``repro perf`` report.

    ``quick`` narrows the sweep to its corner cells (1 and max channels
    at max QD) with the same per-cell parameters, so every quick cell is
    key-compatible with a full-sweep baseline.

    ``fidelity`` selects the execution backend for every cell and is
    recorded per cell; :func:`compare_reports` only compares cells run
    under the same tier (the tiers' simulated timelines legitimately
    differ in aggregate throughput).

    ``spec`` (a :func:`perf_spec` template) supersedes the per-stack
    kwargs — its ``stack.channels`` / ``workload.queue_depth`` are the
    sweep maxima, so quick and full runs of the same axes embed the
    same ``spec_hash``.  Without one, the equivalent template is
    constructed and embedded.
    """
    channel_counts = sorted(set(channel_counts))
    queue_depths = sorted(set(queue_depths))
    if spec is not None:
        spec.validate()
        channel_counts = sorted({
            ch for ch in channel_counts if ch <= spec.stack.channels
        } | {spec.stack.channels})
        queue_depths = sorted({
            qd for qd in queue_depths if qd <= spec.workload.queue_depth
        } | {spec.workload.queue_depth})
        luns_per_channel = spec.stack.luns_per_channel
        io_count = spec.workload.io_count
        vendor = spec.stack.vendor
        pattern = spec.workload.pattern
        fidelity = spec.stack.fidelity
    else:
        spec = perf_spec(
            channel_counts=channel_counts, queue_depths=queue_depths,
            luns_per_channel=luns_per_channel, io_count=io_count,
            vendor=vendor, pattern=pattern, fidelity=fidelity,
        )
    if quick:
        channel_counts = sorted({channel_counts[0], channel_counts[-1]})
        queue_depths = [queue_depths[-1]]
    if microbench_events is None:
        microbench_events = 4_000 if quick else 20_000

    cells = {}
    for ch in channel_counts:
        for qd in queue_depths:
            cells[cell_key(ch, qd)] = run_scale_cell(ch, qd, spec=spec)

    scaling = {}
    top_qd = queue_depths[-1]
    base_cell = cells.get(cell_key(channel_counts[0], top_qd))
    for ch in channel_counts[1:]:
        cell = cells.get(cell_key(ch, top_qd))
        if base_cell and cell and base_cell["throughput_mb_s"]:
            scaling[f"qd{top_qd}_{channel_counts[0]}to{ch}"] = round(
                cell["throughput_mb_s"] / base_cell["throughput_mb_s"], 2
            )

    worst_dispatch = max(
        cell["host"]["dispatch_us_per_op"] for cell in cells.values()
    )
    return {
        "bench": "scale",
        "cells": cells,
        "gates": {
            "dispatch_us_per_op_ceiling": round(
                max(worst_dispatch * DISPATCH_CEILING_FACTOR,
                    DISPATCH_CEILING_FLOOR_US), 1
            ),
            "throughput_tolerance": DEFAULT_THROUGHPUT_TOLERANCE,
        },
        "kernel": kernel_microbench(events=microbench_events),
        "params": {
            "io_count": io_count,
            "luns_per_channel": luns_per_channel,
            "pattern": pattern,
            "vendor": vendor,
        },
        "quick": quick,
        "scaling": scaling,
        "schema": 3,
        "spec": spec.resolved(),
        "spec_hash": spec.spec_hash(),
    }


def compare_reports(current: dict, baseline: dict) -> list[str]:
    """The perf-regression gate.  Returns one line per violation.

    * Simulated throughput of every shared cell must stay within the
      baseline's ``throughput_tolerance`` (simulated numbers are
      deterministic — drift means the simulated machine changed).
    * Host dispatch µs/op must stay under the baseline's recorded
      ceiling (wall-clock, so only a hard ceiling — not a tolerance).
    * Cell parameters must match, else the comparison is meaningless.
    * Cells are compared like-with-like on fidelity: a cell run under a
      different execution tier than the baseline's is excluded (the
      tiers' aggregate timelines legitimately differ).  Schema-1
      baselines predate the field and count as waveform.
    * ``spec_hash`` must match when both reports carry one.  Schema ≤ 2
      baselines predate experiment specs and count as "unknown spec":
      the cell-level comparisons still run, nothing fails on the
      missing hash.
    """
    problems: list[str] = []
    if current.get("params") != baseline.get("params"):
        problems.append(
            f"params mismatch: current {current.get('params')} "
            f"vs baseline {baseline.get('params')} — regenerate the baseline"
        )
        return problems
    cur_hash = current.get("spec_hash")
    base_hash = baseline.get("spec_hash")
    if cur_hash and base_hash and cur_hash != base_hash:
        problems.append(
            f"spec_hash mismatch: current {cur_hash} vs baseline "
            f"{base_hash} — different experiment, regenerate the baseline"
        )
        return problems

    gates = baseline.get("gates", {})
    tolerance = gates.get("throughput_tolerance", DEFAULT_THROUGHPUT_TOLERANCE)
    ceiling = gates.get("dispatch_us_per_op_ceiling")
    base_cells = baseline.get("cells", {})
    cur_cells = current.get("cells", {})

    shared = sorted(
        key for key in set(base_cells) & set(cur_cells)
        if (cur_cells[key].get("fidelity", "waveform")
            == base_cells[key].get("fidelity", "waveform"))
    )
    if not shared:
        problems.append(
            "no comparable cells between current run and baseline "
            "(same cell key AND same fidelity tier)"
        )
    for key in shared:
        base = base_cells[key]["throughput_mb_s"]
        cur = cur_cells[key]["throughput_mb_s"]
        if base and abs(cur - base) / base > tolerance:
            problems.append(
                f"{key}: simulated throughput {cur:.2f} MB/s drifted "
                f"{abs(cur - base) / base:+.1%} from baseline {base:.2f} MB/s "
                f"(tolerance {tolerance:.0%})"
            )
        if ceiling is not None:
            dispatch = cur_cells[key]["host"]["dispatch_us_per_op"]
            if dispatch > ceiling:
                problems.append(
                    f"{key}: host dispatch {dispatch:.1f} µs/op exceeds "
                    f"ceiling {ceiling:.1f} µs/op"
                )
    return problems

"""Crash-consistency fuzzing: kill power mid-workload, remount, verify.

One fuzz *seed* is an oracle plus a family of crashes:

1. **Oracle run** — a seeded read/write/trim/flush mix drives the
   queue-depth host engine (:class:`~repro.host.engine.ScaleEngine`,
   ``record_acks=True``) over a persistence-enabled
   :class:`~repro.ftl.ftl.ShardedFtl` to completion.  Its ack ledger
   and elapsed window are ground truth.
2. **Crash points** — ``points`` nanoseconds drawn uniformly from the
   oracle's window.  Each point rebuilds the identical stack, arms a
   :class:`~repro.faults.power.PowerCut` there, and replays the same
   command stream until the lights go out.
3. **Remount + verify** — the dead machine's media transplants into a
   fresh stack, :func:`~repro.ftl.spor.mount_sharded` brings it back,
   and the verifier checks the crash-consistency contract:

   * the crashed run's ack ledger is a prefix of the oracle's (the
     simulator is deterministic — a mismatch is a harness/kernel bug,
     not a durability bug, and exits ``EXIT_INTERNAL``);
   * no mapped LPN points at a torn page;
   * every host-acked write with no later trim reads back with its
     acked contents (or a newer version the host had already submitted
     — roll-forward is allowed, rollback is not);
   * a trim follows NVMe-deallocate semantics: until its tombstone is
     durable (journal flush or checkpoint) the LPN's contents are
     indeterminate, but once a trim is durably the LPN's *latest*
     recorded state it never resurrects — after remount the LPN is
     unmapped or holds a write submitted after a trim, never an older
     version;
   * the rebuilt wear counters equal the durable projection
     (:meth:`~repro.ftl.persist.PersistenceLayer.durable_wear`) of the
     crashed stack;
   * every durably-recorded retirement survives the remount.

Everything derives from seeded RNGs and simulated time: the same
``(base_seed, seeds, points)`` triple produces a byte-identical report
under either fidelity tier.

Exit codes follow the house convention: 0 = contract held at every
point, 1 = at least one violation, 2 = internal error (determinism
cross-check failed or a run died unexpectedly).
"""

from __future__ import annotations

import dataclasses
from collections import deque
from typing import Generator, Optional

import numpy as np

from repro.core import BabolController, ControllerConfig
from repro.faults.power import (
    PowerCut,
    PowerLossError,
    apply_power_cut,
    restore_media,
    snapshot_media,
)
from repro.flash.errors import ErrorModelConfig
from repro.flash.vendors import VendorProfile, profile_by_name
from repro.ftl import FtlConfig, ShardedFtl
from repro.ftl.spor import mount_sharded
from repro.host.engine import ScaleCommand, ScaleEngine
from repro.host.hic import HostOpcode
from repro.sim import Simulator

EXIT_OK = 0
EXIT_VIOLATION = 1
EXIT_INTERNAL = 2

_DRAM_STRIDE = 32 * 1024

# Small geometry, real code paths: 160 logical pages per shard once the
# meta region is carved out, checkpoints every 48 writes so most crash
# points land between checkpoints.
_FUZZ_FTL = FtlConfig(
    blocks_per_lun=10, overprovision_blocks=4,
    checkpoint_interval=48, journal_flush_records=16, meta_blocks=2,
    gc_staging_base=48 * 1024 * 1024,
)


#: The shrunken fuzz array as spec data (mirrors :data:`CHAOS_GEOMETRY`
#: in repro.faults.chaos — full code paths, tiny state).
FUZZ_GEOMETRY = {
    "page_size": 2048,
    "spare_size": 64,
    "pages_per_block": 16,
    "blocks_per_plane": 16,
    "planes": 2,
}


def _fuzz_profile(vendor: VendorProfile) -> VendorProfile:
    geometry = dataclasses.replace(vendor.geometry, **FUZZ_GEOMETRY)
    return dataclasses.replace(vendor, geometry=geometry,
                               factory_bad_rate=0.0)


def crashfuzz_spec(seeds: int = 3, points: int = 50, channels: int = 2,
                   luns: int = 2, qd: int = 8, ios: int = 400,
                   fidelity: str = "tlm", vendor: str = "hynix",
                   base_seed: int = 7):
    """The :class:`~repro.config.specs.ExperimentSpec` describing one
    fuzz campaign — the ``workload.mix = "crashfuzz"`` stream over a
    persistence-enabled (checkpoint + journal) sharded FTL."""
    from repro.config.specs import (
        CampaignSpec,
        ExperimentSpec,
        FtlSpec,
        GeometrySpec,
        StackSpec,
        WorkloadSpec,
    )

    spec = ExperimentSpec(
        name="crashfuzz",
        stack=StackSpec(
            vendor=vendor,
            channels=channels,
            luns_per_channel=luns,
            fidelity=fidelity,
            track_data=True,
            noiseless=True,
            factory_bad_rate=0.0,
            geometry=GeometrySpec(**FUZZ_GEOMETRY),
            ftl=FtlSpec(
                blocks_per_lun=_FUZZ_FTL.blocks_per_lun,
                overprovision_blocks=_FUZZ_FTL.overprovision_blocks,
                gc_free_threshold=_FUZZ_FTL.gc_free_threshold,
                gc_staging_base=_FUZZ_FTL.gc_staging_base,
                checkpoint_interval=_FUZZ_FTL.checkpoint_interval,
                journal_flush_records=_FUZZ_FTL.journal_flush_records,
                meta_blocks=_FUZZ_FTL.meta_blocks,
            ),
        ),
        workload=WorkloadSpec(
            mix="crashfuzz",
            io_count=ios,
            queue_depth=qd,
            dram_stride=_DRAM_STRIDE,
        ),
        campaign=CampaignSpec(plan="crashfuzz", crash_seeds=seeds,
                              crash_points=points, base_seed=base_seed),
    )
    spec.validate()
    return spec


def _payload(lpn: int, version: int, nbytes: int) -> np.ndarray:
    data = np.full(nbytes, (lpn * 37 + version * 101) % 251, dtype=np.uint8)
    data[0] = lpn & 0xFF
    data[1] = (lpn >> 8) & 0xFF
    data[2] = version & 0xFF
    data[3] = (version >> 8) & 0xFF
    return data


def _controllers(sim: Simulator, profile: VendorProfile, channels: int,
                 luns: int, fidelity: str) -> list[BabolController]:
    controllers = []
    for channel in range(channels):
        controller = BabolController(sim, ControllerConfig(
            vendor=profile, lun_count=luns, track_data=True,
            seed=channel, fidelity=fidelity,
        ))
        # Content verification must see stored bytes, not RBER noise.
        for lun in controller.luns:
            lun.array.error_model.config = ErrorModelConfig.noiseless()
        controllers.append(controller)
    return controllers


def _build_ops(rng: np.random.Generator, ios: int, span: int,
               channels: int, qd: int) -> list[tuple[str, int, int]]:
    """The seeded command stream: ~65% writes, ~25% reads, ~5% trims,
    ~5% flushes.

    Reads and trims only target LPNs whose last touch is provably
    complete: with at least ``qd`` later submissions on the same
    channel queue pair, backpressure guarantees the earlier command
    left the queue before this one was staged (the span is prefilled,
    so any read is mapped — the guard keeps per-LPN ordering trivially
    true, which is what lets the verifier reason about "the last acked
    operation" per LPN).  Trims share the per-LPN version counter so
    the verifier can totally order writes and trims on one LPN.
    """
    ops: list[tuple[str, int, int]] = []
    versions: dict[int, int] = {}
    # Per-pair submission counters mirror the submitter's strict FIFO.
    pair_subs = [0] * channels
    touch_sub: dict[int, int] = {}  # last write/read/trim on this LPN
    readable: list[int] = []
    for _ in range(ios):
        roll = rng.random()
        settled = [
            lpn for lpn in readable
            if pair_subs[lpn % channels] - touch_sub[lpn] >= qd
        ]
        if roll < 0.05 and versions:
            lpn = int(rng.choice(sorted(versions)))
            ops.append(("flush", lpn, 0))
        elif roll < 0.10 and settled:
            lpn = settled[int(rng.integers(0, len(settled)))]
            version = versions[lpn] + 1
            versions[lpn] = version
            readable.remove(lpn)  # unmapped until rewritten
            ops.append(("trim", lpn, version))
            touch_sub[lpn] = pair_subs[lpn % channels] + 1
        elif roll < 0.35 and settled:
            lpn = settled[int(rng.integers(0, len(settled)))]
            ops.append(("read", lpn, 0))
            touch_sub[lpn] = pair_subs[lpn % channels] + 1
        else:
            lpn = int(rng.integers(0, span))
            version = versions.get(lpn, 0) + 1
            versions[lpn] = version
            if lpn not in readable:
                readable.append(lpn)
            ops.append(("write", lpn, version))
            touch_sub[lpn] = pair_subs[lpn % channels] + 1
        pair_subs[lpn % channels] += 1
    return ops


def _drive(sim: Simulator, engine: ScaleEngine,
           ops: list[tuple[str, int, int]], page_size: int) -> None:
    """Replay ``ops`` with the closed-loop backpressure submitter."""

    def submitter() -> Generator:
        queue = deque(ops)
        while queue:
            while queue:
                kind, lpn, version = queue[0]
                pair = engine.pair_for(lpn)
                if pair.free_slots <= 0:
                    break
                queue.popleft()
                if kind == "write":
                    engine.submit(ScaleCommand(
                        opcode=HostOpcode.WRITE, lpn=lpn,
                        payload=_payload(lpn, version, page_size),
                        tag=version,
                    ))
                elif kind == "read":
                    engine.submit(ScaleCommand(
                        opcode=HostOpcode.READ, lpn=lpn))
                elif kind == "trim":
                    engine.submit(ScaleCommand(
                        opcode=HostOpcode.TRIM, lpn=lpn, tag=version))
                else:
                    engine.submit(ScaleCommand(
                        opcode=HostOpcode.FLUSH, lpn=lpn))
            if not queue:
                break
            engine.ring_doorbells()
            yield from engine.completion_pulse.wait()
        yield from engine.drain()

    sim.run_process(submitter(), name="crashfuzz-submitter")


def _build_stack(profile: VendorProfile, channels: int, luns: int,
                 qd: int, fidelity: str, ftl_config: FtlConfig = _FUZZ_FTL):
    """One identical stack per run: half the LPN space prefilled, so
    every read in the stream targets a mapped page."""
    sim = Simulator()
    controllers = _controllers(sim, profile, channels, luns, fidelity)
    ftl = ShardedFtl(sim, controllers, ftl_config)
    span = max(1, ftl.logical_pages // 2)
    ftl.prefill(span)
    engine = ScaleEngine(sim, ftl, queue_depth=qd, record_acks=True,
                         auto_dram=True, dram_stride=_DRAM_STRIDE)
    return sim, controllers, ftl, engine, span


def _ledger(commands) -> list[tuple[str, int, int]]:
    return [(c.opcode.value, c.lpn, c.tag) for c in commands]


def _verify_point(controllers, crashed_ftl, engine, oracle_acks,
                  crash_ns: int, write_versions: dict, trims: dict,
                  profile, channels: int, luns: int, fidelity: str,
                  ftl_config: FtlConfig = _FUZZ_FTL) -> dict:
    """Crash is final: transplant media, remount, check the contract."""
    point: dict = {"cut_ns": crash_ns, "acked": len(engine.acks)}
    violations: list[str] = []
    internal: list[str] = []

    # Determinism cross-check: the crashed ledger must be the oracle's
    # ledger truncated at the cut (completions *at* the cut nanosecond
    # lose to the blackout event, which was scheduled first).
    expect = _ledger(c for c in oracle_acks if c.finished_at < crash_ns)
    got = _ledger(engine.acks)
    if got != expect:
        internal.append(
            f"ack ledger diverged from oracle prefix at {crash_ns} ns "
            f"({len(got)} vs {len(expect)} entries)"
        )

    apply_power_cut(controllers, crash_ns)
    images = snapshot_media(controllers)
    durable_wear = {
        shard_index: shard.persist.durable_wear()
        for shard_index, shard in enumerate(crashed_ftl.shards)
    }
    durable_retired = {
        shard_index: shard.persist.durable_retirements()
        for shard_index, shard in enumerate(crashed_ftl.shards)
    }
    # LPNs whose durably-recorded latest state at the cut is a trim
    # tombstone — the only trims the contract holds binding.
    durable_trimmed: set[int] = set()
    for shard_index, shard in enumerate(crashed_ftl.shards):
        for local in shard.persist.durable_trims():
            durable_trimmed.add(
                crashed_ftl.router.global_lpn(shard_index, local))

    sim2 = Simulator()
    controllers2 = _controllers(sim2, profile, channels, luns, fidelity)
    restore_media(controllers2, images)
    ftl2, report = mount_sharded(sim2, controllers2, ftl_config)
    point["mount"] = {
        "journal_replay_entries": report.journal_replay_entries,
        "mount_ns": report.mount_ns,
        "rolled_forward": report.rolled_forward,
        "torn_pages_discarded": report.torn_pages_discarded,
        "unsafe_shutdowns": report.unsafe_shutdowns,
    }

    # 1. No mapped LPN may point at a torn page.
    for index, shard in enumerate(ftl2.shards):
        for lpn, entry in sorted(shard.map._forward.items()):
            block = shard.controller.luns[entry.lun].array.block(entry.block)
            if entry.page in block.torn:
                violations.append(
                    f"shard {index}: LPN {lpn} mapped to torn page "
                    f"(lun {entry.lun} block {entry.block} page {entry.page})"
                )

    # 2. Per LPN, the last acked state-changing op (writes and trims
    #    share one per-LPN version counter, and the stream's settled
    #    guard keeps per-LPN completion order = submission order) must
    #    hold after remount:
    #      * no trim at or after the last acked write → the LPN reads
    #        back as that version or a newer *submitted* write
    #        (roll-forward is allowed, rollback is not) and may not be
    #        unmapped;
    #      * a trim was submitted at or after the last acked write →
    #        NVMe-deallocate semantics: contents are indeterminate
    #        until the tombstone reaches media, but once the durable
    #        projection says the LPN's latest recorded state is a trim,
    #        only unmapped or a post-trim write is legal — a pre-trim
    #        version resurrecting past a durable tombstone is the bug
    #        class the checkpoint tombstones exist to prevent.
    page_size = profile.geometry.page_size
    acked: dict[int, tuple[int, HostOpcode]] = {}
    for command in engine.acks:
        if command.opcode in (HostOpcode.WRITE, HostOpcode.TRIM):
            prev = acked.get(command.lpn)
            if prev is None or command.tag > prev[0]:
                acked[command.lpn] = (command.tag, command.opcode)
    for lpn in sorted(acked):
        version, opcode = acked[lpn]
        trim_lo, trim_hi = trims.get(lpn, (0, 0))
        trimmed = opcode is HostOpcode.TRIM or trim_hi > version
        if not ftl2.is_mapped(lpn):
            if not trimmed:
                violations.append(f"acked LPN {lpn} unmapped after remount")
            continue
        if trimmed:
            if lpn not in durable_trimmed:
                # The tombstone never reached media before the cut:
                # the deallocate is still advisory at this crash point.
                continue
            candidates = [
                v for v in write_versions.get(lpn, ()) if v > trim_lo
            ]
            label = (
                f"durably-trimmed LPN {lpn} resurrected after remount "
                f"(pre-trim data despite a durable tombstone)"
            )
        else:
            candidates = [
                v for v in write_versions.get(lpn, ()) if v >= version
            ]
            label = (
                f"acked LPN {lpn} content mismatch after remount "
                f"(last acked write version {version})"
            )
        if not candidates:
            violations.append(label)
            continue

        def check(lpn=lpn) -> Generator:
            yield from ftl2.read(lpn, 0)

        sim2.run_process(check())
        channel, _ = ftl2.router.route(lpn)
        got_bytes = controllers2[channel].dram.read(0, page_size)
        ok = any(
            np.array_equal(got_bytes, _payload(lpn, v, page_size))
            for v in candidates
        )
        if not ok:
            violations.append(label)

    # 3. Rebuilt wear counters equal the durable projection.
    for index, shard in enumerate(ftl2.shards):
        if shard.wear.counts != durable_wear[index]:
            violations.append(
                f"shard {index}: rebuilt wear diverges from the durable "
                f"projection"
            )
    # 4. Durably-recorded retirements survive the remount.
    for index, shard in enumerate(ftl2.shards):
        for key, reason in sorted(durable_retired[index].items()):
            if key not in shard.bad_blocks:
                violations.append(
                    f"shard {index}: durable retirement of block {key} "
                    f"({reason}) lost across remount"
                )

    point["violations"] = violations
    if internal:
        point["internal"] = internal
    return point


def run_crashfuzz(
    seeds: int = 3,
    points: int = 50,
    channels: int = 2,
    luns: int = 2,
    qd: int = 8,
    ios: int = 400,
    fidelity: str = "tlm",
    vendor: str = "hynix",
    base_seed: int = 7,
    spec=None,
) -> dict:
    """Run the fuzz campaign; returns the JSON-ready report dict.

    ``spec`` (an :class:`~repro.config.specs.ExperimentSpec` with
    ``workload.mix == "crashfuzz"``) supersedes the individual kwargs;
    without one, an equivalent spec is constructed when the kwargs are
    spec-expressible, so the report embeds ``spec`` + ``spec_hash``.
    """
    if spec is not None:
        from repro.config.build import stack_profile

        spec.validate()
        channels = spec.stack.channels
        luns = spec.stack.luns_per_channel
        fidelity = spec.stack.fidelity
        vendor = spec.stack.vendor
        qd = spec.workload.queue_depth
        ios = spec.workload.io_count
        if spec.campaign is not None:
            seeds = spec.campaign.crash_seeds
            points = spec.campaign.crash_points
            base_seed = spec.campaign.base_seed
        profile = stack_profile(spec.stack)
    if seeds <= 0 or points <= 0 or ios <= 0:
        raise ValueError("seeds, points and ios must be positive")
    if spec is None:
        profile = _fuzz_profile(profile_by_name(vendor))
        try:
            spec = crashfuzz_spec(seeds=seeds, points=points,
                                  channels=channels, luns=luns, qd=qd,
                                  ios=ios, fidelity=fidelity, vendor=vendor,
                                  base_seed=base_seed)
        except ValueError:
            spec = None  # kwargs outside the spec's validity envelope
    ftl_config = (spec.stack.ftl.to_ftl_config()
                  if spec is not None and spec.stack.ftl is not None
                  else _FUZZ_FTL)
    page_size = profile.geometry.page_size

    results: list[dict] = []
    total_violations = 0
    total_internal = 0
    for index in range(seeds):
        seed = base_seed + index
        rng = np.random.default_rng(seed * 1000 + 17)

        # -- oracle -----------------------------------------------------
        sim, controllers, ftl, engine, span = _build_stack(
            profile, channels, luns, qd, fidelity, ftl_config)
        ops = _build_ops(rng, ios, span, channels, qd)
        start_ns = sim.now
        _drive(sim, engine, ops, page_size)
        elapsed = sim.now - start_ns
        oracle_acks = list(engine.acks)
        write_versions: dict[int, list[int]] = {}
        trims: dict[int, tuple[int, int]] = {}  # lpn -> (first, last)
        for kind, lpn, version in ops:
            if kind == "write":
                write_versions.setdefault(lpn, []).append(version)
            elif kind == "trim":
                first, _ = trims.get(lpn, (version, version))
                trims[lpn] = (first, version)

        entry: dict = {
            "seed": seed,
            "oracle": {
                "acked": len(oracle_acks),
                "elapsed_ns": elapsed,
                "ios": len(ops),
            },
            "points": [],
        }

        # -- fuzzed crash points ---------------------------------------
        cuts = sorted(
            start_ns + 1 + int(u * max(elapsed - 1, 1))
            for u in rng.random(points)
        )
        for cut_ns in cuts:
            sim_c, controllers_c, ftl_c, engine_c, _ = _build_stack(
                profile, channels, luns, qd, fidelity, ftl_config)
            cut = PowerCut(sim_c, cut_ns).arm(controllers_c)
            fired = True
            try:
                _drive(sim_c, engine_c, ops, page_size)
                fired = False
            except PowerLossError:
                pass
            if not fired:
                cut.cancel()  # the run outlived this cut point
            crash_ns = cut_ns if fired else sim_c.now + 1
            point = _verify_point(
                controllers_c, ftl_c, engine_c, oracle_acks, crash_ns,
                write_versions, trims, profile, channels, luns, fidelity,
                ftl_config,
            )
            point["fired"] = fired
            total_violations += len(point["violations"])
            total_internal += len(point.get("internal", ()))
            entry["points"].append(point)
        results.append(entry)

    exit_code = EXIT_OK
    if total_violations:
        exit_code = EXIT_VIOLATION
    if total_internal:
        exit_code = EXIT_INTERNAL
    return {
        "schema": 2,
        "base_seed": base_seed,
        "channels": channels,
        "exit_code": exit_code,
        "fidelity": fidelity,
        "internal_errors": total_internal,
        "ios": ios,
        "luns_per_channel": luns,
        "points": points,
        "queue_depth": qd,
        "results": results,
        "seeds": seeds,
        "spec": spec.resolved() if spec is not None else None,
        "spec_hash": spec.spec_hash() if spec is not None else None,
        "vendor": vendor,
        "violations": total_violations,
    }


def summarize(report: dict) -> list[str]:
    """Human-readable lines for the CLI."""
    lines = [
        f"crashfuzz: {report['seeds']} seed(s) x {report['points']} "
        f"point(s), fidelity={report['fidelity']}",
    ]
    for entry in report["results"]:
        fired = sum(1 for p in entry["points"] if p["fired"])
        torn = sum(p["mount"]["torn_pages_discarded"]
                   for p in entry["points"])
        replayed = sum(p["mount"]["journal_replay_entries"]
                       for p in entry["points"])
        bad = sum(len(p["violations"]) for p in entry["points"])
        lines.append(
            f"  seed {entry['seed']}: {entry['oracle']['acked']} acks "
            f"oracle, {fired} cuts fired, {torn} torn discarded, "
            f"{replayed} journal entries replayed, {bad} violation(s)"
        )
    lines.append(
        f"verdict: {report['violations']} violation(s), "
        f"{report['internal_errors']} internal error(s)"
    )
    return lines

"""Lines-of-code measurement for the Table II comparison.

The paper counts the lines implementing READ, PROGRAM, and ERASE in
each controller.  This module counts the *actual source in this
repository*: the BABOL operations (software over µFSMs) versus the
hardware baselines' per-operation FSM code (the stand-in for Verilog).
Blank lines and comments/docstrings are excluded so the comparison
measures logic, not prose.
"""

from __future__ import annotations

import inspect
import io
import tokenize
from typing import Callable, Iterable


def count_source_lines(obj: Callable | type | Iterable) -> int:
    """Count logical source lines of a function/class (or several).

    Comment and docstring lines are stripped via the tokenizer; a line
    counts if any non-comment, non-string-only token lands on it.
    """
    if isinstance(obj, (list, tuple)):
        return sum(count_source_lines(item) for item in obj)
    source = inspect.getsource(obj)
    return _logical_lines(source)


def _logical_lines(source: str) -> int:
    source = inspect.cleandoc(source) if source.startswith((" ", "\t")) else source
    code_lines: set[int] = set()
    docstring_lines: set[int] = set()
    previous_significant = None
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError):  # pragma: no cover
        return len([line for line in source.splitlines() if line.strip()])
    for token in tokens:
        kind = token.type
        if kind in (tokenize.COMMENT, tokenize.NL, tokenize.NEWLINE,
                    tokenize.INDENT, tokenize.DEDENT, tokenize.ENDMARKER):
            continue
        if kind == tokenize.STRING and previous_significant in (None, "block-open"):
            # A string statement (docstring): exclude its span.
            for line in range(token.start[0], token.end[0] + 1):
                docstring_lines.add(line)
            previous_significant = "docstring"
            continue
        for line in range(token.start[0], token.end[0] + 1):
            code_lines.add(line)
        if kind == tokenize.OP and token.string == ":":
            previous_significant = "block-open"
        elif kind == tokenize.NAME or kind == tokenize.OP:
            if previous_significant != "block-open" or token.string != ":":
                previous_significant = "code"
        else:
            previous_significant = "code"
    return len(code_lines - docstring_lines)


def operation_loc_table() -> dict[str, dict[str, int]]:
    """The Table II measurement over this repository's artifacts.

    Rows: READ, PROGRAM, ERASE.  Columns: the synchronous HW baseline,
    the asynchronous HW baseline, and BABOL.  HW counts include the
    shared signal-phase helpers each operation FSM depends on (in
    Verilog those are per-module ``always`` blocks); BABOL counts are
    the operation functions alone — the µFSM layer is shared framework,
    which is exactly the paper's point (a).
    """
    from repro.baselines import async_hw, sync_hw
    from repro.core.opir import programs as opir_programs
    from repro.core.ops.base import poll_until_ready

    sync_shared = count_source_lines(
        [sync_hw._LunEngine._latch_segment, sync_hw._LunEngine._transmit,
         sync_hw._LunEngine._poll_status_once]
    )
    async_shared = count_source_lines(
        [async_hw._Sequencer._preamble, async_hw._Sequencer._issue,
         async_hw._Sequencer._poll, async_hw._Sequencer._await_ready,
         async_hw.AsyncHwController._dispatcher]
    )
    # BABOL operations are authored as declarative op programs (the
    # ``*_op`` generators are signature-preserving shims over the IR
    # interpreter), so the program builders are what we measure.  READ
    # composes READ STATUS (Algorithm 2 invoking Algorithm 1); count
    # both plus the poll helper, as the paper's 58 lines cover the full
    # listing of Fig. 8.
    babol_read = count_source_lines(
        [opir_programs.read_page_program, opir_programs.read_status_program,
         poll_until_ready]
    )
    babol_poll = count_source_lines(
        [opir_programs.read_status_program, poll_until_ready]
    )

    return {
        "READ": {
            "sync_hw": count_source_lines([sync_hw._ReadState,
                                           sync_hw._LunEngine._read_fsm]) + sync_shared,
            "async_hw": count_source_lines([async_hw._SeqState,
                                            async_hw._Sequencer._read]) + async_shared,
            "babol": babol_read,
        },
        "PROGRAM": {
            "sync_hw": count_source_lines([sync_hw._ProgramState,
                                           sync_hw._LunEngine._program_fsm]) + sync_shared,
            "async_hw": count_source_lines([async_hw._Sequencer._program]) + async_shared,
            "babol": count_source_lines([opir_programs.program_page_program])
                     + babol_poll,
        },
        "ERASE": {
            "sync_hw": count_source_lines([sync_hw._EraseState,
                                           sync_hw._LunEngine._erase_fsm]) + sync_shared,
            "async_hw": count_source_lines([async_hw._Sequencer._erase]) + async_shared,
            "babol": count_source_lines([opir_programs.erase_block_program])
                     + babol_poll,
        },
    }

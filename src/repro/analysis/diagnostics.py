"""Unified diagnostics engine shared by every checker in the repo.

Three rule-id namespaces flow through here (INTERNALS §9):

* ``OPL###`` — static op-program lint (:mod:`repro.analysis.op_lint`);
* ``TCK###`` — capture-time ONFI timing/protocol rules
  (:mod:`repro.analysis.timing_check`);
* ``SAN###`` — runtime sanitizers (:mod:`repro.sanitize`), grouped by
  hundreds: SAN1xx bus, SAN2xx flash, SAN3xx memory/DMA, SAN4xx
  liveness.

Every producer converts its native record into a :class:`Finding` and
appends it to a :class:`DiagnosticReport`, which owns rendering (text
and JSON), severity accounting, and the CLI exit-code policy: ``0``
clean, ``1`` findings, ``2`` internal error — so "the linter found a
bug" is never confused with "the linter crashed".
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Iterable, Optional

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_INTERNAL = 2

#: Severity names in decreasing order of badness.
SEVERITIES = ("error", "warning", "info")

#: Documentation map of rule-id prefixes to their producing layer.
RULE_NAMESPACES = {
    "OPL": "static op-program lint (repro.analysis.op_lint)",
    "OPV": "static op-program verifier: abstract interpretation "
           "(repro.analysis.opver)",
    "TCK": "logic-analyzer timing/protocol check (repro.analysis.timing_check)",
    "SAN1": "bus sanitizer: channel races and arbitration (repro.sanitize.bus)",
    "SAN2": "flash sanitizer: LUN state hazards (repro.sanitize.flash)",
    "SAN3": "memory sanitizer: DRAM/DMA hazards (repro.sanitize.memory)",
    "SAN4": "liveness sanitizer: deadlock and livelock (repro.sanitize.liveness)",
}


@dataclass(frozen=True)
class Finding:
    """One diagnosed problem, normalized across all checkers."""

    rule: str                      # e.g. "SAN101", "OPL003", "TCK005"
    severity: str                  # "error" | "warning" | "info"
    message: str
    component: str = ""            # e.g. "channel/ch0", "lun/3", "op/read_page"
    time_ns: Optional[int] = None  # simulation timestamp, when applicable
    hint: str = ""                 # remediation hint

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(
                f"severity must be one of {SEVERITIES}, got {self.severity!r}"
            )

    def describe(self) -> str:
        stamp = f"t={self.time_ns}ns " if self.time_ns is not None else ""
        where = f"{self.component}: " if self.component else ""
        text = f"{self.severity.upper()} {self.rule} {stamp}{where}{self.message}"
        if self.hint:
            text += f" (hint: {self.hint})"
        return text


@dataclass
class DiagnosticReport:
    """An accumulating set of findings with rendering and exit policy."""

    findings: list[Finding] = field(default_factory=list)

    def add(self, finding: Finding) -> None:
        self.findings.append(finding)

    def extend(self, findings: Iterable[Finding]) -> None:
        self.findings.extend(findings)

    def merge(self, other: "DiagnosticReport") -> None:
        self.findings.extend(other.findings)

    # -- accounting ----------------------------------------------------

    @property
    def clean(self) -> bool:
        return not self.findings

    def by_severity(self) -> dict[str, int]:
        counts = {severity: 0 for severity in SEVERITIES}
        for finding in self.findings:
            counts[finding.severity] += 1
        return counts

    def by_rule(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return counts

    def errors(self) -> list[Finding]:
        return [f for f in self.findings if f.severity == "error"]

    def counts_line(self) -> str:
        counts = self.by_severity()
        return (f"{len(self.findings)} finding(s): "
                f"{counts['error']} error(s), {counts['warning']} warning(s), "
                f"{counts['info']} info")

    def exit_code(self) -> int:
        """0 when no error-severity findings, 1 otherwise.

        Internal failures never reach this path — callers map crashes
        to :data:`EXIT_INTERNAL` themselves.
        """
        return EXIT_FINDINGS if self.errors() else EXIT_CLEAN

    # -- rendering -----------------------------------------------------

    def render_text(self, title: str = "diagnostics", limit: int = 50) -> str:
        lines = [f"{title}: {self.counts_line()}"]
        ordered = sorted(
            self.findings,
            key=lambda f: (SEVERITIES.index(f.severity),
                           f.time_ns if f.time_ns is not None else -1),
        )
        for finding in ordered[:limit]:
            lines.append("  " + finding.describe())
        if len(ordered) > limit:
            lines.append(f"  ... and {len(ordered) - limit} more")
        return "\n".join(lines)

    def to_json_obj(self) -> dict:
        return {
            "schema": 1,
            "counts": self.by_severity(),
            "by_rule": self.by_rule(),
            "findings": [asdict(f) for f in self.findings],
        }

    def render_json(self) -> str:
        return json.dumps(self.to_json_obj(), indent=2, sort_keys=True)

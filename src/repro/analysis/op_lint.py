"""Static linter for op programs.

Because operations are data (:mod:`repro.core.opir`), ONFI-protocol
discipline can be checked *before* a program ever touches a simulator:
the linter walks the node tree of a built :class:`OpProgram` and flags
sequencing mistakes that would otherwise surface as timing-checker
violations (or silent data corruption) at run time.

Rules
-----
* **OPL001** — tCCS ordering: a column-change latch sequence
  (``05h``/``06h``/``E0h``) must be separated from the data-out burst
  that follows it by a ``TimerWait(param="tCCS")`` in the same
  transaction.
* **OPL002** — tADL ordering: a data-in burst immediately following a
  command/address latch sequence that ends in an address must set
  ``after_address=True`` so the Data Writer inserts tADL.
* **OPL003** — unterminated busy: a confirm-class opcode (read/program/
  erase confirm, reset) drops R/B#; the program must later poll status,
  arbitrate with ``SelectFirstReady``, or own the wait with a timer or
  soft sleep.  Cache-read confirms may instead stream the cache
  register out directly.  Polls themselves must be bounded
  (``max_polls``/``max_rounds`` positive) and name a known condition.
* **OPL004** — channel-hold audit: an explicit ``TimerWait(ns=...)``
  above :data:`CHANNEL_HOLD_THRESHOLD_NS` occupies the shared channel
  for a macroscopic time and must carry a non-empty ``reason``.
* **OPL005** — a transaction must carry at least one segment (the
  executor rejects empty transactions at dispatch time).
* **OPL006** — a DMA handle must be declared (``DeclareHandle``)
  before a ``DataXfer`` references it.
* **OPL007** — a ``TimerWait`` must specify exactly one of ``ns`` or
  ``param``, and ``param`` must name a real timing-set parameter.
* **OPL008** — a ``PollStatus`` with an explicit pacing period must not
  poll faster than the vendor's minimum status-poll interval (an
  explicit ``period_ns=0`` hammers the channel with back-to-back
  polls).  Requires vendor timing; pass ``timing=`` to
  :func:`lint_program` or use the library sweep.
* **OPL009** — dead IR: a step node no execution can reach (code after
  a ``Return``, the body of a ``Loop(count=0)``, a ``Branch`` arm
  pruned by a constant predicate).  Built on the shared control-flow
  graph pass (:mod:`repro.analysis.cfg`); warning severity, since dead
  nodes are inert rather than hazardous.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Iterable, Iterator, Optional

from repro.core.opir.nodes import (
    Branch,
    DataXfer,
    DeclareHandle,
    HandleRef,
    LatchSeq,
    Loop,
    OpProgram,
    PollStatus,
    SelectFirstReady,
    SoftSleep,
    TimerWait,
    Txn,
    UNPACED_POLL_PERIOD_NS,
    effective_poll_period,
)
from repro.onfi.commands import CMD, CommandClass, classify_opcode
from repro.onfi.timing import TimingSet

# A timer that parks the channel for longer than this must say why.
CHANNEL_HOLD_THRESHOLD_NS = 1_000

_TIMING_PARAMS = frozenset(f.name for f in dataclasses.fields(TimingSet))

# Confirm classes that start an array-busy period the program must
# terminate (OPL003).  Cache-read confirms are listed separately: the
# cache register may legally be streamed out while the array fetches
# the next page, so a following data transfer also discharges them.
_BUSY_CONFIRMS = {
    CommandClass.READ_CONFIRM,
    CommandClass.PROGRAM_CONFIRM,
    CommandClass.CACHE_PROGRAM_CONFIRM,
    CommandClass.ERASE_CONFIRM,
    CommandClass.RESET,
}
_CACHE_CONFIRMS = {CommandClass.CACHE_READ_CONFIRM, CommandClass.CACHE_READ_END}

_COLUMN_CHANGE_CMDS = {
    CMD.CHANGE_READ_COL_1ST,
    CMD.CHANGE_READ_COL_2ND,
    CMD.CHANGE_READ_COL_ENH_1ST,
}


@dataclasses.dataclass(frozen=True)
class LintFinding:
    """One linter diagnosis, anchored to a node path in the program."""

    rule: str
    severity: str  # "error" | "warning"
    program: str
    where: str
    message: str

    def __str__(self) -> str:
        return (f"{self.severity.upper()} {self.rule} "
                f"{self.program} @ {self.where}: {self.message}")

    def to_finding(self):
        """This lint result as a diagnostics Finding (OPL namespace)."""
        from repro.analysis.diagnostics import Finding

        return Finding(
            rule=self.rule,
            severity=self.severity,
            message=self.message,
            component=f"{self.program} @ {self.where}",
        )


def _iter_steps(nodes: Iterable, prefix: str) -> Iterator[tuple[str, object]]:
    """Flatten step nodes in program order (Branch arms and Loop bodies
    inline — a static approximation of execution order)."""
    for index, node in enumerate(nodes):
        path = f"{prefix}[{index}]"
        yield path, node
        if isinstance(node, Branch):
            yield from _iter_steps(node.then, f"{path}.then")
            yield from _iter_steps(node.orelse, f"{path}.orelse")
        elif isinstance(node, Loop):
            yield from _iter_steps(node.body, f"{path}.body")


def _last_command(segment: LatchSeq) -> Optional[int]:
    opcode = None
    for latch in segment.latches:
        if latch.kind == "cmd":
            opcode = int(latch.value)
        else:
            opcode = None
    return opcode


def _has_column_change(segment: LatchSeq) -> bool:
    return any(latch.kind == "cmd" and int(latch.value) in _COLUMN_CHANGE_CMDS
               for latch in segment.latches)


def _ends_with_address(segment: LatchSeq) -> bool:
    return bool(segment.latches) and segment.latches[-1].kind == "addr"


def _lint_txn(program: str, path: str, txn: Txn,
              declared: set, findings: list) -> Optional[CommandClass]:
    """Per-transaction segment checks; returns the confirm class issued
    by this transaction's final command latch (if any)."""

    def report(rule: str, where: str, message: str) -> None:
        findings.append(LintFinding(rule, "error", program, where, message))

    if not txn.segments:
        report("OPL005", path, "transaction has no segments — the executor "
               "rejects empty transactions")
        return None

    pending_column_change = False   # column change awaiting its tCCS
    previous = None                 # previous segment node
    last_confirm: Optional[CommandClass] = None
    for index, segment in enumerate(txn.segments):
        where = f"{path}.segments[{index}]"
        if isinstance(segment, LatchSeq):
            if not segment.latches:
                report("OPL005", where, "latch sequence is empty")
            if _has_column_change(segment):
                pending_column_change = True
            opcode = _last_command(segment)
            if opcode is not None:
                last_confirm = classify_opcode(opcode)
        elif isinstance(segment, TimerWait):
            _lint_timer(program, where, segment, findings)
            if segment.param == "tCCS":
                pending_column_change = False
        elif isinstance(segment, DataXfer):
            if isinstance(segment.handle, HandleRef) \
                    and segment.handle.name not in declared:
                report("OPL006", where,
                       f"handle {segment.handle.name!r} transferred before "
                       f"DeclareHandle")
            if segment.direction == "out" and pending_column_change:
                report("OPL001", where,
                       "data-out after a column change without an "
                       "intervening TimerWait(param='tCCS')")
            if segment.direction == "in" and not segment.after_address \
                    and isinstance(previous, LatchSeq) \
                    and _ends_with_address(previous):
                report("OPL002", where,
                       "data-in directly after an address latch must set "
                       "after_address=True (tADL)")
        previous = segment
    return last_confirm


def _lint_timer(program: str, where: str, node: TimerWait,
                findings: list) -> None:
    if (node.ns is None) == (node.param is None):
        findings.append(LintFinding(
            "OPL007", "error", program, where,
            "TimerWait needs exactly one of ns= or param="))
        return
    if node.param is not None and node.param not in _TIMING_PARAMS:
        findings.append(LintFinding(
            "OPL007", "error", program, where,
            f"unknown timing parameter {node.param!r} "
            f"(known: {sorted(_TIMING_PARAMS)})"))
    if node.param is None:
        dynamic = not isinstance(node.ns, int)
        if (dynamic or node.ns > CHANNEL_HOLD_THRESHOLD_NS) and not node.reason:
            findings.append(LintFinding(
                "OPL004", "error", program, where,
                f"explicit channel hold "
                f"({'dynamic' if dynamic else f'{node.ns} ns'} > "
                f"{CHANNEL_HOLD_THRESHOLD_NS} ns) needs a reason="))


def lint_program(program: OpProgram, timing=None) -> list[LintFinding]:
    """All findings for one built program (empty list == clean).

    ``timing`` is a vendor :class:`~repro.flash.vendors.VendorTiming`;
    when given, poll pacing is checked against its minimum poll
    interval (OPL008).
    """
    findings: list[LintFinding] = []
    declared: set = set()
    # (path, class) of the most recent confirm not yet terminated.
    pending: Optional[tuple[str, CommandClass]] = None

    for path, node in _iter_steps(program.nodes, "nodes"):
        if isinstance(node, DeclareHandle):
            declared.add(node.name)
        elif isinstance(node, Txn):
            if pending is not None and pending[1] in _CACHE_CONFIRMS \
                    and any(isinstance(s, DataXfer) for s in node.segments):
                pending = None  # cache register streamed out
            confirm = _lint_txn(program.name, path, node, declared, findings)
            if confirm is not None \
                    and confirm in (_BUSY_CONFIRMS | _CACHE_CONFIRMS):
                pending = (path, confirm)
        elif isinstance(node, PollStatus):
            if node.until not in ("ready", "array_ready"):
                findings.append(LintFinding(
                    "OPL003", "error", program.name, path,
                    f"unknown poll condition {node.until!r}"))
            if not isinstance(node.max_polls, int) or node.max_polls <= 0:
                findings.append(LintFinding(
                    "OPL003", "error", program.name, path,
                    "poll must be bounded (max_polls > 0)"))
            period = getattr(node, "period_ns", None)
            # None means "unpaced by design" and is not flagged; an
            # explicit period is resolved through the same fallback the
            # interpreter uses, so lint and runtime cannot disagree on
            # what a period of 0/None actually does.
            if timing is not None and period is not None \
                    and effective_poll_period(period) < timing.t_poll_min_ns:
                effective = effective_poll_period(period)
                findings.append(LintFinding(
                    "OPL008", "warning", program.name, path,
                    f"poll period {effective} ns is below the vendor minimum "
                    f"poll interval ({timing.t_poll_min_ns} ns)"
                    + (" — back-to-back polls monopolize the channel"
                       if effective == UNPACED_POLL_PERIOD_NS else "")))
            pending = None
        elif isinstance(node, SelectFirstReady):
            if not isinstance(node.max_rounds, int) or node.max_rounds <= 0:
                findings.append(LintFinding(
                    "OPL003", "error", program.name, path,
                    "gang poll must be bounded (max_rounds > 0)"))
            pending = None
        elif isinstance(node, SoftSleep):
            pending = None
        elif node.__class__.__name__ == "CallOp":
            pending = None  # library ops terminate their own busy periods

    if pending is not None:
        findings.append(LintFinding(
            "OPL003", "error", program.name, pending[0],
            f"{pending[1].value} confirm is never followed by a status "
            f"poll, timer, or sleep — the busy period is unterminated"))

    # OPL009 — dead IR, from the shared control-flow graph.
    from repro.analysis.cfg import build_cfg

    for vertex in build_cfg(program).unreachable():
        findings.append(LintFinding(
            "OPL009", "warning", program.name, vertex.path,
            f"{type(vertex.step).__name__} is unreachable — no execution "
            f"path leads here (dead code after a Return, a zero-trip "
            f"loop body, or a constant-predicate branch arm)"))
    return findings


# ---------------------------------------------------------------------------
# Whole-library sweep
# ---------------------------------------------------------------------------


def sample_kwargs(vendor) -> dict[str, dict]:
    """Representative build kwargs for every built-in op, sized to the
    vendor's geometry — what the CLI/CI sweep feeds each builder."""
    from repro.onfi.features import FeatureAddress
    from repro.onfi.geometry import AddressCodec, PhysicalAddress

    codec = AddressCodec(vendor.geometry)
    page = vendor.geometry.full_page_size
    addr0 = PhysicalAddress(block=2, page=0)
    # blocks 2 and 3 land on distinct planes for any planes >= 2 (the
    # codec maps block -> plane as block % planes).
    plane_addrs = tuple(
        PhysicalAddress(block=2 + index, page=0)
        for index in range(min(2, vendor.geometry.planes))
    )
    timing = vendor.timing
    return {
        "read_status": {},
        "read_status_enhanced": {
            "row_address_bytes": codec.encode_row(codec.row_address(addr0)),
        },
        "read_page": {"codec": codec, "address": addr0, "dram_address": 0},
        "full_page_read": {"codec": codec, "address": addr0, "dram_address": 0},
        "partial_read": {
            "codec": codec,
            "address": PhysicalAddress(block=2, page=0, column=256),
            "dram_address": 0, "length": 128,
        },
        "read_page_timed_wait": {
            "codec": codec, "address": addr0, "dram_address": 0,
            "wait_ns": int(timing.t_read_ns * 1.3),
        },
        "program_page": {
            "codec": codec, "address": PhysicalAddress(block=4, page=0),
            "dram_address": 0,
        },
        "partial_program": {
            "codec": codec, "address": PhysicalAddress(block=4, page=1),
            "chunks": ((0, 0, 128), (512, 0, 128)),
        },
        "erase_block": {"codec": codec, "block": 5},
        "pslc_read": {"codec": codec, "address": addr0, "dram_address": 0},
        "pslc_program": {
            "codec": codec, "address": PhysicalAddress(block=6, page=0),
            "dram_address": 0,
        },
        "pslc_erase": {"codec": codec, "block": 7},
        "set_features": {
            "feature_address": int(FeatureAddress.IO_DRIVE_STRENGTH),
            "params": (1, 0, 0, 0), "feat_busy_ns": timing.t_feat_ns,
        },
        "get_features": {
            "feature_address": int(FeatureAddress.IO_DRIVE_STRENGTH),
            "feat_busy_ns": timing.t_feat_ns,
        },
        "read_id": {},
        "read_parameter_page": {"param_busy_ns": timing.t_param_read_ns},
        "reset": {},
        "cache_read_sequential": {
            "codec": codec, "start": PhysicalAddress(block=8, page=0),
            "dram_addresses": (0, page),
        },
        "cache_program": {
            "codec": codec,
            "pages": ((PhysicalAddress(block=9, page=0), 0),
                      (PhysicalAddress(block=9, page=1), 0)),
        },
        "multiplane_read": {
            "codec": codec, "addresses": plane_addrs,
            "dram_addresses": tuple(page * i for i in range(len(plane_addrs))),
        },
        "multiplane_program": {
            "codec": codec,
            "pages": tuple((PhysicalAddress(block=10 + i, page=0), 0)
                           for i in range(len(plane_addrs))),
        },
        "multiplane_erase": {"codec": codec, "blocks": (10, 11)},
        "gang_read": {
            "codec": codec, "address": addr0, "positions": (0, 1),
            "dram_address": 0,
        },
        "read_with_retry": {"codec": codec, "address": addr0,
                            "dram_address": 0},
        "suspend": {},
        "resume": {},
        "erase_with_preemptive_read": {
            "codec": codec, "erase_block": 12, "read_address": addr0,
            "dram_address": 0,
            "suspend_after_ns": timing.t_bers_ns // 2,
        },
    }


@dataclasses.dataclass(frozen=True)
class LintCoverage:
    """What the library sweep actually linted vs. what is registered.

    A builder silently dropped from :func:`sample_kwargs` would
    otherwise vanish from the sweep without failing anything; CI gates
    on :attr:`complete`.
    """

    registered: tuple[str, ...]
    linted: tuple[str, ...]
    skipped: tuple[str, ...]
    vendors: int

    @property
    def complete(self) -> bool:
        return not self.skipped

    def describe(self) -> str:
        line = (f"coverage: {len(self.linted)}/{len(self.registered)} "
                f"registered programs linted across {self.vendors} vendor(s)")
        if self.skipped:
            line += f"; skipped: {', '.join(self.skipped)}"
        return line


def lint_library(
    vendors: Optional[Iterable] = None,
    kwargs_for: Callable[[object], dict] = sample_kwargs,
) -> tuple[list[LintFinding], LintCoverage]:
    """Build and lint every registered op for every vendor profile
    (honouring each vendor's ``op_overrides``), with coverage."""
    from repro.core.opir.registry import list_ops, resolve_builder
    from repro.flash.vendors import VENDOR_PROFILES

    if vendors is None:
        vendors = list(VENDOR_PROFILES.values())
    else:
        vendors = list(vendors)
    findings: list[LintFinding] = []
    registered_names: set[str] = set(list_ops())
    linted: set[str] = set()
    skipped: set[str] = set()
    for vendor in vendors:
        samples = kwargs_for(vendor)
        # Stock library plus any programs this vendor registers only
        # through op_overrides / with_op_override — an override-only op
        # must not escape the sweep.
        names = list(list_ops())
        for name, _builder in getattr(vendor, "op_overrides", ()) or ():
            if name not in names:
                names.append(name)
        registered_names.update(names)
        for name in names:
            if name not in samples:
                skipped.add(name)
                findings.append(LintFinding(
                    "OPL000", "warning", name, "-",
                    f"no sample kwargs for {name!r}; not linted for "
                    f"{vendor.name}"))
                continue
            builder = resolve_builder(name, vendor)
            findings.extend(
                lint_program(builder(**samples[name]), timing=vendor.timing)
            )
            linted.add(name)
    coverage = LintCoverage(
        registered=tuple(sorted(registered_names)),
        linted=tuple(sorted(linted)),
        skipped=tuple(sorted(skipped)),
        vendors=len(vendors),
    )
    return findings, coverage


def lint_all(
    vendors: Optional[Iterable] = None,
    kwargs_for: Callable[[object], dict] = sample_kwargs,
) -> list[LintFinding]:
    """Flat-findings variant of :func:`lint_library` (kept for callers
    that do not need coverage)."""
    return lint_library(vendors, kwargs_for)[0]

"""Sanitized workload runner behind ``repro sanitize``.

Runs a representative mixed workload on the BABOL controller and on
both hardware baselines with every sanitizer attached, plus a
logic-analyzer capture fed through the ONFI timing checker — one
command-line gate over all four runtime rule families (SAN1xx–SAN4xx) and
the capture-time rules (TCK).  All findings land in a single
:class:`~repro.analysis.diagnostics.DiagnosticReport`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.analysis.diagnostics import DiagnosticReport
from repro.analysis.logic_analyzer import LogicAnalyzer
from repro.analysis.timing_check import TimingChecker
from repro.sanitize.base import attach_sanitizers


def _timing_check(analyzer: LogicAnalyzer, vendor, lun_count: int,
                  report: DiagnosticReport, component: str) -> None:
    checker = TimingChecker(
        vendor.timing_set(analyzer.channel.interface.name),
        lun_count=lun_count,
    )
    checker.check_analyzer(analyzer)
    for violation in checker.violations:
        report.add(violation.to_finding(component=component))


def run_babol_sanitized(
    vendor,
    lun_count: int = 4,
    ops: int = 18,
    runtime: str = "coroutine",
    sanitizers="all",
    report: Optional[DiagnosticReport] = None,
) -> DiagnosticReport:
    """Mixed read/program/erase workload under all sanitizers."""
    from repro.core import BabolController, ControllerConfig
    from repro.sim import Simulator

    report = report if report is not None else DiagnosticReport()
    sim = Simulator()
    controller = BabolController(
        sim,
        ControllerConfig(vendor=vendor, lun_count=lun_count, runtime=runtime,
                         track_data=False),
        sanitizers=sanitizers,
        diagnostics=report,
    )
    analyzer = LogicAnalyzer(controller.channel, capture_rb=True)

    page = controller.codec.geometry.full_page_size
    payload = (np.arange(page) % 251).astype(np.uint8)
    controller.dram.write(0, payload)

    tasks = []
    for i in range(ops):
        lun = i % lun_count
        if i % 3 == 2:
            tasks.append(controller.program_page(lun, 1, i // lun_count, 0))
        else:
            tasks.append(controller.read_page(lun, 1, i // lun_count,
                                              page * (1 + lun)))
    tasks.append(controller.erase_block(0, 2))
    for task in tasks:
        controller.run_to_completion(task)

    _timing_check(analyzer, vendor, lun_count, report,
                  component=f"babol/{runtime}")
    return report


def run_baseline_sanitized(
    kind: str,
    vendor,
    lun_count: int = 2,
    reads: int = 4,
    sanitizers="all",
    report: Optional[DiagnosticReport] = None,
) -> DiagnosticReport:
    """Read/program/erase sweep on one hardware baseline, sanitized."""
    from repro.baselines import AsyncHwController, SyncHwController
    from repro.sim import Simulator

    report = report if report is not None else DiagnosticReport()
    sim = Simulator()
    cls = {"sync": SyncHwController, "async": AsyncHwController}[kind]
    controller = cls(sim, vendor=vendor, lun_count=lun_count, track_data=False)
    attach_sanitizers(controller, sanitizers, report)
    analyzer = LogicAnalyzer(controller.channel, capture_rb=True)

    page = vendor.geometry.full_page_size
    payload = (np.arange(page) % 249).astype(np.uint8)
    controller.dram.write(0, payload)

    for i in range(reads):
        controller.run_to_completion(
            controller.read_page(i % lun_count, 1, i, page * (1 + i % lun_count))
        )
    controller.run_to_completion(controller.program_page(0, 2, 0, 0))
    controller.run_to_completion(controller.erase_block(0, 3))

    _timing_check(analyzer, vendor, lun_count, report,
                  component=f"{kind}-hw")
    return report


def run_all_sanitized(
    vendor,
    lun_count: int = 4,
    ops: int = 18,
    runtime: str = "coroutine",
    baselines: bool = True,
    report: Optional[DiagnosticReport] = None,
) -> DiagnosticReport:
    """The full `repro sanitize` sweep: BABOL plus both baselines."""
    report = report if report is not None else DiagnosticReport()
    run_babol_sanitized(vendor, lun_count=lun_count, ops=ops,
                        runtime=runtime, report=report)
    if baselines:
        baseline_luns = min(lun_count, 2)
        run_baseline_sanitized("sync", vendor, lun_count=baseline_luns,
                               report=report)
        run_baseline_sanitized("async", vendor, lun_count=baseline_luns,
                               report=report)
    return report

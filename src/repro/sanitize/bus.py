"""Bus sanitizer — SAN1xx: channel races and arbitration hazards.

The channel model itself only verifies that *someone* holds the mutex
when a segment is driven (``transmit`` raises otherwise); it cannot see
whether the driver is the rightful owner or whether a previous segment
is still occupying the wire.  On a real board these bugs are shorted
drivers and garbled waveforms; here they become findings:

* **SAN101** — overlapping waveform segments: a segment starts while a
  previous segment from the *same* bus master is still on the wire
  (two µFSM emissions of one program racing each other).
* **SAN102** — drive-while-held: a segment starts while a previous
  segment is still on the wire and the mutex owner has changed — a
  different master is driving over the first one's waveform.
* **SAN103** — mid-segment arbitration violation: the channel mutex is
  released (handing ownership to the next waiter) while a segment is
  still in flight.
"""

from __future__ import annotations

from repro.sanitize.base import Sanitizer


class BusSanitizer(Sanitizer):
    """Watches `Channel.transmit`/`Channel.release` for wire conflicts."""

    name = "bus"
    requires_waveform = True

    def attach(self, target, report) -> None:
        super().attach(target, report)
        channel = getattr(target, "channel", None)
        if channel is None:
            raise ValueError(f"{target!r} has no channel to sanitize")
        self.channel = channel
        if self.sim is None:
            self.sim = channel.sim
        self._component = f"channel/{channel.name}"
        self._wire_end = -1          # sim time the in-flight segment ends
        self._wire_owner = None      # mutex owner that drove it
        self._wire_label = ""
        channel._san_bus = self

    # -- hooks (called from Channel; guarded by `is not None`) ----------

    def on_transmit(self, now: int, segment, owner) -> None:
        label = segment.label or segment.kind.value
        if now < self._wire_end:
            overlap = self._wire_end - now
            if owner is not self._wire_owner:
                self.emit(
                    "SAN102",
                    f"segment {label!r} driven while {self._wire_label!r} "
                    f"from a different master still occupies the wire for "
                    f"{overlap} ns",
                    component=self._component, time_ns=now,
                    hint="hold the channel mutex across the whole "
                         "transaction; do not release between segments",
                )
            else:
                self.emit(
                    "SAN101",
                    f"segment {label!r} overlaps in-flight segment "
                    f"{self._wire_label!r} by {overlap} ns",
                    component=self._component, time_ns=now,
                    hint="yield from transmit() so the bus hold elapses "
                         "before emitting the next segment",
                )
        end = now + segment.duration_ns
        if end > self._wire_end:
            self._wire_end = end
        self._wire_owner = owner
        self._wire_label = label

    def on_release(self, now: int) -> None:
        if now < self._wire_end:
            self.emit(
                "SAN103",
                f"channel released {self._wire_end - now} ns before segment "
                f"{self._wire_label!r} leaves the wire",
                component=self._component, time_ns=now,
                hint="release the channel only after the final segment's "
                     "duration has elapsed",
            )

"""Liveness sanitizer — SAN4xx: deadlock and poll-livelock detection.

* **SAN401** — sim-kernel deadlock: the event heap drained (no runnable
  events anywhere) while submitted operations are still outstanding.
  The classic cause is a process parked on a trigger nobody will ever
  fire — e.g. an executor waiting on a channel mutex whose owner died.
* **SAN402** — poll-livelock: a LUN's status register was polled more
  than ``max_stalled_polls`` times without any R/B# progress on that
  LUN.  A correct poll loop observes progress within a bounded number
  of iterations; a runaway loop (wrong chip mask, wrong predicate, a
  die that lost its operation) spins forever.

Outstanding-work probes are discovered from the attach target: a BABOL
controller exposes task counters on its software environment; extra
probes can be registered with :meth:`add_outstanding_probe`.
"""

from __future__ import annotations

from typing import Callable

from repro.sanitize.base import Sanitizer

#: Default poll budget per busy period.  Sized from the slowest array op:
#: an erase is a few ms and a software poll round-trip about a µs, so a
#: healthy loop sees progress within a few thousand polls.
DEFAULT_MAX_STALLED_POLLS = 20_000


class LivenessSanitizer(Sanitizer):
    """Watches the kernel's quiescent point and per-LUN poll trains."""

    name = "liveness"

    def __init__(self, max_stalled_polls: int = DEFAULT_MAX_STALLED_POLLS):
        super().__init__()
        self.max_stalled_polls = max_stalled_polls
        self._polls: dict[int, int] = {}
        self._probes: list[tuple[str, Callable[[], int]]] = []
        self._quiescent_seen: set[tuple[str, int, int]] = set()

    def attach(self, target, report) -> None:
        super().attach(target, report)
        sim = self.sim
        if sim is None:
            channel = getattr(target, "channel", None)
            sim = self.sim = channel.sim if channel is not None else None
        if sim is None:
            raise ValueError(f"{target!r} has no simulator to sanitize")
        sim._san_liveness = self
        for lun in getattr(target, "luns", []) or []:
            lun._san_liveness = self
        env = getattr(target, "env", None)
        if env is not None:
            self.add_outstanding_probe(
                "tasks",
                lambda: env.tasks_submitted - env.tasks_completed,
            )

    def add_outstanding_probe(self, label: str,
                              probe: Callable[[], int]) -> None:
        """Register a counter of operations still in flight; checked
        whenever the kernel runs out of events."""
        self._probes.append((label, probe))

    # -- hooks from the LUN model --------------------------------------

    def on_status_poll(self, lun) -> None:
        count = self._polls.get(lun.position, 0) + 1
        self._polls[lun.position] = count
        if count == self.max_stalled_polls:
            self.emit(
                "SAN402",
                f"status register polled {count} times with no R/B# "
                f"progress on LUN {lun.position} (state {lun.state.value})",
                component=f"lun/{lun.position}",
                hint="check the poll's chip mask and predicate; pace polls "
                     "with PollStatus(period_ns=...) to stop burning the "
                     "channel",
            )

    def on_progress(self, lun) -> None:
        self._polls[lun.position] = 0

    # -- hook from the kernel (heap drained) ---------------------------

    def on_quiescent(self, now: int) -> None:
        for label, probe in self._probes:
            outstanding = probe()
            if outstanding > 0:
                key = (label, now, outstanding)
                if key in self._quiescent_seen:
                    continue  # repeated run() calls at the same stall point
                self._quiescent_seen.add(key)
                self.emit(
                    "SAN401",
                    f"simulation went quiescent at {now} ns with "
                    f"{outstanding} outstanding {label} — deadlock",
                    component="sim", time_ns=now,
                    hint="something is parked on a trigger or mutex that "
                         "will never fire; check channel ownership and "
                         "unfired completions",
                )

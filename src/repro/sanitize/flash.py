"""Flash sanitizer — SAN2xx: command classes illegal in the LUN state.

The LUN model already *raises* on the worst ONFI violations, but a
raise aborts the simulation at the first offence and says nothing about
which rule was broken.  The sanitizer records a structured finding
first (so a `repro sanitize` run reports every hazard), and adds checks
the model is silent about:

* **SAN201** — a non-status/non-suspend opcode latched while the LUN is
  array-busy (the LUN raises right after the finding is recorded).
* **SAN202** — a data-out/cache-register read before anything armed a
  data source: empty page register, cache read before the first tR
  completed, or no source armed at all.
* **SAN203** — a data-bearing or status segment whose chip mask selects
  zero dies (reading a deselected die returns float) or more than one
  die (several dies driving DQ at once — bus contention).
"""

from __future__ import annotations

from repro.onfi.commands import CMD, opcode_name
from repro.onfi.signals import CommandLatch, DataOutAction
from repro.sanitize.base import Sanitizer


class FlashSanitizer(Sanitizer):
    """Watches LUN state transitions and channel chip-select masks."""

    name = "flash"
    # SAN203 inspects chip-select masks on driven segments via a channel
    # tap, which the TLM tier never fires.
    requires_waveform = True

    _STATUS_OPCODES = (CMD.READ_STATUS, CMD.READ_STATUS_ENHANCED)

    def attach(self, target, report) -> None:
        super().attach(target, report)
        channel = getattr(target, "channel", None)
        luns = getattr(target, "luns", None)
        if channel is None or not luns:
            raise ValueError(f"{target!r} has no channel/LUNs to sanitize")
        if self.sim is None:
            self.sim = channel.sim
        self._width = channel.width
        for lun in luns:
            lun._san_flash = self
        channel.add_tap(self._on_segment)

    # -- hooks from the LUN model --------------------------------------

    def on_busy_violation(self, lun, opcode: int) -> None:
        remaining = max(lun._busy_until - lun.sim.now, 0)
        kind = lun._busy_kind.value if lun._busy_kind is not None else "?"
        self.emit(
            "SAN201",
            f"opcode {opcode_name(opcode)} latched while the {kind} "
            f"operation still has {remaining} ns of array time left",
            component=f"lun/{lun.position}",
            hint="poll READ STATUS until RDY (or suspend the operation) "
                 "before issuing the next command",
        )

    def on_unarmed_read(self, lun, detail: str) -> None:
        self.emit(
            "SAN202",
            f"register read with nothing armed: {detail}",
            component=f"lun/{lun.position}",
            hint="confirm the read and wait for tR (poll status) before "
                 "streaming the register out",
        )

    # -- channel tap: chip-select sanity -------------------------------

    def _on_segment(self, time_ns: int, segment) -> None:
        has_data_out = any(isinstance(action, DataOutAction)
                           for _, action in segment.actions)
        is_status = any(isinstance(action, CommandLatch)
                        and action.opcode in self._STATUS_OPCODES
                        for _, action in segment.actions)
        if not has_data_out and not is_status:
            return
        selected = len(segment.targets(self._width))
        if selected == 1:
            return
        what = "status poll" if is_status and not has_data_out else \
            "status poll" if is_status else "data-out burst"
        if selected == 0:
            self.emit(
                "SAN203",
                f"{what} addressed to a deselected die "
                f"(chip_mask=0b{segment.chip_mask:b} selects nothing on a "
                f"{self._width}-LUN channel) — DQ would float",
                component="channel", time_ns=time_ns,
                hint="set chip_mask to exactly one populated LUN position",
            )
        else:
            self.emit(
                "SAN203",
                f"{what} with {selected} dies selected "
                f"(chip_mask=0b{segment.chip_mask:b}) — multiple dies would "
                f"drive DQ simultaneously",
                component="channel", time_ns=time_ns,
                hint="broadcast is legal for command/address latches only; "
                     "read data from one die at a time",
            )

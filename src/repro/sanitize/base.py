"""Sanitizer base class, registry, and attachment plumbing.

A sanitizer is a TSan/ASan-style runtime checker for the simulated
controller: it attaches low-overhead hooks to the component models
(channel, LUNs, DRAM, kernel) and reports hazards as ``SAN###``
:class:`~repro.analysis.diagnostics.Finding` records.  The hooks follow
the tracer idiom — components carry a ``None`` attribute that every
call site guards with a single ``is not None`` check, so a simulation
without sanitizers pays one attribute load per hook point.

Attachment targets are duck-typed: anything exposing the component
attributes a sanitizer needs (``channel``, ``luns``, ``dram``, ``sim``,
``env``) can be sanitized — the BABOL controller and both hardware
baselines all qualify.

Custom sanitizers register with :func:`register_sanitizer` (INTERNALS
§9 shows a worked example) and are then selectable by name everywhere
built-ins are: ``ControllerConfig(sanitizers=...)``, ``--sanitize``.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Union

from repro.analysis.diagnostics import DiagnosticReport, Finding


class Sanitizer:
    """Base class: finding plumbing plus the attach contract."""

    #: Registry name; subclasses override.
    name = "base"

    #: True when the sanitizer samples per-segment bus traffic and is
    #: therefore meaningless under the TLM tier (which collapses that
    #: traffic into whole-transaction events).  Attachment to a TLM
    #: stack fails fast with a FidelityError instead of silently
    #: missing every event it was asked to observe.
    requires_waveform = False

    def __init__(self) -> None:
        self.report: Optional[DiagnosticReport] = None
        self.sim = None

    # -- subclass contract ---------------------------------------------

    def attach(self, target, report: DiagnosticReport) -> None:
        """Install hooks on ``target``'s components.  Subclasses must
        call ``super().attach(target, report)`` first."""
        self.report = report
        self.sim = getattr(target, "sim", None)

    # -- finding helper ------------------------------------------------

    def emit(
        self,
        rule: str,
        message: str,
        *,
        severity: str = "error",
        component: str = "",
        time_ns: Optional[int] = None,
        hint: str = "",
    ) -> None:
        if time_ns is None and self.sim is not None:
            time_ns = self.sim.now
        self.report.add(Finding(
            rule=rule, severity=severity, message=message,
            component=component, time_ns=time_ns, hint=hint,
        ))


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

SANITIZER_REGISTRY: dict[str, Callable[[], Sanitizer]] = {}


def register_sanitizer(name: str, factory: Callable[[], Sanitizer]) -> None:
    """Register a sanitizer factory under ``name`` (latest wins)."""
    SANITIZER_REGISTRY[name] = factory


def _register_builtins() -> None:
    # Imported lazily to avoid import cycles at package init.
    from repro.sanitize.bus import BusSanitizer
    from repro.sanitize.flash import FlashSanitizer
    from repro.sanitize.liveness import LivenessSanitizer
    from repro.sanitize.memory import MemorySanitizer

    for cls in (BusSanitizer, FlashSanitizer, MemorySanitizer,
                LivenessSanitizer):
        SANITIZER_REGISTRY.setdefault(cls.name, cls)


SanitizerSpec = Union[str, Iterable[str], None]


def resolve_names(spec: SanitizerSpec) -> tuple[str, ...]:
    """Normalize a sanitizer selection to a tuple of registry names.

    Accepts ``"all"``, a comma-separated string, or an iterable of
    names; ``None``/empty selects nothing.
    """
    _register_builtins()
    if spec is None:
        return ()
    if isinstance(spec, str):
        names = [part.strip() for part in spec.split(",") if part.strip()]
    else:
        names = list(spec)
    if names == ["all"]:
        names = ["bus", "flash", "memory", "liveness"]
        names += [n for n in SANITIZER_REGISTRY if n not in names]
    unknown = [n for n in names if n not in SANITIZER_REGISTRY]
    if unknown:
        raise ValueError(
            f"unknown sanitizer(s) {unknown}; known: {sorted(SANITIZER_REGISTRY)}"
        )
    return tuple(names)


def attach_sanitizers(
    target,
    spec: SanitizerSpec = "all",
    report: Optional[DiagnosticReport] = None,
) -> tuple[Sanitizer, ...]:
    """Instantiate and attach the selected sanitizers to ``target``.

    All attached sanitizers share ``report`` (created when omitted);
    read it back from any sanitizer's ``.report``.
    """
    shared = report if report is not None else DiagnosticReport()
    backend = getattr(getattr(target, "channel", None), "backend", None)
    sanitizers = []
    for name in resolve_names(spec):
        sanitizer = SANITIZER_REGISTRY[name]()
        if (sanitizer.requires_waveform and backend is not None
                and not backend.waveform):
            from repro.core.backend import FidelityError

            raise FidelityError(
                f"sanitizer '{name}' samples per-segment bus traffic, "
                f"which the '{backend.name}' tier does not simulate — "
                f"run with fidelity='waveform', or select only "
                f"transaction-safe sanitizers (e.g. 'memory,liveness')"
            )
        sanitizer.attach(target, shared)
        sanitizers.append(sanitizer)
    return tuple(sanitizers)

"""Memory/DMA sanitizer — SAN3xx: DRAM staging-buffer hazards.

Keeps an ASan-style shadow of the DRAM staging buffer: a byte-granular
"written" bitmap plus the allocator's live/free interval sets.  Shadow
state is only allocated when the sanitizer attaches, so an unsanitized
simulation carries a single ``None`` attribute on the buffer.

* **SAN301** — read-before-write: a DMA fetch (or explicit ``read``)
  touches bytes never written this run — the flash would be programmed
  with whatever junk the staging buffer held.
* **SAN302** — allocator misuse: double-free of a region, free of a
  region that was never allocated, or a free whose size disagrees with
  the allocation.
* **SAN303** — transfer/allocation mismatch: a DMA transfer moves a
  different byte count than its descriptor window was minted for
  (silent truncation on deliver, short bursts on fetch).
"""

from __future__ import annotations

import numpy as np

from repro.sanitize.base import Sanitizer


class MemorySanitizer(Sanitizer):
    """Shadow-state checker for :class:`repro.dram.DramBuffer`."""

    name = "memory"

    #: Cap per rule so a hot loop cannot flood the report.
    max_findings_per_rule = 64

    def attach(self, target, report) -> None:
        super().attach(target, report)
        dram = getattr(target, "dram", None)
        if dram is None:
            raise ValueError(f"{target!r} has no DRAM buffer to sanitize")
        self.dram = dram
        self._written = np.zeros(dram.size, dtype=bool)
        self._live: dict[int, int] = {}    # base -> nbytes
        self._freed: dict[int, int] = {}   # base -> nbytes on the free list
        self._emitted: dict[str, int] = {}
        self._seen_reads: set[tuple[int, int]] = set()
        dram._sanitizer = self

    def _capped_emit(self, rule: str, message: str, **kwargs) -> None:
        count = self._emitted.get(rule, 0)
        if count >= self.max_findings_per_rule:
            return
        self._emitted[rule] = count + 1
        self.emit(rule, message, component="dram", **kwargs)

    # -- access hooks (DramBuffer.read/write/view) ---------------------

    def on_write(self, address: int, nbytes: int) -> None:
        self._written[address:address + nbytes] = True

    def on_read(self, address: int, nbytes: int) -> None:
        if nbytes <= 0:
            return
        window = self._written[address:address + nbytes]
        if window.all():
            return
        key = (address, nbytes)
        if key in self._seen_reads:
            return
        self._seen_reads.add(key)
        first = address + int(np.argmin(window))
        self._capped_emit(
            "SAN301",
            f"read of [{address}, {address + nbytes}) touches "
            f"uninitialized DRAM (first unwritten byte at {first})",
            hint="stage the payload into DRAM before pointing a DMA "
                 "descriptor at it",
        )

    # -- allocator hooks (DramBuffer.alloc/free) -----------------------

    def on_alloc(self, base: int, nbytes: int) -> None:
        self._live[base] = nbytes
        end = base + nbytes
        carved: dict[int, int] = {}
        for free_base, free_len in self._freed.items():
            free_end = free_base + free_len
            if free_end <= base or free_base >= end:
                carved[free_base] = free_len
                continue
            if free_base < base:
                carved[free_base] = base - free_base
            if free_end > end:
                carved[end] = free_end - end
        self._freed = carved

    def on_free(self, base: int, nbytes: int) -> None:
        end = base + nbytes
        for free_base, free_len in self._freed.items():
            if free_base < end and base < free_base + free_len:
                self._capped_emit(
                    "SAN302",
                    f"double free of [{base}, {end}): overlaps region "
                    f"[{free_base}, {free_base + free_len}) already on the "
                    f"free list",
                    hint="each allocated region may be freed exactly once",
                )
                return
        allocated = self._live.pop(base, None)
        if allocated is None:
            self._capped_emit(
                "SAN302",
                f"free of [{base}, {end}) which was never allocated",
                hint="free only regions returned by alloc()",
            )
        elif allocated != nbytes:
            self._capped_emit(
                "SAN302",
                f"free of [{base}, {end}) but the allocation was "
                f"{allocated} bytes",
                hint="free with the same size the region was allocated with",
            )
        self._freed[base] = nbytes

    # -- DMA hooks (DmaHandle.deliver/fetch) ---------------------------

    def on_transfer(self, handle, direction: str, requested: int) -> None:
        if requested == handle.nbytes:
            return
        verb = "truncated" if requested > handle.nbytes else "short"
        self._capped_emit(
            "SAN303",
            f"{direction} of {requested} B through a {handle.nbytes} B DMA "
            f"window at address {handle.address} ({verb} transfer)",
            hint="mint the DMA descriptor with the burst's exact byte count",
        )

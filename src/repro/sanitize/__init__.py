"""Runtime sanitizers for the simulated controller (SAN rule families).

Sanitizers are TSan/ASan-style observers that attach to a running
simulation through nullable hooks on the core components — a single
``is not None`` test per hook site, so an unsanitized run pays nothing.
Enable them with ``BabolController(..., sanitizers="all")`` or the
``repro sanitize`` CLI subcommand.
"""

from repro.sanitize.base import (
    SANITIZER_REGISTRY,
    Sanitizer,
    attach_sanitizers,
    register_sanitizer,
    resolve_names,
)
from repro.sanitize.bus import BusSanitizer
from repro.sanitize.flash import FlashSanitizer
from repro.sanitize.liveness import DEFAULT_MAX_STALLED_POLLS, LivenessSanitizer
from repro.sanitize.memory import MemorySanitizer
from repro.sanitize.runner import (
    run_all_sanitized,
    run_babol_sanitized,
    run_baseline_sanitized,
)

__all__ = [
    "SANITIZER_REGISTRY",
    "Sanitizer",
    "attach_sanitizers",
    "register_sanitizer",
    "resolve_names",
    "BusSanitizer",
    "FlashSanitizer",
    "MemorySanitizer",
    "LivenessSanitizer",
    "DEFAULT_MAX_STALLED_POLLS",
    "run_all_sanitized",
    "run_babol_sanitized",
    "run_baseline_sanitized",
]

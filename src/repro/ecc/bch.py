"""Behavioural BCH engine for the page path.

Commercial controllers run a BCH or LDPC decoder correcting dozens of
bits per 1 KiB codeword.  Implementing Berlekamp–Massey in Python would
dominate simulation time while adding nothing to the paper's claims, so
this engine is behavioural: it counts *true* bit errors per codeword by
comparing the received buffer against the pristine page (the simulation
oracle that the flash array provides), corrects when every codeword is
within the configured ``t``, and reports an uncorrectable page
otherwise — the event that drives the READ RETRY operation.

``count_bit_errors`` is exact (xor + popcount), so the correct/fail
decision is identical to what a real decoder of strength ``t`` would
reach against the same corruption.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

_POPCOUNT = np.array([bin(i).count("1") for i in range(256)], dtype=np.uint32)


def count_bit_errors(received: np.ndarray, pristine: np.ndarray) -> int:
    """Exact Hamming distance between two byte buffers."""
    a = np.asarray(received, dtype=np.uint8)
    b = np.asarray(pristine, dtype=np.uint8)
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    return int(_POPCOUNT[a ^ b].sum())


@dataclass(frozen=True)
class BchConfig:
    """Correction capability: ``t`` bits per ``codeword_bytes`` codeword."""

    codeword_bytes: int = 1024
    t: int = 40

    def validate(self) -> None:
        if self.codeword_bytes <= 0 or self.t < 0:
            raise ValueError("invalid BCH configuration")


@dataclass
class EccResult:
    """Outcome of decoding one page."""

    ok: bool
    data: np.ndarray
    corrected_bits: int
    worst_codeword_errors: int
    codewords: int


class BchEngine:
    """Page-level behavioural BCH decode/encode."""

    def __init__(self, config: BchConfig | None = None):
        self.config = config or BchConfig()
        self.config.validate()
        self.pages_decoded = 0
        self.pages_failed = 0
        self.bits_corrected_total = 0

    def codeword_count(self, nbytes: int) -> int:
        return -(-nbytes // self.config.codeword_bytes)

    def parity_bytes(self, nbytes: int) -> int:
        """Spare-area budget: ~15 bits per corrected bit per codeword."""
        per_codeword = (self.config.t * 15 + 7) // 8
        return self.codeword_count(nbytes) * per_codeword

    def decode(self, received: np.ndarray, pristine: np.ndarray) -> EccResult:
        """Correct ``received`` against the oracle ``pristine``."""
        received = np.asarray(received, dtype=np.uint8)
        pristine = np.asarray(pristine, dtype=np.uint8)
        if received.shape != pristine.shape:
            raise ValueError("received/pristine size mismatch")
        self.pages_decoded += 1
        size = self.config.codeword_bytes
        worst = 0
        total = 0
        ok = True
        for start in range(0, len(received), size):
            errors = count_bit_errors(received[start:start + size],
                                      pristine[start:start + size])
            worst = max(worst, errors)
            total += errors
            if errors > self.config.t:
                ok = False
        if ok:
            self.bits_corrected_total += total
            data = pristine.copy()
        else:
            self.pages_failed += 1
            data = received.copy()
        return EccResult(
            ok=ok,
            data=data,
            corrected_bits=total if ok else 0,
            worst_codeword_errors=worst,
            codewords=self.codeword_count(len(received)),
        )

    def failure_probability_hint(self, rber: float) -> float:
        """Rough per-codeword failure estimate (Poisson tail above t).

        Used by capacity-planning examples, not by the decode path.
        """
        lam = rber * self.config.codeword_bytes * 8
        # P[X > t] for X ~ Poisson(lam), computed by summing the head.
        term = np.exp(-lam)
        head = term
        for k in range(1, self.config.t + 1):
            term *= lam / k
            head += term
        return float(max(0.0, 1.0 - head))

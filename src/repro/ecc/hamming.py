"""Hamming(72,64) SEC-DED codec, vectorized over numpy bit arrays.

Each 64-bit data word gets 7 Hamming parity bits (single-error
correction) plus one overall parity bit (double-error detection).
Encoding and decoding operate on whole buffers at once: unpack to bits,
reshape to words, and multiply by the parity-check matrix over GF(2).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

_DATA_BITS = 64
_HAMMING_BITS = 7  # positions 1..127 cover 64 data + 7 parity
_CODE_BITS = _DATA_BITS + _HAMMING_BITS + 1  # +1 overall parity = 72


def _build_position_maps() -> tuple[np.ndarray, np.ndarray]:
    """Hamming positions 1..71: powers of two are parity, rest data."""
    positions = np.arange(1, _DATA_BITS + _HAMMING_BITS + 1)
    is_parity = (positions & (positions - 1)) == 0
    data_positions = positions[~is_parity]
    parity_positions = positions[is_parity]
    return data_positions, parity_positions


_DATA_POS, _PARITY_POS = _build_position_maps()
# Parity matrix: bit i of a position says whether parity i covers it.
_COVERAGE = np.array(
    [[(int(pos) >> i) & 1 for pos in _DATA_POS] for i in range(_HAMMING_BITS)],
    dtype=np.uint8,
)


@dataclass
class HammingStats:
    words: int = 0
    corrected: int = 0
    detected_double: int = 0


class HammingCodec:
    """SEC-DED codec over 64-bit words.

    ``encode`` produces one parity byte per data word (7 Hamming bits +
    1 overall).  ``decode`` fixes single-bit errors in place and reports
    uncorrectable double-bit detections.
    """

    def __init__(self) -> None:
        self.stats = HammingStats()

    # -- helpers ----------------------------------------------------------

    @staticmethod
    def _to_words(data: np.ndarray) -> np.ndarray:
        data = np.asarray(data, dtype=np.uint8)
        if len(data) % 8:
            raise ValueError("data length must be a multiple of 8 bytes")
        bits = np.unpackbits(data)
        return bits.reshape(-1, _DATA_BITS)

    def _parities(self, words: np.ndarray) -> np.ndarray:
        """(n, 7) Hamming parity bits per word."""
        return (words @ _COVERAGE.T) & 1

    # -- API ---------------------------------------------------------------

    def encode(self, data: np.ndarray) -> np.ndarray:
        """Parity bytes (one per 8 data bytes)."""
        words = self._to_words(data)
        parities = self._parities(words).astype(np.uint8)
        overall = (words.sum(axis=1) + parities.sum(axis=1)) & 1
        packed = np.concatenate(
            [parities, overall[:, None].astype(np.uint8)], axis=1
        )
        return np.packbits(packed, axis=1).reshape(-1)

    def decode(self, data: np.ndarray, parity: np.ndarray) -> tuple[np.ndarray, int, int]:
        """Correct ``data`` against ``parity``.

        Returns ``(corrected_data, corrected_count, uncorrectable_count)``.
        """
        words = self._to_words(data)
        n = len(words)
        self.stats.words += n
        stored = np.unpackbits(np.asarray(parity, dtype=np.uint8)).reshape(n, 8)
        stored_hamming = stored[:, :_HAMMING_BITS]
        stored_overall = stored[:, _HAMMING_BITS]

        recomputed = self._parities(words)
        syndrome_bits = (recomputed ^ stored_hamming) & 1
        syndrome = np.zeros(n, dtype=np.int64)
        for i in range(_HAMMING_BITS):
            syndrome |= syndrome_bits[:, i].astype(np.int64) << i
        # The overall parity covers the codeword as *stored*: received data
        # bits plus the stored Hamming bits.  (Recomputed parities would
        # cancel a data flip covered by an odd number of groups.)
        overall_now = (words.sum(axis=1) + stored_hamming.sum(axis=1)) & 1
        overall_mismatch = (overall_now ^ stored_overall) & 1

        corrected = 0
        uncorrectable = 0
        pos_to_index = {int(p): i for i, p in enumerate(_DATA_POS)}
        for w in np.nonzero(syndrome != 0)[0]:
            s = int(syndrome[w])
            if overall_mismatch[w]:
                index = pos_to_index.get(s)
                if index is not None:
                    words[w, index] ^= 1  # single data-bit error: fix it
                # else: the flipped bit was a parity bit; data is intact.
                corrected += 1
            else:
                uncorrectable += 1  # even error count with nonzero syndrome
        self.stats.corrected += corrected
        self.stats.detected_double += uncorrectable
        fixed = np.packbits(words.reshape(-1))
        return fixed, corrected, uncorrectable


class SectorCodec:
    """Page-level convenience: Hamming-protect a sector of any 8-aligned size.

    Storage overhead is 1 parity byte per 8 data bytes (12.5 %), in the
    same ballpark as a strong BCH on modern parts.  Because errors are
    corrected per 64-bit word, uniformly-spread multi-bit errors are
    usually all correctable; clustered double errors within a word are
    detected and reported uncorrectable — which is exactly the event the
    read-retry operation exists to resolve.
    """

    def __init__(self) -> None:
        self.codec = HammingCodec()

    def parity_size(self, data_size: int) -> int:
        if data_size % 8:
            raise ValueError("sector size must be a multiple of 8")
        return data_size // 8

    def encode(self, data: np.ndarray) -> np.ndarray:
        return self.codec.encode(data)

    def decode(self, data: np.ndarray, parity: np.ndarray) -> tuple[np.ndarray, bool, int]:
        fixed, corrected, uncorrectable = self.codec.decode(data, parity)
        return fixed, uncorrectable == 0, corrected

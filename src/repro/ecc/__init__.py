"""Error-correction coding for the flash read/write path.

Two engines:

* :class:`HammingCodec` — a *real* SEC-DED Hamming(72,64) implementation
  (vectorized bit math), used for metadata and as the fully-honest codec
  in tests and examples.
* :class:`BchEngine` — a behavioural t-per-codeword BCH model for the
  16 KiB page path.  Real BCH decoding is out of scope (and out of CPU
  budget) for a timing-focused reproduction, so the engine counts true
  bit errors against the pristine page (a simulation oracle, the same
  device used by MQSim/FEMU-class simulators) and corrects when the
  count is within the configured capability.  DESIGN.md documents the
  substitution.
"""

from repro.ecc.hamming import HammingCodec, SectorCodec
from repro.ecc.bch import BchConfig, BchEngine, EccResult, count_bit_errors

__all__ = [
    "HammingCodec",
    "SectorCodec",
    "BchConfig",
    "BchEngine",
    "EccResult",
    "count_bit_errors",
]

"""Queue-depth host engine: the scale-out workload front end.

Where :func:`~repro.host.workload.measure_read_throughput` keeps one
closed loop per LUN (one outstanding command each), this module models
what a real NVMe host does against a multi-channel array:

* one :class:`ChannelQueuePair` per channel — a bounded submission
  queue, a completion list, and one device-side worker per queue slot,
  so a queue of depth 32 really does keep up to 32 commands in flight
  on its channel;
* **batched doorbells** — submissions stage host-side and the doorbell
  rings once per batch (``doorbell_batch``), the way a driver updates
  the SQ tail once after writing several entries;
* **backpressure** — a queue pair never holds more than ``queue_depth``
  commands across staged + queued + in-flight; the closed-loop driver
  blocks on the completion pulse when its target queue is full.

Everything is driven by simulator events in FIFO order, so a run is a
pure function of (topology, job): two identical runs complete the same
commands in the same order at the same nanoseconds.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Generator, Optional

from repro.analysis.metrics import _percentile
from repro.ftl.ftl import PageMappedFtl, ShardedFtl
from repro.host.hic import HostOpcode
from repro.sim import Simulator
from repro.sim.kernel import NS_PER_S
from repro.sim.sync import Trigger


class QueueSaturatedError(RuntimeError):
    """Submission against a queue pair with no free slot."""


def build_scale_stack(
    sim: Simulator,
    channels: int = 4,
    luns_per_channel: int = 4,
    vendor=None,
    runtime: str = "coroutine",
    ftl_config=None,
    prefill_pages: Optional[int] = None,
    track_data: bool = False,
    fidelity: str = "waveform",
):
    """Stand up an N-channel array: controllers + :class:`ShardedFtl`.

    Each channel gets its own :class:`~repro.core.controller.BabolController`
    (bus, executor, runtime, DRAM — nothing shared between channels, as
    in the real chip where every channel controller is an independent
    BABOL instance).  Returns ``(controllers, sharded_ftl)``.

    ``fidelity`` selects the execution backend of every channel:
    ``"waveform"`` for segment-accurate simulation, ``"tlm"`` for the
    transaction-level fast path (same data and FTL behaviour, ~10x the
    simulated ops per wall-second — see ``repro.core.backend``).

    .. deprecated::
        This keyword surface is superseded by the declarative spec
        layer: build a :class:`~repro.config.specs.StackSpec` and call
        :func:`repro.config.build.build_stack` (or describe the whole
        run with an :class:`~repro.config.specs.ExperimentSpec` and
        :func:`~repro.config.build.build_experiment`).  This shim maps
        its kwargs onto a spec and delegates, so stacks it builds stay
        byte-identical to spec-built ones.
    """
    import warnings

    from repro.config.build import build_stack as _build_stack
    from repro.config.build import legacy_kwargs_to_spec
    from repro.config.specs import SpecError

    warnings.warn(
        "build_scale_stack is deprecated; describe the stack with a "
        "repro.config StackSpec and use repro.config.build.build_stack",
        DeprecationWarning, stacklevel=2,
    )
    if channels <= 0:
        raise ValueError("channels must be positive")
    profile = None
    spec_vendor = vendor
    if vendor is not None and not isinstance(vendor, str):
        # Ad-hoc profile objects can't be expressed as data; resolve the
        # spec against the default vendor and override the profile.
        try:
            from repro.config.build import _vendor_name

            spec_vendor = _vendor_name(vendor)
        except SpecError:
            spec_vendor = None
            profile = vendor
    spec = legacy_kwargs_to_spec(
        channels=channels, luns_per_channel=luns_per_channel,
        vendor=spec_vendor, runtime=runtime, ftl_config=ftl_config,
        prefill_pages=prefill_pages, track_data=track_data,
        fidelity=fidelity,
    )
    return _build_stack(sim, spec, profile=profile)


@dataclass
class ScaleCommand:
    """One host command routed through a channel queue pair."""

    opcode: HostOpcode
    lpn: int
    dram_address: int = 0
    payload: Optional[object] = None  # uint8 ndarray, staged into shard
                                      # DRAM at submit
    tag: int = 0                      # caller-owned (e.g. write version)
    cid: int = -1                 # engine-local, assigned at submit
    channel: int = -1             # routed shard, assigned at submit
    local_lpn: int = -1           # shard-local LPN, assigned at submit
    slot: int = -1                # pair DRAM slot, held until completion
    submitted_at: int = 0
    started_at: Optional[int] = None
    finished_at: Optional[int] = None

    @property
    def latency_ns(self) -> Optional[int]:
        if self.finished_at is None:
            return None
        return self.finished_at - self.submitted_at


class ChannelQueuePair:
    """A bounded SQ/CQ pair bound to one channel shard."""

    def __init__(self, sim: Simulator, engine: "ScaleEngine",
                 channel: int, depth: int):
        if depth <= 0:
            raise ValueError("queue depth must be positive")
        self.sim = sim
        self.engine = engine
        self.channel = channel
        self.depth = depth
        self._staged: list[ScaleCommand] = []   # written, doorbell not rung
        self._sq: deque[ScaleCommand] = deque()  # device-visible
        self._idle: deque[Trigger] = deque()     # parked workers, FIFO
        # DRAM slot pool: a slot is held from stage to completion, so a
        # buffer is never reused while its command is in flight.  (A
        # plain ``submitted % depth`` scheme is only collision-free
        # when completions are FIFO — mixed read/write latencies break
        # that.)
        self._slots: deque[int] = deque(range(depth))
        self.inflight = 0
        self.completions: list[ScaleCommand] = []
        self.cq_pulse = Trigger(sim)
        self.doorbells = 0
        self.submitted = 0
        self._workers = [
            sim.spawn(self._worker(), name=f"qp{channel}-w{i}")
            for i in range(depth)
        ]

    # -- host side -----------------------------------------------------

    @property
    def outstanding(self) -> int:
        return len(self._staged) + len(self._sq) + self.inflight

    @property
    def free_slots(self) -> int:
        return self.depth - self.outstanding

    def stage(self, command: ScaleCommand) -> None:
        """Write one SQ entry host-side (doorbell not yet rung)."""
        if self.free_slots <= 0:
            raise QueueSaturatedError(
                f"channel {self.channel} queue full (depth {self.depth})"
            )
        command.submitted_at = self.sim.now
        command.slot = self._slots.popleft()
        self.submitted += 1
        self._staged.append(command)

    def ring(self) -> int:
        """Ring the doorbell: publish every staged entry in one batch."""
        if not self._staged:
            return 0
        batch = len(self._staged)
        self._sq.extend(self._staged)
        self._staged.clear()
        self.doorbells += 1
        # Wake exactly as many parked workers as there are entries to
        # claim, oldest first.  A broadcast would resume the whole
        # depth-sized pool per doorbell only for all but `batch` of
        # them to re-park — at depth 32 that is most of the kernel's
        # event traffic.  Wakes are scheduled in park order, so the
        # command-to-pop pairing is identical to a broadcast.
        wake = min(len(self._idle), len(self._sq))
        for _ in range(wake):
            self._idle.popleft().fire()
        return batch

    # -- device side ---------------------------------------------------

    def _worker(self) -> Generator:
        ftl = self.engine.shard(self.channel)
        while True:
            while not self._sq:
                gate = Trigger(self.sim)
                self._idle.append(gate)
                yield from gate.wait()
            command = self._sq.popleft()
            self.inflight += 1
            command.started_at = self.sim.now
            if command.opcode is HostOpcode.READ:
                yield from ftl.read(command.local_lpn, command.dram_address)
            elif command.opcode is HostOpcode.WRITE:
                yield from ftl.write(command.local_lpn, command.dram_address)
            elif command.opcode is HostOpcode.FLUSH:
                yield from ftl.flush()
            else:
                ftl.trim(command.local_lpn)
            command.finished_at = self.sim.now
            self.inflight -= 1
            self._slots.append(command.slot)
            self.completions.append(command)
            tracer = self.sim._tracer
            if tracer is not None:
                tracer.complete(
                    "host", f"host/qp{self.channel}", command.opcode.value,
                    command.submitted_at,
                    command.finished_at - command.submitted_at,
                    # cid is engine-local and deterministic, safe to log.
                    {"lpn": command.lpn, "cid": command.cid},
                )
            self.engine._completed(command)
            self.cq_pulse.fire(command)


class ScaleEngine:
    """Routes commands to per-channel queue pairs over a sharded FTL.

    Accepts a :class:`~repro.ftl.ftl.ShardedFtl` (one queue pair per
    channel) or a plain :class:`~repro.ftl.ftl.PageMappedFtl` (treated
    as a one-channel array), so the same driver exercises both.
    """

    def __init__(
        self,
        sim: Simulator,
        ftl,
        queue_depth: int = 32,
        doorbell_batch: int = 4,
        record_acks: bool = False,
        auto_dram: bool = False,
        dram_base: int = 0,
        dram_stride: int = 32 * 1024,
    ):
        if doorbell_batch <= 0:
            raise ValueError("doorbell_batch must be positive")
        self.sim = sim
        self.ftl = ftl
        self.queue_depth = queue_depth
        self.doorbell_batch = doorbell_batch
        # Ack ledger: completed state-changing commands in completion
        # order, the ground truth a crash-consistency check replays
        # against.  Opt-in — long throughput runs don't pay for it.
        self.record_acks = record_acks
        self.acks: list[ScaleCommand] = []
        # auto_dram: address every command from its pair's slot pool,
        # guaranteeing the buffer stays untouched for the whole flight.
        self.auto_dram = auto_dram
        self.dram_base = dram_base
        self.dram_stride = dram_stride
        if isinstance(ftl, ShardedFtl):
            self._shards = ftl.shards
        else:
            self._shards = [ftl]
        self.pairs = [
            ChannelQueuePair(sim, self, channel, queue_depth)
            for channel in range(len(self._shards))
        ]
        self.completion_pulse = Trigger(sim)
        self.submitted = 0
        self.completed = 0
        self._next_cid = 0

    def shard(self, channel: int) -> PageMappedFtl:
        return self._shards[channel]

    @property
    def channel_count(self) -> int:
        return len(self.pairs)

    @property
    def outstanding(self) -> int:
        return sum(pair.outstanding for pair in self.pairs)

    @property
    def doorbells_rung(self) -> int:
        return sum(pair.doorbells for pair in self.pairs)

    def route(self, lpn: int) -> tuple[int, int]:
        """(channel, shard-local LPN) for a global LPN."""
        if isinstance(self.ftl, ShardedFtl):
            return self.ftl.router.route(lpn)
        return 0, lpn

    def pair_for(self, lpn: int) -> ChannelQueuePair:
        return self.pairs[self.route(lpn)[0]]

    def submit(self, command: ScaleCommand) -> int:
        """Stage one command on its channel's queue pair.

        Raises :class:`QueueSaturatedError` when that pair has no free
        slot — callers implement backpressure by waiting on
        ``completion_pulse``.  The doorbell rings automatically once a
        pair accumulates ``doorbell_batch`` staged entries; partial
        batches are flushed by :meth:`ring_doorbells`.
        """
        channel, local = self.route(command.lpn)
        command.channel = channel
        command.local_lpn = local
        command.cid = self._next_cid
        pair = self.pairs[channel]
        pair.stage(command)         # raises before any state is shared
        if self.auto_dram:
            command.dram_address = (
                self.dram_base + command.slot * self.dram_stride
            )
        if command.payload is not None:
            # Stage the write payload into the shard's DRAM now; the
            # slot pool keeps the buffer untouched until completion.
            self.shard(channel).controller.dram.write(
                command.dram_address, command.payload
            )
        self._next_cid += 1
        self.submitted += 1
        if len(pair._staged) >= self.doorbell_batch:
            pair.ring()
        return command.cid

    def ring_doorbells(self) -> int:
        """Flush every partial batch; returns entries published."""
        return sum(pair.ring() for pair in self.pairs)

    def drain(self) -> Generator:
        """Process helper: block until nothing is outstanding."""
        self.ring_doorbells()
        while self.outstanding:
            yield from self.completion_pulse.wait()

    def _completed(self, command: ScaleCommand) -> None:
        self.completed += 1
        if self.record_acks and command.opcode is not HostOpcode.READ:
            self.acks.append(command)
        self.completion_pulse.fire(command)


@dataclass(frozen=True)
class ScaleJob:
    """One scale-run description (the fio analogue for the engine)."""

    pattern: str = "sequential"    # "sequential" | "random"
    opcode: HostOpcode = HostOpcode.READ
    io_count: int = 256
    seed: int = 42
    working_set_pages: int = 0     # 0 = whole mapped range
    dram_stride: int = 32 * 1024
    dram_base: int = 0

    def validate(self) -> None:
        if self.pattern not in ("sequential", "random"):
            raise ValueError("pattern must be 'sequential' or 'random'")
        if self.io_count <= 0:
            raise ValueError("io_count must be positive")


@dataclass
class ScaleRunResult:
    """Simulated-time outcome of one scale run."""

    channels: int
    queue_depth: int
    commands: int
    payload_bytes: int
    elapsed_ns: int
    mean_latency_ns: float
    p50_latency_ns: float
    p95_latency_ns: float
    p99_latency_ns: float
    max_latency_ns: int
    doorbells: int
    per_channel_commands: list[int] = field(default_factory=list)

    @property
    def throughput_mb_s(self) -> float:
        if self.elapsed_ns == 0:
            return 0.0
        return self.payload_bytes / (self.elapsed_ns / NS_PER_S) / 1e6

    @property
    def iops(self) -> float:
        if self.elapsed_ns == 0:
            return 0.0
        return self.commands / (self.elapsed_ns / NS_PER_S)

    def to_json_obj(self) -> dict:
        """JSON-ready summary with stable, sorted keys."""
        return {
            "channels": self.channels,
            "commands": self.commands,
            "doorbells": self.doorbells,
            "elapsed_ns": self.elapsed_ns,
            "iops": round(self.iops, 1),
            "latency_us": {
                "max": round(self.max_latency_ns / 1000, 3),
                "mean": round(self.mean_latency_ns / 1000, 3),
                "p50": round(self.p50_latency_ns / 1000, 3),
                "p95": round(self.p95_latency_ns / 1000, 3),
                "p99": round(self.p99_latency_ns / 1000, 3),
            },
            "payload_bytes": self.payload_bytes,
            "per_channel_commands": list(self.per_channel_commands),
            "queue_depth": self.queue_depth,
            "throughput_mb_s": round(self.throughput_mb_s, 2),
        }


def run_scale_workload(
    sim: Simulator,
    engine: ScaleEngine,
    job: ScaleJob,
) -> ScaleRunResult:
    """Drive ``job`` through ``engine`` with closed-loop backpressure.

    A single submitter process keeps every channel's queue pair as full
    as the depth budget allows (strict submission order — head-of-line
    blocking on a saturated channel is intentional, it is what a single
    submission thread does), rings partial doorbells before blocking,
    and waits on the completion pulse to refill.
    """
    job.validate()
    ftl = engine.ftl
    working_set = job.working_set_pages or (
        ftl.mapped_count if hasattr(ftl, "mapped_count") else ftl.map.mapped_count
    )
    if working_set == 0 and job.opcode is HostOpcode.READ:
        raise ValueError("read job against an empty FTL — prefill first")

    if job.pattern == "sequential":
        lpns = [i % max(working_set, 1) for i in range(job.io_count)]
    else:
        import numpy as np

        rng = np.random.default_rng(job.seed)
        lpns = rng.integers(0, max(working_set, 1), size=job.io_count).tolist()

    start = sim.now

    # DRAM buffers come from the pair's slot pool (a slot is held from
    # stage to completion), never from a ``submitted % depth`` sequence:
    # even single-opcode jobs complete out of order when some commands
    # stall on GC or checkpoint work, and a modulo slot could be reused
    # while the earlier command holding it is still in flight.  Engines
    # already configured with ``auto_dram`` keep their own addressing.
    restore = None
    if not engine.auto_dram:
        restore = (engine.dram_base, engine.dram_stride)
        engine.auto_dram = True
        engine.dram_base = job.dram_base
        engine.dram_stride = job.dram_stride

    def submitter() -> Generator:
        queue = deque(int(lpn) for lpn in lpns)
        while queue:
            # Fill: push as long as the head command's channel has room.
            while queue:
                pair = engine.pair_for(queue[0])
                if pair.free_slots <= 0:
                    break
                engine.submit(ScaleCommand(
                    opcode=job.opcode,
                    lpn=queue.popleft(),
                ))
            if not queue:
                break
            # Head channel is saturated: publish partial batches so the
            # device sees everything, then sleep until a completion frees
            # a slot.  (A full pair implies outstanding > 0 once rung.)
            engine.ring_doorbells()
            yield from engine.completion_pulse.wait()
        yield from engine.drain()

    try:
        sim.run_process(submitter(), name="scale-submitter")
    finally:
        if restore is not None:
            engine.auto_dram = False
            engine.dram_base, engine.dram_stride = restore

    completions = [c for pair in engine.pairs for c in pair.completions]
    latencies = sorted(c.latency_ns for c in completions)
    mean = sum(latencies) / len(latencies) if latencies else 0.0
    return ScaleRunResult(
        channels=engine.channel_count,
        queue_depth=engine.queue_depth,
        commands=len(completions),
        payload_bytes=len(completions) * engine.shard(0).page_size,
        elapsed_ns=sim.now - start,
        mean_latency_ns=mean,
        p50_latency_ns=_percentile(latencies, 0.50),
        p95_latency_ns=_percentile(latencies, 0.95),
        p99_latency_ns=_percentile(latencies, 0.99),
        max_latency_ns=latencies[-1] if latencies else 0,
        doorbells=engine.doorbells_rung,
        per_channel_commands=[len(pair.completions) for pair in engine.pairs],
    )

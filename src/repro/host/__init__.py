"""Host-side substrate: command queue, workload generators, fio-like driver,
and the queue-depth scale-out engine."""

from repro.host.engine import (
    ChannelQueuePair,
    QueueSaturatedError,
    ScaleCommand,
    ScaleEngine,
    ScaleJob,
    ScaleRunResult,
    build_scale_stack,
    run_scale_workload,
)
from repro.host.hic import HostCommand, HostInterface
from repro.host.workload import ReadWorkloadResult, measure_read_throughput
from repro.host.fio import FioJob, FioResult, run_fio
from repro.host.trace import (
    ReplayResult,
    Trace,
    TraceRecord,
    replay_trace,
    synthesize_trace,
)

__all__ = [
    "ChannelQueuePair",
    "QueueSaturatedError",
    "ScaleCommand",
    "ScaleEngine",
    "ScaleJob",
    "ScaleRunResult",
    "build_scale_stack",
    "run_scale_workload",
    "HostCommand",
    "HostInterface",
    "ReadWorkloadResult",
    "measure_read_throughput",
    "FioJob",
    "FioResult",
    "run_fio",
    "ReplayResult",
    "Trace",
    "TraceRecord",
    "replay_trace",
    "synthesize_trace",
]

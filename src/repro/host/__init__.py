"""Host-side substrate: command queue, workload generators, fio-like driver."""

from repro.host.hic import HostCommand, HostInterface
from repro.host.workload import ReadWorkloadResult, measure_read_throughput
from repro.host.fio import FioJob, FioResult, run_fio
from repro.host.trace import (
    ReplayResult,
    Trace,
    TraceRecord,
    replay_trace,
    synthesize_trace,
)

__all__ = [
    "HostCommand",
    "HostInterface",
    "ReadWorkloadResult",
    "measure_read_throughput",
    "FioJob",
    "FioResult",
    "run_fio",
    "ReplayResult",
    "Trace",
    "TraceRecord",
    "replay_trace",
    "synthesize_trace",
]

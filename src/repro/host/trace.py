"""Trace-driven workloads: record, synthesize, replay.

Beyond fio-style patterns, SSD evaluations replay block traces.  This
module provides:

* :class:`TraceRecord` / :class:`Trace` — a page-granular I/O trace
  with arrival times, serializable to a simple text format;
* :func:`synthesize_trace` — a generator producing mixed read/write
  traces with Zipf-like hot/cold skew and Poisson-ish arrivals (the
  common synthetic stand-in for production traces, which the paper's
  setting does not ship); and
* :func:`replay_trace` — an open-loop replayer that submits commands at
  their arrival times through a :class:`~repro.host.hic.HostInterface`.
"""

from __future__ import annotations

import io
from dataclasses import dataclass, field
from typing import Iterable, Optional

import numpy as np

from repro.host.hic import HostCommand, HostInterface, HostOpcode
from repro.sim import Simulator, Timeout
from repro.sim.kernel import NS_PER_S


@dataclass(frozen=True)
class TraceRecord:
    """One trace entry."""

    arrival_ns: int
    opcode: HostOpcode
    lpn: int

    def to_line(self) -> str:
        return f"{self.arrival_ns} {self.opcode.value} {self.lpn}"

    @classmethod
    def from_line(cls, line: str) -> "TraceRecord":
        time_str, op_str, lpn_str = line.split()
        return cls(
            arrival_ns=int(time_str),
            opcode=HostOpcode(op_str),
            lpn=int(lpn_str),
        )


@dataclass
class Trace:
    """An ordered sequence of trace records."""

    records: list[TraceRecord] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.records)

    def validate(self) -> None:
        last = -1
        for record in self.records:
            if record.arrival_ns < last:
                raise ValueError("trace arrivals must be non-decreasing")
            last = record.arrival_ns

    @property
    def read_fraction(self) -> float:
        if not self.records:
            return 0.0
        reads = sum(1 for r in self.records if r.opcode is HostOpcode.READ)
        return reads / len(self.records)

    def footprint_pages(self) -> int:
        return len({r.lpn for r in self.records})

    # -- serialization -----------------------------------------------------

    def dumps(self) -> str:
        out = io.StringIO()
        out.write("# babol-repro trace v1\n")
        for record in self.records:
            out.write(record.to_line() + "\n")
        return out.getvalue()

    @classmethod
    def loads(cls, text: str) -> "Trace":
        records = []
        for line in text.splitlines():
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            records.append(TraceRecord.from_line(line))
        trace = cls(records=records)
        trace.validate()
        return trace


def synthesize_trace(
    io_count: int,
    working_set_pages: int,
    read_fraction: float = 0.7,
    hot_fraction: float = 0.2,
    hot_access_fraction: float = 0.8,
    mean_interarrival_ns: int = 50_000,
    seed: int = 0,
) -> Trace:
    """Generate a skewed mixed trace.

    ``hot_fraction`` of the pages receive ``hot_access_fraction`` of the
    accesses (the classic 80/20 shape production traces exhibit).
    """
    if not 0 < working_set_pages:
        raise ValueError("working set must be positive")
    if not 0.0 <= read_fraction <= 1.0:
        raise ValueError("read_fraction must be in [0, 1]")
    rng = np.random.default_rng(seed)
    hot_pages = max(int(working_set_pages * hot_fraction), 1)
    records = []
    t = 0
    for _ in range(io_count):
        t += int(rng.exponential(mean_interarrival_ns)) + 1
        if rng.random() < hot_access_fraction:
            lpn = int(rng.integers(0, hot_pages))
        else:
            lpn = int(rng.integers(hot_pages, max(working_set_pages, hot_pages + 1)))
        opcode = HostOpcode.READ if rng.random() < read_fraction else HostOpcode.WRITE
        records.append(TraceRecord(arrival_ns=t, opcode=opcode, lpn=lpn))
    trace = Trace(records=records)
    trace.validate()
    return trace


@dataclass
class ReplayResult:
    """Outcome of a trace replay."""

    ios: int
    elapsed_ns: int
    mean_latency_ns: float
    p99_latency_ns: float
    reads: int
    writes: int

    @property
    def iops(self) -> float:
        if self.elapsed_ns == 0:
            return 0.0
        return self.ios / (self.elapsed_ns / NS_PER_S)


def replay_trace(
    sim: Simulator,
    hic: HostInterface,
    trace: Trace,
    dram_stride: int = 32 * 1024,
    dram_base: int = 0,
    slots: int = 64,
) -> ReplayResult:
    """Open-loop replay: commands arrive at their trace times."""
    trace.validate()
    before = len(hic.completed)
    start = sim.now

    def injector():
        t0 = sim.now
        for index, record in enumerate(trace.records):
            target = t0 + record.arrival_ns
            if target > sim.now:
                yield Timeout(target - sim.now)
            hic.submit(
                HostCommand(
                    opcode=record.opcode,
                    lpn=record.lpn,
                    dram_address=dram_base + (index % slots) * dram_stride,
                )
            )

    process = sim.spawn(injector(), name="trace-injector")
    sim.run()
    if not process.finished:
        raise RuntimeError("trace injection stalled")
    sim.run_process(hic.drain())

    window = hic.completed[before:]
    latencies = sorted(c.latency_ns for c in window)
    mean = sum(latencies) / len(latencies) if latencies else 0.0
    p99 = (
        float(latencies[min(int(len(latencies) * 0.99), len(latencies) - 1)])
        if latencies else 0.0
    )
    return ReplayResult(
        ios=len(window),
        elapsed_ns=sim.now - start,
        mean_latency_ns=mean,
        p99_latency_ns=p99,
        reads=sum(1 for c in window if c.opcode is HostOpcode.READ),
        writes=sum(1 for c in window if c.opcode is HostOpcode.WRITE),
    )

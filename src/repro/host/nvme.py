"""NVMe-style host interface (the Fig. 1 HIC, more faithfully).

The simpler :class:`~repro.host.hic.HostInterface` speaks pages; real
hosts speak NVMe: logical blocks (typically 4 KiB) over submission/
completion queue pairs.  This module implements that front end over the
FTL:

* :class:`NvmeCommand` — READ / WRITE / FLUSH / DSM(deallocate) with
  ``slba``/``nlb`` addressing and a PRP-style DRAM pointer;
* :class:`QueuePair` — bounded submission queue, completion queue with
  a wakeup trigger, and a worker process per outstanding-command slot;
* :class:`NvmeController` — LBA→LPN translation, including
  **read-modify-write** for writes that cover only part of a flash
  page (a 4 KiB write into a 16 KiB page really does cost a page read
  plus a page program — visible in the measured latencies).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Generator, Optional

from repro.ftl.ftl import PageMappedFtl
from repro.sim import Simulator
from repro.sim.sync import Queue, Trigger

_cids = itertools.count(1)


class NvmeOpcode(enum.IntEnum):
    """NVM command set opcodes (the subset this HIC implements)."""

    FLUSH = 0x00
    WRITE = 0x01
    READ = 0x02
    DSM = 0x09  # dataset management: deallocate (trim)


class NvmeStatus(enum.IntEnum):
    SUCCESS = 0x00
    INVALID_FIELD = 0x02
    INTERNAL_ERROR = 0x06
    LBA_OUT_OF_RANGE = 0x80


@dataclass
class NvmeCommand:
    """One submission-queue entry."""

    opcode: NvmeOpcode
    slba: int = 0
    block_count: int = 1          # the spec's NLB is zero-based; this is not
    prp: int = 0                  # DRAM address of the data buffer
    cid: int = field(default_factory=lambda: next(_cids))
    submitted_at: int = 0


@dataclass
class CompletionEntry:
    """One completion-queue entry."""

    cid: int
    status: NvmeStatus
    finished_at: int

    @property
    def ok(self) -> bool:
        return self.status is NvmeStatus.SUCCESS


class QueueFullError(RuntimeError):
    """Submission with no free SQ slot."""


class QueuePair:
    """A bounded SQ/CQ pair with worker-based execution."""

    def __init__(self, sim: Simulator, controller: "NvmeController", depth: int):
        if depth <= 0:
            raise ValueError("queue depth must be positive")
        self.sim = sim
        self.controller = controller
        self.depth = depth
        self._sq: Queue = Queue(sim)
        self._occupancy = 0
        self.completions: list[CompletionEntry] = []
        self._by_cid: dict[int, CompletionEntry] = {}
        self.cq_doorbell = Trigger(sim)
        self._workers = [
            sim.spawn(self._worker(), name=f"nvme-worker{i}") for i in range(depth)
        ]

    # -- host side -------------------------------------------------------

    def submit(self, command: NvmeCommand) -> int:
        """Ring the SQ doorbell; returns the command id."""
        if self._occupancy >= self.depth:
            raise QueueFullError(f"SQ full (depth {self.depth})")
        command.submitted_at = self.sim.now
        self._occupancy += 1
        self._sq.put(command)
        return command.cid

    @property
    def free_slots(self) -> int:
        return self.depth - self._occupancy

    def wait_completion(self, cid: int) -> Generator:
        """Process helper: block until ``cid`` completes."""
        while cid not in self._by_cid:
            yield from self.cq_doorbell.wait()
        return self._by_cid[cid]

    def drain(self) -> Generator:
        """Block until every submitted command has completed."""
        while self._occupancy:
            yield from self.cq_doorbell.wait()

    # -- device side -------------------------------------------------------

    def _worker(self) -> Generator:
        while True:
            command = yield from self._sq.get()
            status = yield from self.controller._execute(command)
            entry = CompletionEntry(
                cid=command.cid, status=status, finished_at=self.sim.now
            )
            self.completions.append(entry)
            self._by_cid[command.cid] = entry
            self._occupancy -= 1
            self.cq_doorbell.fire(entry)


class NvmeController:
    """LBA-granular NVMe front end over a page-mapped FTL."""

    def __init__(self, sim: Simulator, ftl: PageMappedFtl, block_size: int = 4096):
        if ftl.page_size % block_size:
            raise ValueError("page size must be a multiple of the block size")
        self.sim = sim
        self.ftl = ftl
        self.block_size = block_size
        self.blocks_per_page = ftl.page_size // block_size
        self.capacity_blocks = ftl.logical_pages * self.blocks_per_page
        # Bounce region for read-modify-write (after the GC staging area).
        self._bounce_base = ftl.config.gc_staging_base + 4 * ftl.page_size
        self._bounce_slots: list[int] = []
        self._next_bounce = 0
        self.rmw_count = 0
        self.commands_executed = 0

    def create_queue_pair(self, depth: int = 32) -> QueuePair:
        return QueuePair(self.sim, self, depth)

    def identify(self) -> dict:
        """A minimal IDENTIFY-namespace payload."""
        return {
            "capacity_blocks": self.capacity_blocks,
            "block_size": self.block_size,
            "blocks_per_page": self.blocks_per_page,
            "model": "BABOL-REPRO-SSD",
        }

    # -- execution -------------------------------------------------------

    def _execute(self, command: NvmeCommand) -> Generator:
        self.commands_executed += 1
        if command.opcode is NvmeOpcode.FLUSH:
            # No volatile write-back cache is modeled: writes are durable
            # at completion, so FLUSH is a completed no-op.
            return NvmeStatus.SUCCESS
            yield  # pragma: no cover - generator marker

        if command.block_count <= 0:
            return NvmeStatus.INVALID_FIELD
        if command.slba + command.block_count > self.capacity_blocks:
            return NvmeStatus.LBA_OUT_OF_RANGE

        if command.opcode is NvmeOpcode.READ:
            status = yield from self._read(command)
        elif command.opcode is NvmeOpcode.WRITE:
            status = yield from self._write(command)
        elif command.opcode is NvmeOpcode.DSM:
            status = self._deallocate(command)
        else:
            return NvmeStatus.INVALID_FIELD
        return status

    def _spans(self, command: NvmeCommand):
        """Split an LBA range into per-page (lpn, first_block, nblocks)."""
        lba = command.slba
        remaining = command.block_count
        while remaining:
            lpn, offset = divmod(lba, self.blocks_per_page)
            nblocks = min(self.blocks_per_page - offset, remaining)
            yield lpn, offset, nblocks
            lba += nblocks
            remaining -= nblocks

    def _bounce(self) -> int:
        """A rotating page-sized bounce buffer address."""
        address = self._bounce_base + (
            (self._next_bounce % 8) * self.ftl.page_size
        )
        self._next_bounce += 1
        return address

    def _read(self, command: NvmeCommand) -> Generator:
        dram = self.ftl.controller.dram
        out = command.prp
        for lpn, offset, nblocks in self._spans(command):
            if self.ftl.map.lookup(lpn) is None:
                # Unwritten blocks read as zeroes, per NVMe deallocate
                # semantics.
                import numpy as np

                dram.write(out, np.zeros(nblocks * self.block_size, dtype=np.uint8))
            else:
                bounce = self._bounce()
                yield from self.ftl.read(lpn, bounce)
                chunk = dram.read(
                    bounce + offset * self.block_size, nblocks * self.block_size
                )
                dram.write(out, chunk)
            out += nblocks * self.block_size
        return NvmeStatus.SUCCESS

    def _write(self, command: NvmeCommand) -> Generator:
        dram = self.ftl.controller.dram
        src = command.prp
        for lpn, offset, nblocks in self._spans(command):
            full_page = nblocks == self.blocks_per_page
            bounce = self._bounce()
            if not full_page:
                # Read-modify-write: fetch the page's current content
                # (if any), overlay the host blocks, program the merge.
                self.rmw_count += 1
                if self.ftl.map.lookup(lpn) is not None:
                    yield from self.ftl.read(lpn, bounce)
                else:
                    import numpy as np

                    dram.write(
                        bounce, np.zeros(self.ftl.page_size, dtype=np.uint8)
                    )
                chunk = dram.read(src, nblocks * self.block_size)
                dram.write(bounce + offset * self.block_size, chunk)
                yield from self.ftl.write(lpn, bounce)
            else:
                chunk = dram.read(src, self.ftl.page_size)
                dram.write(bounce, chunk)
                yield from self.ftl.write(lpn, bounce)
            src += nblocks * self.block_size
        return NvmeStatus.SUCCESS

    def _deallocate(self, command: NvmeCommand) -> NvmeStatus:
        for lpn, offset, nblocks in self._spans(command):
            if offset == 0 and nblocks == self.blocks_per_page:
                self.ftl.trim(lpn)
            # Partial-page deallocations are advisory; ignoring them is
            # spec-compliant.
        return NvmeStatus.SUCCESS

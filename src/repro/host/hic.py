"""Host Interface Controller: the NVMe-ish front end.

A queue-depth-limited command queue in front of the FTL.  Commands are
page-granular reads/writes; ``iodepth`` workers drain the queue the way
an NVMe submission/completion queue pair with a fixed outstanding
budget behaves.  Latencies are recorded per command for the metrics
layer.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Generator, Optional

from repro.ftl.ftl import PageMappedFtl
from repro.sim import Simulator
from repro.sim.sync import Queue, Trigger

_cmd_ids = itertools.count()


class HostOpcode(enum.Enum):
    READ = "read"
    WRITE = "write"
    TRIM = "trim"
    FLUSH = "flush"


@dataclass
class HostCommand:
    """One host command (page granular)."""

    opcode: HostOpcode
    lpn: int
    dram_address: int = 0
    id: int = field(default_factory=lambda: next(_cmd_ids))
    submitted_at: int = 0
    finished_at: Optional[int] = None

    @property
    def latency_ns(self) -> Optional[int]:
        if self.finished_at is None:
            return None
        return self.finished_at - self.submitted_at


class HostInterface:
    """Queue-depth-limited command front end over an FTL."""

    def __init__(self, sim: Simulator, ftl: PageMappedFtl, iodepth: int = 8):
        if iodepth <= 0:
            raise ValueError("iodepth must be positive")
        self.sim = sim
        self.ftl = ftl
        self.iodepth = iodepth
        self._queue: Queue = Queue(sim)
        self._drained = Trigger(sim)
        self._outstanding = 0
        self._pending = 0
        self.completed: list[HostCommand] = []
        self._workers = [
            sim.spawn(self._worker(), name=f"hic-worker{i}") for i in range(iodepth)
        ]

    def submit(self, command: HostCommand) -> None:
        command.submitted_at = self.sim.now
        self._pending += 1
        self._queue.put(command)

    def _worker(self) -> Generator:
        while True:
            command = yield from self._queue.get()
            self._outstanding += 1
            if command.opcode is HostOpcode.READ:
                yield from self.ftl.read(command.lpn, command.dram_address)
            elif command.opcode is HostOpcode.WRITE:
                yield from self.ftl.write(command.lpn, command.dram_address)
            elif command.opcode is HostOpcode.FLUSH:
                yield from self.ftl.flush()
            else:
                self.ftl.trim(command.lpn)
            command.finished_at = self.sim.now
            tracer = self.sim._tracer
            if tracer is not None:
                tracer.complete(
                    "host", "host/hic", command.opcode.value,
                    command.submitted_at,
                    command.finished_at - command.submitted_at,
                    # command.id is process-global; excluded so traces
                    # are a pure function of the run.
                    {"lpn": command.lpn},
                )
            self.completed.append(command)
            self._outstanding -= 1
            self._pending -= 1
            if self._pending == 0:
                self._drained.fire()

    def drain(self) -> Generator:
        """Process helper: wait until every submitted command completed."""
        while self._pending:
            yield from self._drained.wait()

    # -- metrics ----------------------------------------------------------

    def mean_latency_ns(self) -> float:
        done = [c.latency_ns for c in self.completed if c.latency_ns is not None]
        return sum(done) / len(done) if done else 0.0

    def p99_latency_ns(self) -> float:
        done = sorted(c.latency_ns for c in self.completed if c.latency_ns is not None)
        if not done:
            return 0.0
        return float(done[min(int(len(done) * 0.99), len(done) - 1)])

"""fio-like workload driver for the end-to-end experiment (Fig. 12).

Generates page-granular sequential or random READ (or WRITE) streams
against a :class:`~repro.host.hic.HostInterface`, mirroring the paper's
``fio`` runs against the modified Cosmos+: fixed iodepth, a bounded
number of I/Os, bandwidth = payload over elapsed simulated time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.host.hic import HostCommand, HostInterface, HostOpcode
from repro.sim import Simulator
from repro.sim.kernel import NS_PER_S


@dataclass(frozen=True)
class FioJob:
    """One fio-style job description."""

    pattern: str = "sequential"   # "sequential" | "random"
    opcode: HostOpcode = HostOpcode.READ
    io_count: int = 64
    iodepth: int = 8
    working_set_pages: int = 0    # 0 = whole mapped range
    seed: int = 42

    def validate(self) -> None:
        if self.pattern not in ("sequential", "random"):
            raise ValueError("pattern must be 'sequential' or 'random'")
        if self.io_count <= 0 or self.iodepth <= 0:
            raise ValueError("io_count and iodepth must be positive")


@dataclass
class FioResult:
    """Bandwidth/latency summary of one job."""

    ios: int
    payload_bytes: int
    elapsed_ns: int
    mean_latency_ns: float
    p99_latency_ns: float

    @property
    def bandwidth_mb_s(self) -> float:
        if self.elapsed_ns == 0:
            return 0.0
        return self.payload_bytes / (self.elapsed_ns / NS_PER_S) / 1e6

    @property
    def iops(self) -> float:
        if self.elapsed_ns == 0:
            return 0.0
        return self.ios / (self.elapsed_ns / NS_PER_S)


def run_fio(
    sim: Simulator,
    hic: HostInterface,
    job: FioJob,
    dram_stride: int = 32 * 1024,
    dram_base: int = 0,
    prefill: Optional[int] = None,
) -> FioResult:
    """Run one job to completion and summarize it."""
    job.validate()
    ftl = hic.ftl
    working_set = job.working_set_pages or ftl.map.mapped_count
    if prefill is not None and ftl.map.mapped_count < prefill:
        ftl.prefill(prefill - ftl.map.mapped_count)
        working_set = job.working_set_pages or ftl.map.mapped_count
    if working_set == 0 and job.opcode is HostOpcode.READ:
        raise ValueError("read job against an empty FTL — prefill first")

    rng = np.random.default_rng(job.seed)
    if job.pattern == "sequential":
        lpns = [i % max(working_set, 1) for i in range(job.io_count)]
    else:
        lpns = rng.integers(0, max(working_set, 1), size=job.io_count).tolist()

    start = sim.now
    before = len(hic.completed)
    for index, lpn in enumerate(lpns):
        hic.submit(
            HostCommand(
                opcode=job.opcode,
                lpn=int(lpn),
                dram_address=dram_base + (index % (4 * job.iodepth)) * dram_stride,
            )
        )
    sim.run_process(hic.drain(), name="fio-drain")

    window = hic.completed[before:]
    latencies = sorted(c.latency_ns for c in window)
    mean = sum(latencies) / len(latencies) if latencies else 0.0
    p99 = float(latencies[min(int(len(latencies) * 0.99), len(latencies) - 1)]) if latencies else 0.0
    return FioResult(
        ios=len(window),
        payload_bytes=len(window) * ftl.page_size,
        elapsed_ns=sim.now - start,
        mean_latency_ns=mean,
        p99_latency_ns=p99,
    )

"""Controller-level READ injection (the Fig. 10 microbenchmark driver).

"We use a workload generator that injects requests directly into the
storage controllers as if they were coming from the FTL" (Section VI).
One closed-loop driver per LUN keeps that LUN maximally busy with READ
operations; throughput is completed payload bytes over elapsed
simulated time.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim import Simulator
from repro.sim.kernel import NS_PER_S


@dataclass
class ReadWorkloadResult:
    """Outcome of one injection run."""

    pages_read: int
    payload_bytes: int
    elapsed_ns: int
    channel_utilization: float

    @property
    def throughput_mb_s(self) -> float:
        if self.elapsed_ns == 0:
            return 0.0
        return self.payload_bytes / (self.elapsed_ns / NS_PER_S) / 1e6

    @property
    def mean_page_latency_us(self) -> float:
        if self.pages_read == 0:
            return 0.0
        return self.elapsed_ns / self.pages_read / 1000.0


def measure_read_throughput(
    sim: Simulator,
    controller,
    lun_count: int,
    reads_per_lun: int = 12,
    warmup_per_lun: int = 2,
    dram_stride: int = 32 * 1024,
) -> ReadWorkloadResult:
    """Closed-loop sequential READs against ``lun_count`` LUNs.

    Drives any controller with the shared request surface.  The first
    ``warmup_per_lun`` reads per LUN are excluded from the measured
    window (pipeline fill).
    """
    geometry = controller.codec.geometry
    page_size = geometry.page_size
    state = {"started_at": None, "completed": 0}
    total_measured = reads_per_lun * lun_count

    def driver(lun: int):
        for i in range(warmup_per_lun + reads_per_lun):
            block = 1 + (i // geometry.pages_per_block)
            page = i % geometry.pages_per_block
            dram_address = (lun * (warmup_per_lun + reads_per_lun) + i) * dram_stride
            task = controller.read_page(lun, block, page, dram_address)
            yield from controller.wait(task)
            if i == warmup_per_lun - 1 and state["started_at"] is None:
                state["started_at"] = sim.now
            if i >= warmup_per_lun:
                state["completed"] += 1

    drivers = [sim.spawn(driver(lun), name=f"inject-lun{lun}") for lun in range(lun_count)]
    busy_before = controller.channel.stats.busy_ns
    sim.run()
    for process in drivers:
        if not process.finished:
            raise RuntimeError("injection driver stalled")

    started = state["started_at"] if state["started_at"] is not None else 0
    elapsed = sim.now - started
    busy_delta = controller.channel.stats.busy_ns - busy_before
    utilization = min(busy_delta / elapsed, 1.0) if elapsed else 0.0
    return ReadWorkloadResult(
        pages_read=state["completed"],
        payload_bytes=state["completed"] * page_size,
        elapsed_ns=elapsed,
        channel_utilization=utilization,
    )

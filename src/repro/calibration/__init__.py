"""Working-with-a-new-package tools (Section IV-C).

BABOL ships a calibration tool that detects per-package phase skew and
suggests trims, and uses its software operation environment to express
package boot/initialization sequences.  Both are implemented here
against the simulated PHY and package models.
"""

from repro.calibration.phase import PhaseCalibrationResult, calibrate_phase
from repro.calibration.boot import BootReport, boot_channel

__all__ = [
    "PhaseCalibrationResult",
    "calibrate_phase",
    "BootReport",
    "boot_channel",
]

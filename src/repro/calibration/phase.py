"""Per-position phase calibration.

"There is a calibration tool to detect phase differences and suggest
adjustments" (Section IV-C).  The tool sweeps the controller-side
output-phase trim for one LUN position and, at each setting, performs a
known-answer read (the ONFI parameter page, which carries a CRC).  The
set of trims whose reads decode cleanly is the sampling eye; the tool
centres the trim in it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator

from repro.core.controller import BabolController
from repro.flash.param_page import parse_parameter_page


@dataclass
class PhaseCalibrationResult:
    """Outcome of one position's sweep."""

    position: int
    tested_trims: list[int]
    good_trims: list[int]
    chosen_trim: int
    eye_width: int

    @property
    def locked(self) -> bool:
        return self.eye_width > 0


def calibrate_phase(
    controller: BabolController,
    position: int,
    trim_range: tuple[int, int] = (-8, 8),
) -> Generator:
    """Sweep trims on one LUN position; apply and return the best.

    Runs as a simulation process:
    ``result = yield from calibrate_phase(controller, 0)``.
    """
    phy = controller.channel.phy
    low, high = trim_range
    tested: list[int] = []
    good: list[int] = []

    for trim in range(low, high + 1):
        tested.append(trim)
        phy.set_trim(position, trim)
        task = controller.read_parameter_page(position)
        page = yield from controller.wait(task)
        try:
            parse_parameter_page(page)
        except ValueError:
            continue  # garbled read: outside the eye
        good.append(trim)

    if good:
        # Centre the trim in the widest contiguous run of good settings.
        best_run = _longest_run(good)
        chosen = best_run[len(best_run) // 2]
        eye_width = len(best_run)
    else:
        chosen = 0
        eye_width = 0
    phy.set_trim(position, chosen)
    return PhaseCalibrationResult(
        position=position,
        tested_trims=tested,
        good_trims=good,
        chosen_trim=chosen,
        eye_width=eye_width,
    )


def _longest_run(values: list[int]) -> list[int]:
    """Longest run of consecutive integers in a sorted list."""
    best: list[int] = []
    current: list[int] = []
    for value in values:
        if current and value == current[-1] + 1:
            current.append(value)
        else:
            current = [value]
        if len(current) > len(best):
            best = current
    return best

"""Channel boot/initialization sequence.

"Some packages boot in SDR data mode and can only be reconfigured to
faster data modes through that interface ... some or all of these
adjustments need to be done at every single boot" (Section IV-C).

The sequence below is the software-expressed bring-up BABOL advocates:

1. RESET every LUN (packages power up in an undefined state);
2. READ ID and verify the ONFI signature;
3. READ PARAMETER PAGE in SDR and check its CRC;
4. SET FEATURES to select the target timing mode on every LUN;
5. retarget the channel and the µFSM bank to the fast interface;
6. phase-calibrate every position at speed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator

from repro.calibration.phase import PhaseCalibrationResult, calibrate_phase
from repro.core.controller import BabolController
from repro.flash.param_page import parse_parameter_page
from repro.onfi.datamodes import DataInterface, SDR_MODE0
from repro.onfi.features import FeatureAddress

_TIMING_MODE_BY_INTERFACE = {
    "SDR-mode0": 0,
    "NV-DDR2-100": 4,
    "NV-DDR2-200": 5,
}


@dataclass
class BootReport:
    """What the bring-up found and configured."""

    lun_count: int = 0
    onfi_confirmed: list[bool] = field(default_factory=list)
    parameter_pages: list[dict] = field(default_factory=list)
    timing_mode: int = 0
    interface_name: str = ""
    calibration: list[PhaseCalibrationResult] = field(default_factory=list)

    @property
    def all_healthy(self) -> bool:
        return (
            all(self.onfi_confirmed)
            and len(self.parameter_pages) == self.lun_count
            and all(result.locked for result in self.calibration)
        )


def boot_channel(
    controller: BabolController,
    target_interface: DataInterface,
) -> Generator:
    """Bring up every LUN; returns a :class:`BootReport`.

    Run as a simulation process.  The controller should have been
    constructed with ``interface=SDR_MODE0`` (packages boot in SDR);
    booting from a faster mode is tolerated for pre-calibrated rigs.
    """
    report = BootReport(lun_count=len(controller.luns))

    if controller.channel.interface is not SDR_MODE0:
        # Not fatal (the simulation tolerates it) but worth recording:
        # a real bring-up must start from the boot interface.
        pass

    # 1-3: reset, identify, read the parameter page on every LUN.
    for lun in range(report.lun_count):
        task = controller.reset(lun)
        yield from controller.wait(task)

        task = controller.read_id(lun, area=0x20)
        signature = yield from controller.wait(task)
        report.onfi_confirmed.append(bytes(signature[:4]) == b"ONFI")

        task = controller.read_parameter_page(lun)
        raw = yield from controller.wait(task)
        try:
            report.parameter_pages.append(parse_parameter_page(raw))
        except ValueError:
            # Retry once: a marginal SDR link can garble a read.
            task = controller.read_parameter_page(lun)
            raw = yield from controller.wait(task)
            report.parameter_pages.append(parse_parameter_page(raw))

    # 4: select the timing mode through the boot interface.
    mode = _TIMING_MODE_BY_INTERFACE.get(target_interface.name, 0)
    for lun in range(report.lun_count):
        task = controller.set_features(
            lun, FeatureAddress.TIMING_MODE, (mode, 0, 0, 0)
        )
        yield from controller.wait(task)
    report.timing_mode = mode

    # 5: retarget the controller side coherently.
    controller.channel.set_interface(target_interface)
    controller.ufsm.retarget(target_interface)
    report.interface_name = target_interface.name

    # 6: phase-calibrate at speed.
    for lun in range(report.lun_count):
        result = yield from calibrate_phase(controller, lun)
        report.calibration.append(result)

    return report

"""BABOL: A Software-Defined NAND Flash Controller - Python reproduction.

Full-system reproduction of the MICRO 2024 paper: a discrete-event
simulated ONFI/NAND substrate, the BABOL uFSM + software-environment
controller on top, hardware baseline controllers, an FTL/host stack for
end-to-end runs, and analysis tooling that regenerates every table and
figure of the paper's evaluation.

Quickstart::

    from repro import BabolController, ControllerConfig, Simulator
    from repro.flash import HYNIX_V7

    sim = Simulator()
    controller = BabolController(
        sim, ControllerConfig(vendor=HYNIX_V7, lun_count=8)
    )
    task = controller.read_page(lun=0, block=1, page=0, dram_address=0)
    status, handle = controller.run_to_completion(task)
"""

from repro.core import BabolController, ControllerConfig
from repro.sim import Simulator

__version__ = "1.0.0"

__all__ = ["BabolController", "ControllerConfig", "Simulator", "__version__"]

"""DMA endpoints connecting LUN data bursts to DRAM.

A :class:`DmaHandle` is the object the Data Writer/Reader µFSMs attach
to a data action: the LUN model calls :meth:`deliver` (flash→DRAM) or
:meth:`fetch` (DRAM→flash) when the burst's time comes.  The handle
records transfer accounting for the metrics layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.dram.buffer import DramBuffer


class DmaHandle:
    """One DMA descriptor: a DRAM window plus transfer bookkeeping."""

    def __init__(self, dram: Optional[DramBuffer], address: int, nbytes: int):
        self.dram = dram
        self.address = address
        self.nbytes = nbytes
        self.delivered: Optional[np.ndarray] = None
        self.bytes_moved = 0
        # Set by the channel when the PHY eye is mis-trimmed: the burst
        # arrives, but its content is garbled (what a real scope shows
        # when the sampling point misses the data window).
        self.corrupt_seed: Optional[int] = None

    # -- flash -> controller -------------------------------------------

    def deliver(self, data: np.ndarray) -> None:
        data = np.asarray(data, dtype=np.uint8).copy()
        if self.dram is not None and self.dram._sanitizer is not None:
            self.dram._sanitizer.on_transfer(self, "deliver", len(data))
        if self.corrupt_seed is not None:
            rng = np.random.default_rng(self.corrupt_seed)
            noise = rng.integers(0, 256, size=len(data), dtype=np.uint8)
            data ^= noise
        n = min(len(data), self.nbytes)
        if self.dram is not None:
            self.dram.write(self.address, data[:n])
        self.delivered = data[:n]
        self.bytes_moved += n

    # -- controller -> flash -------------------------------------------

    def fetch(self, nbytes: int) -> np.ndarray:
        n = min(nbytes, self.nbytes)
        if self.dram is None:
            return np.zeros(n, dtype=np.uint8)
        if self.dram._sanitizer is not None:
            self.dram._sanitizer.on_transfer(self, "fetch", nbytes)
        data = self.dram.read(self.address, n)
        self.bytes_moved += n
        return data


class InlineDmaHandle(DmaHandle):
    """A descriptor carrying immediate bytes (controller register writes
    such as SET FEATURES parameters) instead of a DRAM window."""

    def __init__(self, data):
        data = np.asarray(data, dtype=np.uint8)
        super().__init__(None, 0, len(data))
        self._data = data

    def fetch(self, nbytes: int) -> np.ndarray:
        self.bytes_moved += min(nbytes, len(self._data))
        return self._data[:nbytes].copy()


@dataclass
class ScatterGatherList:
    """A chain of DMA windows for operations spanning regions."""

    entries: list[DmaHandle] = field(default_factory=list)

    def add(self, handle: DmaHandle) -> None:
        self.entries.append(handle)

    @property
    def total_bytes(self) -> int:
        return sum(h.nbytes for h in self.entries)

    def gather(self) -> np.ndarray:
        parts = [
            h.dram.read(h.address, h.nbytes) if h.dram is not None
            else np.zeros(h.nbytes, dtype=np.uint8)
            for h in self.entries
        ]
        return np.concatenate(parts) if parts else np.zeros(0, dtype=np.uint8)

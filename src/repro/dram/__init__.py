"""Controller-side DRAM staging buffer and DMA plumbing.

The SSD's DRAM stages all data moving between the host and the flash
channel (Fig. 1).  The Packetizer µFSM-companion reads/writes it through
:class:`DmaHandle` endpoints.
"""

from repro.dram.buffer import AllocationError, DramBuffer
from repro.dram.dma import DmaHandle, InlineDmaHandle, ScatterGatherList

__all__ = [
    "AllocationError",
    "DramBuffer",
    "DmaHandle",
    "InlineDmaHandle",
    "ScatterGatherList",
]

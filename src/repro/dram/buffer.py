"""DRAM staging buffer with a bump-pointer region allocator.

Storage is a flat ``numpy`` byte array.  Access time is charged by the
Packetizer (which knows the burst sizes), not here — DRAM bandwidth in
the Cosmos+ class of devices comfortably exceeds one channel's needs,
so the channel model treats DRAM as never the bottleneck, matching the
paper's single-channel experiments.
"""

from __future__ import annotations

import numpy as np


class AllocationError(RuntimeError):
    """DRAM region allocator exhaustion or bad free."""


class DramBuffer:
    """A fixed-size byte buffer with region allocation."""

    def __init__(self, size: int = 64 * 1024 * 1024):
        if size <= 0:
            raise ValueError("DRAM size must be positive")
        self.size = size
        self.data = np.zeros(size, dtype=np.uint8)
        self._next = 0
        self._free_list: list[tuple[int, int]] = []
        self._sanitizer = None  # MemorySanitizer when attached

    def alloc(self, nbytes: int) -> int:
        """Allocate a region; returns its base address."""
        if nbytes <= 0:
            raise AllocationError("allocation size must be positive")
        for i, (base, length) in enumerate(self._free_list):
            if length >= nbytes:
                if length == nbytes:
                    self._free_list.pop(i)
                else:
                    self._free_list[i] = (base + nbytes, length - nbytes)
                if self._sanitizer is not None:
                    self._sanitizer.on_alloc(base, nbytes)
                return base
        if self._next + nbytes > self.size:
            raise AllocationError(
                f"DRAM exhausted: need {nbytes}, have {self.size - self._next}"
            )
        base = self._next
        self._next += nbytes
        if self._sanitizer is not None:
            self._sanitizer.on_alloc(base, nbytes)
        return base

    def free(self, base: int, nbytes: int) -> None:
        """Return a region to the allocator (no coalescing; bounded reuse)."""
        if not 0 <= base <= self.size - nbytes:
            raise AllocationError(f"bad free of [{base}, {base + nbytes})")
        if self._sanitizer is not None:
            self._sanitizer.on_free(base, nbytes)
        self._free_list.append((base, nbytes))

    def write(self, address: int, data: np.ndarray) -> None:
        data = np.asarray(data, dtype=np.uint8)
        self._check(address, len(data))
        if self._sanitizer is not None:
            self._sanitizer.on_write(address, len(data))
        self.data[address:address + len(data)] = data

    def read(self, address: int, nbytes: int) -> np.ndarray:
        self._check(address, nbytes)
        if self._sanitizer is not None:
            self._sanitizer.on_read(address, nbytes)
        return self.data[address:address + nbytes].copy()

    def view(self, address: int, nbytes: int) -> np.ndarray:
        """Zero-copy window (mutations are visible; used by the DMA path)."""
        self._check(address, nbytes)
        if self._sanitizer is not None:
            # A view hands out mutable storage; treat it as initialized.
            self._sanitizer.on_write(address, nbytes)
        return self.data[address:address + nbytes]

    def _check(self, address: int, nbytes: int) -> None:
        if address < 0 or address + nbytes > self.size:
            raise AllocationError(
                f"DRAM access [{address}, {address + nbytes}) out of bounds"
            )

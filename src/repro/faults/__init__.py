"""Deterministic fault injection and chaos campaigns.

Declarative :class:`FaultCampaign` plans (JSON round-trippable, seeded)
attach to live component models through the nullable-hook idiom — one
``is not None`` check per site, zero overhead and byte-identical
behavior when detached.  :func:`run_chaos` runs a campaign against the
BABOL stack and the hardware baselines and reports what was injected,
what recovered, and what it cost in tail latency.
"""

from repro.faults.chaos import (
    EXIT_INTERNAL,
    EXIT_OK,
    EXIT_UNRECOVERED,
    FTL_KINDS,
    OPS_KINDS,
    SPOR_KINDS,
    default_campaign,
    run_chaos,
)
from repro.faults.injector import FaultInjector, InjectionRecord
from repro.faults.plan import (
    RECOVERABLE_KINDS,
    FaultCampaign,
    FaultKind,
    FaultPlanError,
    FaultSpec,
)
from repro.faults.power import (
    PowerCut,
    PowerLossError,
    apply_power_cut,
    crash_state,
    restore_media,
    snapshot_media,
    unsafe_shutdown_ns,
)

__all__ = [
    "EXIT_INTERNAL",
    "EXIT_OK",
    "EXIT_UNRECOVERED",
    "FTL_KINDS",
    "OPS_KINDS",
    "SPOR_KINDS",
    "FaultCampaign",
    "FaultInjector",
    "FaultKind",
    "FaultPlanError",
    "FaultSpec",
    "InjectionRecord",
    "PowerCut",
    "PowerLossError",
    "RECOVERABLE_KINDS",
    "apply_power_cut",
    "crash_state",
    "default_campaign",
    "restore_media",
    "run_chaos",
    "snapshot_media",
    "unsafe_shutdown_ns",
]

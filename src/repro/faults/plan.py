"""Fault plans and campaigns: the declarative side of `repro.faults`.

A :class:`FaultSpec` describes one fault to arm — its kind, where it
strikes (LUN/block), when it triggers (op count, simulated time, a
seeded probability per opportunity), and how often it may fire.  A
:class:`FaultCampaign` is a named, seeded collection of specs,
round-trippable through JSON so campaigns are artifacts you can check
in, diff, and replay byte-for-byte.

The kinds span the stack's layers:

=================   ========================================================
``program_fail``    PROGRAM completes with the ONFI FAIL bit; nothing commits
``erase_fail``      ERASE completes with FAIL (classic worn-block symptom)
``stuck_busy``      R/B# never deasserts (``stretch=0``) or deasserts after
                    ``stretch``× the nominal array time (slow die)
``die_hang``        every busy — including RESET — hangs: the die is dead
``transfer_corrupt`` bytes flipped on a bus data segment (DMA corruption)
``grown_bad_block`` a block starts failing program/erase once its erase
                    count reaches ``pe_threshold``
``feature_drop``    SET FEATURES silently ignored (breaks read-retry)
=================   ========================================================
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Optional


class FaultKind(str, enum.Enum):
    PROGRAM_FAIL = "program_fail"
    ERASE_FAIL = "erase_fail"
    STUCK_BUSY = "stuck_busy"
    DIE_HANG = "die_hang"
    TRANSFER_CORRUPT = "transfer_corrupt"
    GROWN_BAD_BLOCK = "grown_bad_block"
    FEATURE_DROP = "feature_drop"


# Kinds the recovery stack is expected to fully absorb.  A die hang is
# deliberately unrecoverable: the success criterion there is *graceful
# degradation* (the die goes offline, the package keeps serving).
RECOVERABLE_KINDS = frozenset(
    k for k in FaultKind if k is not FaultKind.DIE_HANG
)

# Which busy kinds a stuck_busy fault may strike (a die_hang strikes
# everything, RESET included — that is what makes it terminal).
_STUCK_BUSY_KINDS = frozenset({"read", "program", "erase"})


@dataclass
class FaultSpec:
    """One armed fault."""

    kind: FaultKind
    lun: Optional[int] = None       # None = any LUN
    block: Optional[int] = None     # address trigger (None = any block)
    count: Optional[int] = 1        # max fires; None = unlimited
    after_op: int = 0               # skip the first N matching ops per LUN
    after_ns: int = 0               # dormant before this simulated time
    probability: float = 1.0        # seeded coin per opportunity
    stretch: float = 0.0            # stuck_busy: 0 = hang, >0 = N× nominal
    pe_threshold: int = 0           # grown_bad_block: arm at this erase count
    direction: Optional[str] = None  # transfer_corrupt: "in", "out", or both

    def __post_init__(self) -> None:
        self.kind = FaultKind(self.kind)
        self.validate()

    def validate(self) -> None:
        if self.count is not None and self.count < 1:
            raise ValueError("count must be >= 1 (or None for unlimited)")
        if not 0.0 < self.probability <= 1.0:
            raise ValueError("probability must be in (0, 1]")
        if self.after_op < 0 or self.after_ns < 0:
            raise ValueError("triggers cannot be negative")
        if self.stretch < 0:
            raise ValueError("stretch must be >= 0")
        if self.kind is FaultKind.GROWN_BAD_BLOCK and self.block is None:
            raise ValueError("grown_bad_block needs a target block")
        if self.direction not in (None, "in", "out"):
            raise ValueError("direction must be 'in', 'out', or None")

    def to_dict(self) -> dict:
        data = {"kind": self.kind.value}
        defaults = {
            "lun": None, "block": None, "count": 1, "after_op": 0,
            "after_ns": 0, "probability": 1.0, "stretch": 0.0,
            "pe_threshold": 0, "direction": None,
        }
        for key, default in defaults.items():
            value = getattr(self, key)
            if value != default:
                data[key] = value
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "FaultSpec":
        return cls(**data)


@dataclass
class FaultCampaign:
    """A named, seeded, JSON-round-trippable set of fault specs."""

    name: str
    seed: int
    faults: list[FaultSpec] = field(default_factory=list)
    description: str = ""

    def validate(self) -> None:
        for spec in self.faults:
            spec.validate()

    def kinds(self) -> set[FaultKind]:
        return {spec.kind for spec in self.faults}

    # -- JSON round trip ------------------------------------------------

    def to_dict(self) -> dict:
        data = {
            "name": self.name,
            "seed": self.seed,
            "faults": [spec.to_dict() for spec in self.faults],
        }
        if self.description:
            data["description"] = self.description
        return data

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_dict(cls, data: dict) -> "FaultCampaign":
        return cls(
            name=data["name"],
            seed=int(data["seed"]),
            faults=[FaultSpec.from_dict(item) for item in data.get("faults", [])],
            description=data.get("description", ""),
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultCampaign":
        return cls.from_dict(json.loads(text))

    @classmethod
    def load(cls, path: str) -> "FaultCampaign":
        with open(path) as handle:
            return cls.from_json(handle.read())

    def dump(self, path: str) -> None:
        with open(path, "w") as handle:
            handle.write(self.to_json() + "\n")

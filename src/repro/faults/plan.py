"""Fault plans and campaigns: the declarative side of `repro.faults`.

A :class:`FaultSpec` describes one fault to arm — its kind, where it
strikes (LUN/block), when it triggers (op count, simulated time, a
seeded probability per opportunity), and how often it may fire.  A
:class:`FaultCampaign` is a named, seeded collection of specs,
round-trippable through JSON so campaigns are artifacts you can check
in, diff, and replay byte-for-byte.

The kinds span the stack's layers:

=================   ========================================================
``program_fail``    PROGRAM completes with the ONFI FAIL bit; nothing commits
``erase_fail``      ERASE completes with FAIL (classic worn-block symptom)
``stuck_busy``      R/B# never deasserts (``stretch=0``) or deasserts after
                    ``stretch``× the nominal array time (slow die)
``die_hang``        every busy — including RESET — hangs: the die is dead
``transfer_corrupt`` bytes flipped on a bus data segment (DMA corruption)
``grown_bad_block`` a block starts failing program/erase once its erase
                    count reaches ``pe_threshold``
``feature_drop``    SET FEATURES silently ignored (breaks read-retry)
``power_cut``       power dies at an arbitrary nanosecond: the kernel
                    halts, in-flight programs tear, in-flight erases
                    are interrupted (recovery = the SPOR mount path)
=================   ========================================================

Malformed plans — unknown kinds, non-positive triggers, parameters that
only apply to a different kind — raise :class:`FaultPlanError` (a
``ValueError`` subclass) with a message naming the offending field, both
at construction and on the JSON load path.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field, fields
from typing import Optional


class FaultPlanError(ValueError):
    """A malformed fault spec or campaign (bad kind, trigger, or combo)."""


class FaultKind(str, enum.Enum):
    PROGRAM_FAIL = "program_fail"
    ERASE_FAIL = "erase_fail"
    STUCK_BUSY = "stuck_busy"
    DIE_HANG = "die_hang"
    TRANSFER_CORRUPT = "transfer_corrupt"
    GROWN_BAD_BLOCK = "grown_bad_block"
    FEATURE_DROP = "feature_drop"
    POWER_CUT = "power_cut"


# Kinds the recovery stack is expected to fully absorb.  A die hang is
# deliberately unrecoverable: the success criterion there is *graceful
# degradation* (the die goes offline, the package keeps serving).
RECOVERABLE_KINDS = frozenset(
    k for k in FaultKind if k is not FaultKind.DIE_HANG
)

# Which busy kinds a stuck_busy fault may strike (a die_hang strikes
# everything, RESET included — that is what makes it terminal).
_STUCK_BUSY_KINDS = frozenset({"read", "program", "erase"})


@dataclass
class FaultSpec:
    """One armed fault."""

    kind: FaultKind
    lun: Optional[int] = None       # None = any LUN
    block: Optional[int] = None     # address trigger (None = any block)
    count: Optional[int] = 1        # max fires; None = unlimited
    after_op: int = 0               # skip the first N matching ops per LUN
    after_ns: int = 0               # dormant before this simulated time
    probability: float = 1.0        # seeded coin per opportunity
    stretch: float = 0.0            # stuck_busy: 0 = hang, >0 = N× nominal
    pe_threshold: int = 0           # grown_bad_block: arm at this erase count
    direction: Optional[str] = None  # transfer_corrupt: "in", "out", or both

    def __post_init__(self) -> None:
        try:
            self.kind = FaultKind(self.kind)
        except ValueError:
            known = ", ".join(k.value for k in FaultKind)
            raise FaultPlanError(
                f"unknown fault kind {self.kind!r} (known: {known})"
            ) from None
        self.validate()

    def validate(self) -> None:
        if self.count is not None and self.count < 1:
            raise FaultPlanError("count must be >= 1 (or None for unlimited)")
        if not 0.0 < self.probability <= 1.0:
            raise FaultPlanError("probability must be in (0, 1]")
        if self.after_op < 0 or self.after_ns < 0:
            raise FaultPlanError("triggers cannot be negative")
        if self.stretch < 0:
            raise FaultPlanError("stretch must be >= 0")
        if self.stretch and self.kind is not FaultKind.STUCK_BUSY:
            raise FaultPlanError(
                f"stretch only applies to stuck_busy, not {self.kind.value}"
            )
        if self.kind is FaultKind.GROWN_BAD_BLOCK and self.block is None:
            raise FaultPlanError("grown_bad_block needs a target block")
        if self.pe_threshold and self.kind is not FaultKind.GROWN_BAD_BLOCK:
            raise FaultPlanError(
                f"pe_threshold only applies to grown_bad_block, "
                f"not {self.kind.value}"
            )
        if self.direction not in (None, "in", "out"):
            raise FaultPlanError("direction must be 'in', 'out', or None")
        if self.direction and self.kind is not FaultKind.TRANSFER_CORRUPT:
            raise FaultPlanError(
                f"direction only applies to transfer_corrupt, "
                f"not {self.kind.value}"
            )
        if self.kind is FaultKind.POWER_CUT and self.block is not None:
            raise FaultPlanError(
                "power_cut strikes the whole array; a block target is "
                "meaningless"
            )

    def to_dict(self) -> dict:
        data = {"kind": self.kind.value}
        defaults = {
            "lun": None, "block": None, "count": 1, "after_op": 0,
            "after_ns": 0, "probability": 1.0, "stretch": 0.0,
            "pe_threshold": 0, "direction": None,
        }
        for key, default in defaults.items():
            value = getattr(self, key)
            if value != default:
                data[key] = value
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "FaultSpec":
        if not isinstance(data, dict):
            raise FaultPlanError(f"fault spec must be an object, got {data!r}")
        if "kind" not in data:
            raise FaultPlanError("fault spec is missing its 'kind'")
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise FaultPlanError(
                f"unknown fault spec field(s): {', '.join(unknown)}"
            )
        try:
            return cls(**data)
        except FaultPlanError:
            raise
        except (TypeError, ValueError) as exc:
            raise FaultPlanError(f"malformed fault spec: {exc}") from None


@dataclass
class FaultCampaign:
    """A named, seeded, JSON-round-trippable set of fault specs."""

    name: str
    seed: int
    faults: list[FaultSpec] = field(default_factory=list)
    description: str = ""

    def validate(self) -> None:
        for spec in self.faults:
            spec.validate()

    def kinds(self) -> set[FaultKind]:
        return {spec.kind for spec in self.faults}

    # -- JSON round trip ------------------------------------------------

    def to_dict(self) -> dict:
        data = {
            "name": self.name,
            "seed": self.seed,
            "faults": [spec.to_dict() for spec in self.faults],
        }
        if self.description:
            data["description"] = self.description
        return data

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_dict(cls, data: dict) -> "FaultCampaign":
        if not isinstance(data, dict):
            raise FaultPlanError(f"campaign must be an object, got {data!r}")
        for required in ("name", "seed"):
            if required not in data:
                raise FaultPlanError(f"campaign is missing {required!r}")
        try:
            seed = int(data["seed"])
        except (TypeError, ValueError):
            raise FaultPlanError(
                f"campaign seed must be an integer, got {data['seed']!r}"
            ) from None
        faults = data.get("faults", [])
        if not isinstance(faults, list):
            raise FaultPlanError("campaign 'faults' must be a list")
        return cls(
            name=str(data["name"]),
            seed=seed,
            faults=[FaultSpec.from_dict(item) for item in faults],
            description=data.get("description", ""),
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultCampaign":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise FaultPlanError(f"campaign is not valid JSON: {exc}") from None
        return cls.from_dict(data)

    @classmethod
    def load(cls, path: str) -> "FaultCampaign":
        with open(path) as handle:
            return cls.from_json(handle.read())

    def dump(self, path: str) -> None:
        with open(path, "w") as handle:
            handle.write(self.to_json() + "\n")

"""The fault injector: attaches a campaign to live component models.

Follows the sanitizer idiom exactly: every component carries a nullable
``_fault_hook`` attribute guarded by one ``is not None`` check, so a
stack without an injector attached pays zero overhead and behaves
byte-for-byte like the seed.  :meth:`FaultInjector.attach` installs the
hook on every LUN and on the channel; :meth:`detach` restores ``None``.

Hook surface (called by the models):

* ``on_program(lun, targets) -> bool`` — force the ONFI FAIL bit
  (``program_fail`` / armed ``grown_bad_block``);
* ``on_erase(lun, targets) -> bool`` — same for ERASE;
* ``on_busy(lun, kind, duration) -> Optional[int]`` — stretch a busy
  (``stuck_busy`` with ``stretch``) or hang it by returning ``None``
  (``stuck_busy`` / ``die_hang``);
* ``on_set_features(lun, addr, params) -> bool`` — drop the write
  (``feature_drop``);
* ``on_transmit(now, segment, targets)`` — garble data bursts through
  the DMA-handle corruption path (``transfer_corrupt``).

All randomness comes from one generator seeded with the campaign seed,
so a campaign replays identically against an identical workload.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

import numpy as np

from repro.faults.plan import _STUCK_BUSY_KINDS, FaultCampaign, FaultKind, FaultSpec
from repro.faults.power import PowerLossError
from repro.onfi.signals import SegmentKind


@dataclass(frozen=True)
class InjectionRecord:
    """One fault that actually fired."""

    kind: FaultKind
    lun: int
    time_ns: int
    block: Optional[int] = None
    detail: str = ""

    def as_dict(self) -> dict:
        data = {"kind": self.kind.value, "lun": self.lun, "time_ns": self.time_ns}
        if self.block is not None:
            data["block"] = self.block
        if self.detail:
            data["detail"] = self.detail
        return data


# Data bursts below this size are control traffic (status bytes,
# feature records, READ ID), not payload — transfer_corrupt skips them.
_MIN_CORRUPT_BYTES = 16


class _Armed:
    __slots__ = ("spec", "remaining", "fired", "event")

    def __init__(self, spec: FaultSpec):
        self.spec = spec
        self.remaining = spec.count  # None = unlimited
        self.fired = 0
        self.event = None  # power_cut: the armed kernel blackout event


class FaultInjector:
    """Attaches one campaign's specs to a controller stack."""

    def __init__(self, campaign: FaultCampaign,
                 kinds: Optional[Iterable[FaultKind]] = None):
        campaign.validate()
        self.campaign = campaign
        wanted = None if kinds is None else set(kinds)
        self._armed = [
            _Armed(spec) for spec in campaign.faults
            if wanted is None or spec.kind in wanted
        ]
        self._rng = np.random.default_rng(campaign.seed)
        self.records: list[InjectionRecord] = []
        self._counters: dict[tuple[int, str], int] = {}
        self._luns: list = []
        self._channels: list = []

    # -- lifecycle ------------------------------------------------------

    def attach(self, controller) -> "FaultInjector":
        """Install the hook on every LUN (and the channel, if any) of a
        controller-shaped object."""
        for lun in controller.luns:
            lun._fault_hook = self
            self._luns.append(lun)
        channel = getattr(controller, "channel", None)
        if channel is not None:
            channel._fault_hook = self
            self._channels.append(channel)
        self._arm_timed_power_cuts(controller)
        return self

    def _arm_timed_power_cuts(self, controller) -> None:
        """Pure-time power cuts arm at attach: the array freeze must be
        in place before any TLM transaction can pre-commit state past
        the cut, and the blackout event fires at the exact nanosecond
        (before anything else scheduled there)."""
        for armed in self._armed:
            spec = armed.spec
            if spec.kind is not FaultKind.POWER_CUT:
                continue
            if not self._is_timed_cut(spec):
                continue  # opportunistic trigger: handled in on_busy
            for lun in controller.luns:
                lun.array.set_power_fail(spec.after_ns)
            if armed.event is None and controller.luns:
                sim = controller.luns[0].sim
                if spec.after_ns > sim.now:
                    armed.event = sim.schedule(
                        spec.after_ns - sim.now,
                        lambda a=armed, ns=spec.after_ns: self._blackout(a, ns),
                    )

    @staticmethod
    def _is_timed_cut(spec: FaultSpec) -> bool:
        return (spec.after_ns > 0 and spec.after_op == 0
                and spec.probability >= 1.0)

    def _blackout(self, armed: _Armed, cut_ns: int) -> None:
        if armed.remaining == 0:
            return
        self._fire(armed, armed.spec.lun if armed.spec.lun is not None else -1,
                   cut_ns, detail="power lost (timed cut)")
        raise PowerLossError(cut_ns)

    def detach(self) -> None:
        """Restore every hook to ``None`` (zero overhead again)."""
        for lun in self._luns:
            lun._fault_hook = None
            lun.array.set_power_fail(None)
        for channel in self._channels:
            channel._fault_hook = None
        self._luns.clear()
        self._channels.clear()
        # Cancel any blackout event still pending in the kernel — an
        # orphaned one would raise PowerLossError into whatever runs on
        # this simulator after the injector is gone.
        for armed in self._armed:
            if armed.event is not None:
                armed.event.cancel()
                armed.event = None

    # -- reporting ------------------------------------------------------

    def fires_by_kind(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for record in self.records:
            counts[record.kind.value] = counts.get(record.kind.value, 0) + 1
        return counts

    # -- hook surface ---------------------------------------------------

    def on_program(self, lun, targets) -> bool:
        now = lun.sim.now
        opps = self._bump(lun.position, "program")
        blocks = {t.block for t in targets}
        for armed in self._armed:
            kind = armed.spec.kind
            if kind is FaultKind.PROGRAM_FAIL:
                if self._eligible(armed, lun.position, blocks, now, opps):
                    self._fire(armed, lun.position, now, block=min(blocks))
                    return True
            elif kind is FaultKind.GROWN_BAD_BLOCK:
                if armed.spec.block in blocks and self._worn(lun, armed.spec) \
                        and self._eligible(armed, lun.position, blocks, now, opps):
                    self._fire(armed, lun.position, now, block=armed.spec.block,
                               detail="program past P/E threshold")
                    return True
        return False

    def on_erase(self, lun, targets) -> bool:
        now = lun.sim.now
        opps = self._bump(lun.position, "erase")
        blocks = {t.block for t in targets}
        for armed in self._armed:
            kind = armed.spec.kind
            if kind is FaultKind.ERASE_FAIL:
                if self._eligible(armed, lun.position, blocks, now, opps):
                    self._fire(armed, lun.position, now, block=min(blocks))
                    return True
            elif kind is FaultKind.GROWN_BAD_BLOCK:
                if armed.spec.block in blocks and self._worn(lun, armed.spec) \
                        and self._eligible(armed, lun.position, blocks, now, opps):
                    self._fire(armed, lun.position, now, block=armed.spec.block,
                               detail="erase past P/E threshold")
                    return True
        return False

    def on_busy(self, lun, busy_kind: str, duration: int) -> Optional[int]:
        now = lun.sim.now
        opps = self._bump(lun.position, "busy")
        for armed in self._armed:
            # Opportunistic power cut (op-count or probability trigger):
            # the cut lands at the busy's logical start, so the op being
            # confirmed never begins and the world ends.  (Pure-time cuts
            # are armed as a kernel event at attach instead.)
            if armed.spec.kind is FaultKind.POWER_CUT \
                    and not self._is_timed_cut(armed.spec) \
                    and self._eligible(armed, lun.position, None, now, opps):
                cut_ns = lun._now()
                for target in self._luns:
                    target.array.set_power_fail(cut_ns)
                self._fire(armed, lun.position, cut_ns,
                           detail=f"power lost before {busy_kind} busy")
                raise PowerLossError(cut_ns)
        for armed in self._armed:
            if armed.spec.kind is not FaultKind.DIE_HANG:
                continue
            if self._eligible(armed, lun.position, None, now, opps):
                self._fire(armed, lun.position, now,
                           detail=f"{busy_kind} busy hangs (die dead)")
                return None
        if busy_kind in _STUCK_BUSY_KINDS:
            for armed in self._armed:
                if armed.spec.kind is not FaultKind.STUCK_BUSY:
                    continue
                if self._eligible(armed, lun.position, None, now, opps):
                    stretch = armed.spec.stretch
                    if stretch > 0:
                        stretched = max(int(duration * stretch), duration)
                        self._fire(armed, lun.position, now,
                                   detail=f"{busy_kind} busy stretched "
                                          f"{stretch:g}x to {stretched} ns")
                        return stretched
                    self._fire(armed, lun.position, now,
                               detail=f"{busy_kind} busy stuck (R/B# held low)")
                    return None
        return duration

    def on_set_features(self, lun, feature_addr: int, params) -> bool:
        now = lun.sim.now
        opps = self._bump(lun.position, "features")
        for armed in self._armed:
            if armed.spec.kind is not FaultKind.FEATURE_DROP:
                continue
            if self._eligible(armed, lun.position, None, now, opps):
                self._fire(armed, lun.position, now,
                           detail=f"SET FEATURES 0x{feature_addr:02X} dropped")
                return True
        return False

    def on_transmit(self, now: int, segment, targets) -> None:
        if segment.kind not in (SegmentKind.DATA_OUT, SegmentKind.DATA_IN):
            return
        # Only payload bursts are fair game: status/feature/ID reads are
        # a few control bytes, and garbling a status byte would fake a
        # ready bit rather than model a data-path upset.
        handles = [
            handle
            for _, action in segment.actions
            if getattr(action, "nbytes", 0) >= _MIN_CORRUPT_BYTES
            and (handle := getattr(action, "dma_handle", None)) is not None
        ]
        if not handles:
            return
        outbound = segment.kind is SegmentKind.DATA_OUT
        for position in targets:
            opps = self._bump(position, "data_out" if outbound else "data_in")
            for armed in self._armed:
                if armed.spec.kind is not FaultKind.TRANSFER_CORRUPT:
                    continue
                if armed.spec.direction == "out" and not outbound:
                    continue
                if armed.spec.direction == "in" and outbound:
                    continue
                if not self._eligible(armed, position, None, now, opps):
                    continue
                for handle in handles:
                    handle.corrupt_seed = int(self._rng.integers(1, 2**31))
                self._fire(armed, position, now,
                           detail=f"{segment.kind.value} garbled "
                                  f"({len(handles)} burst(s))")
                break

    # -- matching -------------------------------------------------------

    def _bump(self, lun_position: int, stream: str) -> int:
        key = (lun_position, stream)
        self._counters[key] = self._counters.get(key, 0) + 1
        return self._counters[key]

    def _eligible(self, armed: _Armed, lun_position: int,
                  blocks: Optional[set], now: int, opportunity: int) -> bool:
        spec = armed.spec
        if armed.remaining == 0:
            return False
        if spec.lun is not None and spec.lun != lun_position:
            return False
        if spec.block is not None and blocks is not None \
                and spec.block not in blocks:
            return False
        if now < spec.after_ns:
            return False
        if opportunity <= spec.after_op:
            return False
        if spec.probability < 1.0 \
                and float(self._rng.random()) >= spec.probability:
            return False
        return True

    @staticmethod
    def _worn(lun, spec: FaultSpec) -> bool:
        return lun.array.block(spec.block).erase_count >= spec.pe_threshold

    def _fire(self, armed: _Armed, lun_position: int, now: int,
              block: Optional[int] = None, detail: str = "") -> None:
        if armed.remaining is not None:
            armed.remaining -= 1
        armed.fired += 1
        self.records.append(InjectionRecord(
            kind=armed.spec.kind, lun=lun_position, time_ns=now,
            block=block, detail=detail,
        ))

"""Power-cut injection: kill the simulation at an arbitrary nanosecond.

A power cut is unlike every other fault kind: it does not corrupt one
op, it ends the *world*.  Arming a cut does two things:

1. every :class:`~repro.flash.array.FlashArray` gets its freeze point
   (``power_fail_ns``) set, so any array mutation whose logical end
   time is at or past the cut either tears (a program begun before the
   cut) or silently evaporates (one begun after) — which makes the
   committed media state identical under the waveform and TLM fidelity
   tiers, where real kernel time and logical time can diverge;
2. a kernel event at the cut nanosecond raises
   :class:`PowerLossError`, halting the run before anything at or past
   the cut executes.

After the exception unwinds, :func:`apply_power_cut` finalizes the
media: operations still in flight on each die (confirmed but not
committed — the waveform tier's busy windows) become torn pages or
interrupted-erase blocks.  :func:`snapshot_media` / :func:`restore_media`
then transplant the dead machine's NAND into a freshly built stack so
the SPOR mount path can bring it back.
"""

from __future__ import annotations

from typing import Iterable, Optional


class PowerLossError(RuntimeError):
    """Raised by the armed power-cut event: the machine is now off."""

    def __init__(self, time_ns: int):
        super().__init__(f"power lost at {time_ns} ns")
        self.time_ns = time_ns


class PowerCut:
    """One armed power cut against a set of controllers."""

    def __init__(self, sim, at_ns: int):
        if at_ns <= sim.now:
            raise ValueError("power cut must be armed in the future")
        self.sim = sim
        self.at_ns = at_ns
        self.fired = False
        self._luns: list = []
        self._event = None

    def arm(self, controllers: Iterable) -> "PowerCut":
        """Freeze every array at the cut time and schedule the blackout.

        Must be armed before the workload starts: the freeze has to be
        in place before any TLM transaction can pre-commit array state
        past the cut.
        """
        for controller in controllers:
            for lun in controller.luns:
                lun.array.set_power_fail(self.at_ns)
                self._luns.append(lun)
        self._event = self.sim.schedule(self.at_ns - self.sim.now, self._fire)
        return self

    def _fire(self) -> None:
        self.fired = True
        raise PowerLossError(self.at_ns)

    def cancel(self) -> None:
        """Disarm (the run outlived the chosen cut point)."""
        if self._event is not None and self._event.pending:
            self._event.cancel()
        for lun in self._luns:
            lun.array.set_power_fail(None)


def apply_power_cut(controllers: Iterable, at_ns: int) -> dict:
    """Finalize the media after the blackout: tear in-flight work.

    Returns counters: pages torn and erases interrupted by in-flight
    operations (the freeze path in the array tallies separately via the
    blocks' own state).
    """
    torn = 0
    interrupted = 0
    for controller in controllers:
        for lun in controller.luns:
            for op in list(lun.inflight_ops):
                if op["begun"] >= at_ns:
                    continue  # never actually started before the cut
                for target in op["targets"]:
                    if op["kind"] == "program":
                        before = len(lun.array.block(target.block).torn)
                        lun.array.mark_torn(target)
                        after = len(lun.array.block(target.block).torn)
                        torn += after - before
                    elif op["kind"] == "erase":
                        lun.array.interrupt_erase(target.block)
                        interrupted += 1
            lun.inflight_ops.clear()
    return {"torn_inflight": torn, "erases_interrupted": interrupted}


def crash_state(controllers: Iterable) -> dict:
    """Media-wide crash tallies (after :func:`apply_power_cut`)."""
    torn_pages = 0
    interrupted_blocks = 0
    for controller in controllers:
        for lun in controller.luns:
            for block in lun.array._blocks.values():
                torn_pages += len(block.torn)
                if block.erase_interrupted:
                    interrupted_blocks += 1
    return {"torn_pages": torn_pages, "interrupted_blocks": interrupted_blocks}


def snapshot_media(controllers: Iterable) -> list:
    """Per-controller, per-LUN media images of the dead machine."""
    return [
        [lun.array.media_image() for lun in controller.luns]
        for controller in controllers
    ]


def restore_media(controllers: Iterable, images: list) -> None:
    """Transplant :func:`snapshot_media` images into a fresh stack."""
    controllers = list(controllers)
    if len(controllers) != len(images):
        raise ValueError("snapshot/stack controller count mismatch")
    for controller, luns in zip(controllers, images):
        if len(controller.luns) != len(luns):
            raise ValueError("snapshot/stack LUN count mismatch")
        for lun, image in zip(controller.luns, luns):
            lun.array.restore_media(image)


def unsafe_shutdown_ns(controllers: Iterable) -> Optional[int]:
    """The armed freeze point, if any array carries one."""
    for controller in controllers:
        for lun in controller.luns:
            if lun.array.power_fail_ns is not None:
                return lun.array.power_fail_ns
    return None

"""The chaos campaign runner: faults in, recovery evidence out.

:func:`run_chaos` runs one seeded :class:`FaultCampaign` against the
BABOL stack (and, optionally, both hardware baselines) and produces a
deterministic JSON-ready report.  Two phases per run, each on a fresh
simulator so fault state never leaks between them:

* **ftl** — a page-mapped FTL pushing an overwrite-heavy workload
  while ``program_fail`` / ``erase_fail`` / ``grown_bad_block`` faults
  fire underneath it.  Recovery evidence is the grown-bad-block
  journal plus the rewrite counter.  Runs against every target: the
  failure/recovery contract is the LUN model's, not BABOL's.
* **ops** — BABOL only.  Four LUNs run concurrent program/read
  workers behind a :class:`RecoveryManager` (watchdog + escalation)
  and a :class:`ReliableReader` (ECC + retry) while ``stuck_busy`` /
  ``die_hang`` / ``transfer_corrupt`` / ``feature_drop`` faults fire.
  Recovery evidence is the recovery and reliability counters, and the
  hung die degrading while its neighbours finish their work.

Each phase also runs fault-free (injector never attached) so the
report can state the *added* tail latency of recovery.  Every number
in the report derives from simulated time and seeded RNGs — two runs
with the same seed produce byte-identical JSON.
"""

from __future__ import annotations

import dataclasses
from typing import Generator, Optional, Union

import numpy as np

from repro.baselines.async_hw import AsyncHwController
from repro.baselines.sync_hw import SyncHwController
from repro.core import (
    BabolController,
    ControllerConfig,
    DieDegraded,
    OpFailed,
    RecoveryManager,
    Watchdog,
)
from repro.core.reliability import ReliableReader
from repro.ecc import BchConfig, BchEngine
from repro.faults.injector import FaultInjector
from repro.faults.plan import (
    RECOVERABLE_KINDS,
    FaultCampaign,
    FaultKind,
    FaultSpec,
)
from repro.faults.power import (
    PowerLossError,
    apply_power_cut,
    restore_media,
    snapshot_media,
)
from repro.flash.errors import ErrorModelConfig
from repro.flash.vendors import VendorProfile, profile_by_name
from repro.ftl import FtlConfig, PageMappedFtl, ShardedFtl
from repro.ftl.badblocks import REASON_ERASE_FAIL, REASON_FACTORY, REASON_PROGRAM_FAIL
from repro.ftl.spor import mount_sharded
from repro.sim import Simulator, WaitProcess

# Kinds exercised through the FTL (media failures the translation layer
# must absorb) vs. through raw controller ops (protocol/bus failures the
# recovery manager and reliable reader must absorb) vs. the power cut,
# which gets its own crash/remount phase (it ends the whole run, so it
# cannot share a phase with anything else).
FTL_KINDS = frozenset({
    FaultKind.PROGRAM_FAIL,
    FaultKind.ERASE_FAIL,
    FaultKind.GROWN_BAD_BLOCK,
})
SPOR_KINDS = frozenset({FaultKind.POWER_CUT})
OPS_KINDS = frozenset(FaultKind) - FTL_KINDS - SPOR_KINDS

# Chaos runs use a shrunken geometry (full code paths, small state) so
# a three-target campaign finishes in seconds.
_FTL_LUNS = 2
_OPS_LUNS = 4
_OPS_PAGES = 3
_FEATURE_LUN = 3
_FEATURE_ADDR = 0x89
_FEATURE_PARAMS = (2, 0, 0, 0)

EXIT_OK = 0
EXIT_UNRECOVERED = 1
EXIT_INTERNAL = 2

# Default nanosecond for the stock campaign's power cut: a few dozen
# writes into the spor phase's workload, well before it finishes.
_SPOR_CUT_NS = 20_000_000


def default_campaign(seed: int = 4) -> FaultCampaign:
    """The stock campaign: every fault kind, one per layer it tests."""
    return FaultCampaign(
        name="chaos-default",
        seed=seed,
        description=(
            "One of every fault kind against a two-phase workload: "
            "media failures through the FTL, protocol failures through "
            "the recovery manager and reliable reader."
        ),
        faults=[
            # -- ftl phase (lun numbering: 0..1) --
            FaultSpec(kind=FaultKind.PROGRAM_FAIL, lun=0, count=1, after_op=6),
            FaultSpec(kind=FaultKind.ERASE_FAIL, lun=0, count=1),
            FaultSpec(kind=FaultKind.GROWN_BAD_BLOCK, lun=1, block=2,
                      pe_threshold=1, count=1),
            # -- ops phase (lun numbering: 0..3) --
            FaultSpec(kind=FaultKind.TRANSFER_CORRUPT, lun=0, count=1,
                      direction="out"),
            FaultSpec(kind=FaultKind.STUCK_BUSY, lun=1, count=1),
            FaultSpec(kind=FaultKind.DIE_HANG, lun=2, count=None),
            FaultSpec(kind=FaultKind.FEATURE_DROP, lun=_FEATURE_LUN, count=1),
            # -- spor phase (crash + remount; timed cut mid-workload) --
            FaultSpec(kind=FaultKind.POWER_CUT, count=1,
                      after_ns=_SPOR_CUT_NS),
        ],
    )


#: The shrunken chaos array as spec data — what :func:`chaos_spec`
#: puts in ``stack.geometry`` (full code paths, tiny state).
CHAOS_GEOMETRY = {
    "page_size": 2048,
    "spare_size": 64,
    "pages_per_block": 16,
    "blocks_per_plane": 16,
    "planes": 2,
}


def _chaos_profile(vendor: VendorProfile) -> VendorProfile:
    """The vendor with a small array: real timing, tiny state."""
    geometry = dataclasses.replace(vendor.geometry, **CHAOS_GEOMETRY)
    return dataclasses.replace(
        vendor, geometry=geometry, factory_bad_rate=0.0,
    )


def chaos_spec(vendor: str = "hynix", seed: int = 4,
               baselines: bool = True, fidelity: str = "waveform",
               plan: str = "chaos-default"):
    """The :class:`~repro.config.specs.ExperimentSpec` describing one
    stock chaos run — the spec :func:`run_chaos` embeds in its report
    (and resolves its profile from) when the caller does not pass one.
    """
    from repro.config.specs import (
        CampaignSpec,
        ExperimentSpec,
        GeometrySpec,
        StackSpec,
        WorkloadSpec,
    )

    spec = ExperimentSpec(
        name="chaos",
        stack=StackSpec(
            vendor=vendor,
            luns_per_channel=_OPS_LUNS,
            fidelity=fidelity,
            factory_bad_rate=0.0,
            geometry=GeometrySpec(**CHAOS_GEOMETRY),
        ),
        workload=WorkloadSpec(),
        campaign=CampaignSpec(plan=plan, seed=seed, baselines=baselines),
    )
    spec.validate()
    return spec


def _percentiles(latencies: list[int]) -> dict:
    if not latencies:
        return {"count": 0, "p50_ns": 0, "p99_ns": 0, "max_ns": 0}
    ordered = sorted(latencies)
    last = len(ordered) - 1

    def pct(q: float) -> int:
        return int(ordered[min(last, int(len(ordered) * q))])

    return {
        "count": len(ordered),
        "p50_ns": pct(0.50),
        "p99_ns": pct(0.99),
        "max_ns": int(ordered[last]),
    }


# ----------------------------------------------------------------------
# Phase 1: media faults through the FTL
# ----------------------------------------------------------------------

def _make_target(name: str, sim: Simulator, profile: VendorProfile,
                 seed: int, fidelity: str = "waveform"):
    if name == "babol":
        return BabolController(sim, ControllerConfig(
            vendor=profile, lun_count=_FTL_LUNS, track_data=False, seed=seed,
            fidelity=fidelity,
        ))
    if name == "sync-hw":
        return SyncHwController(sim, vendor=profile, lun_count=_FTL_LUNS,
                                track_data=False, seed=seed,
                                fidelity=fidelity)
    if name == "async-hw":
        return AsyncHwController(sim, vendor=profile, lun_count=_FTL_LUNS,
                                 track_data=False, seed=seed,
                                 fidelity=fidelity)
    raise ValueError(f"unknown chaos target {name!r}")


def _run_ftl_phase(target: str, profile: VendorProfile,
                   campaign: FaultCampaign, inject: bool,
                   fidelity: str = "waveform") -> dict:
    sim = Simulator()
    controller = _make_target(target, sim, profile, campaign.seed, fidelity)
    ftl = PageMappedFtl(sim, controller, FtlConfig(
        blocks_per_lun=8, overprovision_blocks=4,
    ))
    injector: Optional[FaultInjector] = None
    if inject:
        injector = FaultInjector(campaign, kinds=FTL_KINDS).attach(controller)

    # Enough overwrite passes that GC recycles every block at least
    # once — a grown_bad_block fault needs its block back in rotation
    # past the P/E threshold before it can strike.
    span = max(1, ftl.logical_pages // 2)
    writes = 8 * span
    latencies: list[int] = []
    error = ""

    def workload() -> Generator:
        for i in range(writes):
            start = sim.now
            yield from ftl.write(i % span, 0)
            latencies.append(sim.now - start)

    try:
        sim.run_process(workload())
    except Exception as exc:  # the report carries the failure
        error = f"{type(exc).__name__}: {exc}"
    if injector is not None:
        injector.detach()

    phase = {
        "writes_completed": len(latencies),
        "writes_attempted": writes,
        "latency": _percentiles(latencies),
        "bad_blocks": ftl.bad_blocks.as_dict(),
        "counters": {
            "program_fail_rewrites": ftl.program_fail_rewrites,
            "gc_page_moves": ftl.gc_page_moves,
            "host_writes": ftl.host_writes,
        },
    }
    if error:
        phase["error"] = error
    if injector is not None:
        phase["injected"] = [r.as_dict() for r in injector.records]
        phase["fires_by_kind"] = injector.fires_by_kind()
        phase.update(_ftl_recovery_accounting(ftl, campaign, injector, error))
    return phase


def _ftl_recovery_accounting(ftl: PageMappedFtl, campaign: FaultCampaign,
                             injector: FaultInjector, error: str) -> dict:
    fires = injector.fires_by_kind()
    grown_keys = {
        (spec.lun, spec.block)
        for spec in campaign.faults
        if spec.kind is FaultKind.GROWN_BAD_BLOCK
    }
    recovered = {kind.value: 0 for kind in FTL_KINDS}
    for record in ftl.bad_blocks.journal:
        if record.reason == REASON_FACTORY:
            continue
        if (record.lun, record.block) in grown_keys:
            recovered[FaultKind.GROWN_BAD_BLOCK.value] += 1
        elif record.reason == REASON_PROGRAM_FAIL:
            recovered[FaultKind.PROGRAM_FAIL.value] += 1
        elif record.reason == REASON_ERASE_FAIL:
            recovered[FaultKind.ERASE_FAIL.value] += 1
    recovered = {
        kind: min(count, fires.get(kind, 0))
        for kind, count in sorted(recovered.items())
    }
    # A workload that died mid-flight recovered nothing, whatever the
    # journal says (a retirement that crashed the FTL is not recovery).
    if error:
        recovered = {kind: 0 for kind in recovered}
    unrecovered = {
        kind: fires.get(kind, 0) - recovered[kind] for kind in recovered
    }
    return {"recovered_by_kind": recovered, "unrecovered_by_kind": unrecovered}


# ----------------------------------------------------------------------
# Phase 2: protocol faults through the recovery stack (BABOL only)
# ----------------------------------------------------------------------

def _run_ops_phase(profile: VendorProfile, campaign: FaultCampaign,
                   inject: bool, fidelity: str = "waveform") -> dict:
    sim = Simulator()
    controller = BabolController(sim, ControllerConfig(
        vendor=profile, lun_count=_OPS_LUNS, track_data=True,
        seed=campaign.seed, watchdog=Watchdog.for_vendor(profile),
        fidelity=fidelity,
    ))
    # The reliable reader's job here is recovering *injected* bus
    # corruption; background RBER noise would blur the accounting.
    for lun in controller.luns:
        lun.array.error_model.config = ErrorModelConfig.noiseless()
    reader = ReliableReader(
        controller, BchEngine(BchConfig(codeword_bytes=256, t=4)))
    recovery = RecoveryManager(controller)
    injector: Optional[FaultInjector] = None
    if inject:
        injector = FaultInjector(campaign, kinds=OPS_KINDS).attach(controller)

    page_bytes = profile.geometry.full_page_size
    outs = [
        {"programs": 0, "reads": 0, "op_failed": 0, "degraded": False,
         "latencies": []}
        for _ in range(_OPS_LUNS)
    ]
    feature_state = {"readback": None}

    def worker(lun: int, out: dict) -> Generator:
        base = lun * page_bytes
        read_base = (_OPS_LUNS + lun) * page_bytes
        pattern = ((np.arange(page_bytes) * (lun + 3)) % 251).astype(np.uint8)
        if lun == _FEATURE_LUN:
            task = controller.set_features(lun, _FEATURE_ADDR, _FEATURE_PARAMS)
            yield from controller.wait(task)
            task = controller.get_features(lun, _FEATURE_ADDR)
            readback = yield from controller.wait(task)
            if readback is not None:
                feature_state["readback"] = [int(b) for b in readback]
        for page in range(_OPS_PAGES):
            controller.dram.write(base, pattern)
            start = sim.now
            try:
                yield from recovery.program_page(lun, 1, page, base)
            except DieDegraded:
                out["degraded"] = True
                return
            except OpFailed:
                out["op_failed"] += 1
                continue
            out["latencies"].append(sim.now - start)
            out["programs"] += 1
        for page in range(_OPS_PAGES):
            start = sim.now
            try:
                yield from reader.read(lun, 1, page, read_base)
            except DieDegraded:
                out["degraded"] = True
                return
            out["latencies"].append(sim.now - start)
            out["reads"] += 1

    procs = [
        sim.spawn(worker(lun, outs[lun]), name=f"chaos-lun{lun}")
        for lun in range(_OPS_LUNS)
    ]

    def join() -> Generator:
        for proc in procs:
            yield WaitProcess(proc)

    sim.run_process(join())
    if injector is not None:
        injector.detach()

    latencies = [ns for out in outs for ns in out["latencies"]]
    phase = {
        "per_lun": [
            {"lun": i, "programs": out["programs"], "reads": out["reads"],
             "op_failed": out["op_failed"], "degraded": out["degraded"]}
            for i, out in enumerate(outs)
        ],
        "degraded_luns": sorted(recovery.degraded_luns),
        "feature_readback": feature_state["readback"],
        "latency": _percentiles(latencies),
        "counters": {
            "recovery": recovery.stats.as_dict(),
            "reliability": {
                "reads": reader.stats.reads,
                "clean": reader.stats.clean,
                "retried": reader.stats.retried,
                "replica": reader.stats.replica,
                "uncorrectable": reader.stats.uncorrectable,
            },
        },
    }
    if injector is not None:
        phase["injected"] = [r.as_dict() for r in injector.records]
        phase["fires_by_kind"] = injector.fires_by_kind()
        phase.update(_ops_recovery_accounting(recovery, reader, injector,
                                              feature_state["readback"]))
    return phase


def _ops_recovery_accounting(recovery: RecoveryManager,
                             reader: ReliableReader,
                             injector: FaultInjector,
                             feature_readback) -> dict:
    fires = injector.fires_by_kind()
    rstats = recovery.stats
    recovered = {}
    stuck = fires.get(FaultKind.STUCK_BUSY.value, 0)
    recovered[FaultKind.STUCK_BUSY.value] = min(
        stuck, rstats.recovered_by_retry + rstats.recovered_by_reset)
    corrupt = fires.get(FaultKind.TRANSFER_CORRUPT.value, 0)
    recovered[FaultKind.TRANSFER_CORRUPT.value] = min(
        corrupt, reader.stats.retried + reader.stats.replica)
    # A dropped SET FEATURES counts as recovered when it was *observed*
    # (the read-back disagrees with what was written) and no read went
    # uncorrectable because of the stale register.
    drops = fires.get(FaultKind.FEATURE_DROP.value, 0)
    observed = drops > 0 and feature_readback != list(_FEATURE_PARAMS)
    recovered[FaultKind.FEATURE_DROP.value] = (
        drops if observed and reader.stats.uncorrectable == 0 else 0)
    # die_hang is deliberately unrecoverable: the pass criterion is
    # graceful degradation, tallied separately via degraded_luns.
    recovered[FaultKind.DIE_HANG.value] = 0
    unrecovered = {
        kind: fires.get(kind, 0) - count
        for kind, count in sorted(recovered.items())
        if FaultKind(kind) in RECOVERABLE_KINDS
    }
    return {"recovered_by_kind": recovered, "unrecovered_by_kind": unrecovered}


# ----------------------------------------------------------------------
# Phase 3: power cut + SPOR remount (BABOL only)
# ----------------------------------------------------------------------

_SPOR_FTL = FtlConfig(
    blocks_per_lun=10, overprovision_blocks=4,
    checkpoint_interval=24, journal_flush_records=8, meta_blocks=2,
)


def _spor_payload(lpn: int, version: int, nbytes: int) -> np.ndarray:
    data = np.full(nbytes, (lpn * 37 + version * 101) % 251, dtype=np.uint8)
    data[0] = lpn & 0xFF
    data[1] = (lpn >> 8) & 0xFF
    data[2] = version & 0xFF
    data[3] = (version >> 8) & 0xFF
    return data


def _spor_controller(sim: Simulator, profile: VendorProfile, seed: int,
                     fidelity: str) -> BabolController:
    controller = BabolController(sim, ControllerConfig(
        vendor=profile, lun_count=_FTL_LUNS, track_data=True, seed=seed,
        fidelity=fidelity,
    ))
    # Content verification must see the stored bytes, not RBER noise.
    for lun in controller.luns:
        lun.array.error_model.config = ErrorModelConfig.noiseless()
    return controller


def _run_spor_phase(profile: VendorProfile, campaign: FaultCampaign,
                    inject: bool, fidelity: str = "waveform") -> dict:
    sim = Simulator()
    controller = _spor_controller(sim, profile, campaign.seed, fidelity)
    ftl = ShardedFtl(sim, [controller], _SPOR_FTL)
    injector: Optional[FaultInjector] = None
    if inject:
        injector = FaultInjector(campaign, kinds=SPOR_KINDS).attach(controller)

    page_bytes = profile.geometry.page_size
    span = max(1, ftl.logical_pages // 2)
    writes = 4 * span
    acked: dict[int, int] = {}
    versions: dict[int, int] = {}
    latencies: list[int] = []
    cut_ns: Optional[int] = None
    error = ""

    def workload() -> Generator:
        for i in range(writes):
            lpn = i % span
            version = versions.get(lpn, 0) + 1
            versions[lpn] = version
            controller.dram.write(0, _spor_payload(lpn, version, page_bytes))
            start = sim.now
            yield from ftl.write(lpn, 0)
            latencies.append(sim.now - start)
            acked[lpn] = version

    try:
        sim.run_process(workload())
    except PowerLossError as exc:
        cut_ns = exc.time_ns
    except Exception as exc:  # the report carries the failure
        error = f"{type(exc).__name__}: {exc}"
    if injector is not None:
        injector.detach()

    phase: dict = {
        "writes_acked": len(latencies),
        "writes_attempted": writes,
        "latency": _percentiles(latencies),
    }
    if error:
        phase["error"] = error
    if injector is not None:
        phase["injected"] = [r.as_dict() for r in injector.records]
        phase["fires_by_kind"] = injector.fires_by_kind()
        fired = phase["fires_by_kind"].get(FaultKind.POWER_CUT.value, 0)
        recovered = 0
        violations: list[str] = []
        if fired and cut_ns is not None and not error:
            violations = _spor_crash_and_verify(
                controller, profile, campaign.seed, fidelity, cut_ns,
                acked, versions, phase,
            )
            recovered = 1 if not violations else 0
        phase["violations"] = violations
        phase["recovered_by_kind"] = {
            FaultKind.POWER_CUT.value: min(recovered, fired)}
        phase["unrecovered_by_kind"] = {
            FaultKind.POWER_CUT.value: fired - min(recovered, fired)}
    return phase


def _spor_crash_and_verify(controller, profile, seed: int, fidelity: str,
                           cut_ns: int, acked: dict, versions: dict,
                           phase: dict) -> list[str]:
    """Finalize the crash, remount on a fresh stack, verify durability."""
    apply_power_cut([controller], cut_ns)
    images = snapshot_media([controller])

    sim2 = Simulator()
    controller2 = _spor_controller(sim2, profile, seed, fidelity)
    restore_media([controller2], images)
    ftl2, mount_report = mount_sharded(sim2, [controller2], _SPOR_FTL)
    phase["mount"] = mount_report.as_dict()

    page_bytes = profile.geometry.page_size
    violations: list[str] = []
    # 1. no mapped LPN may point at a torn page.
    for shard in ftl2.shards:
        for lpn, entry in sorted(shard.map._forward.items()):
            block = shard.controller.luns[entry.lun].array.block(entry.block)
            if entry.page in block.torn:
                violations.append(f"LPN {lpn} mapped to torn page {entry}")
    # 2. every acked write must read back as its acked version (or a
    # newer one the host had already submitted).
    for lpn in sorted(acked):
        if not ftl2.is_mapped(lpn):
            violations.append(f"acked LPN {lpn} unmapped after remount")
            continue

        def check(lpn=lpn) -> Generator:
            yield from ftl2.read(lpn, 0)

        sim2.run_process(check())
        got = controller2.dram.read(0, page_bytes)
        ok = any(
            np.array_equal(got, _spor_payload(lpn, v, page_bytes))
            for v in range(acked[lpn], versions.get(lpn, acked[lpn]) + 1)
        )
        if not ok:
            violations.append(
                f"acked LPN {lpn} content mismatch after remount")
    return violations


# ----------------------------------------------------------------------
# The campaign runner
# ----------------------------------------------------------------------

def run_chaos(
    seed: int = 4,
    vendor: Union[str, VendorProfile] = "hynix",
    campaign: Optional[FaultCampaign] = None,
    baselines: bool = True,
    fidelity: str = "waveform",
    spec=None,
) -> dict:
    """Run one campaign; returns the JSON-ready report dict.

    ``fidelity`` selects the execution backend for every target.  Fault
    injection, recovery, and retirement accounting are tier-independent
    (the injector hooks transaction-level events that both backends
    deliver), so a TLM campaign must reach the same verdicts.

    ``spec`` (an :class:`~repro.config.specs.ExperimentSpec`) supersedes
    the individual kwargs: vendor/geometry come from ``spec.stack`` (via
    :func:`repro.config.build.stack_profile`), seed/plan/baselines from
    ``spec.campaign``.  Without one, an equivalent spec is constructed
    so the report always embeds ``spec`` + ``spec_hash`` — except when
    ``vendor`` is an unregistered ad-hoc profile object, which data
    specs cannot name (the report then carries ``spec: null``).
    """
    if spec is not None:
        from repro.config.build import stack_profile

        spec.validate()
        profile = stack_profile(spec.stack)
        vendor_name = spec.stack.vendor
        fidelity = spec.stack.fidelity
        if spec.campaign is not None:
            seed = spec.campaign.seed
            baselines = spec.campaign.baselines
            if campaign is None:
                campaign = spec.campaign.resolve_campaign()
    else:
        if isinstance(vendor, str):
            vendor = profile_by_name(vendor)
        profile = _chaos_profile(vendor)
        vendor_name = vendor.name
        from repro.config.specs import SpecError

        try:
            spec = chaos_spec(vendor=vendor_name, seed=seed,
                              baselines=baselines, fidelity=fidelity)
        except SpecError:
            spec = None  # ad-hoc profile: not expressible as data
    if campaign is None:
        campaign = default_campaign(seed)
    campaign.validate()

    targets = ["babol"] + (["sync-hw", "async-hw"] if baselines else [])
    report: dict = {
        "schema": 2,
        "campaign": campaign.to_dict(),
        "vendor": vendor_name,
        "fidelity": fidelity,
        "spec": spec.resolved() if spec is not None else None,
        "spec_hash": spec.spec_hash() if spec is not None else None,
        "targets": {},
    }
    injected_total = 0
    recovered_total = 0
    unrecovered: dict[str, int] = {}
    degraded_luns: list[int] = []

    for target in targets:
        entry: dict = {}
        faulted = _run_ftl_phase(target, profile, campaign, inject=True,
                                 fidelity=fidelity)
        clean = _run_ftl_phase(target, profile, campaign, inject=False,
                               fidelity=fidelity)
        faulted["latency_clean"] = clean["latency"]
        faulted["added_p99_ns"] = (
            faulted["latency"]["p99_ns"] - clean["latency"]["p99_ns"])
        entry["ftl"] = faulted
        injected_total += len(faulted.get("injected", ()))
        recovered_total += sum(faulted.get("recovered_by_kind", {}).values())
        for kind, count in faulted.get("unrecovered_by_kind", {}).items():
            if count:
                unrecovered[f"{target}/ftl/{kind}"] = count

        if target == "babol":
            ops = _run_ops_phase(profile, campaign, inject=True,
                                 fidelity=fidelity)
            ops_clean = _run_ops_phase(profile, campaign, inject=False,
                                       fidelity=fidelity)
            ops["latency_clean"] = ops_clean["latency"]
            ops["added_p99_ns"] = (
                ops["latency"]["p99_ns"] - ops_clean["latency"]["p99_ns"])
            entry["ops"] = ops
            injected_total += len(ops.get("injected", ()))
            recovered_total += sum(ops.get("recovered_by_kind", {}).values())
            for kind, count in ops.get("unrecovered_by_kind", {}).items():
                if count:
                    unrecovered[f"{target}/ops/{kind}"] = count
            degraded_luns = ops["degraded_luns"]

            spor = _run_spor_phase(profile, campaign, inject=True,
                                   fidelity=fidelity)
            spor_clean = _run_spor_phase(profile, campaign, inject=False,
                                         fidelity=fidelity)
            spor["latency_clean"] = spor_clean["latency"]
            spor["added_p99_ns"] = (
                spor["latency"]["p99_ns"] - spor_clean["latency"]["p99_ns"])
            entry["spor"] = spor
            injected_total += len(spor.get("injected", ()))
            recovered_total += sum(spor.get("recovered_by_kind", {}).values())
            for kind, count in spor.get("unrecovered_by_kind", {}).items():
                if count:
                    unrecovered[f"{target}/spor/{kind}"] = count

        report["targets"][target] = entry

    report["summary"] = {
        "injected_total": injected_total,
        "recovered_total": recovered_total,
        "unrecovered_total": sum(unrecovered.values()),
        "unrecovered": unrecovered,
        "degraded_luns": degraded_luns,
    }
    report["exit_code"] = (
        EXIT_UNRECOVERED if unrecovered else EXIT_OK)
    return report

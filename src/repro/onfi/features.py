"""SET FEATURES / GET FEATURES address map and storage.

Features are 4-byte parameter records addressed by a one-byte feature
address.  The controller's SET FEATURES operation (and the boot
sequences in :mod:`repro.calibration.boot`) manipulate these; the LUN
model interprets a handful of them (timing mode, pSLC enable, read
voltage offset for read-retry).
"""

from __future__ import annotations

import enum
from typing import Callable, Optional


class FeatureAddress(enum.IntEnum):
    """Feature addresses used in this reproduction.

    ``TIMING_MODE`` is ONFI-standard (0x01); the vendor range models
    read-retry voltage registers and pSLC configuration the way
    commercial parts expose them.
    """

    TIMING_MODE = 0x01
    IO_DRIVE_STRENGTH = 0x10
    VENDOR_READ_RETRY = 0x89
    VENDOR_PSLC_MODE = 0x91
    VENDOR_OUTPUT_PHASE = 0x92


class FeatureStore:
    """Per-LUN feature parameter storage with change callbacks."""

    def __init__(self) -> None:
        self._params: dict[int, tuple[int, int, int, int]] = {
            int(FeatureAddress.TIMING_MODE): (0, 0, 0, 0),
            int(FeatureAddress.IO_DRIVE_STRENGTH): (2, 0, 0, 0),
            int(FeatureAddress.VENDOR_READ_RETRY): (0, 0, 0, 0),
            int(FeatureAddress.VENDOR_PSLC_MODE): (0, 0, 0, 0),
            int(FeatureAddress.VENDOR_OUTPUT_PHASE): (0, 0, 0, 0),
        }
        self._on_change: Optional[Callable[[int, tuple[int, int, int, int]], None]] = None

    def on_change(self, callback: Callable[[int, tuple[int, int, int, int]], None]) -> None:
        """Register the LUN's reaction to feature writes."""
        self._on_change = callback

    def set(self, address: int, params: tuple[int, int, int, int]) -> None:
        if len(params) != 4:
            raise ValueError("feature parameters are exactly 4 bytes")
        if any(not 0 <= p <= 0xFF for p in params):
            raise ValueError("feature parameter bytes must be in [0, 255]")
        self._params[int(address)] = tuple(params)
        if self._on_change is not None:
            self._on_change(int(address), tuple(params))

    def get(self, address: int) -> tuple[int, int, int, int]:
        return self._params.get(int(address), (0, 0, 0, 0))

    # Convenience accessors the LUN model uses -------------------------

    @property
    def timing_mode(self) -> int:
        return self.get(FeatureAddress.TIMING_MODE)[0]

    @property
    def pslc_enabled(self) -> bool:
        return self.get(FeatureAddress.VENDOR_PSLC_MODE)[0] != 0

    @property
    def read_retry_level(self) -> int:
        return self.get(FeatureAddress.VENDOR_READ_RETRY)[0]

    @property
    def output_phase(self) -> int:
        """Signed output-phase trim in timer ticks (two's complement byte)."""
        raw = self.get(FeatureAddress.VENDOR_OUTPUT_PHASE)[0]
        return raw - 256 if raw >= 128 else raw

"""ONFI 5.x substrate: the vocabulary shared by controllers and packages.

This subpackage encodes the subset of the Open NAND Flash Interface
specification that the paper's controllers exercise: command opcodes,
timing-parameter sets per data-interface mode, the pin/signal and
waveform-segment model, address geometry codecs, the status register,
and the SET/GET FEATURES address map.
"""

from repro.onfi.commands import (
    CMD,
    CommandClass,
    classify_opcode,
    is_vendor_opcode,
    opcode_name,
)
from repro.onfi.datamodes import (
    DataInterface,
    NVDDR2_100,
    NVDDR2_200,
    SDR_MODE0,
    interface_by_name,
)
from repro.onfi.geometry import AddressCodec, Geometry, PhysicalAddress
from repro.onfi.signals import (
    CommandLatch,
    AddressLatch,
    DataInAction,
    DataOutAction,
    Edge,
    IdleWait,
    Pin,
    SegmentKind,
    WaveformSegment,
)
from repro.onfi.status import StatusBits, StatusRegister
from repro.onfi.timing import TimingSet, timing_for_mode
from repro.onfi.features import FeatureAddress, FeatureStore

__all__ = [
    "CMD",
    "CommandClass",
    "classify_opcode",
    "is_vendor_opcode",
    "opcode_name",
    "DataInterface",
    "NVDDR2_100",
    "NVDDR2_200",
    "SDR_MODE0",
    "interface_by_name",
    "AddressCodec",
    "Geometry",
    "PhysicalAddress",
    "CommandLatch",
    "AddressLatch",
    "DataInAction",
    "DataOutAction",
    "Edge",
    "IdleWait",
    "Pin",
    "SegmentKind",
    "WaveformSegment",
    "StatusBits",
    "StatusRegister",
    "TimingSet",
    "timing_for_mode",
    "FeatureAddress",
    "FeatureStore",
]

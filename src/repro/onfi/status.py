"""ONFI status register.

Bit assignments follow the ONFI 5.1 status field definition.  The paper's
Algorithm 2 polls for ``0x40`` (RDY), and failure bits feed the ECC /
read-retry path.
"""

from __future__ import annotations

import enum


class StatusBits(enum.IntFlag):
    """Status byte bit assignments (ONFI 5.1 §5.8)."""

    FAIL = 0x01    # last operation failed
    FAILC = 0x02   # operation before last failed (cache ops)
    CSP = 0x08     # command-specific (suspend state in our vendor ops)
    VSP = 0x10     # vendor-specific
    ARDY = 0x20    # array ready (cache ops: true inner readiness)
    RDY = 0x40     # LUN ready for another command
    WP = 0x80      # write-protect (1 = not protected)


class StatusRegister:
    """Mutable status state owned by one LUN."""

    __slots__ = ("rdy", "ardy", "fail", "failc", "suspended", "write_protected")

    def __init__(self) -> None:
        self.rdy = True
        self.ardy = True
        self.fail = False
        self.failc = False
        self.suspended = False
        self.write_protected = False

    def value(self) -> int:
        """Compose the status byte as a READ STATUS would return it."""
        byte = 0
        if self.fail:
            byte |= StatusBits.FAIL
        if self.failc:
            byte |= StatusBits.FAILC
        if self.suspended:
            byte |= StatusBits.CSP
        if self.ardy:
            byte |= StatusBits.ARDY
        if self.rdy:
            byte |= StatusBits.RDY
        if not self.write_protected:
            byte |= StatusBits.WP
        return int(byte)

    def begin_operation(self) -> None:
        """Mark the LUN busy; shifts FAIL into FAILC per ONFI cache rules."""
        self.failc = self.fail
        self.fail = False
        self.rdy = False
        self.ardy = False

    def finish_operation(self, failed: bool = False) -> None:
        self.rdy = True
        self.ardy = True
        self.fail = failed

    def begin_cache_phase(self) -> None:
        """Cache ops: register free (RDY) while the array works (not ARDY)."""
        self.rdy = True
        self.ardy = False

    @staticmethod
    def is_ready(byte: int) -> bool:
        return bool(byte & StatusBits.RDY)

    @staticmethod
    def is_array_ready(byte: int) -> bool:
        return bool(byte & StatusBits.ARDY)

    @staticmethod
    def is_failed(byte: int) -> bool:
        return bool(byte & StatusBits.FAIL)

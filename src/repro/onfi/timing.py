"""ONFI timing-parameter sets.

Section IV-B of the paper splits waveform delays into three categories:

1. intra-µFSM waits (tCS, tCH, tCALS, tCALH, tWP, tWH, ...) — owned by
   the µFSM implementations;
2. mandatory waits adjacent to a µFSM's segment (tWB, tWHR, tRR) —
   also owned by the µFSMs;
3. inter-segment waits (tR, tPROG, tBERS, tADL between an address and
   data phase of SET FEATURES, tCCS for column changes) — owned by the
   operation logic the SSD Architect writes.

A :class:`TimingSet` carries category-1/2 values per data-interface
mode.  Category-3 values are properties of the *flash array*, so they
live with the vendor profiles in :mod:`repro.flash.vendors`.

Values follow ONFI 5.1 timing mode tables (SDR mode 0 and NV-DDR2);
they are nanoseconds.
"""

from __future__ import annotations

from dataclasses import dataclass, fields


@dataclass(frozen=True)
class TimingSet:
    """Category-1 and category-2 ONFI timing parameters (ns)."""

    # Command/address latch cycle timings.
    tCS: int    # CE# setup
    tCH: int    # CE# hold
    tCALS: int  # CLE/ALE setup
    tCALH: int  # CLE/ALE hold
    tWP: int    # WE# pulse width
    tWH: int    # WE# high width
    tWC: int    # write cycle time (tWP + tWH floor)
    tDS: int    # data setup to WE# rising
    tDH: int    # data hold after WE# rising

    # Mandatory waits adjacent to segments (category 2).
    tWB: int    # WE# high to busy (R/B# low)
    tWHR: int   # WE# high to RE# low (command to data-out turnaround)
    tRR: int    # ready (R/B# high) to RE# low
    tRHW: int   # RE# high to WE# low (data-out to command turnaround)

    # Category-3 values that are interface- (not array-) dependent.
    tADL: int   # address-cycle-to-data-loading (SET FEATURES et al.)
    tCCS: int   # change-column setup
    tFEAT: int  # feature-operation busy time

    def latch_cycle_ns(self) -> int:
        """Wire time of one command or address latch cycle."""
        return max(self.tWC, self.tWP + self.tWH)

    def validate(self) -> None:
        """Sanity-check internal consistency; raises ``ValueError``."""
        for field_info in fields(self):
            value = getattr(self, field_info.name)
            if value < 0:
                raise ValueError(f"{field_info.name} must be >= 0, got {value}")
        if self.tWC < self.tWP + self.tWH:
            raise ValueError("tWC must cover tWP + tWH")


# SDR timing mode 0 — the conservative boot mode (ONFI Table: mode 0).
SDR_TIMINGS = TimingSet(
    tCS=70, tCH=20, tCALS=50, tCALH=20,
    tWP=50, tWH=30, tWC=100, tDS=40, tDH=20,
    tWB=200, tWHR=120, tRR=40, tRHW=200,
    tADL=400, tCCS=500, tFEAT=1_000,
)

# NV-DDR2 — command/address cycles still use WE#-clocked latching but at
# tighter timings; data bursts are DQS-clocked and costed separately by
# the DataInterface.
NVDDR2_TIMINGS = TimingSet(
    tCS=20, tCH=5, tCALS=15, tCALH=5,
    tWP=11, tWH=9, tWC=25, tDS=10, tDH=5,
    tWB=100, tWHR=80, tRR=20, tRHW=100,
    tADL=150, tCCS=300, tFEAT=1_000,
)

_TIMING_BY_MODE = {
    "SDR-mode0": SDR_TIMINGS,
    "NV-DDR2-100": NVDDR2_TIMINGS,
    "NV-DDR2-200": NVDDR2_TIMINGS,
}


def timing_for_mode(mode_name: str) -> TimingSet:
    """Timing set applying to a named data-interface mode."""
    try:
        return _TIMING_BY_MODE[mode_name]
    except KeyError:
        raise KeyError(
            f"no timing set for mode {mode_name!r}; known: {sorted(_TIMING_BY_MODE)}"
        ) from None

"""Flash address geometry and the ONFI row/column address codec.

ONFI addresses are transmitted as column cycles (byte offset within a
page, LSB first) followed by row cycles (page, block, plane, and LUN
select bits packed into one integer, LSB first).  The codec here is the
single source of truth both for the controller side (building address
latches) and the package side (decoding them), so a round-trip property
test pins the two together.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Geometry:
    """Physical geometry of one LUN.

    Attributes:
        page_size: user-data bytes per page.
        spare_size: out-of-band bytes per page (ECC parity, metadata).
        pages_per_block: pages in one erase block.
        blocks_per_plane: erase blocks per plane.
        planes: planes per LUN (multi-plane ops address these).
        col_cycles / row_cycles: address cycle counts on the wire.
    """

    page_size: int = 16384
    spare_size: int = 2048
    pages_per_block: int = 256
    blocks_per_plane: int = 1024
    planes: int = 2
    col_cycles: int = 2
    row_cycles: int = 3

    @property
    def full_page_size(self) -> int:
        return self.page_size + self.spare_size

    @property
    def blocks_per_lun(self) -> int:
        return self.blocks_per_plane * self.planes

    @property
    def pages_per_lun(self) -> int:
        return self.blocks_per_lun * self.pages_per_block

    @property
    def capacity_bytes(self) -> int:
        return self.pages_per_lun * self.page_size

    def validate(self) -> None:
        if self.page_size <= 0 or self.pages_per_block <= 0:
            raise ValueError("geometry dimensions must be positive")
        if self.full_page_size >= 1 << (8 * self.col_cycles):
            raise ValueError("col_cycles too small for the page size")
        if self.pages_per_lun >= 1 << (8 * self.row_cycles):
            raise ValueError("row_cycles too small for the LUN page count")


@dataclass(frozen=True, order=True)
class PhysicalAddress:
    """A (plane, block, page, column) address within one LUN."""

    block: int
    page: int
    column: int = 0

    def describe(self) -> str:
        return f"blk{self.block}/pg{self.page}+{self.column}"


class AddressCodec:
    """Encode/decode ONFI address cycles for a given geometry."""

    def __init__(self, geometry: Geometry):
        geometry.validate()
        self.geometry = geometry

    # Value semantics: two codecs over equal geometries encode
    # identically, so they compare (and hash) by geometry.  Serialized
    # op programs rely on this to round-trip to an equal value.
    def __eq__(self, other: object) -> bool:
        return isinstance(other, AddressCodec) and other.geometry == self.geometry

    def __hash__(self) -> int:
        return hash(self.geometry)

    # -- row/column packing --------------------------------------------

    def row_address(self, addr: PhysicalAddress) -> int:
        """Pack block+page into the ONFI row address integer."""
        self._check(addr)
        return addr.block * self.geometry.pages_per_block + addr.page

    def column_address(self, addr: PhysicalAddress) -> int:
        return addr.column

    # -- wire encoding ---------------------------------------------------

    def encode(self, addr: PhysicalAddress, include_column: bool = True) -> tuple[int, ...]:
        """Full address cycles: column bytes then row bytes, LSB first."""
        cycles: list[int] = []
        if include_column:
            cycles.extend(self.encode_column(addr.column))
        cycles.extend(self.encode_row(self.row_address(addr)))
        return tuple(cycles)

    def encode_column(self, column: int) -> tuple[int, ...]:
        if not 0 <= column < self.geometry.full_page_size:
            raise ValueError(f"column {column} out of range")
        return tuple(column >> (8 * i) & 0xFF for i in range(self.geometry.col_cycles))

    def encode_row(self, row: int) -> tuple[int, ...]:
        if not 0 <= row < self.geometry.pages_per_lun:
            raise ValueError(f"row {row} out of range")
        return tuple(row >> (8 * i) & 0xFF for i in range(self.geometry.row_cycles))

    # -- wire decoding ---------------------------------------------------

    def decode(self, cycles: tuple[int, ...]) -> PhysicalAddress:
        """Inverse of :meth:`encode` (column + row cycle layout)."""
        expected = self.geometry.col_cycles + self.geometry.row_cycles
        if len(cycles) != expected:
            raise ValueError(f"expected {expected} address cycles, got {len(cycles)}")
        column = self.decode_column(cycles[: self.geometry.col_cycles])
        row = self.decode_row(cycles[self.geometry.col_cycles:])
        block, page = divmod(row, self.geometry.pages_per_block)
        return PhysicalAddress(block=block, page=page, column=column)

    def decode_column(self, cycles: tuple[int, ...]) -> int:
        return sum(byte << (8 * i) for i, byte in enumerate(cycles))

    def decode_row(self, cycles: tuple[int, ...]) -> int:
        return sum(byte << (8 * i) for i, byte in enumerate(cycles))

    def plane_of(self, addr: PhysicalAddress) -> int:
        """Plane index (interleaved block-to-plane mapping, ONFI style)."""
        return addr.block % self.geometry.planes

    def _check(self, addr: PhysicalAddress) -> None:
        geometry = self.geometry
        if not 0 <= addr.block < geometry.blocks_per_lun:
            raise ValueError(f"block {addr.block} out of range")
        if not 0 <= addr.page < geometry.pages_per_block:
            raise ValueError(f"page {addr.page} out of range")
        if not 0 <= addr.column < geometry.full_page_size:
            raise ValueError(f"column {addr.column} out of range")

"""ONFI data-interface modes and transfer-rate arithmetic.

The paper's packages all speak NV-DDR2 at up to 200 megatransfers per
second and boot in SDR mode 0.  A :class:`DataInterface` converts byte
counts to wire time; everything downstream (µFSMs, the channel model,
the throughput benchmarks) uses these conversions.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DataInterface:
    """One ONFI data-interface operating point.

    Attributes:
        name: ONFI-style mode name.
        mega_transfers: bus rate in megatransfers/second (one byte per
            transfer on the paper's x8 packages).
        ddr: whether the strobe clocks data on both edges (NV-DDR2).
        turnaround_ns: bus turnaround / preamble cost charged once per
            data burst (DQS preamble + read/write turnaround).
    """

    name: str
    mega_transfers: int
    ddr: bool
    turnaround_ns: int

    @property
    def ns_per_transfer(self) -> float:
        return 1000.0 / self.mega_transfers

    def transfer_ns(self, nbytes: int) -> int:
        """Wire time for an ``nbytes`` burst, including turnaround."""
        if nbytes <= 0:
            return 0
        ticks = (nbytes * 1000 + self.mega_transfers - 1) // self.mega_transfers
        return ticks + self.turnaround_ns

    def bandwidth_mb_s(self) -> float:
        """Peak payload bandwidth in MB/s (1 byte per transfer)."""
        return float(self.mega_transfers)


# Asynchronous SDR mode 0: the boot interface every package powers up in.
SDR_MODE0 = DataInterface(name="SDR-mode0", mega_transfers=10, ddr=False, turnaround_ns=100)

# NV-DDR2 operating points used throughout the evaluation.
NVDDR2_100 = DataInterface(name="NV-DDR2-100", mega_transfers=100, ddr=True, turnaround_ns=40)
NVDDR2_200 = DataInterface(name="NV-DDR2-200", mega_transfers=200, ddr=True, turnaround_ns=40)

_BY_NAME = {mode.name: mode for mode in (SDR_MODE0, NVDDR2_100, NVDDR2_200)}


def interface_by_name(name: str) -> DataInterface:
    """Look up a data interface by its ONFI-style name."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(
            f"unknown data interface {name!r}; known: {sorted(_BY_NAME)}"
        ) from None

"""Pin, edge, and waveform-segment model.

A *waveform segment* is the unit a µFSM emits and the unit that occupies
the shared channel (the paper's Figures 2 and 6).  Segments carry two
parallel descriptions:

* **semantic actions** — decoded ``CommandLatch`` / ``AddressLatch`` /
  data-burst records with nanosecond offsets, which the LUN model
  consumes directly; and
* **pin edges** — an optional per-pin rendering used by the logic
  analyzer (Fig. 11) and the waveform renderer, generated on demand so
  the fast path never pays for it.

Keeping both views consistent is the signal-level fidelity this
reproduction substitutes for real probes: the *times* at which latches
and bursts occur are exact; only the analog electrical detail is
abstracted away.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Union

from repro.onfi.commands import opcode_name
from repro.onfi.datamodes import DataInterface
from repro.onfi.timing import TimingSet


class Pin(enum.Enum):
    """ONFI pins relevant to the waveform model (x8 package)."""

    CE = "CE#"
    CLE = "CLE"
    ALE = "ALE"
    WE = "WE#"
    RE = "RE#"
    DQS = "DQS"
    DQ = "DQ[7:0]"
    RB = "R/B#"


@dataclass(frozen=True)
class Edge:
    """A pin transition at ``t`` ns from segment start.

    ``value`` is 0/1 for control pins and the byte value for ``Pin.DQ``.
    """

    t: int
    pin: Pin
    value: int


@dataclass(frozen=True)
class CommandLatch:
    """A command-latch cycle establishing ``opcode`` in the LUN."""

    opcode: int

    def describe(self) -> str:
        return f"CMD {opcode_name(self.opcode)}"


@dataclass(frozen=True)
class AddressLatch:
    """One or more address-latch cycles carrying raw address bytes."""

    address_bytes: tuple[int, ...]

    def describe(self) -> str:
        raw = ",".join(f"{b:02X}" for b in self.address_bytes)
        return f"ADDR [{raw}]"


@dataclass(frozen=True)
class DataOutAction:
    """A data burst from the LUN's register to the controller.

    ``dma_handle`` identifies the Packetizer destination; the LUN fills
    the handle with the register contents when the burst completes.
    """

    nbytes: int
    dma_handle: object = None

    def describe(self) -> str:
        return f"DOUT {self.nbytes}B"


@dataclass(frozen=True)
class DataInAction:
    """A data burst from the controller into the LUN's page register."""

    nbytes: int
    column: int = 0
    dma_handle: object = None

    def describe(self) -> str:
        return f"DIN {self.nbytes}B @col {self.column}"


@dataclass(frozen=True)
class IdleWait:
    """An explicit pause (the Timer µFSM's output)."""

    duration: int

    def describe(self) -> str:
        return f"WAIT {self.duration}ns"


Action = Union[CommandLatch, AddressLatch, DataOutAction, DataInAction, IdleWait]


class SegmentKind(enum.Enum):
    CMD_ADDR = "cmd_addr"
    DATA_IN = "data_in"
    DATA_OUT = "data_out"
    TIMER = "timer"
    CE_CONTROL = "ce_control"


@dataclass
class WaveformSegment:
    """One µFSM emission: bus occupancy plus decoded content.

    Attributes:
        kind: which µFSM family produced it.
        duration_ns: how long the segment monopolizes the channel.
        actions: ``(offset_ns, action)`` pairs, offsets relative to the
            segment start and strictly non-decreasing.
        chip_mask: bitmap of targeted LUN positions on the channel
            (bit *i* set = chip-enable asserted for position *i*).
        label: short human-readable tag for traces.
    """

    kind: SegmentKind
    duration_ns: int
    actions: tuple[tuple[int, Action], ...] = ()
    chip_mask: int = 0b1
    label: str = ""
    emitted_at: Optional[int] = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if self.duration_ns < 0:
            raise ValueError("segment duration must be >= 0")
        last = -1
        for offset, _ in self.actions:
            if offset < last:
                raise ValueError("segment action offsets must be non-decreasing")
            if offset > self.duration_ns:
                raise ValueError("segment action offset beyond segment end")
            last = offset

    def targets(self, channel_width: int) -> list[int]:
        """LUN positions selected by the chip mask."""
        return [i for i in range(channel_width) if self.chip_mask >> i & 1]

    def describe(self) -> str:
        body = "; ".join(action.describe() for _, action in self.actions)
        return f"[{self.kind.value} {self.duration_ns}ns] {body or self.label}"

    # -- edge rendering (logic-analyzer fidelity) ------------------------

    def render_edges(self, timing: TimingSet, interface: DataInterface) -> list[Edge]:
        """Expand the segment into per-pin transitions.

        The rendering follows the latch waveform of the paper's Fig. 2:
        CE# asserted for the segment, CLE/ALE framing each latch cycle,
        WE# pulsing per cycle, and DQ carrying the latched byte.  Data
        bursts are summarized by DQS toggling bookends (rendering every
        DQS edge of a 16 KiB burst would be wasteful and adds nothing).
        """
        edges: list[Edge] = [Edge(0, Pin.CE, 0)]
        cycle = timing.latch_cycle_ns()
        for offset, action in self.actions:
            t = offset
            if isinstance(action, CommandLatch):
                edges.append(Edge(t, Pin.CLE, 1))
                edges.append(Edge(t + timing.tCALS, Pin.WE, 0))
                edges.append(Edge(t + timing.tCALS, Pin.DQ, action.opcode))
                edges.append(Edge(t + timing.tCALS + timing.tWP, Pin.WE, 1))
                edges.append(Edge(t + cycle, Pin.CLE, 0))
            elif isinstance(action, AddressLatch):
                edges.append(Edge(t, Pin.ALE, 1))
                for i, byte in enumerate(action.address_bytes):
                    base = t + i * cycle
                    edges.append(Edge(base + timing.tCALS, Pin.WE, 0))
                    edges.append(Edge(base + timing.tCALS, Pin.DQ, byte))
                    edges.append(Edge(base + timing.tCALS + timing.tWP, Pin.WE, 1))
                edges.append(Edge(t + len(action.address_bytes) * cycle, Pin.ALE, 0))
            elif isinstance(action, (DataOutAction, DataInAction)):
                burst = interface.transfer_ns(action.nbytes)
                edges.append(Edge(t, Pin.DQS, 1))
                if isinstance(action, DataOutAction):
                    edges.append(Edge(t, Pin.RE, 0))
                    edges.append(Edge(t + burst, Pin.RE, 1))
                edges.append(Edge(t + burst, Pin.DQS, 0))
            elif isinstance(action, IdleWait):
                pass  # no pin motion; time simply elapses
        edges.append(Edge(self.duration_ns, Pin.CE, 1))
        edges.sort(key=lambda e: (e.t, e.pin.value))
        return edges

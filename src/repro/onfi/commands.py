"""ONFI command opcodes and classification.

The opcode values below follow the ONFI 5.1 mandatory/optional command
sets.  Vendor-specific opcodes (pseudo-SLC entry/exit, suspend/resume,
read-retry register access) are modeled after common conventions in
commercial datasheets; the exact byte values only need to be consistent
between the controller's operation library and the package model.
"""

from __future__ import annotations

import enum


class CMD:
    """ONFI and vendor opcode constants (one byte each)."""

    # --- reads ---------------------------------------------------------
    READ_1ST = 0x00          # first cycle of PAGE READ
    READ_2ND = 0x30          # confirm cycle of PAGE READ
    READ_CACHE_SEQ = 0x31    # READ CACHE SEQUENTIAL confirm
    READ_CACHE_END = 0x3F    # READ CACHE END confirm
    MP_READ_2ND = 0x32       # multi-plane read queue cycle
    CHANGE_READ_COL_1ST = 0x05
    CHANGE_READ_COL_2ND = 0xE0
    CHANGE_READ_COL_ENH_1ST = 0x06  # enhanced: full address (plane select)

    # --- status ----------------------------------------------------------
    READ_STATUS = 0x70
    READ_STATUS_ENHANCED = 0x78

    # --- programs --------------------------------------------------------
    PROGRAM_1ST = 0x80
    PROGRAM_2ND = 0x10
    CACHE_PROGRAM_2ND = 0x15
    MP_PROGRAM_2ND = 0x11    # multi-plane program queue cycle
    CHANGE_WRITE_COL = 0x85

    # --- erase -----------------------------------------------------------
    ERASE_1ST = 0x60
    ERASE_2ND = 0xD0
    MP_ERASE_2ND = 0xD1

    # --- identification / configuration ----------------------------------
    READ_ID = 0x90
    READ_PARAMETER_PAGE = 0xEC
    READ_UNIQUE_ID = 0xED
    SET_FEATURES = 0xEF
    GET_FEATURES = 0xEE
    RESET = 0xFF
    SYNCHRONOUS_RESET = 0xFC
    RESET_LUN = 0xFA

    # --- vendor-specific (modeled) ----------------------------------------
    VENDOR_PSLC_ENTER = 0xA2   # following Toshiba/Kioxia SLC-mode prefix
    VENDOR_PSLC_EXIT = 0xA3
    VENDOR_SUSPEND = 0x61      # program/erase suspend
    VENDOR_RESUME = 0xD2       # program/erase resume


class CommandClass(enum.Enum):
    """Broad behavioural class a LUN uses to decode an opcode."""

    READ = "read"
    READ_CONFIRM = "read_confirm"
    CACHE_READ_CONFIRM = "cache_read_confirm"
    CACHE_READ_END = "cache_read_end"
    CHANGE_READ_COLUMN = "change_read_column"
    STATUS = "status"
    PROGRAM = "program"
    PROGRAM_CONFIRM = "program_confirm"
    CACHE_PROGRAM_CONFIRM = "cache_program_confirm"
    CHANGE_WRITE_COLUMN = "change_write_column"
    ERASE = "erase"
    ERASE_CONFIRM = "erase_confirm"
    IDENT = "ident"
    FEATURES = "features"
    RESET = "reset"
    VENDOR = "vendor"
    UNKNOWN = "unknown"


_CLASS_TABLE: dict[int, CommandClass] = {
    CMD.READ_1ST: CommandClass.READ,
    CMD.READ_2ND: CommandClass.READ_CONFIRM,
    CMD.MP_READ_2ND: CommandClass.READ_CONFIRM,
    CMD.READ_CACHE_SEQ: CommandClass.CACHE_READ_CONFIRM,
    CMD.READ_CACHE_END: CommandClass.CACHE_READ_END,
    CMD.CHANGE_READ_COL_1ST: CommandClass.CHANGE_READ_COLUMN,
    CMD.CHANGE_READ_COL_2ND: CommandClass.CHANGE_READ_COLUMN,
    CMD.CHANGE_READ_COL_ENH_1ST: CommandClass.CHANGE_READ_COLUMN,
    CMD.READ_STATUS: CommandClass.STATUS,
    CMD.READ_STATUS_ENHANCED: CommandClass.STATUS,
    CMD.PROGRAM_1ST: CommandClass.PROGRAM,
    CMD.PROGRAM_2ND: CommandClass.PROGRAM_CONFIRM,
    CMD.MP_PROGRAM_2ND: CommandClass.PROGRAM_CONFIRM,
    CMD.CACHE_PROGRAM_2ND: CommandClass.CACHE_PROGRAM_CONFIRM,
    CMD.CHANGE_WRITE_COL: CommandClass.CHANGE_WRITE_COLUMN,
    CMD.ERASE_1ST: CommandClass.ERASE,
    CMD.ERASE_2ND: CommandClass.ERASE_CONFIRM,
    CMD.MP_ERASE_2ND: CommandClass.ERASE_CONFIRM,
    CMD.READ_ID: CommandClass.IDENT,
    CMD.READ_PARAMETER_PAGE: CommandClass.IDENT,
    CMD.READ_UNIQUE_ID: CommandClass.IDENT,
    CMD.SET_FEATURES: CommandClass.FEATURES,
    CMD.GET_FEATURES: CommandClass.FEATURES,
    CMD.RESET: CommandClass.RESET,
    CMD.SYNCHRONOUS_RESET: CommandClass.RESET,
    CMD.RESET_LUN: CommandClass.RESET,
    CMD.VENDOR_PSLC_ENTER: CommandClass.VENDOR,
    CMD.VENDOR_PSLC_EXIT: CommandClass.VENDOR,
    CMD.VENDOR_SUSPEND: CommandClass.VENDOR,
    CMD.VENDOR_RESUME: CommandClass.VENDOR,
}

_NAME_TABLE: dict[int, str] = {
    value: name
    for name, value in vars(CMD).items()
    if not name.startswith("_") and isinstance(value, int)
}


def classify_opcode(opcode: int) -> CommandClass:
    """Map a raw opcode byte to its behavioural class."""
    return _CLASS_TABLE.get(opcode, CommandClass.UNKNOWN)


def is_vendor_opcode(opcode: int) -> bool:
    return classify_opcode(opcode) is CommandClass.VENDOR


def opcode_name(opcode: int) -> str:
    """Human-readable opcode name, used by the logic analyzer."""
    return _NAME_TABLE.get(opcode, f"0x{opcode:02X}")

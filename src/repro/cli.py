"""Command-line interface: run the paper's experiments without pytest.

Usage examples::

    python -m repro.cli table1
    python -m repro.cli fig10 --vendor hynix --interface 200 --luns 8
    python -m repro.cli fig11
    python -m repro.cli fig12 --ways 1 2 4 8
    python -m repro.cli table2
    python -m repro.cli table3
    python -m repro.cli demo
    python -m repro.cli trace --out trace.json    # observability capture
    python -m repro.cli op-lint                   # static op-program lint
    python -m repro.cli verify-ops                # static op-IR verifier
    python -m repro.cli sanitize                  # runtime sanitizer sweep
    python -m repro.cli chaos --seed 4 --json chaos_report.json
    python -m repro.cli bench-smoke --out BENCH_smoke.json
    python -m repro.cli perf --quick --check BENCH_scale.json

Diagnostics-producing commands (``op-lint``, ``verify-ops``,
``sanitize``, ``chaos``)
share the exit-code convention of :mod:`repro.analysis.diagnostics`:
0 clean, 1 error findings, 2 internal failure (the tool itself broke).

``demo``/``fig10``/``fig11``/``fig12`` accept ``--trace out.json`` to
capture a Chrome ``trace_event`` file of every simulated run (open it
in https://ui.perfetto.dev).  Traces are deterministic: the same
command line produces a byte-identical file.
"""

from __future__ import annotations

import argparse
import json
from typing import Optional, Sequence

from repro.core import BabolController, ControllerConfig
from repro.core.softenv import GHZ, MHZ
from repro.flash.vendors import VENDOR_PROFILES, profile_by_name
from repro.host import measure_read_throughput
from repro.onfi.datamodes import NVDDR2_100, NVDDR2_200
from repro.sim import Simulator


def _make_tracer(args):
    """A Tracer when ``--trace`` was given, else None."""
    if not getattr(args, "trace", None):
        return None
    from repro.obs import Tracer

    return Tracer()


def _write_trace(args, tracer, metrics=None) -> None:
    if tracer is None:
        return
    from repro.obs import write_chrome_trace

    count = write_chrome_trace(args.trace, tracer, metrics=metrics)
    print(f"trace: {count} events -> {args.trace}")


def _print_rows(headers, rows):
    widths = [
        max(len(str(headers[i])), *(len(str(r[i])) for r in rows)) if rows
        else len(str(headers[i]))
        for i in range(len(headers))
    ]
    print("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))


def _interface(mt: int):
    return NVDDR2_200 if mt == 200 else NVDDR2_100


def cmd_demo(args) -> int:
    import numpy as np

    sim = Simulator()
    tracer = _make_tracer(args)
    sim.set_tracer(tracer)
    controller = BabolController(
        sim, ControllerConfig(vendor=profile_by_name(args.vendor),
                              lun_count=args.luns, runtime=args.runtime),
        sanitizers=args.sanitize,
    )
    page = controller.codec.geometry.full_page_size
    payload = (np.arange(page) % 251).astype(np.uint8)
    controller.dram.write(0, payload)
    controller.run_to_completion(controller.program_page(0, 1, 0, 0))
    controller.run_to_completion(controller.read_page(0, 1, 0, page))
    errors = int((controller.dram.read(page, page) != payload).sum())
    print(controller.describe())
    print(f"program+read roundtrip in {sim.now / 1000:.1f} us of device time; "
          f"{errors} raw byte error(s) before ECC")
    if tracer is not None:
        from repro.obs import MetricsRegistry, register_controller_metrics

        _write_trace(args, tracer,
                     register_controller_metrics(MetricsRegistry(), controller))
    if controller.diagnostics is not None and not controller.diagnostics.clean:
        print(controller.diagnostics.render_text(title="sanitize"))
        return controller.diagnostics.exit_code()
    return 0


def cmd_table1(args) -> int:
    rows = []
    for name, vendor in VENDOR_PROFILES.items():
        rows.append([name, f"{vendor.timing.t_read_ns / 1000:.0f} us",
                     f"{vendor.geometry.page_size} B",
                     str(vendor.luns_per_channel)])
    print("Table I: flash memory parameters")
    _print_rows(["vendor", "tR", "page", "LUNs/channel"], rows)
    full = profile_by_name("hynix").geometry.full_page_size
    print(f"page transfer: {NVDDR2_100.transfer_ns(full) / 1000:.0f} us @100MT/s, "
          f"{NVDDR2_200.transfer_ns(full) / 1000:.0f} us @200MT/s")
    return 0


def cmd_fig10(args) -> int:
    vendor = profile_by_name(args.vendor)
    interface = _interface(args.interface)
    rows = []
    from repro.baselines import SyncHwController

    # One tracer spans the whole sweep; each cell's tracks are kept
    # apart by a scope prefix (its own Perfetto thread group).
    tracer = _make_tracer(args)

    sim = Simulator()
    if tracer is not None:
        tracer.scope = "sync-hw"
        sim.set_tracer(tracer)
    hw = SyncHwController(sim, vendor=vendor, lun_count=args.luns,
                          interface=interface, track_data=False)
    result = measure_read_throughput(sim, hw, args.luns)
    rows.append(["HW baseline", "-", f"{result.throughput_mb_s:.1f}"])
    for runtime in ("rtos", "coroutine"):
        for mhz in args.freq_mhz:
            sim = Simulator()
            if tracer is not None:
                tracer.scope = f"{runtime}@{mhz}MHz"
                sim.set_tracer(tracer)
            controller = BabolController(
                sim,
                ControllerConfig(vendor=vendor, lun_count=args.luns,
                                 interface=interface, runtime=runtime,
                                 cpu_freq_hz=mhz * MHZ, track_data=False),
            )
            result = measure_read_throughput(sim, controller, args.luns)
            rows.append([runtime, f"{mhz} MHz", f"{result.throughput_mb_s:.1f}"])
    print(f"Fig. 10 cell: {args.vendor}, {args.interface} MT/s, "
          f"{args.luns} LUNs (MB/s)")
    _print_rows(["controller", "CPU", "throughput"], rows)
    _write_trace(args, tracer)
    return 0


def cmd_fig11(args) -> int:
    from repro.analysis import LogicAnalyzer

    rows = []
    tracer = _make_tracer(args)
    for runtime in ("rtos", "coroutine"):
        sim = Simulator()
        if tracer is not None:
            tracer.scope = runtime
            sim.set_tracer(tracer)
        controller = BabolController(
            sim, ControllerConfig(vendor=profile_by_name(args.vendor),
                                  lun_count=1, runtime=runtime,
                                  track_data=False),
        )
        analyzer = LogicAnalyzer(controller.channel)
        for i in range(args.reads):
            controller.run_to_completion(controller.read_page(0, 1, i, 0))
        summary = analyzer.polling_summary()
        rows.append([runtime, str(summary.count),
                     f"{summary.mean_ns / 1000:.1f} us",
                     f"{sim.now / args.reads / 1000:.1f} us"])
    print("Fig. 11: polling period (1 LUN, 1 GHz)")
    _print_rows(["runtime", "polls", "period", "READ latency"], rows)
    _write_trace(args, tracer)
    return 0


def cmd_fig12(args) -> int:
    from repro.baselines import AsyncHwController
    from repro.ftl import FtlConfig, PageMappedFtl
    from repro.host import FioJob, HostInterface, run_fio

    vendor = profile_by_name(args.vendor)
    rows = []
    tracer = _make_tracer(args)
    for ways in args.ways:
        bandwidths = []
        for kind in ("cosmos", "rtos", "coroutine"):
            sim = Simulator()
            if tracer is not None:
                tracer.scope = f"{kind}@{ways}way"
                sim.set_tracer(tracer)
            if kind == "cosmos":
                controller = AsyncHwController(
                    sim, vendor=vendor, lun_count=ways, track_data=False
                )
            else:
                controller = BabolController(
                    sim,
                    ControllerConfig(vendor=vendor, lun_count=ways,
                                     runtime=kind, cpu_freq_hz=GHZ,
                                     track_data=False),
                )
            ftl = PageMappedFtl(
                sim, controller,
                FtlConfig(blocks_per_lun=8, overprovision_blocks=2,
                          gc_staging_base=48 * 1024 * 1024),
            )
            ftl.prefill(min(ftl.logical_pages, 64 * ways))
            hic = HostInterface(sim, ftl, iodepth=16)
            result = run_fio(sim, hic, FioJob(pattern=args.pattern,
                                              io_count=24 * ways + 16,
                                              iodepth=16))
            bandwidths.append(result.bandwidth_mb_s)
        rows.append([str(ways)] + [f"{bw:.1f}" for bw in bandwidths])
    print(f"Fig. 12: fio {args.pattern} read bandwidth (MB/s)")
    _print_rows(["ways", "Cosmos+ (HW)", "BABOL-RTOS", "BABOL-Coro"], rows)
    _write_trace(args, tracer)
    return 0


def cmd_table2(args) -> int:
    from repro.analysis import operation_loc_table

    table = operation_loc_table()
    rows = [[op, str(v["sync_hw"]), str(v["async_hw"]), str(v["babol"])]
            for op, v in table.items()]
    print("Table II: lines of code per operation (measured in this repo)")
    _print_rows(["operation", "sync HW", "async HW", "BABOL"], rows)
    return 0


def cmd_table3(args) -> int:
    from repro.analysis import estimate_area
    from repro.analysis.area import babol_inventory
    from repro.baselines import AsyncHwController, SyncHwController

    estimates = {
        "sync HW": estimate_area(
            SyncHwController(Simulator(), lun_count=8, track_data=False).inventory()
        ),
        "async HW": estimate_area(
            AsyncHwController(Simulator(), lun_count=8, track_data=False).inventory()
        ),
        "BABOL": estimate_area(babol_inventory(8)),
    }
    rows = [[name, str(e.lut), str(e.ff), f"{e.bram:g}"]
            for name, e in estimates.items()]
    print("Table III: modeled FPGA resources")
    _print_rows(["controller", "LUT", "FF", "BRAM"], rows)
    return 0


def cmd_trace(args) -> int:
    """Dedicated observability capture: run a mixed workload with the
    tracer and metrics registry on, write the Chrome trace, and print
    the per-track + metrics summaries."""
    from repro.analysis import LogicAnalyzer
    from repro.obs import (
        MetricsRegistry,
        Tracer,
        register_controller_metrics,
        render_text_summary,
        write_chrome_trace,
    )

    sim = Simulator()
    tracer = Tracer(categories=None if not args.kernel else
                    {"kernel", "channel", "txn", "cpu", "sched", "task", "op",
                     "host", "analyzer", "user"})
    sim.set_tracer(tracer)
    controller = BabolController(
        sim, ControllerConfig(vendor=profile_by_name(args.vendor),
                              lun_count=args.luns, runtime=args.runtime,
                              track_data=False),
        sanitizers=args.sanitize,
    )
    analyzer = LogicAnalyzer(controller.channel)
    registry = register_controller_metrics(MetricsRegistry(), controller)
    op_latency = registry.histogram("op_latency_ns")

    # A read/program mix fanned across every LUN: enough concurrency to
    # make the channel-occupancy and queue-depth tracks interesting.
    page = controller.codec.geometry.full_page_size
    import numpy as np

    controller.dram.write(0, (np.arange(page) % 251).astype(np.uint8))
    tasks = []
    for i in range(args.ops):
        lun = i % args.luns
        if i % 3 == 2:
            tasks.append(controller.program_page(lun, 1, i // args.luns, 0))
        else:
            tasks.append(controller.read_page(lun, 1, i // args.luns,
                                              page * (1 + lun)))
    for task in tasks:
        controller.run_to_completion(task)
        op_latency.observe(task.finished_at - task.submitted_at)

    registry.counter("analyzer_events").inc(len(analyzer.events))
    print(controller.describe())
    print(render_text_summary(tracer))
    print(registry.render_text("metrics:"))
    count = write_chrome_trace(args.out, tracer, metrics=registry)
    print(f"trace: {count} events -> {args.out}")
    if controller.diagnostics is not None and not controller.diagnostics.clean:
        print(controller.diagnostics.render_text(title="sanitize"))
        return controller.diagnostics.exit_code()
    return 0


def cmd_op_lint(args) -> int:
    """Statically lint every op program (built-ins x vendor profiles,
    honouring vendor overrides).  Exit 0 clean / 1 error findings (or
    incomplete coverage) / 2 internal error."""
    from repro.analysis.diagnostics import (
        EXIT_CLEAN,
        EXIT_FINDINGS,
        EXIT_INTERNAL,
        DiagnosticReport,
    )

    try:
        from repro.analysis import lint_library

        vendors = ([profile_by_name(args.vendor)] if args.vendor
                   else list(VENDOR_PROFILES.values()))
        findings, coverage = lint_library(vendors=vendors)
        report = DiagnosticReport([f.to_finding() for f in findings])
        if args.json:
            obj = report.to_json_obj()
            obj["coverage"] = {
                "registered": list(coverage.registered),
                "linted": list(coverage.linted),
                "skipped": list(coverage.skipped),
                "complete": coverage.complete,
            }
            print(json.dumps(obj, indent=2, sort_keys=True))
        else:
            for finding in findings:
                print(finding)
            print(f"op-lint: {coverage.describe()}")
            print(f"op-lint: {report.counts_line()}")
    except Exception as exc:  # the linter itself broke — not a finding
        print(f"op-lint: internal error: {exc!r}")
        return EXIT_INTERNAL
    if not coverage.complete:
        # A builder nobody lints is a silent hole in the CI gate.
        return EXIT_FINDINGS
    return EXIT_FINDINGS if report.exit_code() else EXIT_CLEAN


def cmd_verify_ops(args) -> int:
    """Statically verify every op program — abstract interpretation of
    protocol, timing, and liveness over all paths (built-ins plus
    vendor-override registrations, x vendor profiles x NV-DDR2 modes).
    Exit 0 clean / 1 error findings (or incomplete coverage) / 2
    internal error."""
    from repro.analysis.diagnostics import (
        EXIT_CLEAN,
        EXIT_FINDINGS,
        EXIT_INTERNAL,
        DiagnosticReport,
    )

    try:
        from repro.analysis import verify_library

        vendors = ([profile_by_name(args.vendor)] if args.vendor
                   else list(VENDOR_PROFILES.values()))
        modes = (args.mode,) if args.mode else None
        kwargs = {"vendors": vendors}
        if modes is not None:
            kwargs["modes"] = modes
        findings, coverage = verify_library(**kwargs)
        if not args.info:
            findings = [f for f in findings if f.severity != "info"]
        report = DiagnosticReport([f.to_finding() for f in findings])
        obj = report.to_json_obj()
        obj["coverage"] = {
            "registered": list(coverage.registered),
            "verified": list(coverage.verified),
            "skipped": list(coverage.skipped),
            "modes": list(coverage.modes),
            "complete": coverage.complete,
        }
        if args.json:
            text = json.dumps(obj, indent=2, sort_keys=True)
            if args.json == "-":
                print(text)
            else:
                with open(args.json, "w") as handle:
                    handle.write(text + "\n")
                print(f"verify-ops: findings -> {args.json}")
        if args.json != "-":
            for finding in findings:
                print(finding)
            print(f"verify-ops: {coverage.describe()}")
            print(f"verify-ops: {report.counts_line()}")
    except Exception as exc:  # the verifier itself broke — not a finding
        print(f"verify-ops: internal error: {exc!r}")
        return EXIT_INTERNAL
    if not coverage.complete:
        # A builder nobody verifies is a silent hole in the CI gate.
        return EXIT_FINDINGS
    return EXIT_FINDINGS if report.exit_code() else EXIT_CLEAN


def cmd_sanitize(args) -> int:
    """Run workloads (BABOL and, by default, both hardware baselines)
    under every runtime sanitizer plus the capture-time timing checker.
    Exit 0 clean / 1 findings / 2 internal error."""
    from repro.analysis.diagnostics import EXIT_INTERNAL
    from repro.sanitize import run_all_sanitized

    try:
        report = run_all_sanitized(
            profile_by_name(args.vendor),
            lun_count=args.luns,
            ops=args.ops,
            runtime=args.runtime,
            baselines=not args.no_baselines,
        )
        if args.json:
            with open(args.json, "w") as handle:
                handle.write(report.render_json() + "\n")
            print(f"sanitize: findings -> {args.json}")
        print(report.render_text(title="sanitize"))
    except Exception as exc:  # the harness broke — not a finding
        print(f"sanitize: internal error: {exc!r}")
        return EXIT_INTERNAL
    return report.exit_code()


def cmd_chaos(args) -> int:
    """Run a seeded fault-injection campaign against BABOL (and, by
    default, both hardware baselines) and report what was injected,
    what recovered, and the added tail latency.  Exit 0 when every
    recoverable fault recovered, 1 when any did not, 2 when the chaos
    harness itself broke."""
    from repro.faults import (
        EXIT_INTERNAL,
        FaultCampaign,
        run_chaos,
    )

    try:
        campaign = None
        if args.campaign:
            campaign = FaultCampaign.load(args.campaign)
        report = run_chaos(
            seed=args.seed,
            vendor=args.vendor,
            campaign=campaign,
            baselines=not args.no_baselines,
            fidelity=args.fidelity,
        )
        text = json.dumps(report, indent=2, sort_keys=True)
        if args.json:
            with open(args.json, "w") as handle:
                handle.write(text + "\n")
            print(f"chaos: report -> {args.json}")
        summary = report["summary"]
        print(
            f"chaos[{report['campaign']['name']} seed={report['campaign']['seed']}]"
            f" injected={summary['injected_total']}"
            f" recovered={summary['recovered_total']}"
            f" unrecovered={summary['unrecovered_total']}"
            f" degraded_luns={summary['degraded_luns']}"
        )
        for key, count in sorted(summary["unrecovered"].items()):
            print(f"  UNRECOVERED {key}: {count}")
    except Exception as exc:  # the harness broke — not a finding
        print(f"chaos: internal error: {exc!r}")
        return EXIT_INTERNAL
    return report["exit_code"]


def cmd_crashfuzz(args) -> int:
    """Crash-consistency fuzzing: a seeded workload through the
    queue-depth host engine, power killed at fuzzed nanoseconds, the
    media remounted, and every host-acked write verified readable with
    its acked contents.  Exit 0 when the contract held at every crash
    point, 1 on any violation, 2 when the harness itself broke."""
    from repro.analysis.crashfuzz import (
        EXIT_INTERNAL as FUZZ_INTERNAL,
        run_crashfuzz,
        summarize,
    )

    try:
        report = run_crashfuzz(
            seeds=args.seeds,
            points=args.points,
            channels=args.channels,
            luns=args.luns,
            qd=args.qd,
            ios=args.ios,
            fidelity=args.fidelity,
            vendor=args.vendor,
            base_seed=args.seed,
        )
        if args.json:
            with open(args.json, "w") as handle:
                handle.write(json.dumps(report, indent=2, sort_keys=True)
                             + "\n")
            print(f"crashfuzz: report -> {args.json}")
        for line in summarize(report):
            print(line)
    except Exception as exc:  # the harness broke — not a finding
        print(f"crashfuzz: internal error: {exc!r}")
        return FUZZ_INTERNAL
    return report["exit_code"]


def cmd_bench_smoke(args) -> int:
    """CI benchmark smoke: tiny, fast cells of Table I and Fig. 11 with
    wall-clock timings, serialized to JSON so the perf trajectory of the
    repository accumulates run over run."""
    import time

    from repro.analysis import LogicAnalyzer

    results: dict = {"schema": 1, "bench": "smoke",
                     "fidelity": args.fidelity}
    if args.fidelity != "waveform":
        # The Fig. 11 cells measure the polling waveform itself through
        # the logic analyzer, which only exists at waveform fidelity —
        # they always run under that tier, whatever --fidelity says.
        print(f"bench-smoke: fig11 cells stay at fidelity=waveform "
              f"(the logic analyzer samples bus segments the "
              f"'{args.fidelity}' tier does not drive); dispatch cells "
              f"run at fidelity={args.fidelity}")

    started = time.perf_counter()
    vendor = profile_by_name(args.vendor)
    results["table1"] = {
        "vendor": args.vendor,
        "t_read_us": vendor.timing.t_read_ns / 1000,
        "page_bytes": vendor.geometry.page_size,
        "transfer_us_200mt": NVDDR2_200.transfer_ns(
            vendor.geometry.full_page_size) / 1000,
    }

    fig11 = {}
    for runtime in ("rtos", "coroutine"):
        run_started = time.perf_counter()
        sim = Simulator()
        controller = BabolController(
            sim, ControllerConfig(vendor=vendor, lun_count=1, runtime=runtime,
                                  track_data=False),
        )
        analyzer = LogicAnalyzer(controller.channel)
        for i in range(args.reads):
            controller.run_to_completion(controller.read_page(0, 1, i, 0))
        summary = analyzer.polling_summary()
        fig11[runtime] = {
            "reads": args.reads,
            "polls": summary.count,
            "poll_period_us": summary.mean_ns / 1000,
            "read_latency_us": sim.now / args.reads / 1000,
            "sim_ns": sim.now,
            "wall_s": round(time.perf_counter() - run_started, 4),
        }
    results["fig11"] = fig11

    # Per-op dispatch overhead: fixed op counts on one coroutine LUN.
    # Wall time per op tracks the cost of the software dispatch path
    # itself (program build + interpretation + runtime scheduling), so
    # IR/runtime changes show up here run over run.
    from repro.core.ops import read_status_op

    dispatch_started = time.perf_counter()
    sim = Simulator()
    controller = BabolController(
        sim, ControllerConfig(vendor=vendor, lun_count=1, runtime="coroutine",
                              track_data=False, fidelity=args.fidelity),
    )
    reads = 150
    for i in range(reads):
        controller.run_to_completion(controller.read_page(0, 1, i, 0))
    read_wall = time.perf_counter() - dispatch_started
    poll_started = time.perf_counter()
    polls = 400
    for _ in range(polls):
        controller.run_to_completion(controller.submit(read_status_op, 0))
    poll_wall = time.perf_counter() - poll_started
    results["dispatch"] = {
        "reads": reads,
        "read_us_per_op": round(read_wall / reads * 1e6, 1),
        "status_polls": polls,
        "status_us_per_op": round(poll_wall / polls * 1e6, 1),
    }
    # Power-loss recovery cell: one deterministic mid-workload crash and
    # remount, with the SPOR counters scraped through the obs registry —
    # the same pull collectors a monitoring stack would read.
    from repro.analysis.crashfuzz import (
        _build_ops,
        _build_stack,
        _controllers as _fuzz_controllers,
        _drive,
        _FUZZ_FTL,
        _fuzz_profile,
    )
    from repro.faults.power import (
        PowerCut,
        PowerLossError,
        apply_power_cut,
        restore_media,
        snapshot_media,
    )
    from repro.ftl.spor import mount_sharded
    from repro.obs import MetricsRegistry, register_spor_metrics

    import numpy as np

    spor_started = time.perf_counter()
    profile = _fuzz_profile(vendor)
    spor_sim, spor_controllers, _, spor_engine, spor_span = _build_stack(
        profile, 2, 2, 8, args.fidelity)
    spor_ops = _build_ops(np.random.default_rng(1234), 120, spor_span, 2, 8)
    cut_ns = spor_sim.now + 10_000_000
    PowerCut(spor_sim, cut_ns).arm(spor_controllers)
    try:
        _drive(spor_sim, spor_engine, spor_ops, profile.geometry.page_size)
    except PowerLossError:
        pass
    apply_power_cut(spor_controllers, cut_ns)
    images = snapshot_media(spor_controllers)
    mount_sim = Simulator()
    mount_controllers = _fuzz_controllers(mount_sim, profile, 2, 2,
                                          args.fidelity)
    restore_media(mount_controllers, images)
    _, mount_report = mount_sharded(mount_sim, mount_controllers, _FUZZ_FTL)
    registry = MetricsRegistry()
    register_spor_metrics(registry, mount_report)
    spor_cell = dict(registry.snapshot()["collected"]["spor"])
    spor_cell["wall_s"] = round(time.perf_counter() - spor_started, 4)
    results["spor"] = spor_cell

    results["wall_s"] = round(time.perf_counter() - started, 4)

    rendered = json.dumps(results, indent=2, sort_keys=True)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(rendered + "\n")
        print(f"bench-smoke -> {args.out}")
    print(rendered)
    return 0


def cmd_perf(args) -> int:
    """Scale-out perf sweep (channels × queue depth) with the
    perf-regression gate.  Writes ``BENCH_scale.json``; with
    ``--check BASELINE`` exits 1 when the fresh run regresses past the
    baseline's tolerances."""
    from repro.analysis.perfbench import compare_reports, run_perf_sweep

    report = run_perf_sweep(
        channel_counts=args.channels,
        queue_depths=args.qd,
        luns_per_channel=args.luns,
        io_count=args.ios,
        vendor=args.vendor,
        pattern=args.pattern,
        quick=args.quick,
        fidelity=args.fidelity,
    )
    rendered = json.dumps(report, indent=2, sort_keys=True)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(rendered + "\n")
        print(f"perf -> {args.out}")
    else:
        print(rendered)

    rows = []
    for key in sorted(report["cells"]):
        cell = report["cells"][key]
        rows.append([
            key, f"{cell['throughput_mb_s']:.1f}", f"{cell['iops']:.0f}",
            f"{cell['latency_us']['p99']:.1f}",
            f"{cell['host']['dispatch_us_per_op']:.1f}",
        ])
    _print_rows(
        ["cell", "MB/s (sim)", "IOPS (sim)", "p99 µs (sim)", "host µs/op"],
        rows,
    )
    for label, ratio in sorted(report["scaling"].items()):
        print(f"scaling {label}: {ratio}x")

    if args.check:
        with open(args.check) as handle:
            baseline = json.load(handle)
        problems = compare_reports(report, baseline)
        if problems:
            for problem in problems:
                print(f"PERF REGRESSION: {problem}")
            return 1
        print(f"perf: within tolerance of baseline {args.check}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="babol-repro",
        description="BABOL (MICRO 2024) reproduction experiments",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p):
        p.add_argument("--vendor", default="hynix",
                       choices=sorted(VENDOR_PROFILES))
        p.add_argument("--trace", metavar="OUT.json", default=None,
                       help="write a Chrome trace_event capture of the "
                            "run(s) (open in Perfetto)")

    def sanitize_opt(p):
        p.add_argument("--sanitize", default=None, metavar="NAMES",
                       help="attach runtime sanitizers (\"all\" or a "
                            "comma list of bus,flash,memory,liveness); "
                            "exit 1 if any fires")

    def fidelity_opt(p):
        from repro.core.backend import FIDELITIES

        p.add_argument("--fidelity", default="waveform", choices=FIDELITIES,
                       help="execution backend: 'waveform' drives every "
                            "bus segment (exact); 'tlm' executes whole "
                            "transactions as single events (fast, same "
                            "data and per-op timing)")

    p = sub.add_parser("demo", help="program+read roundtrip demo")
    common(p)
    p.add_argument("--luns", type=int, default=8)
    p.add_argument("--runtime", default="coroutine",
                   choices=["coroutine", "rtos"])
    sanitize_opt(p)
    p.set_defaults(func=cmd_demo)

    p = sub.add_parser("table1", help="flash parameters")
    p.set_defaults(func=cmd_table1)

    p = sub.add_parser("fig10", help="throughput cell")
    common(p)
    p.add_argument("--luns", type=int, default=8)
    p.add_argument("--interface", type=int, default=200, choices=[100, 200])
    p.add_argument("--freq-mhz", type=int, nargs="+",
                   default=[150, 200, 400, 1000])
    p.set_defaults(func=cmd_fig10)

    p = sub.add_parser("fig11", help="polling breakdown")
    common(p)
    p.add_argument("--reads", type=int, default=8)
    p.set_defaults(func=cmd_fig11)

    p = sub.add_parser("fig12", help="end-to-end fio bandwidth")
    common(p)
    p.add_argument("--ways", type=int, nargs="+", default=[1, 2, 4, 8])
    p.add_argument("--pattern", default="sequential",
                   choices=["sequential", "random"])
    p.set_defaults(func=cmd_fig12)

    p = sub.add_parser("trace", help="observability capture of a mixed workload")
    p.add_argument("--vendor", default="hynix", choices=sorted(VENDOR_PROFILES))
    p.add_argument("--out", default="trace.json",
                   help="Chrome trace_event output path")
    p.add_argument("--luns", type=int, default=4)
    p.add_argument("--ops", type=int, default=24,
                   help="operations to run across the LUNs")
    p.add_argument("--runtime", default="coroutine",
                   choices=["coroutine", "rtos"])
    p.add_argument("--kernel", action="store_true",
                   help="also record the kernel event firehose")
    sanitize_opt(p)
    p.set_defaults(func=cmd_trace)

    p = sub.add_parser("op-lint",
                       help="statically lint the op-program library")
    p.add_argument("--vendor", default=None, choices=sorted(VENDOR_PROFILES),
                   help="lint one vendor profile (default: all)")
    p.add_argument("--json", action="store_true",
                   help="emit findings as JSON")
    p.set_defaults(func=cmd_op_lint)

    p = sub.add_parser("verify-ops",
                       help="statically verify the op-program library "
                            "(abstract interpretation)")
    p.add_argument("--vendor", default=None, choices=sorted(VENDOR_PROFILES),
                   help="verify one vendor profile (default: all)")
    p.add_argument("--mode", default=None,
                   choices=["NV-DDR2-100", "NV-DDR2-200"],
                   help="verify one data mode (default: both)")
    p.add_argument("--json", default=None, metavar="FILE",
                   help="write findings + coverage as JSON "
                        "('-' for stdout)")
    p.add_argument("--info", action="store_true",
                   help="include info-severity findings (OPV501 "
                        "plannability notes)")
    p.set_defaults(func=cmd_verify_ops)

    p = sub.add_parser("sanitize",
                       help="run workloads under the runtime sanitizers")
    p.add_argument("--vendor", default="hynix", choices=sorted(VENDOR_PROFILES))
    p.add_argument("--luns", type=int, default=4)
    p.add_argument("--ops", type=int, default=18,
                   help="operations in the BABOL workload")
    p.add_argument("--runtime", default="coroutine",
                   choices=["coroutine", "rtos"])
    p.add_argument("--no-baselines", action="store_true",
                   help="skip the sync/async hardware baselines")
    p.add_argument("--json", metavar="OUT.json", default=None,
                   help="also write the findings report as JSON")
    p.set_defaults(func=cmd_sanitize)

    p = sub.add_parser("chaos",
                       help="seeded fault-injection campaign "
                            "(exit 0 recovered / 1 unrecovered / 2 internal)")
    p.add_argument("--seed", type=int, default=4)
    p.add_argument("--vendor", default="hynix", choices=sorted(VENDOR_PROFILES))
    p.add_argument("--campaign", default=None,
                   help="campaign JSON file (default: built-in campaign)")
    p.add_argument("--json", default=None, help="write the full report here")
    p.add_argument("--no-baselines", action="store_true",
                   help="run the FTL phase against BABOL only")
    fidelity_opt(p)
    p.set_defaults(func=cmd_chaos)

    p = sub.add_parser("crashfuzz",
                       help="crash-consistency fuzzing: power-cut at "
                            "fuzzed ns, remount, verify every acked "
                            "write (exit 0 clean / 1 violation / "
                            "2 internal)")
    p.add_argument("--seeds", type=int, default=3,
                   help="number of seeded workloads")
    p.add_argument("--points", type=int, default=50,
                   help="crash points fuzzed per seed")
    p.add_argument("--channels", type=int, default=2)
    p.add_argument("--luns", type=int, default=2,
                   help="LUNs per channel")
    p.add_argument("--qd", type=int, default=8, help="queue depth")
    p.add_argument("--ios", type=int, default=400,
                   help="host commands per workload")
    p.add_argument("--seed", type=int, default=7,
                   help="base seed the per-workload seeds derive from")
    p.add_argument("--vendor", default="hynix", choices=sorted(VENDOR_PROFILES))
    p.add_argument("--json", default=None, help="write the full report here")
    fidelity_opt(p)
    p.set_defaults(func=cmd_crashfuzz)

    p = sub.add_parser("bench-smoke",
                       help="fast benchmark cells as JSON (CI artifact)")
    p.add_argument("--vendor", default="hynix", choices=sorted(VENDOR_PROFILES))
    p.add_argument("--reads", type=int, default=4)
    p.add_argument("--out", default=None, help="JSON output path")
    fidelity_opt(p)
    p.set_defaults(func=cmd_bench_smoke)

    p = sub.add_parser("perf",
                       help="multi-channel scale sweep + perf-regression "
                            "gate (exit 1 on regression vs --check baseline)")
    p.add_argument("--vendor", default="hynix", choices=sorted(VENDOR_PROFILES))
    p.add_argument("--channels", type=int, nargs="+", default=[1, 2, 4],
                   help="channel counts to sweep")
    p.add_argument("--qd", type=int, nargs="+", default=[8, 32],
                   help="queue depths to sweep")
    p.add_argument("--luns", type=int, default=4,
                   help="LUNs per channel")
    p.add_argument("--ios", type=int, default=192,
                   help="commands per cell")
    p.add_argument("--pattern", default="sequential",
                   choices=["sequential", "random"])
    p.add_argument("--quick", action="store_true",
                   help="corner cells only (CI mode; keys stay "
                        "comparable with a full-sweep baseline)")
    fidelity_opt(p)
    p.add_argument("--out", default=None,
                   help="write the JSON report here (e.g. BENCH_scale.json)")
    p.add_argument("--check", metavar="BASELINE.json", default=None,
                   help="compare against a baseline report; exit 1 on "
                        "regression")
    p.set_defaults(func=cmd_perf)

    p = sub.add_parser("table2", help="lines of code")
    p.set_defaults(func=cmd_table2)

    p = sub.add_parser("table3", help="FPGA area")
    p.set_defaults(func=cmd_table3)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

"""The shared channel bus.

The channel is the contended resource at the heart of the paper: LUNs
share it, segments monopolize it for their duration, and everything the
schedulers do is about keeping it busy.  This model provides:

* FIFO-fair arbitration (a :class:`~repro.sim.Mutex`) — the bus master
  (an executor or a hardware controller) acquires, transmits segments,
  and releases;
* transmission: timestamping a segment, handing its decoded actions to
  the chip-enabled LUNs, applying the PHY reliability check to data
  bursts, and holding the bus for the segment's duration;
* an event tap for the logic analyzer; and
* busy-time accounting for utilization metrics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Generator, Optional

from repro.bus.phy import ChannelPhy
from repro.flash.lun import Lun
from repro.onfi.datamodes import DataInterface, NVDDR2_200
from repro.onfi.signals import (
    DataInAction,
    DataOutAction,
    SegmentKind,
    WaveformSegment,
)
from repro.onfi.timing import TimingSet, timing_for_mode
from repro.sim import Simulator, Timeout
from repro.sim.sync import Mutex


@dataclass
class ChannelStats:
    """Aggregate channel accounting."""

    segments: int = 0
    busy_ns: int = 0
    data_bytes_out: int = 0
    data_bytes_in: int = 0
    per_kind: dict[str, int] = field(default_factory=dict)

    def record(self, segment: WaveformSegment) -> None:
        self.segments += 1
        self.busy_ns += segment.duration_ns
        key = segment.kind.value
        self.per_kind[key] = self.per_kind.get(key, 0) + 1
        for _, action in segment.actions:
            if isinstance(action, DataOutAction):
                self.data_bytes_out += action.nbytes
            elif isinstance(action, DataInAction):
                self.data_bytes_in += action.nbytes


class Channel:
    """One flash channel wiring a controller to its LUNs."""

    def __init__(
        self,
        sim: Simulator,
        luns: list[Lun],
        interface: DataInterface = NVDDR2_200,
        phy: Optional[ChannelPhy] = None,
        perfect_phy: bool = True,
        name: str = "ch0",
        backend=None,
    ):
        if not luns:
            raise ValueError("a channel needs at least one LUN")
        # Imported lazily: repro.core.__init__ -> controller -> this
        # module, so a top-level import of repro.core.backend would
        # re-enter a half-initialized package when the import chain
        # starts at repro.bus.
        from repro.core.backend import resolve_backend

        self.backend = resolve_backend(
            backend if backend is not None else "waveform")
        self.sim = sim
        self.name = name
        self.luns = luns
        self.interface = interface
        self.timing: TimingSet = timing_for_mode(interface.name)
        self.mutex = Mutex(sim)
        self.stats = ChannelStats()
        self._taps: list[Callable[[int, WaveformSegment], None]] = []
        self._san_bus = None  # BusSanitizer when attached (repro.sanitize)
        self._fault_hook = None  # FaultInjector when attached (repro.faults)
        if phy is not None:
            self.phy = phy
        else:
            self.phy = ChannelPhy(len(luns), seed=7)
            if perfect_phy:
                # Default channels come pre-calibrated so functional tests
                # exercise clean data paths; calibration tests supply a
                # skewed PHY explicitly.
                for position in range(len(luns)):
                    self.phy.set_trim(position, -self.phy.offsets[position])

    # -- configuration ---------------------------------------------------

    def set_interface(self, interface: DataInterface) -> None:
        """Retarget the channel's data mode (boot sequences do this)."""
        self.interface = interface
        self.timing = timing_for_mode(interface.name)

    def add_tap(self, tap: Callable[[int, WaveformSegment], None]) -> None:
        """Register a probe called with (time_ns, segment) per transmission.

        Taps observe per-segment bus traffic, which only the waveform
        tier produces — registering one on a TLM channel fails fast
        rather than silently missing every event.
        """
        if not self.backend.waveform:
            from repro.core.backend import FidelityError

            raise FidelityError(
                "bus taps sample per-segment waveforms; this channel runs "
                f"the '{self.backend.name}' tier — rebuild the stack with "
                "fidelity='waveform' to attach probes"
            )
        self._taps.append(tap)

    @property
    def width(self) -> int:
        return len(self.luns)

    # -- arbitration ------------------------------------------------------

    def acquire(self, owner=None) -> Generator:
        yield from self.mutex.acquire(owner)

    def release(self) -> None:
        if self._san_bus is not None:
            self._san_bus.on_release(self.sim.now)
        self.mutex.release()

    @property
    def is_idle(self) -> bool:
        return not self.mutex.locked

    # -- transmission -------------------------------------------------------

    def transmit(self, segment: WaveformSegment) -> Generator:
        """Drive one segment onto the bus (caller must hold the mutex).

        Holds the simulated bus for ``segment.duration_ns`` and delivers
        the decoded actions to every chip-enabled LUN.  The fidelity
        backend decides how: per-segment kernel events (waveform) or a
        single inline delivery + one timeout (tlm).
        """
        if not self.mutex.locked:
            raise RuntimeError("transmit without owning the channel")
        yield from self.backend.transmit(self, segment)

    def _transmit_waveform(self, segment: WaveformSegment) -> Generator:
        """The segment-accurate transmission path (WaveformBackend)."""
        segment.emitted_at = self.sim.now
        self.stats.record(segment)
        tracer = self.sim._tracer
        if tracer is not None:
            # One span per segment on this channel's track: the bus
            # occupancy picture Figs. 10-12 reason about.
            tracer.complete(
                "channel", f"channel/{self.name}", segment.kind.value,
                self.sim.now, segment.duration_ns,
                {"chip_mask": segment.chip_mask, "label": segment.label},
            )
        for tap in self._taps:
            tap(self.sim.now, segment)
        if self._san_bus is not None:
            self._san_bus.on_transmit(self.sim.now, segment, self.mutex.owner)
        targets = segment.targets(self.width)
        if not targets and segment.kind is not SegmentKind.TIMER:
            raise ValueError(f"segment {segment.describe()} selects no LUN")
        self._apply_phy(segment, targets)
        if self._fault_hook is not None:
            self._fault_hook.on_transmit(self.sim.now, segment, targets)
        for position in targets:
            self.luns[position].deliver_segment(segment)
        if segment.duration_ns:
            yield Timeout(segment.duration_ns)

    def _apply_phy(self, segment: WaveformSegment, targets: list[int]) -> None:
        if not self.interface.ddr:
            # SDR is slow enough that trace-length skew never leaves the
            # sampling eye — which is why packages can always boot in it.
            return
        if segment.kind not in (SegmentKind.DATA_OUT, SegmentKind.DATA_IN):
            return
        unreliable = [p for p in targets if not self.phy.data_reliable(p)]
        if not unreliable:
            return
        for offset, action in segment.actions:
            handle = getattr(action, "dma_handle", None)
            if handle is not None:
                handle.corrupt_seed = (segment.emitted_at or 0) ^ offset ^ 0xDEAD

    # -- reporting ------------------------------------------------------------

    def utilization(self, elapsed_ns: Optional[int] = None) -> float:
        """Fraction of wall time the bus carried a segment."""
        elapsed = elapsed_ns if elapsed_ns is not None else self.sim.now
        if elapsed <= 0:
            return 0.0
        return min(self.stats.busy_ns / elapsed, 1.0)

    def describe(self) -> str:
        return (
            f"Channel[{self.interface.name}] {self.width} LUNs, "
            f"{self.stats.segments} segments, util={self.utilization():.2%}"
        )

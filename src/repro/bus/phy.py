"""Physical-layer model: per-position phase skew.

Section IV-C: "the traces connecting the controller and Flash packages
can be different even in different instances of the same device. The
controller may need to individually adjust the waveform phase for each
package."  We model that with a hidden per-position phase offset (in
trim steps).  A data burst is only reliable when the controller's
programmed trim lands within the sampling eye around that offset; the
calibration tool (:mod:`repro.calibration.phase`) sweeps trims to find
it, exactly as BABOL's calibration tool suggests adjustments.
"""

from __future__ import annotations

import numpy as np


class ChannelPhy:
    """Hidden phase offsets plus the reliability predicate."""

    def __init__(
        self,
        positions: int,
        seed: int = 0,
        max_offset_steps: int = 6,
        eye_half_width: int = 2,
    ):
        if positions <= 0:
            raise ValueError("positions must be positive")
        rng = np.random.default_rng(seed)
        self.offsets = [
            int(rng.integers(-max_offset_steps, max_offset_steps + 1))
            for _ in range(positions)
        ]
        self.eye_half_width = eye_half_width
        self.trims = [0] * positions

    def set_trim(self, position: int, trim: int) -> None:
        self.trims[position] = int(trim)

    def residual_skew(self, position: int) -> int:
        """Sampling-point error after trim; 0 is perfectly centred."""
        return self.offsets[position] + self.trims[position]

    def data_reliable(self, position: int) -> bool:
        return abs(self.residual_skew(position)) <= self.eye_half_width

    def margin(self, position: int) -> int:
        """Remaining eye margin in trim steps (negative = outside eye)."""
        return self.eye_half_width - abs(self.residual_skew(position))

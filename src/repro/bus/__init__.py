"""The shared flash channel: arbitration, transmission, and PHY."""

from repro.bus.channel import Channel, ChannelStats
from repro.bus.phy import ChannelPhy

__all__ = ["Channel", "ChannelStats", "ChannelPhy"]

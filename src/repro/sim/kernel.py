"""Core event loop and process machinery.

The simulator keeps a heap of ``(time, sequence, Event)`` entries.  The
``sequence`` counter makes ordering of same-time events deterministic
(FIFO by schedule order), which matters for reproducing waveform traces
bit-exactly across runs.  Zero-delay events — the dominant traffic on
the hot path (every trigger fire, spawn, and finished-process join) —
ride a separate FIFO now-queue that preserves the same total order
while skipping the heap; timed events recycle pooled heap entries.

Processes are plain Python generators.  A process yields *commands* to
the kernel:

``Timeout(delay)``
    Resume the process ``delay`` nanoseconds later.

``WaitTrigger(trigger)``
    Resume the process when the trigger fires; the fired value is sent
    back into the generator.

``WaitProcess(process)``
    Resume when the given process terminates; the process's return value
    is sent back.

A generator may also delegate with ``yield from`` to compose processes
synchronously, which is the idiom the operation library uses to nest
ONFI operations (e.g. READ invoking READ STATUS).
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Generator, Iterable, Optional

NS_PER_US = 1_000
NS_PER_MS = 1_000_000
NS_PER_S = 1_000_000_000


class SimError(RuntimeError):
    """Raised for kernel misuse (negative delays, running a finished sim)."""


@dataclass
class Timeout:
    """Process command: sleep for ``delay`` nanoseconds."""

    delay: int


@dataclass
class WaitTrigger:
    """Process command: block until a trigger fires."""

    trigger: "Trigger"  # noqa: F821 - defined in repro.sim.sync


@dataclass
class WaitProcess:
    """Process command: block until another process terminates."""

    process: "Process"


@dataclass(order=True)
class _HeapEntry:
    time: int
    seq: int
    event: "Event" = field(compare=False)


class Event:
    """A scheduled callback.  Cancellable until it has run."""

    __slots__ = ("time", "callback", "cancelled", "_done")

    def __init__(self, time: int, callback: Callable[[], None]):
        self.time = time
        self.callback = callback
        self.cancelled = False
        self._done = False

    def cancel(self) -> None:
        self.cancelled = True

    @property
    def pending(self) -> bool:
        return not self.cancelled and not self._done


class Process:
    """A generator-based simulated process.

    The kernel resumes the generator with the value produced by the
    command it last yielded (a trigger's payload, a joined process's
    return value, or ``None`` after a timeout).
    """

    __slots__ = (
        "sim", "gen", "name", "finished", "value", "_waiters", "error",
        "_resume",
    )

    def __init__(self, sim: "Simulator", gen: Generator, name: str = ""):
        self.sim = sim
        self.gen = gen
        self.name = name or getattr(gen, "__name__", "process")
        self.finished = False
        self.value: Any = None
        self.error: Optional[BaseException] = None
        self._waiters: list[Callable[[Any], None]] = []
        # One reusable no-value resume callback: every Timeout wakeup
        # schedules this same bound callable instead of a fresh lambda.
        self._resume: Callable[[], None] = lambda: self._step(None)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "done" if self.finished else "running"
        return f"<Process {self.name} {state}>"

    def _step(self, send_value: Any = None) -> None:
        if self.finished:
            return
        tracer = self.sim._tracer
        if tracer is not None:
            tracer.kernel_process("step", self.name, self.sim.now)
        try:
            command = self.gen.send(send_value)
        except StopIteration as stop:
            self._finish(stop.value)
            return
        except BaseException as exc:  # surface process crashes loudly
            self.finished = True
            self.error = exc
            raise
        self._dispatch(command)

    def _dispatch(self, command: Any) -> None:
        sim = self.sim
        if isinstance(command, Timeout):
            sim.schedule(command.delay, self._resume)
        elif isinstance(command, WaitTrigger):
            command.trigger._add_waiter(self._step)
        elif isinstance(command, WaitProcess):
            command.process._add_join_waiter(self._step)
        elif isinstance(command, int):
            # Bare integers are accepted as a shorthand for Timeout.
            sim.schedule(command, self._resume)
        else:
            raise SimError(
                f"process {self.name!r} yielded unsupported command {command!r}"
            )

    def _finish(self, value: Any) -> None:
        self.finished = True
        self.value = value
        tracer = self.sim._tracer
        if tracer is not None:
            tracer.kernel_process("finish", self.name, self.sim.now)
        waiters, self._waiters = self._waiters, []
        for waiter in waiters:
            waiter(value)

    def _add_join_waiter(self, waiter: Callable[[Any], None]) -> None:
        if self.finished:
            # Resume on a fresh event to keep ordering causal.
            self.sim.schedule(0, lambda: waiter(self.value))
        else:
            self._waiters.append(waiter)

    def join(self) -> Generator:
        """Process command helper: ``result = yield from other.join()``."""
        result = yield WaitProcess(self)
        return result


class Simulator:
    """The event loop.

    >>> sim = Simulator()
    >>> log = []
    >>> def worker():
    ...     yield Timeout(5)
    ...     log.append(sim.now)
    >>> _ = sim.spawn(worker())
    >>> sim.run()
    >>> log
    [5]
    """

    def __init__(self) -> None:
        self.now: int = 0
        self._heap: list[_HeapEntry] = []
        # Zero-delay events (trigger resumptions, spawns, joins of
        # finished processes) bypass the heap entirely: they can only
        # ever run at the current time, after every heap entry already
        # scheduled for this instant, in FIFO order — exactly the
        # (time, seq) order the heap would produce, without the
        # O(log n) push/pop or the entry allocation.
        self._now_queue: deque[Event] = deque()
        # Recycled _HeapEntry slots: timed events mutate a pooled entry
        # instead of allocating a fresh one per schedule() call.
        self._entry_pool: list[_HeapEntry] = []
        self._seq = 0
        self._running = False
        # Optional observability hook (repro.obs.Tracer).  Every kernel
        # call site guards with a single `is not None` check so the
        # untraced fast path stays one attribute load per event.
        self._tracer = None
        # Optional liveness sanitizer (repro.sanitize).  Consulted only
        # when the heap drains, so the hot loop is untouched.
        self._san_liveness = None

    # -- observability -------------------------------------------------

    def set_tracer(self, tracer) -> None:
        """Attach (or detach with ``None``) a :class:`repro.obs.Tracer`.

        All instrumentation points in the stack discover the tracer
        through their simulator, so this one call enables tracing for
        channels, executors, CPUs, runtimes, ops, and hosts alike.
        """
        self._tracer = tracer

    @property
    def tracer(self):
        return self._tracer

    # -- scheduling ----------------------------------------------------

    def schedule(self, delay: int, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` to run ``delay`` ns from now."""
        if delay < 0:
            raise SimError(f"negative delay {delay}")
        delay = int(delay)
        if delay == 0:
            # Fast path: an immediately-ready event never touches the
            # heap (see ``_now_queue``); ordering is unchanged.
            event = Event(self.now, callback)
            self._now_queue.append(event)
            if self._tracer is not None:
                self._tracer.kernel_event("schedule", self.now, event.time)
            return event
        event = Event(self.now + delay, callback)
        self._seq += 1
        pool = self._entry_pool
        if pool:
            entry = pool.pop()
            entry.time = event.time
            entry.seq = self._seq
            entry.event = event
        else:
            entry = _HeapEntry(event.time, self._seq, event)
        heapq.heappush(self._heap, entry)
        if self._tracer is not None:
            self._tracer.kernel_event("schedule", self.now, event.time)
        return event

    def schedule_at(self, time: int, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` at an absolute simulation time."""
        if time < self.now:
            raise SimError(f"cannot schedule in the past ({time} < {self.now})")
        return self.schedule(time - self.now, callback)

    def spawn(self, gen: Generator, name: str = "") -> Process:
        """Create a process from a generator and start it immediately."""
        process = Process(self, gen, name)
        if self._tracer is not None:
            self._tracer.kernel_process("spawn", process.name, self.now)
        self.schedule(0, process._resume)
        return process

    # -- running -------------------------------------------------------

    def run(self, until: Optional[int] = None) -> None:
        """Run events until the queues drain or ``until`` (absolute ns)."""
        self._running = True
        heap = self._heap
        nq = self._now_queue
        pool = self._entry_pool
        if until is None or until >= self.now:
            while True:
                # Heap entries stamped for the current instant were
                # scheduled before any entry now sitting in the
                # now-queue (a zero-delay schedule can only happen at
                # the current time), so they drain first; the now-queue
                # then drains FIFO before time may advance.
                if nq and not (heap and heap[0].time <= self.now):
                    event = nq.popleft()
                    if event.cancelled:
                        if self._tracer is not None:
                            self._tracer.kernel_event("cancel", self.now, event.time)
                        continue
                    event._done = True
                    if self._tracer is not None:
                        self._tracer.kernel_event("fire", self.now, event.time)
                    event.callback()
                    continue
                if not heap:
                    break
                entry = heap[0]
                if until is not None and entry.time > until:
                    break
                heapq.heappop(heap)
                event = entry.event
                entry.event = None  # release the slot's reference
                if len(pool) < 128:
                    pool.append(entry)
                if event.cancelled:
                    # Cancellation itself is a plain flag flip (Event has
                    # no simulator back-reference); it becomes observable
                    # here, when the dead entry surfaces from the heap.
                    if self._tracer is not None:
                        self._tracer.kernel_event("cancel", self.now, event.time)
                    continue
                if event.time < self.now:  # pragma: no cover - invariant guard
                    raise SimError("event heap time went backwards")
                self.now = event.time
                event._done = True
                if self._tracer is not None:
                    self._tracer.kernel_event("fire", self.now, event.time)
                event.callback()
        if self._san_liveness is not None and not heap and not nq:
            # Quiescent point: nothing left to run anywhere.  If work is
            # still outstanding, that is a deadlock, not completion.
            self._san_liveness.on_quiescent(self.now)
        if until is not None and self.now < until:
            self.now = until
        self._running = False

    def run_process(self, gen: Generator, name: str = "", until: Optional[int] = None):
        """Spawn ``gen``, run the simulation, and return the process value."""
        process = self.spawn(gen, name)
        self.run(until=until)
        if not process.finished:
            raise SimError(f"process {process.name!r} did not finish by {self.now} ns")
        return process.value

    @property
    def pending_events(self) -> int:
        return sum(1 for entry in self._heap if entry.event.pending) + sum(
            1 for event in self._now_queue if event.pending
        )


def passthrough(iterable: Iterable) -> Generator:
    """Wrap a finished iterable as a trivially complete process body."""
    for item in iterable:  # pragma: no cover - convenience shim
        yield item

"""Deterministic discrete-event simulation kernel.

Every hardware element in this reproduction (flash LUNs, the channel bus,
DMA engines, the modeled controller CPUs) is a process running on this
kernel.  Time is an integer number of nanoseconds, which keeps event
ordering exact and reproducible.

The kernel is intentionally small: a time-ordered event heap, processes
expressed as Python generators, and a handful of synchronization
primitives (:class:`Trigger`, :class:`Mutex`, :class:`Queue`,
:class:`Condition`).
"""

from repro.sim.kernel import (
    NS_PER_US,
    NS_PER_MS,
    NS_PER_S,
    Event,
    Process,
    SimError,
    Simulator,
    Timeout,
    WaitProcess,
    WaitTrigger,
)
from repro.sim.sync import Condition, Mutex, Queue, Trigger

__all__ = [
    "NS_PER_US",
    "NS_PER_MS",
    "NS_PER_S",
    "Event",
    "Process",
    "SimError",
    "Simulator",
    "Timeout",
    "WaitProcess",
    "WaitTrigger",
    "Condition",
    "Mutex",
    "Queue",
    "Trigger",
]

"""Synchronization primitives for simulated processes.

These are the building blocks the controller models use for arbitration
and hand-off:

* :class:`Trigger` — a one-to-many pulse carrying a payload (R/B# edges,
  transaction-completion notifications).
* :class:`Mutex` — FIFO-fair exclusive ownership (the channel bus token).
* :class:`Queue` — unbounded FIFO with blocking ``get`` (transaction
  queues between the scheduling and execution halves of BABOL).
* :class:`Condition` — level-triggered predicate wait (status changes).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Generator, Optional

from repro.sim.kernel import Simulator, WaitTrigger


class Trigger:
    """A repeatable event that resumes all current waiters when fired."""

    __slots__ = ("sim", "_waiters", "fire_count", "last_value")

    def __init__(self, sim: Simulator):
        self.sim = sim
        self._waiters: list[Callable[[Any], None]] = []
        self.fire_count = 0
        self.last_value: Any = None

    def _add_waiter(self, waiter: Callable[[Any], None]) -> None:
        self._waiters.append(waiter)

    def fire(self, value: Any = None) -> None:
        """Fire now: every process currently waiting resumes with ``value``."""
        self.fire_count += 1
        self.last_value = value
        waiters, self._waiters = self._waiters, []
        for waiter in waiters:
            # Resume via the scheduler so firing is never re-entrant.
            self.sim.schedule(0, lambda w=waiter: w(value))

    def wait(self) -> Generator:
        """Process command helper: ``value = yield from trigger.wait()``."""
        value = yield WaitTrigger(self)
        return value


class Mutex:
    """FIFO-fair mutual exclusion.

    ``yield from mutex.acquire()`` blocks until ownership is granted;
    ``mutex.release()`` hands the lock to the longest waiter.
    """

    __slots__ = ("sim", "locked", "owner", "_queue", "acquire_count")

    def __init__(self, sim: Simulator):
        self.sim = sim
        self.locked = False
        self.owner: Any = None
        self._queue: deque[Trigger] = deque()
        self.acquire_count = 0

    def acquire(self, owner: Any = None) -> Generator:
        if not self.locked:
            self.locked = True
            self.owner = owner
            self.acquire_count += 1
            return
            yield  # pragma: no cover - makes this a generator
        gate = Trigger(self.sim)
        self._queue.append(gate)
        yield from gate.wait()
        self.owner = owner
        self.acquire_count += 1

    def release(self) -> None:
        if not self.locked:
            raise RuntimeError("release of an unlocked Mutex")
        self.owner = None
        if self._queue:
            gate = self._queue.popleft()
            gate.fire()
        else:
            self.locked = False

    @property
    def waiters(self) -> int:
        return len(self._queue)


class Queue:
    """Unbounded FIFO with blocking ``get`` and synchronous ``put``."""

    __slots__ = ("sim", "_items", "_getters")

    def __init__(self, sim: Simulator):
        self.sim = sim
        self._items: deque = deque()
        self._getters: deque[Trigger] = deque()

    def put(self, item: Any) -> None:
        if self._getters:
            gate = self._getters.popleft()
            gate.fire(item)
        else:
            self._items.append(item)

    def get(self) -> Generator:
        """``item = yield from queue.get()`` — blocks until available."""
        if self._items:
            return self._items.popleft()
        gate = Trigger(self.sim)
        self._getters.append(gate)
        item = yield from gate.wait()
        return item

    def try_get(self) -> Optional[Any]:
        """Non-blocking get; ``None`` when empty."""
        if self._items:
            return self._items.popleft()
        return None

    def __len__(self) -> int:
        return len(self._items)

    def peek_all(self) -> tuple:
        """Snapshot of queued items (schedulers use this to reorder)."""
        return tuple(self._items)

    def remove(self, item: Any) -> bool:
        """Remove a specific queued item (priority schedulers pluck)."""
        try:
            self._items.remove(item)
            return True
        except ValueError:
            return False


class Condition:
    """Level-triggered wait on an arbitrary predicate.

    The owner of the state calls :meth:`notify` whenever the state may
    have changed; waiters re-check their predicate.
    """

    __slots__ = ("sim", "_trigger")

    def __init__(self, sim: Simulator):
        self.sim = sim
        self._trigger = Trigger(sim)

    def notify(self) -> None:
        self._trigger.fire()

    def wait_for(self, predicate: Callable[[], bool]) -> Generator:
        while not predicate():
            yield from self._trigger.wait()

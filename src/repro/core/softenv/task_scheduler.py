"""Task schedulers: which admitted operation runs next.

"A simple version of the Task Scheduler can admit an operation when a
given package is available and implement fair scheduling among the
running operations.  A more complex task scheduler could differentiate
task priorities" (Section V).  BABOL does not mandate a policy; these
are the reference policies, and the base class is the extension point
an SSD Architect subclasses.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.softenv.base import Task


class TaskScheduler(ABC):
    """Policy choosing the next ready task to resume."""

    name = "task-scheduler"

    @abstractmethod
    def select(self, ready: Sequence["Task"]) -> "Task":
        """Pick one task from a non-empty ready list."""


class FifoTaskScheduler(TaskScheduler):
    """Resume tasks in the order they became ready."""

    name = "fifo"

    def select(self, ready: Sequence["Task"]) -> "Task":
        return ready[0]


class RoundRobinTaskScheduler(TaskScheduler):
    """Fair rotation across tasks (by last-resumed time, oldest first)."""

    name = "round-robin"

    def select(self, ready: Sequence["Task"]) -> "Task":
        return min(ready, key=lambda task: (task.last_resumed_at, task.id))


class PriorityTaskScheduler(TaskScheduler):
    """Strict priority (lower value = more urgent), FIFO within a level.

    The paper's example: prioritize latency-sensitive workloads such as
    database logging by giving those tasks more scheduler attention.
    """

    name = "priority"

    def select(self, ready: Sequence["Task"]) -> "Task":
        return min(ready, key=lambda task: (task.priority, task.ready_since, task.id))

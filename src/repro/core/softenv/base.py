"""The software environment runtime.

This module is the "Operation Scheduling" half of Fig. 5.  An operation
is a Python generator that yields *environment commands*:

``EnvAwait(txn)``
    The paper's ``co_await add_transaction(...)``: enqueue the
    transaction and suspend until the executor has transmitted it.

``EnvPost(txn)``
    Enqueue without suspending (multi-transaction pipelining).

``EnvWaitTxn(txn)``
    Suspend until a previously posted transaction completes.

``EnvSleep(ns)``
    Suspend for a fixed simulated time (used by the timed-wait
    ablation instead of status polling).

``EnvYield()``
    Cooperative yield: go to the back of the ready queue.

Operations compose with plain ``yield from`` (Algorithm 2 invoking
Algorithm 1).  The environment's main loop runs on the modeled CPU and
charges the runtime's cycle costs for every scheduler iteration,
context switch, enqueue, and dispatch — so a 150 MHz soft-core really
does schedule ~7× slower than the 1 GHz ARM, which is the effect
Fig. 10 sweeps.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass
from typing import Any, Callable, Generator, Optional

from repro.core.executor import Executor
from repro.core.packetizer import Packetizer
from repro.core.recovery import RecoverableOpError
from repro.core.softenv.cpu import Cpu
from repro.core.softenv.task_scheduler import RoundRobinTaskScheduler, TaskScheduler
from repro.core.softenv.txn_scheduler import FifoTxnScheduler, TxnScheduler
from repro.core.transaction import Transaction, TxnKind
from repro.core.ufsm.base import UfsmBank
from repro.sim import Simulator
from repro.sim.sync import Condition, Trigger

_task_ids = itertools.count()


@dataclass(frozen=True)
class RuntimeCosts:
    """Cycle costs of one software runtime's primitives.

    ``context_switch`` / ``scheduler_iteration`` / ``enqueue`` /
    ``dispatch`` are *serializing*: they occupy the CPU and bound how
    many transactions per second the runtime can push.  ``wakeup`` is a
    *latency*: the delay between a hardware completion and the runtime
    noticing it (event-loop granularity, completion-queue batching).
    It stretches idle-channel round trips — the Fig. 11 polling period
    — without consuming CPU, which is why a heavyweight runtime can
    still saturate a busy channel (Fig. 10 at 8 LUNs).
    """

    context_switch: int
    scheduler_iteration: int
    enqueue: int
    dispatch: int
    wakeup: int

    def poll_cycle_estimate(self) -> int:
        """Cycles of one status-poll round trip (Fig. 11's quantity)."""
        return (
            self.context_switch
            + self.scheduler_iteration
            + self.enqueue
            + self.dispatch
            + self.wakeup
        )

    def serialized_txn_cycles(self) -> int:
        """CPU cycles consumed per transaction (the throughput bound)."""
        return (
            self.context_switch
            + self.scheduler_iteration
            + self.enqueue
            + self.dispatch
        )


# -- environment commands ---------------------------------------------------


@dataclass
class EnvAwait:
    txn: Transaction


@dataclass
class EnvPost:
    txn: Transaction


@dataclass
class EnvWaitTxn:
    txn: Transaction


@dataclass
class EnvSleep:
    ns: int


@dataclass
class EnvYield:
    pass


class TaskState(enum.Enum):
    READY = "ready"
    RUNNING = "running"
    BLOCKED = "blocked"
    DONE = "done"


class Task:
    """One admitted operation instance."""

    __slots__ = (
        "id", "gen", "lun_position", "priority", "state", "result",
        "completed", "submitted_at", "admitted_at", "finished_at",
        "last_resumed_at", "ready_since", "send_value", "label", "error",
    )

    def __init__(
        self,
        sim: Simulator,
        gen: Generator,
        lun_position: int,
        priority: int = 1,
        label: str = "",
    ):
        self.id = next(_task_ids)
        self.gen = gen
        self.lun_position = lun_position
        self.priority = priority
        self.state = TaskState.READY
        self.result: Any = None
        self.completed = Trigger(sim)
        self.submitted_at = sim.now
        self.admitted_at: Optional[int] = None
        self.finished_at: Optional[int] = None
        self.last_resumed_at = -1
        self.ready_since = sim.now
        self.send_value: Any = None
        self.label = label or getattr(gen, "__name__", "op")
        # A RecoverableOpError the operation raised (watchdog timeout,
        # FAIL status surfaced as an exception); None on the happy path.
        self.error: Optional[BaseException] = None

    def describe(self) -> str:
        return f"task#{self.id} {self.label} lun{self.lun_position} {self.state.value}"


class OperationContext:
    """What an operation sees: the µFSM bank, Packetizer, and its target.

    This is the abstraction boundary Section III discusses — everything
    below it (pin timing, DMA pacing, channel arbitration) is hidden;
    everything above it (operation structure, category-3 waits,
    polling-vs-timer decisions) belongs to the SSD Architect.
    """

    def __init__(
        self,
        env: "SoftwareEnvironment",
        lun_position: int,
        chip_mask: Optional[int] = None,
    ):
        self.env = env
        self.sim = env.sim
        self.lun_position = lun_position
        self.chip_mask = chip_mask if chip_mask is not None else (1 << lun_position)
        self.ufsm: UfsmBank = env.ufsm
        self.packetizer: Packetizer = env.packetizer
        # Nanosecond poll budget (repro.core.recovery.Watchdog) shared
        # by every busy-wait this op performs; None = unbounded (the
        # historical behaviour, byte-identical paths).
        self.watchdog = env.watchdog
        # The vendor profile of the attached package, if known: op-IR
        # programs resolve per-vendor overrides through it.
        self.vendor = getattr(env, "vendor", None)
        # The fidelity backend driving the channel (None = waveform
        # semantics).  Ops consult it for the TLM poll fast-forward.
        self.backend = env.backend

    # -- transaction building ------------------------------------------

    def transaction(self, kind: TxnKind = TxnKind.CMD_ADDR, priority: Optional[int] = None,
                    label: str = "") -> Transaction:
        return Transaction(
            self.sim, self.lun_position, kind=kind, priority=priority, label=label
        )

    # -- the co_await-style verbs (generators; use with ``yield from``) --

    def add_transaction(self, txn: Transaction) -> Generator:
        """Enqueue and suspend until executed (Algorithm 1, line 8)."""
        result = yield EnvAwait(txn)
        return result

    def post_transaction(self, txn: Transaction) -> Generator:
        """Enqueue without suspending (pipelined multi-txn operations)."""
        yield EnvPost(txn)
        return txn

    def wait_transaction(self, txn: Transaction) -> Generator:
        yield EnvWaitTxn(txn)

    def sleep(self, ns: int) -> Generator:
        yield EnvSleep(ns)

    def yield_control(self) -> Generator:
        yield EnvYield()


class SoftwareEnvironment:
    """The runtime: admission, task scheduling, transaction dispatch."""

    runtime_name = "generic"

    def __init__(
        self,
        sim: Simulator,
        executor: Executor,
        ufsm: UfsmBank,
        packetizer: Packetizer,
        cpu: Cpu,
        costs: RuntimeCosts,
        task_scheduler: Optional[TaskScheduler] = None,
        txn_scheduler: Optional[TxnScheduler] = None,
        max_tasks_per_lun: int = 1,
        vendor=None,
    ):
        self.sim = sim
        self.executor = executor
        self.ufsm = ufsm
        self.packetizer = packetizer
        self.cpu = cpu
        self.costs = costs
        self.vendor = vendor
        self.task_scheduler = task_scheduler or RoundRobinTaskScheduler()
        self.txn_scheduler = txn_scheduler or FifoTxnScheduler()
        self.max_tasks_per_lun = max_tasks_per_lun
        # Optional Watchdog giving every busy-wait an ns budget; the
        # controller installs it from its config (None = off).
        self.watchdog = None
        # ExecutionBackend of the attached channel; the controller
        # installs it so ops can ask about fidelity capabilities
        # (poll fast-forward).  None behaves as waveform.
        self.backend = None

        self._ready: list[Task] = []
        self._pending_txns: list[Transaction] = []
        self._admission_queue: list[Task] = []
        self._running_per_lun: dict[int, int] = {}
        self._work = Condition(sim)
        self._stopped = False
        self._tick_batch: list[Task] = []
        self._tick_event = None

        self.tasks_submitted = 0
        self.tasks_completed = 0
        self.tasks_failed = 0
        self.txns_enqueued = 0
        self.txns_dispatched = 0

        # The executor tells us when a queue slot frees so the dispatcher
        # half of the loop can run again.
        self._slot_listener = sim.spawn(self._watch_slots(), name=f"{self.runtime_name}-slots")
        self._loop = sim.spawn(self._run(), name=f"{self.runtime_name}-env")

    # ------------------------------------------------------------------
    # FTL-facing API
    # ------------------------------------------------------------------

    def submit(
        self,
        op_factory: Callable[[OperationContext], Generator],
        lun_position: int,
        priority: int = 1,
        chip_mask: Optional[int] = None,
        label: str = "",
    ) -> Task:
        """Request an operation; admission may defer it (busy LUN)."""
        ctx = OperationContext(self, lun_position, chip_mask=chip_mask)
        gen = op_factory(ctx)
        task = Task(self.sim, gen, lun_position, priority=priority,
                    label=label or getattr(op_factory, "__name__", "op"))
        self.tasks_submitted += 1
        self._admission_queue.append(task)
        self._admit_eligible()
        self._work.notify()
        return task

    @staticmethod
    def wait_task(task: Task) -> Generator:
        """Process helper: ``result = yield from env.wait_task(task)``."""
        if task.state is TaskState.DONE:
            return task.result
        result = yield from task.completed.wait()
        return result

    # ------------------------------------------------------------------
    # Admission (the Task Scheduler's gate)
    # ------------------------------------------------------------------

    def _admit_eligible(self) -> None:
        admitted: list[Task] = []
        for task in self._admission_queue:
            running = self._running_per_lun.get(task.lun_position, 0)
            if running < self.max_tasks_per_lun:
                self._running_per_lun[task.lun_position] = running + 1
                task.admitted_at = self.sim.now
                task.ready_since = self.sim.now
                self._ready.append(task)
                admitted.append(task)
        for task in admitted:
            self._admission_queue.remove(task)

    # ------------------------------------------------------------------
    # Main loop (runs on the modeled CPU)
    # ------------------------------------------------------------------

    def _has_work(self) -> bool:
        return bool(self._ready) or bool(
            self._pending_txns and self.executor.has_room
        )

    def _watch_slots(self) -> Generator:
        while True:
            yield from self.executor.slot_freed.wait()
            self._work.notify()

    def _run(self) -> Generator:
        while not self._stopped:
            if self._pending_txns and self.executor.has_room:
                # Dispatcher half: choose the next transaction and hand
                # it to the hardware.
                yield from self.cpu.execute(self.costs.dispatch)
                if not (self._pending_txns and self.executor.has_room):
                    continue  # world changed while we were computing
                txn = self.txn_scheduler.select(self._pending_txns)
                self._pending_txns.remove(txn)
                self.executor.push(txn)
                self.txns_dispatched += 1
                if self.sim._tracer is not None:
                    self._trace_queue_depths()
                continue
            if self._ready:
                # Task half: pick, context-switch, resume one step.
                yield from self.cpu.execute(self.costs.scheduler_iteration)
                if not self._ready:
                    continue
                task = self.task_scheduler.select(self._ready)
                self._ready.remove(task)
                if self.sim._tracer is not None:
                    self._trace_queue_depths()
                yield from self.cpu.execute(self.costs.context_switch)
                yield from self._step_task(task)
                continue
            yield from self._work.wait_for(self._has_work)

    def _step_task(self, task: Task) -> Generator:
        """Resume one task until it suspends or finishes."""
        task.state = TaskState.RUNNING
        task.last_resumed_at = self.sim.now
        send, task.send_value = task.send_value, None
        while True:
            try:
                command = task.gen.send(send)
            except StopIteration as stop:
                self._finish_task(task, stop.value)
                return
            except RecoverableOpError as exc:
                # Watchdog timeouts / surfaced FAIL bits are policy
                # events, not runtime bugs: attach the error and finish
                # the task (result None) so waiters unblock and a
                # recovery manager can escalate.  Anything else still
                # propagates — a protocol violation must stay loud.
                task.error = exc
                task.gen.close()
                self.tasks_failed += 1
                self._finish_task(task, None)
                return
            send = None
            if isinstance(command, EnvAwait):
                yield from self.cpu.execute(self.costs.enqueue)
                self._enqueue_txn(command.txn)
                self._block_on_txn(task, command.txn)
                return
            if isinstance(command, EnvPost):
                yield from self.cpu.execute(self.costs.enqueue)
                self._enqueue_txn(command.txn)
                send = command.txn
                continue  # posting does not suspend the task
            if isinstance(command, EnvWaitTxn):
                self._block_on_txn(task, command.txn)
                return
            if isinstance(command, EnvSleep):
                task.state = TaskState.BLOCKED
                self.sim.schedule(command.ns, lambda t=task: self._make_ready(t))
                return
            if isinstance(command, EnvYield):
                task.state = TaskState.READY
                task.ready_since = self.sim.now
                self._ready.append(task)
                return
            raise TypeError(
                f"operation {task.label!r} yielded unsupported command {command!r}"
            )

    # -- transitions -----------------------------------------------------

    def _trace_queue_depths(self) -> None:
        """Counter samples of the scheduler's two queues (caller guards
        on ``sim._tracer``; this is never on the untraced path)."""
        tracer = self.sim._tracer
        track = f"env/{self.runtime_name}"
        tracer.counter("sched", track, "ready_tasks", self.sim.now,
                       len(self._ready))
        tracer.counter("sched", track, "pending_txns", self.sim.now,
                       len(self._pending_txns))

    def _enqueue_txn(self, txn: Transaction) -> None:
        txn.enqueued_at = self.sim.now
        self._pending_txns.append(txn)
        self.txns_enqueued += 1
        if self.sim._tracer is not None:
            self._trace_queue_depths()
        self._work.notify()

    def _block_on_txn(self, task: Task, txn: Transaction) -> None:
        if txn.finished_at is not None:  # already executed
            task.send_value = txn
            task.state = TaskState.READY
            task.ready_since = self.sim.now
            self._ready.append(task)
            self._work.notify()
            return
        task.state = TaskState.BLOCKED
        txn.completed._add_waiter(lambda value, t=task: self._txn_woke(t, value))

    def _txn_woke(self, task: Task, txn: Transaction) -> None:
        task.send_value = txn
        delay = self.cpu.cycles_to_ns(self.costs.wakeup)
        if not delay:
            self._make_ready(task)
            return
        # Completion-notice latency: the runtime observes hardware
        # completions at its event-loop granularity.  Completions landing
        # within one window share the same tick (the loop drains its
        # completion queue in a batch), so the latency amortizes across
        # LUNs instead of serializing per event.  The CPU is not held.
        self._tick_batch.append(task)
        if self._tick_event is None or not self._tick_event.pending:
            self._tick_event = self.sim.schedule(delay, self._on_tick)

    def _on_tick(self) -> None:
        batch, self._tick_batch = self._tick_batch, []
        self._tick_event = None
        for task in batch:
            self._make_ready(task)

    def _make_ready(self, task: Task) -> None:
        if task.state is TaskState.DONE:  # pragma: no cover - guard
            return
        task.state = TaskState.READY
        task.ready_since = self.sim.now
        self._ready.append(task)
        if self.sim._tracer is not None:
            self._trace_queue_depths()
        self._work.notify()

    def _finish_task(self, task: Task, result: Any) -> None:
        task.state = TaskState.DONE
        task.result = result
        task.finished_at = self.sim.now
        tracer = self.sim._tracer
        if tracer is not None:
            start = task.admitted_at if task.admitted_at is not None \
                else task.submitted_at
            tracer.complete(
                "task", f"task/lun{task.lun_position}", task.label,
                start, self.sim.now - start,
                # task.id is process-global; keeping it out of the trace
                # keeps repeat runs byte-identical.
                {"admission_wait_ns": start - task.submitted_at},
            )
        self.tasks_completed += 1
        running = self._running_per_lun.get(task.lun_position, 1)
        self._running_per_lun[task.lun_position] = running - 1
        self._admit_eligible()
        task.completed.fire(result)
        self._work.notify()

    # -- reporting ----------------------------------------------------------

    def describe(self) -> str:
        return (
            f"{self.runtime_name} env on {self.cpu.describe()}: "
            f"{self.tasks_completed}/{self.tasks_submitted} tasks, "
            f"{self.txns_dispatched} txns dispatched "
            f"(task={self.task_scheduler.name}, txn={self.txn_scheduler.name})"
        )

"""The RTOS runtime (the paper's FreeRTOS flavor).

"FreeRTOS is designed to require a much lighter weight processor to
run, but it demands more expertise from the programmer" (Section V).
The cost table models hand-tuned task switches and ISR-driven wakeups —
roughly an order of magnitude cheaper per primitive than the coroutine
runtime, so one status-poll round trip costs ~2.3 k cycles (a few µs at
1 GHz, versus ~30 µs for coroutines: the Fig. 11 gap).

The price of that leanness is simpler scheduling logic: the default
transaction scheduler is plain FIFO, mirroring the paper's observation
that RTOS-level code is harder to make sophisticated.
"""

from __future__ import annotations

from typing import Optional

from repro.core.executor import Executor
from repro.core.packetizer import Packetizer
from repro.core.softenv.base import RuntimeCosts, SoftwareEnvironment
from repro.core.softenv.cpu import Cpu
from repro.core.softenv.task_scheduler import FifoTaskScheduler, TaskScheduler
from repro.core.softenv.txn_scheduler import FifoTxnScheduler, TxnScheduler
from repro.core.ufsm.base import UfsmBank
from repro.sim import Simulator

RTOS_COSTS = RuntimeCosts(
    context_switch=800,
    scheduler_iteration=400,
    enqueue=250,
    dispatch=350,
    wakeup=800,
)


class RtosEnvironment(SoftwareEnvironment):
    """Lean runtime, more programmer effort."""

    runtime_name = "rtos"

    def __init__(
        self,
        sim: Simulator,
        executor: Executor,
        ufsm: UfsmBank,
        packetizer: Packetizer,
        cpu: Cpu,
        task_scheduler: Optional[TaskScheduler] = None,
        txn_scheduler: Optional[TxnScheduler] = None,
        costs: RuntimeCosts = RTOS_COSTS,
        vendor=None,
    ):
        super().__init__(
            sim=sim,
            executor=executor,
            ufsm=ufsm,
            packetizer=packetizer,
            cpu=cpu,
            costs=costs,
            task_scheduler=task_scheduler or FifoTaskScheduler(),
            txn_scheduler=txn_scheduler or FifoTxnScheduler(),
            vendor=vendor,
        )

"""Modeled controller CPU.

The paper runs BABOL's software on Xilinx MicroBlaze soft-cores
(150 MHz) and Zynq-7000 ARM Cortex-A9 cores clocked from 200 MHz to
1 GHz.  The model is a frequency: software work is expressed in cycles
and converted to simulated nanoseconds here.  ``cpi`` (cycles per
instruction scale) lets soft-cores be penalized relative to the ARM's
stronger pipeline when an experiment wants that distinction.
"""

from __future__ import annotations

from typing import Generator

from repro.sim import Simulator, Timeout
from repro.sim.sync import Mutex

MHZ = 1_000_000
GHZ = 1_000_000_000


class Cpu:
    """A single in-order controller core.

    With ``exclusive=True`` the core serializes its users: several
    software environments (one per channel of a multi-channel storage
    controller) can share one physical core, and their scheduling work
    genuinely contends — the Cosmos+ situation, where two ARM cores
    drive the whole SSD.
    """

    def __init__(self, sim: Simulator, freq_hz: int, cpi: float = 1.0,
                 name: str = "cpu", exclusive: bool = False):
        if freq_hz <= 0:
            raise ValueError("CPU frequency must be positive")
        if cpi <= 0:
            raise ValueError("CPI must be positive")
        self.sim = sim
        self.freq_hz = freq_hz
        self.cpi = cpi
        self.name = name
        self.exclusive = exclusive
        self._mutex = Mutex(sim) if exclusive else None
        self.cycles_charged = 0
        self.contention_waits = 0

    def cycles_to_ns(self, cycles: int) -> int:
        return max(int(round(cycles * self.cpi * 1e9 / self.freq_hz)), 0)

    def execute(self, cycles: int) -> Generator:
        """Process command: occupy the core for ``cycles``."""
        self.cycles_charged += cycles
        ns = self.cycles_to_ns(cycles)
        if not ns:
            return
        tracer = self.sim._tracer
        if self._mutex is None:
            yield Timeout(ns)
            if tracer is not None:
                tracer.complete("cpu", f"cpu/{self.name}", "busy",
                                self.sim.now - ns, ns, {"cycles": cycles})
            return
        if self._mutex.locked:
            self.contention_waits += 1
        yield from self._mutex.acquire()
        try:
            yield Timeout(ns)
            if tracer is not None:
                # Span starts after the core was won, so shared-CPU
                # traces show contention as gaps, not stretched spans.
                tracer.complete("cpu", f"cpu/{self.name}", "busy",
                                self.sim.now - ns, ns, {"cycles": cycles})
        finally:
            self._mutex.release()

    @property
    def busy_ns(self) -> int:
        return self.cycles_to_ns(self.cycles_charged)

    def describe(self) -> str:
        mhz = self.freq_hz / MHZ
        return f"{self.name}@{mhz:.0f}MHz (cpi={self.cpi})"

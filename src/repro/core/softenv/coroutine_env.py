"""The Coroutine runtime (the paper's C++20-coroutine flavor).

"C++ is easier to program but requires a processor with enough speed to
sustain its heavy runtime" (Section V).  The cost table below models
that heavy runtime: coroutine frame resume/suspend, the promise-based
scheduler walk, and allocation-touching enqueues.  The numbers are
calibrated so one status-poll round trip costs ~29 k cycles — about
30 µs at 1 GHz, which is the polling period the logic analyzer measures
in Fig. 11.

The Coroutine environment pairs with the *priority* transaction
scheduler by default: the ease of writing sophisticated scheduling
logic is exactly the flexibility argument the paper makes, and it is
what lets this flavor edge out hardware on saturated channels.
"""

from __future__ import annotations

from typing import Optional

from repro.core.executor import Executor
from repro.core.packetizer import Packetizer
from repro.core.softenv.base import RuntimeCosts, SoftwareEnvironment
from repro.core.softenv.cpu import Cpu
from repro.core.softenv.task_scheduler import RoundRobinTaskScheduler, TaskScheduler
from repro.core.softenv.txn_scheduler import PriorityTxnScheduler, TxnScheduler
from repro.core.ufsm.base import UfsmBank
from repro.sim import Simulator

CORO_COSTS = RuntimeCosts(
    context_switch=1_500,
    scheduler_iteration=1_000,
    enqueue=500,
    dispatch=500,
    wakeup=26_000,
)


class CoroutineEnvironment(SoftwareEnvironment):
    """Easy to program, heavy runtime."""

    runtime_name = "coroutine"

    def __init__(
        self,
        sim: Simulator,
        executor: Executor,
        ufsm: UfsmBank,
        packetizer: Packetizer,
        cpu: Cpu,
        task_scheduler: Optional[TaskScheduler] = None,
        txn_scheduler: Optional[TxnScheduler] = None,
        costs: RuntimeCosts = CORO_COSTS,
        vendor=None,
    ):
        super().__init__(
            sim=sim,
            executor=executor,
            ufsm=ufsm,
            packetizer=packetizer,
            cpu=cpu,
            costs=costs,
            task_scheduler=task_scheduler or RoundRobinTaskScheduler(),
            txn_scheduler=txn_scheduler or PriorityTxnScheduler(),
            vendor=vendor,
        )

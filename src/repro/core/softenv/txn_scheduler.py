"""Transaction schedulers: which prepared transaction uses the channel.

"The Transaction Scheduler decides the order in which the transactions
sitting on the individual operations use the channel" (Section V).
The priority policy is the one that lets the Coroutine controller edge
out the hardware baseline on saturated channels (Fig. 10): it moves
data bursts ahead of command preambles and defers READ STATUS polls,
which are pure overhead while the channel is contended.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional, Sequence

from repro.core.transaction import Transaction, TxnKind


class TxnScheduler(ABC):
    """Policy choosing the next transaction to dispatch."""

    name = "txn-scheduler"

    @abstractmethod
    def select(self, pending: Sequence[Transaction]) -> Transaction:
        """Pick one transaction from a non-empty pending list."""


class FifoTxnScheduler(TxnScheduler):
    """Dispatch in enqueue order."""

    name = "fifo"

    def select(self, pending: Sequence[Transaction]) -> Transaction:
        return min(pending, key=lambda txn: (txn.enqueued_at, txn.id))


class RoundRobinTxnScheduler(TxnScheduler):
    """Rotate across LUN positions so no die starves the others."""

    name = "round-robin"

    def __init__(self) -> None:
        self._last_position = -1

    def select(self, pending: Sequence[Transaction]) -> Transaction:
        def rotation_key(txn: Transaction) -> tuple:
            distance = (txn.lun_position - self._last_position - 1) % 64
            return (distance, txn.enqueued_at, txn.id)

        choice = min(pending, key=rotation_key)
        self._last_position = choice.lun_position
        return choice


class PriorityTxnScheduler(TxnScheduler):
    """Data first, preambles next, polls last — with poll aging.

    Pure deferral starves status polls behind a deep transfer backlog,
    which stalls the very detections that refill that backlog (a
    pipeline oscillation).  A poll that has waited longer than
    ``age_threshold_ns`` is therefore promoted to the front: it costs
    well under a microsecond of channel time and its completion lets
    another LUN's transfer enter the queue while the current one is
    still streaming.
    """

    name = "priority"

    def __init__(self, age_threshold_ns: Optional[int] = None):
        # Aging is off by default: measurements (see the transaction-
        # scheduler ablation bench) show promoted polls cost more wakeup
        # round trips than the detections they accelerate are worth.
        self.age_threshold_ns = age_threshold_ns

    def select(self, pending: Sequence[Transaction]) -> Transaction:
        def key(txn: Transaction) -> tuple:
            priority = txn.priority
            if (
                self.age_threshold_ns is not None
                and txn.kind is TxnKind.POLL
                and txn.sim.now - txn.enqueued_at >= self.age_threshold_ns
            ):
                priority = -1  # aged poll: cheap, and it unblocks work
            return (priority, txn.enqueued_at, txn.id)

        return min(pending, key=key)

    @staticmethod
    def poll_pressure(pending: Sequence[Transaction]) -> float:
        """Fraction of the pending queue that is polling traffic."""
        if not pending:
            return 0.0
        polls = sum(1 for txn in pending if txn.kind is TxnKind.POLL)
        return polls / len(pending)

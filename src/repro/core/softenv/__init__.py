"""BABOL's software half: CPU model, schedulers, and runtimes.

Operations are Python generators (standing in for the paper's C++20
coroutines / FreeRTOS tasks).  The :class:`SoftwareEnvironment` resumes
them on a modeled CPU, charging runtime-specific cycle costs for context
switches, transaction enqueues, scheduler iterations, and dispatches —
the costs whose frequency-scaling Fig. 10 and Fig. 11 measure.
"""

from repro.core.softenv.cpu import Cpu, MHZ, GHZ
from repro.core.softenv.base import (
    EnvAwait,
    EnvPost,
    EnvSleep,
    EnvWaitTxn,
    EnvYield,
    OperationContext,
    RuntimeCosts,
    SoftwareEnvironment,
    Task,
    TaskState,
)
from repro.core.softenv.task_scheduler import (
    FifoTaskScheduler,
    PriorityTaskScheduler,
    RoundRobinTaskScheduler,
    TaskScheduler,
)
from repro.core.softenv.txn_scheduler import (
    FifoTxnScheduler,
    PriorityTxnScheduler,
    RoundRobinTxnScheduler,
    TxnScheduler,
)
from repro.core.softenv.coroutine_env import CORO_COSTS, CoroutineEnvironment
from repro.core.softenv.rtos_env import RTOS_COSTS, RtosEnvironment

__all__ = [
    "Cpu",
    "MHZ",
    "GHZ",
    "EnvAwait",
    "EnvPost",
    "EnvSleep",
    "EnvWaitTxn",
    "EnvYield",
    "OperationContext",
    "RuntimeCosts",
    "SoftwareEnvironment",
    "Task",
    "TaskState",
    "TaskScheduler",
    "FifoTaskScheduler",
    "PriorityTaskScheduler",
    "RoundRobinTaskScheduler",
    "TxnScheduler",
    "FifoTxnScheduler",
    "PriorityTxnScheduler",
    "RoundRobinTxnScheduler",
    "CORO_COSTS",
    "CoroutineEnvironment",
    "RTOS_COSTS",
    "RtosEnvironment",
]

"""Transactions: the waveform instruction set.

A transaction bundles one or more waveform segments that must hit the
channel back-to-back ("it is never descheduled before it completes",
Section II).  Operations build transactions out of µFSM emissions and
enqueue them; the transaction scheduler decides their order; the
executor transmits them atomically.

The class also carries the scheduling metadata (kind, priority, target
LUN) the transaction schedulers key on, and the timestamps the metrics
layer uses to attribute latency to software vs. channel time.
"""

from __future__ import annotations

import enum
import itertools
from typing import Optional

from repro.onfi.signals import WaveformSegment
from repro.sim import Simulator
from repro.sim.sync import Trigger

_txn_ids = itertools.count()


class TxnKind(enum.Enum):
    """Scheduling class of a transaction."""

    CMD_ADDR = "cmd_addr"    # command/address preambles and confirms
    DATA_OUT = "data_out"    # page transfers out of the package
    DATA_IN = "data_in"      # page transfers into the package
    POLL = "poll"            # READ STATUS polling traffic
    CONFIG = "config"        # features, resets, calibration


# Default priorities: data movement first (it is the goodput), then
# command preambles (they start new array work), polls last (they are
# retried anyway).  The priority transaction scheduler keys on these.
DEFAULT_PRIORITY = {
    TxnKind.DATA_OUT: 0,
    TxnKind.DATA_IN: 0,
    TxnKind.CMD_ADDR: 1,
    TxnKind.CONFIG: 1,
    TxnKind.POLL: 2,
}


class Transaction:
    """An atomic, queueable unit of channel work."""

    __slots__ = (
        "id", "sim", "lun_position", "kind", "priority", "segments",
        "completed", "enqueued_at", "dispatched_at", "started_at",
        "finished_at", "label",
    )

    def __init__(
        self,
        sim: Simulator,
        lun_position: int,
        kind: TxnKind = TxnKind.CMD_ADDR,
        priority: Optional[int] = None,
        label: str = "",
    ):
        self.id = next(_txn_ids)
        self.sim = sim
        self.lun_position = lun_position
        self.kind = kind
        self.priority = DEFAULT_PRIORITY[kind] if priority is None else priority
        self.segments: list[WaveformSegment] = []
        self.completed = Trigger(sim)
        self.enqueued_at: Optional[int] = None
        self.dispatched_at: Optional[int] = None
        self.started_at: Optional[int] = None
        self.finished_at: Optional[int] = None
        self.label = label

    def add_segment(self, segment: WaveformSegment) -> None:
        self.segments.append(segment)

    @property
    def duration_ns(self) -> int:
        return sum(segment.duration_ns for segment in self.segments)

    @property
    def queueing_delay_ns(self) -> Optional[int]:
        """Software-attributable delay: enqueue to channel start."""
        if self.enqueued_at is None or self.started_at is None:
            return None
        return self.started_at - self.enqueued_at

    def describe(self) -> str:
        return (
            f"txn#{self.id} lun{self.lun_position} {self.kind.value} "
            f"prio={self.priority} segs={len(self.segments)} "
            f"dur={self.duration_ns}ns {self.label}"
        )

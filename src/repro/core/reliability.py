"""The reliable-read pipeline: ECC, read-retry escalation, RAIL fallback.

Wires the pieces the paper's related work motivates into one policy:

1. plain READ, decode with the BCH engine;
2. on an uncorrectable page, sweep read-retry voltage levels
   (SET FEATURES on the vendor register, re-read, re-decode) — the
   Park et al. [48] optimization;
3. if a replica map is registered (RAIL-style intra-channel
   replication [32]), fall back to reading a replica.

The pipeline reports exactly what happened per read, so reliability
studies can measure retry rates and tail-latency impact.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Generator, Optional

import numpy as np

from repro.core.controller import BabolController
from repro.ecc import BchEngine
from repro.onfi.geometry import PhysicalAddress


class ReadOutcome(enum.Enum):
    CLEAN = "clean"            # decoded at the default voltage
    RETRIED = "retried"        # needed a read-retry sweep
    REPLICA = "replica"        # recovered from a RAIL replica
    UNCORRECTABLE = "uncorrectable"


@dataclass
class ReliableReadResult:
    """What one pipeline read did."""

    outcome: ReadOutcome
    data: Optional[np.ndarray]
    corrected_bits: int = 0
    retry_level: int = 0
    latency_ns: int = 0


@dataclass
class ReliabilityStats:
    reads: int = 0
    clean: int = 0
    retried: int = 0
    replica: int = 0
    uncorrectable: int = 0
    bits_corrected: int = 0

    def record(self, result: ReliableReadResult) -> None:
        self.reads += 1
        self.bits_corrected += result.corrected_bits
        if result.outcome is ReadOutcome.CLEAN:
            self.clean += 1
        elif result.outcome is ReadOutcome.RETRIED:
            self.retried += 1
        elif result.outcome is ReadOutcome.REPLICA:
            self.replica += 1
        else:
            self.uncorrectable += 1


class ReliableReader:
    """ECC + retry + replica policy over a BABOL controller."""

    def __init__(
        self,
        controller: BabolController,
        ecc: BchEngine,
        max_retry_levels: int = 8,
    ):
        self.controller = controller
        self.ecc = ecc
        self.max_retry_levels = max_retry_levels
        self.stats = ReliabilityStats()
        # (lun, block, page) -> list of replica (lun, block, page).
        self._replicas: dict[tuple[int, int, int], list[tuple[int, int, int]]] = {}

    # -- replica registration (the RAIL layout) -------------------------

    def register_replica(
        self, primary: tuple[int, int, int], replica: tuple[int, int, int]
    ) -> None:
        self._replicas.setdefault(primary, []).append(replica)

    # -- the pipeline ------------------------------------------------------

    def read(self, lun: int, block: int, page: int,
             dram_address: int) -> Generator:
        """Reliable read; run from a simulation process.

        ``result = yield from reader.read(...)``
        """
        sim = self.controller.sim
        start = sim.now
        address = PhysicalAddress(block=block, page=page)
        pristine = self.controller.luns[lun].array.pristine_page(address)

        # Stage 1: plain read + decode.
        task = self.controller.read_page(lun, block, page, dram_address)
        yield from self.controller.wait(task)
        received = self.controller.dram.read(dram_address, len(pristine))
        decode = self.ecc.decode(received, pristine)
        if decode.ok:
            result = ReliableReadResult(
                outcome=ReadOutcome.CLEAN, data=decode.data,
                corrected_bits=decode.corrected_bits,
                latency_ns=sim.now - start,
            )
            self.stats.record(result)
            return result

        # Stage 2: retry sweep.
        def validate(handle) -> bool:
            data = self.controller.dram.read(dram_address, len(pristine))
            return self.ecc.decode(data, pristine).ok

        task = self.controller.read_with_retry(
            lun, block, page, dram_address, validate,
            max_levels=self.max_retry_levels,
        )
        level, _handle = yield from self.controller.wait(task)
        if level is not None:
            data = self.controller.dram.read(dram_address, len(pristine))
            decode = self.ecc.decode(data, pristine)
            result = ReliableReadResult(
                outcome=ReadOutcome.RETRIED, data=decode.data,
                corrected_bits=decode.corrected_bits, retry_level=level,
                latency_ns=sim.now - start,
            )
            self.stats.record(result)
            return result

        # Stage 3: replicas, if any were registered.
        for r_lun, r_block, r_page in self._replicas.get((lun, block, page), []):
            r_addr = PhysicalAddress(block=r_block, page=r_page)
            r_pristine = self.controller.luns[r_lun].array.pristine_page(r_addr)
            task = self.controller.read_page(r_lun, r_block, r_page, dram_address)
            yield from self.controller.wait(task)
            data = self.controller.dram.read(dram_address, len(r_pristine))
            decode = self.ecc.decode(data, r_pristine)
            if decode.ok:
                result = ReliableReadResult(
                    outcome=ReadOutcome.REPLICA, data=decode.data,
                    corrected_bits=decode.corrected_bits,
                    latency_ns=sim.now - start,
                )
                self.stats.record(result)
                return result

        result = ReliableReadResult(
            outcome=ReadOutcome.UNCORRECTABLE, data=None,
            latency_ns=sim.now - start,
        )
        self.stats.record(result)
        return result

    def describe(self) -> str:
        s = self.stats
        return (
            f"ReliableReader: {s.reads} reads "
            f"(clean {s.clean}, retried {s.retried}, replica {s.replica}, "
            f"lost {s.uncorrectable}), {s.bits_corrected} bits corrected"
        )

"""Operation Execution: the hardware half of BABOL.

A small hardware pipeline (Fig. 5, right-hand module) that drains
transaction descriptors from a shallow queue and drives their waveform
segments onto the channel.  Because descriptors are *prepared in
advance* by software, the only latency this stage adds is a fixed
hardware dispatch time — that asynchrony is the paper's first design
principle.

The queue is deliberately shallow (default depth 1): keeping ordering
decisions in software until the last possible moment is what lets the
transaction scheduler reorder under contention.
"""

from __future__ import annotations

from collections import deque

from repro.bus.channel import Channel
from repro.core.transaction import Transaction
from repro.sim import Simulator, Timeout
from repro.sim.sync import Condition, Trigger


class Executor:
    """Drains prepared transactions onto the channel."""

    def __init__(
        self,
        sim: Simulator,
        channel: Channel,
        dispatch_latency_ns: int = 50,
        queue_depth: int = 1,
    ):
        if queue_depth < 1:
            raise ValueError("executor queue depth must be >= 1")
        self.sim = sim
        self.channel = channel
        self.dispatch_latency_ns = dispatch_latency_ns
        self.queue_depth = queue_depth
        self._queue: deque[Transaction] = deque()
        self._cond = Condition(sim)
        self.slot_freed = Trigger(sim)  # software listens: room to dispatch
        self.txn_done = Trigger(sim)    # software listens: completions
        self.executed = 0
        self.busy_ns = 0
        self._process = sim.spawn(self._run(), name="executor")

    # -- software-facing interface ------------------------------------

    @property
    def has_room(self) -> bool:
        return len(self._queue) < self.queue_depth

    @property
    def pending(self) -> int:
        return len(self._queue)

    def push(self, txn: Transaction) -> None:
        """Hand a prepared transaction to the hardware (must have room)."""
        if not self.has_room:
            raise RuntimeError("executor queue overflow — respect has_room")
        if not txn.segments:
            raise ValueError(f"empty transaction {txn.describe()}")
        txn.dispatched_at = self.sim.now
        self._queue.append(txn)
        self._cond.notify()

    # -- the hardware pipeline -----------------------------------------

    def _run(self):
        while True:
            yield from self._cond.wait_for(lambda: bool(self._queue))
            txn = self._queue.popleft()
            self.slot_freed.fire(self)
            # Fixed hardware dispatch: descriptor decode + channel request.
            if self.dispatch_latency_ns:
                yield Timeout(self.dispatch_latency_ns)
            yield from self.channel.acquire(owner=txn)
            txn.started_at = self.sim.now
            # The fidelity backend owns the inner loop: per-segment bus
            # events (waveform) or one event per transaction (tlm).
            yield from self.channel.backend.run_transaction(
                self.channel, txn)
            txn.finished_at = self.sim.now
            self.busy_ns += txn.finished_at - txn.started_at
            tracer = self.sim._tracer
            if tracer is not None:
                tracer.complete(
                    "txn", f"executor/{self.channel.name}",
                    txn.label or txn.kind.value,
                    txn.started_at, txn.finished_at - txn.started_at,
                    # NB: no txn.id here — that counter is process-global,
                    # and trace output must be a pure function of the run.
                    {"lun": txn.lun_position,
                     "queue_ns": txn.started_at - txn.dispatched_at},
                )
            self.channel.release()
            self.executed += 1
            txn.completed.fire(txn)
            self.txn_done.fire(txn)

    def describe(self) -> str:
        return (
            f"Executor depth={self.queue_depth} executed={self.executed} "
            f"busy={self.busy_ns}ns"
        )

"""Gang-scheduled READ (the RAIL use case, Section IV-A).

Data replicated across several LUNs of one channel is read by
broadcasting the READ preamble with a multi-chip Chip Control mask,
then polling each replica individually and transferring from whichever
becomes ready first — bounding tail latency the way RAIL [32] proposes.
The broadcast/select structure is the ``gang_read`` op program.
"""

from __future__ import annotations

from typing import Generator, Sequence

from repro.core.opir.registry import run_op
from repro.core.softenv.base import OperationContext
from repro.onfi.geometry import AddressCodec, PhysicalAddress
from repro.obs.instrument import traced_op


@traced_op
def gang_read_op(
    ctx: OperationContext,
    codec: AddressCodec,
    address: PhysicalAddress,
    positions: Sequence[int],
    dram_address: int,
) -> Generator:
    """Broadcast a READ to replicas; fetch from the first ready LUN.

    The caller guarantees the replicas hold the same data at the same
    physical address and that no other operation targets these LUNs.
    Returns ``(winner_position, handle)``.
    """
    result = yield from run_op(
        ctx, "gang_read",
        codec=codec, address=address, positions=tuple(positions),
        dram_address=dram_address,
    )
    return result

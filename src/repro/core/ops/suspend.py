"""Suspend/resume operations (program/erase suspension).

The literature optimizations the paper cites ([23], [54]): a long
erase or program is paused so a latency-critical read can cut in, then
resumed.  ``erase_with_preemptive_read_op`` is the composed form — the
demonstration that BABOL expresses a multi-phase, literature-grade
operation as straight-line software (here: a straight-line op program
whose ``CallOp`` nodes invoke suspend, read, and resume).
"""

from __future__ import annotations

from typing import Generator

from repro.core.opir.registry import run_op
from repro.core.softenv.base import OperationContext
from repro.onfi.geometry import AddressCodec, PhysicalAddress
from repro.obs.instrument import traced_op


@traced_op
def suspend_op(ctx: OperationContext) -> Generator:
    """Suspend the in-flight program/erase on the target LUN."""
    result = yield from run_op(ctx, "suspend")
    return result


@traced_op
def resume_op(ctx: OperationContext) -> Generator:
    """Resume a previously suspended program/erase."""
    result = yield from run_op(ctx, "resume")
    return result


@traced_op
def erase_with_preemptive_read_op(
    ctx: OperationContext,
    codec: AddressCodec,
    erase_block: int,
    read_address: PhysicalAddress,
    dram_address: int,
    suspend_after_ns: int,
) -> Generator:
    """Start an erase, suspend it for an urgent read, resume, complete.

    Returns ``(erase_ok, read_handle)``.
    """
    result = yield from run_op(
        ctx, "erase_with_preemptive_read",
        codec=codec, erase_block=erase_block, read_address=read_address,
        dram_address=dram_address, suspend_after_ns=suspend_after_ns,
    )
    return result

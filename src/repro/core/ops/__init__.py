"""The operation library: ONFI operations written in software.

Every operation is now an *op program* — a declarative IR value in
:mod:`repro.core.opir.programs` mirroring the paper's Fig. 8
algorithms — and the ``*_op`` generators here are thin wrappers that
resolve the program (honouring per-vendor overrides), interpret it
against the operation's context, and keep the original call signatures.
Operations still compose (READ invokes READ STATUS the way Algorithm 2
invokes Algorithm 1 — via ``CallOp`` nodes) and variations are still
small diffs (pSLC READ differs from READ by exactly the latch nodes
Fig. 8 highlights in gray), but the structure is now data: lintable,
serializable, and overridable without editing this package.
"""

from repro.core.ops.base import (
    poll_until_array_ready,
    poll_until_ready,
    single_latch_txn,
)
from repro.core.ops.status import read_status_op, read_status_enhanced_op
from repro.core.ops.read import (
    full_page_read_op,
    partial_read_op,
    read_page_op,
    read_page_timed_wait_op,
)
from repro.core.ops.program import program_page_op, partial_program_op
from repro.core.ops.erase import erase_block_op
from repro.core.ops.features import get_features_op, set_features_op
from repro.core.ops.reset import reset_op
from repro.core.ops.readid import read_id_op, read_parameter_page_op
from repro.core.ops.pslc import pslc_read_op, pslc_program_op, pslc_erase_op
from repro.core.ops.read_retry import read_with_retry_op
from repro.core.ops.cache import cache_read_sequential_op, cache_program_op
from repro.core.ops.multiplane import (
    multiplane_erase_op,
    multiplane_read_op,
    multiplane_program_op,
)
from repro.core.ops.suspend import (
    erase_with_preemptive_read_op,
    resume_op,
    suspend_op,
)
from repro.core.ops.gang import gang_read_op

__all__ = [
    "poll_until_array_ready",
    "poll_until_ready",
    "single_latch_txn",
    "read_status_op",
    "read_status_enhanced_op",
    "full_page_read_op",
    "partial_read_op",
    "read_page_op",
    "read_page_timed_wait_op",
    "program_page_op",
    "partial_program_op",
    "erase_block_op",
    "get_features_op",
    "set_features_op",
    "reset_op",
    "read_id_op",
    "read_parameter_page_op",
    "pslc_read_op",
    "pslc_program_op",
    "pslc_erase_op",
    "read_with_retry_op",
    "cache_read_sequential_op",
    "cache_program_op",
    "multiplane_erase_op",
    "multiplane_read_op",
    "multiplane_program_op",
    "erase_with_preemptive_read_op",
    "resume_op",
    "suspend_op",
    "gang_read_op",
]

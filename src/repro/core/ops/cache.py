"""Cache operations: READ CACHE SEQUENTIAL and CACHE PROGRAM.

Cache reads interleave the array's tR with channel transfers: while
page *n* streams out of the cache register, the array already fetches
page *n+1*.  The op program polls ARDY (not RDY) between pages — the
cache register is ready (RDY) long before the array is.
"""

from __future__ import annotations

from typing import Generator, Sequence

from repro.core.opir.registry import run_op
from repro.core.softenv.base import OperationContext
from repro.onfi.geometry import AddressCodec, PhysicalAddress
from repro.obs.instrument import traced_op


@traced_op
def cache_read_sequential_op(
    ctx: OperationContext,
    codec: AddressCodec,
    start: PhysicalAddress,
    dram_addresses: Sequence[int],
) -> Generator:
    """Read ``len(dram_addresses)`` sequential pages with cache pipelining.

    Returns the list of DMA handles (one per page, in order).
    """
    result = yield from run_op(
        ctx, "cache_read_sequential",
        codec=codec, start=start, dram_addresses=tuple(dram_addresses),
    )
    return result


@traced_op
def cache_program_op(
    ctx: OperationContext,
    codec: AddressCodec,
    pages: Sequence[tuple[PhysicalAddress, int]],
) -> Generator:
    """Program a sequence of pages with cache pipelining.

    ``pages`` is ``(address, dram_address)`` per page.  Every page but
    the last confirms with 0x15 (register frees while the array
    programs); the last uses the plain 0x10.  Returns True when every
    page programmed cleanly.
    """
    result = yield from run_op(
        ctx, "cache_program",
        codec=codec, pages=tuple(tuple(page) for page in pages),
    )
    return result

"""READ operations (Algorithm 2 and variants).

``read_page_op`` is the paper's READ with Column Address Change: latch
command+address, *poll* for readiness instead of waiting a fixed tR
(lines 7..9 — tR is highly variable), then trigger the transfer with a
CHANGE READ COLUMN.  ``full_page_read_op`` is the degenerate column-0
case; ``partial_read_op`` reads a sub-page chunk (the 16 KiB-page /
4 KiB-subpage use case); ``read_page_timed_wait_op`` is the timed-wait
alternative the polling ablation compares against.

Each is a thin wrapper over its op program in
:mod:`repro.core.opir.programs`; vendor profiles can swap the program
without touching these signatures.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.core.opir.registry import run_op
from repro.core.softenv.base import OperationContext
from repro.onfi.geometry import AddressCodec, PhysicalAddress
from repro.obs.instrument import traced_op


@traced_op
def read_page_op(
    ctx: OperationContext,
    codec: AddressCodec,
    address: PhysicalAddress,
    dram_address: int,
    length: Optional[int] = None,
) -> Generator:
    """READ with Column Address Change (Fig. 8, Algorithm 2).

    Returns ``(status_byte, DmaHandle)``; the handle's DRAM window holds
    the page bytes when the operation completes.
    """
    result = yield from run_op(
        ctx, "read_page",
        codec=codec, address=address, dram_address=dram_address, length=length,
    )
    return result


@traced_op
def full_page_read_op(
    ctx: OperationContext,
    codec: AddressCodec,
    address: PhysicalAddress,
    dram_address: int,
) -> Generator:
    """Column-0 full-page READ — Algorithm 2's degenerate case."""
    result = yield from run_op(
        ctx, "full_page_read",
        codec=codec, address=address, dram_address=dram_address,
    )
    return result


@traced_op
def partial_read_op(
    ctx: OperationContext,
    codec: AddressCodec,
    address: PhysicalAddress,
    dram_address: int,
    length: int,
) -> Generator:
    """Sub-page READ: transfer ``length`` bytes from ``address.column``."""
    result = yield from run_op(
        ctx, "partial_read",
        codec=codec, address=address, dram_address=dram_address, length=length,
    )
    return result


@traced_op
def read_page_timed_wait_op(
    ctx: OperationContext,
    codec: AddressCodec,
    address: PhysicalAddress,
    dram_address: int,
    wait_ns: int,
    length: Optional[int] = None,
) -> Generator:
    """READ using a fixed wait instead of status polling.

    ``wait_ns`` must cover the worst-case tR of the package; the
    polling ablation quantifies what that margin costs versus
    Algorithm 2's poll loop.
    """
    result = yield from run_op(
        ctx, "read_page_timed_wait",
        codec=codec, address=address, dram_address=dram_address,
        wait_ns=wait_ns, length=length,
    )
    return result

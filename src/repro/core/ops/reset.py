"""RESET operations."""

from __future__ import annotations

from typing import Generator

from repro.core.opir.registry import run_op
from repro.core.softenv.base import OperationContext
from repro.obs.instrument import traced_op


@traced_op
def reset_op(ctx: OperationContext, synchronous: bool = False) -> Generator:
    """RESET (0xFF) or SYNCHRONOUS RESET (0xFC); polls until ready."""
    result = yield from run_op(ctx, "reset", synchronous=synchronous)
    return result

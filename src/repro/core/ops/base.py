"""Shared building blocks for operations."""

from __future__ import annotations

from typing import Callable, Generator, Optional

from repro.core.softenv.base import OperationContext
from repro.core.transaction import Transaction, TxnKind
from repro.core.ufsm.ca_writer import Latch
from repro.onfi.status import StatusRegister


def single_latch_txn(
    ctx: OperationContext,
    latches: list[Latch],
    kind: TxnKind = TxnKind.CMD_ADDR,
    chip_mask: Optional[int] = None,
    label: str = "",
) -> Transaction:
    """One transaction wrapping a single C/A Writer emission."""
    mask = chip_mask if chip_mask is not None else ctx.chip_mask
    txn = ctx.transaction(kind, label=label)
    txn.add_segment(ctx.ufsm.ca_writer.emit(latches, chip_mask=mask, label=label))
    return txn


def _poll_status(
    ctx: OperationContext,
    predicate: Callable[[int], bool],
    chip_mask: Optional[int],
    max_polls: int,
    what: str,
    period_ns: int = 0,
) -> Generator:
    """Poll READ STATUS until ``predicate`` accepts the status byte.

    Each iteration is a full software round trip — this loop is exactly
    what the Fig. 11 logic-analyzer experiment measures the period of.
    A non-zero ``period_ns`` soft-sleeps between polls (the channel is
    free meanwhile); zero keeps the historical unpaced loop.  The two
    public polls below differ only in the predicate.

    When the environment carries a :class:`~repro.core.recovery.Watchdog`
    the loop is additionally bounded in *nanoseconds*: once the budget
    elapses on the simulated clock, :class:`OpTimeout` is raised — a
    recoverable error the environment attaches to the task instead of
    crashing the scheduler, so a hung die can be escalated (retry →
    RESET → degrade) while the rest of the package keeps serving.
    """
    from repro.core.ops.status import read_status_op
    from repro.core.recovery import OpTimeout

    watchdog = ctx.watchdog
    deadline = None if watchdog is None else ctx.sim.now + watchdog.budget_ns
    for _ in range(max_polls):
        status = yield from read_status_op(ctx, chip_mask=chip_mask)
        if predicate(status):
            return status
        if deadline is not None and ctx.sim.now >= deadline:
            raise OpTimeout(what, ctx.lun_position, watchdog.budget_ns)
        if period_ns:
            yield from ctx.sleep(period_ns)
    raise RuntimeError(f"{what} poll budget exhausted — stuck LUN?")


def poll_until_ready(
    ctx: OperationContext,
    chip_mask: Optional[int] = None,
    max_polls: int = 100_000,
    period_ns: int = 0,
) -> Generator:
    """Poll until RDY (Algorithm 2, lines 7..9); returns the status byte."""
    status = yield from _poll_status(
        ctx, StatusRegister.is_ready, chip_mask, max_polls, "status",
        period_ns=period_ns,
    )
    return status


def poll_until_array_ready(
    ctx: OperationContext,
    chip_mask: Optional[int] = None,
    max_polls: int = 100_000,
    period_ns: int = 0,
) -> Generator:
    """Poll until ARDY: cache operations' inner readiness."""
    status = yield from _poll_status(
        ctx, StatusRegister.is_array_ready, chip_mask, max_polls, "array-ready",
        period_ns=period_ns,
    )
    return status

"""Shared building blocks for operations."""

from __future__ import annotations

from typing import Callable, Generator, Optional

from repro.core.opir.nodes import UNPACED_POLL_PERIOD_NS
from repro.core.softenv.base import OperationContext
from repro.core.transaction import Transaction, TxnKind
from repro.core.ufsm.ca_writer import Latch
from repro.onfi.status import StatusRegister


def single_latch_txn(
    ctx: OperationContext,
    latches: list[Latch],
    kind: TxnKind = TxnKind.CMD_ADDR,
    chip_mask: Optional[int] = None,
    label: str = "",
) -> Transaction:
    """One transaction wrapping a single C/A Writer emission."""
    mask = chip_mask if chip_mask is not None else ctx.chip_mask
    txn = ctx.transaction(kind, label=label)
    txn.add_segment(ctx.ufsm.ca_writer.emit(latches, chip_mask=mask, label=label))
    return txn


class _TlmPollPlanner:
    """The TLM tier's poll fast-forward: skip redundant busy polls.

    A solo read spends most of its simulated life polling STATUS during
    tR — dozens of full software round trips that all observe "busy".
    Under the waveform tier those polls ARE the measured behaviour
    (Fig. 11); under TLM only their timing grid matters.  The planner
    measures the loop's steady polling period P from consecutive status
    samples, asks the die when its earliest pending completion lands,
    and replaces ``k`` redundant iterations with one soft-sleep of
    ``k*P - g`` ns, where ``g`` is the scheduler+context-switch cost an
    extra sleep-resume adds versus straight-line continuation.  The
    next real poll then samples on exactly the nanosecond the waveform
    tier's ``k``-th poll would have — 0 ns drift for unpreempted ops.

    Safety: the skip is bounded by the watchdog deadline grid (an
    ``OpTimeout`` still raises on its exact waveform nanosecond) and by
    the remaining ``max_polls`` budget; a hung die has no pending
    completion, so its polls never fast-forward and liveness behaviour
    is unchanged.  The loop always re-polls after a skip, so a stale
    estimate merely costs one extra (on-grid) iteration.
    """

    __slots__ = ("lun", "resume_cost_ns", "prev_sample", "gap_iters")

    def __init__(self, lun, resume_cost_ns: int):
        self.lun = lun
        self.resume_cost_ns = resume_cost_ns
        self.prev_sample: Optional[int] = None
        self.gap_iters = 1  # loop iterations covered by the last gap

    @classmethod
    def create(cls, ctx: OperationContext,
               chip_mask: Optional[int]) -> Optional["_TlmPollPlanner"]:
        backend = ctx.backend
        if backend is None or not getattr(backend, "poll_fast_forward", False):
            return None
        mask = chip_mask if chip_mask is not None else ctx.chip_mask
        if not isinstance(mask, int) or mask <= 0 or mask & (mask - 1):
            return None  # gang polls walk multiple dies — keep them exact
        executor = getattr(ctx.env, "executor", None)
        channel = getattr(executor, "channel", None)
        if channel is None:
            return None
        position = mask.bit_length() - 1
        if position >= len(channel.luns):
            return None
        env = ctx.env
        cpu = env.cpu
        resume = (cpu.cycles_to_ns(env.costs.scheduler_iteration)
                  + cpu.cycles_to_ns(env.costs.context_switch))
        return cls(channel.luns[position], resume)

    def plan(self, check_ns: int, deadline: Optional[int],
             polls_left: int) -> tuple[int, int]:
        """Return (iterations to skip, ns to sleep); (0, 0) = poll on."""
        sample = self.lun.last_status_sample_ns
        prev, self.prev_sample = self.prev_sample, sample
        gap_iters, self.gap_iters = self.gap_iters, 1
        if prev is None or sample is None or sample <= prev:
            return 0, 0
        period = (sample - prev) // gap_iters
        if period <= 0:
            return 0, 0
        end = self.lun.next_completion_ns()
        if end is None or end - sample <= period:
            return 0, 0  # idle, hung, or ready by the very next poll
        skip = -(-(end - sample) // period) - 1  # land on first grid >= end
        if deadline is not None:
            # Never skip past the check where the watchdog would fire.
            to_deadline = -(-(deadline - check_ns) // period)
            skip = min(skip, to_deadline - 1)
        skip = min(skip, polls_left - 1)
        sleep_ns = skip * period - self.resume_cost_ns
        if skip < 1 or sleep_ns < 1:
            return 0, 0
        self.prev_sample = sample
        self.gap_iters = skip + 1
        return skip, sleep_ns


def _poll_status(
    ctx: OperationContext,
    predicate: Callable[[int], bool],
    chip_mask: Optional[int],
    max_polls: int,
    what: str,
    period_ns: int = UNPACED_POLL_PERIOD_NS,
) -> Generator:
    """Poll READ STATUS until ``predicate`` accepts the status byte.

    Each iteration is a full software round trip — this loop is exactly
    what the Fig. 11 logic-analyzer experiment measures the period of.
    A non-zero ``period_ns`` soft-sleeps between polls (the channel is
    free meanwhile); the unpaced fallback is
    :data:`~repro.core.opir.nodes.UNPACED_POLL_PERIOD_NS`, shared with
    the IR interpreter and the OPL008 lint.  The two public polls below
    differ only in the predicate.

    When the environment carries a :class:`~repro.core.recovery.Watchdog`
    the loop is additionally bounded in *nanoseconds*: once the budget
    elapses on the simulated clock, :class:`OpTimeout` is raised — a
    recoverable error the environment attaches to the task instead of
    crashing the scheduler, so a hung die can be escalated (retry →
    RESET → degrade) while the rest of the package keeps serving.

    Under the TLM fidelity tier redundant busy polls are skipped by the
    :class:`_TlmPollPlanner` — same sampling grid, same final status,
    same timeout nanosecond, far fewer simulated round trips.
    """
    from repro.core.ops.status import read_status_op
    from repro.core.recovery import OpTimeout

    watchdog = ctx.watchdog
    deadline = None if watchdog is None else ctx.sim.now + watchdog.budget_ns
    planner = _TlmPollPlanner.create(ctx, chip_mask)
    polls = 0
    while polls < max_polls:
        status = yield from read_status_op(ctx, chip_mask=chip_mask)
        polls += 1
        if predicate(status):
            return status
        if deadline is not None and ctx.sim.now >= deadline:
            raise OpTimeout(what, ctx.lun_position, watchdog.budget_ns)
        if period_ns:
            yield from ctx.sleep(period_ns)
        if planner is not None:
            skip, sleep_ns = planner.plan(
                ctx.sim.now, deadline, max_polls - polls)
            if skip:
                polls += skip
                yield from ctx.sleep(sleep_ns)
    raise RuntimeError(f"{what} poll budget exhausted — stuck LUN?")


def poll_until_ready(
    ctx: OperationContext,
    chip_mask: Optional[int] = None,
    max_polls: int = 100_000,
    period_ns: int = UNPACED_POLL_PERIOD_NS,
) -> Generator:
    """Poll until RDY (Algorithm 2, lines 7..9); returns the status byte."""
    status = yield from _poll_status(
        ctx, StatusRegister.is_ready, chip_mask, max_polls, "status",
        period_ns=period_ns,
    )
    return status


def poll_until_array_ready(
    ctx: OperationContext,
    chip_mask: Optional[int] = None,
    max_polls: int = 100_000,
    period_ns: int = UNPACED_POLL_PERIOD_NS,
) -> Generator:
    """Poll until ARDY: cache operations' inner readiness."""
    status = yield from _poll_status(
        ctx, StatusRegister.is_array_ready, chip_mask, max_polls, "array-ready",
        period_ns=period_ns,
    )
    return status

"""SET FEATURES / GET FEATURES operations.

SET FEATURES is the operation the paper uses to motivate the Timer
µFSM: the feature data must follow the address phase by tADL, and the
package is busy for tFEAT afterwards.  Both waits appear explicitly in
the op program — the tADL one inside the Data Writer emission (its
``after_address`` contract) and the tFEAT one as a Timer segment, since
tFEAT is fixed and short enough that polling it would be wasteful.
"""

from __future__ import annotations

from typing import Generator

from repro.core.opir.registry import run_op
from repro.core.softenv.base import OperationContext
from repro.obs.instrument import traced_op


@traced_op
def set_features_op(
    ctx: OperationContext,
    feature_address: int,
    params: tuple[int, int, int, int],
    feat_busy_ns: int = 1_000,
) -> Generator:
    """Write a 4-byte feature record (0xEF)."""
    result = yield from run_op(
        ctx, "set_features",
        feature_address=feature_address, params=tuple(params),
        feat_busy_ns=feat_busy_ns,
    )
    return result


@traced_op
def get_features_op(
    ctx: OperationContext,
    feature_address: int,
    feat_busy_ns: int = 1_000,
) -> Generator:
    """Read a 4-byte feature record (0xEE); returns the tuple."""
    result = yield from run_op(
        ctx, "get_features",
        feature_address=feature_address, feat_busy_ns=feat_busy_ns,
    )
    return result

"""Pseudo-SLC operations (Fig. 8, Algorithm 3).

The pSLC READ is Algorithm 2 with a vendor mode-entry latch prepended
to the preamble and a mode-exit appended after the transfer — exactly
the gray-highlighted diff of Fig. 8.  In hardware each variant would be
a separate validated FSM; here it is a one-node diff between two op
programs, which is the paper's programmability argument in miniature.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.core.opir.registry import run_op
from repro.core.softenv.base import OperationContext
from repro.onfi.geometry import AddressCodec, PhysicalAddress
from repro.obs.instrument import traced_op


@traced_op
def pslc_read_op(
    ctx: OperationContext,
    codec: AddressCodec,
    address: PhysicalAddress,
    dram_address: int,
    length: Optional[int] = None,
) -> Generator:
    """pSLC PAGE READ: faster and far more reliable than native mode."""
    result = yield from run_op(
        ctx, "pslc_read",
        codec=codec, address=address, dram_address=dram_address, length=length,
    )
    return result


@traced_op
def pslc_program_op(
    ctx: OperationContext,
    codec: AddressCodec,
    address: PhysicalAddress,
    dram_address: int,
    length: Optional[int] = None,
) -> Generator:
    """pSLC PROGRAM: the page is committed one-bit-per-cell."""
    result = yield from run_op(
        ctx, "pslc_program",
        codec=codec, address=address, dram_address=dram_address, length=length,
    )
    return result


@traced_op
def pslc_erase_op(
    ctx: OperationContext,
    codec: AddressCodec,
    block: int,
) -> Generator:
    """pSLC ERASE: re-dedicates the block to pSLC duty."""
    result = yield from run_op(ctx, "pslc_erase", codec=codec, block=block)
    return result

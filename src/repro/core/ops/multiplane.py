"""Multi-plane operations: one array time covers several planes.

ONFI multi-plane sequencing: each plane but the last is queued with its
queue-cycle confirm (0x32 / 0x11 / 0xD1, short tDBSY busy), the last
uses the normal confirm, and the array performs all queued planes
together.  Reads then select each plane's register with CHANGE READ
COLUMN ENHANCED (0x06 + full address + 0xE0) before transferring.
The unrolling lives in :mod:`repro.core.opir.programs`.
"""

from __future__ import annotations

from typing import Generator, Sequence

from repro.core.opir.registry import run_op
from repro.core.softenv.base import OperationContext
from repro.onfi.geometry import AddressCodec, PhysicalAddress
from repro.obs.instrument import traced_op


@traced_op
def multiplane_read_op(
    ctx: OperationContext,
    codec: AddressCodec,
    addresses: Sequence[PhysicalAddress],
    dram_addresses: Sequence[int],
) -> Generator:
    """Read one page per plane in a single array time.

    Returns the DMA handles in the order of ``addresses``.
    """
    result = yield from run_op(
        ctx, "multiplane_read",
        codec=codec, addresses=tuple(addresses),
        dram_addresses=tuple(dram_addresses),
    )
    return result


@traced_op
def multiplane_program_op(
    ctx: OperationContext,
    codec: AddressCodec,
    pages: Sequence[tuple[PhysicalAddress, int]],
) -> Generator:
    """Program one page per plane in a single tPROG."""
    result = yield from run_op(
        ctx, "multiplane_program",
        codec=codec, pages=tuple(tuple(page) for page in pages),
    )
    return result


@traced_op
def multiplane_erase_op(
    ctx: OperationContext,
    codec: AddressCodec,
    blocks: Sequence[int],
) -> Generator:
    """Erase one block per plane in a single tBERS."""
    result = yield from run_op(
        ctx, "multiplane_erase", codec=codec, blocks=tuple(blocks)
    )
    return result

"""ERASE operation: 0x60 + row address + 0xD0, then poll."""

from __future__ import annotations

from typing import Generator

from repro.core.opir.registry import run_op
from repro.core.softenv.base import OperationContext
from repro.onfi.geometry import AddressCodec
from repro.obs.instrument import traced_op


@traced_op
def erase_block_op(
    ctx: OperationContext,
    codec: AddressCodec,
    block: int,
) -> Generator:
    """Erase one block; returns True on success (False = worn out)."""
    result = yield from run_op(ctx, "erase_block", codec=codec, block=block)
    return result

"""PROGRAM operations.

``program_page_op`` is the standard three-phase PROGRAM: latch 0x80 and
the address, stream the page into the register, confirm with 0x10, and
poll for completion.  ``partial_program_op`` uses CHANGE WRITE COLUMN
to fill disjoint chunks before confirming (sub-page host writes).  Both
are thin wrappers over their op programs.
"""

from __future__ import annotations

from typing import Generator, Sequence

from repro.core.opir.registry import run_op
from repro.core.softenv.base import OperationContext
from repro.onfi.geometry import AddressCodec, PhysicalAddress
from repro.obs.instrument import traced_op


@traced_op
def program_page_op(
    ctx: OperationContext,
    codec: AddressCodec,
    address: PhysicalAddress,
    dram_address: int,
    length: int | None = None,
) -> Generator:
    """Program one page from DRAM; returns True on success."""
    result = yield from run_op(
        ctx, "program_page",
        codec=codec, address=address, dram_address=dram_address, length=length,
    )
    return result


@traced_op
def partial_program_op(
    ctx: OperationContext,
    codec: AddressCodec,
    address: PhysicalAddress,
    chunks: Sequence[tuple[int, int, int]],
) -> Generator:
    """Program disjoint chunks ``(column, dram_address, nbytes)``.

    Each chunk after the first is positioned with CHANGE WRITE COLUMN
    (0x85) before its burst; a single confirm commits the register.
    """
    result = yield from run_op(
        ctx, "partial_program",
        codec=codec, address=address,
        chunks=tuple(tuple(chunk) for chunk in chunks),
    )
    return result

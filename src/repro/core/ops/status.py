"""READ STATUS (Algorithm 1).

The paper's listing, line for line — now as the ``read_status`` op
program (:mod:`repro.core.opir.programs`): latch 0x70, read one byte
back.  Chip activation/deactivation is the Chip Control µFSM's doing —
it shows up as the chip mask stamped on each segment.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.core.ops.base import single_latch_txn  # noqa: F401  (re-export site)
from repro.core.opir.registry import run_op
from repro.core.softenv.base import OperationContext
from repro.obs.instrument import traced_op


@traced_op
def read_status_op(
    ctx: OperationContext,
    chip_mask: Optional[int] = None,
) -> Generator:
    """One status poll; returns the status byte."""
    result = yield from run_op(ctx, "read_status", chip_mask=chip_mask)
    return result


@traced_op
def read_status_enhanced_op(
    ctx: OperationContext,
    row_address_bytes: tuple[int, ...],
    chip_mask: Optional[int] = None,
) -> Generator:
    """READ STATUS ENHANCED (0x78): per-LUN status on multi-die packages."""
    result = yield from run_op(
        ctx, "read_status_enhanced",
        row_address_bytes=tuple(row_address_bytes), chip_mask=chip_mask,
    )
    return result

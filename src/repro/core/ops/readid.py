"""Identification operations: READ ID and READ PARAMETER PAGE."""

from __future__ import annotations

from typing import Generator

from repro.core.opir.registry import run_op
from repro.core.softenv.base import OperationContext
from repro.obs.instrument import traced_op


@traced_op
def read_id_op(
    ctx: OperationContext,
    area: int = 0x00,
    nbytes: int = 5,
) -> Generator:
    """READ ID (0x90); area 0x00 = JEDEC bytes, 0x20 = ONFI signature."""
    result = yield from run_op(ctx, "read_id", area=area, nbytes=nbytes)
    return result


@traced_op
def read_parameter_page_op(
    ctx: OperationContext,
    param_busy_ns: int,
    nbytes: int = 256,
) -> Generator:
    """READ PARAMETER PAGE (0xEC); returns the raw page bytes.

    ``param_busy_ns`` is the package's parameter-page fetch time — a
    category-3 wait the operation owns, expressed with the Timer µFSM.
    """
    result = yield from run_op(
        ctx, "read_parameter_page", param_busy_ns=param_busy_ns, nbytes=nbytes
    )
    return result

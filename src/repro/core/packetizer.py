"""The Packetizer: the specialized DMA unit paired with the data µFSMs.

"The Data Writer works closely with the Packetizer, a specialized DMA
unit that can read data from the DRAM area of the SSD and deliver it in
packets of the same width as a package's DQ bus" (Section IV-A).  The
Data Writer takes the byte count; the Packetizer takes the DRAM address
— this class implements that contract by minting :class:`DmaHandle`
descriptors and keeping the transfer accounting.
"""

from __future__ import annotations

from typing import Optional

from repro.dram import DmaHandle, DramBuffer, InlineDmaHandle


class Packetizer:
    """Mints DMA descriptors binding data bursts to DRAM windows."""

    def __init__(self, dram: Optional[DramBuffer] = None):
        self.dram = dram
        self.handles_minted = 0
        self.bytes_to_flash = 0
        self.bytes_from_flash = 0

    def to_flash(self, dram_address: int, nbytes: int) -> DmaHandle:
        """Descriptor sourcing a Data Writer burst from DRAM."""
        self._check(dram_address, nbytes)
        self.handles_minted += 1
        self.bytes_to_flash += nbytes
        return DmaHandle(self.dram, dram_address, nbytes)

    def from_flash(self, dram_address: int, nbytes: int) -> DmaHandle:
        """Descriptor sinking a Data Reader burst into DRAM."""
        self._check(dram_address, nbytes)
        self.handles_minted += 1
        self.bytes_from_flash += nbytes
        return DmaHandle(self.dram, dram_address, nbytes)

    def capture(self, nbytes: int) -> DmaHandle:
        """Descriptor for small control reads (status, IDs, features).

        These land in controller-internal registers, not DRAM, so the
        handle carries no DRAM binding — the caller inspects
        ``handle.delivered``.
        """
        self.handles_minted += 1
        return DmaHandle(None, 0, nbytes)

    def inline(self, data) -> InlineDmaHandle:
        """Descriptor carrying immediate bytes (feature parameters)."""
        self.handles_minted += 1
        return InlineDmaHandle(data)

    def _check(self, address: int, nbytes: int) -> None:
        if nbytes <= 0:
            raise ValueError("transfer size must be positive")
        if self.dram is not None and address + nbytes > self.dram.size:
            raise ValueError(
                f"DMA window [{address}, {address + nbytes}) beyond DRAM"
            )

"""Controller-side error recovery: watchdog, escalation, degradation.

The operation layer already *detects* failure — every program/erase
program polls READ STATUS and returns ``not FAIL`` — but until now
nothing above it had a policy for what to do when an op reports FAIL,
or when a die simply never deasserts R/B#.  This module supplies that
policy:

* :class:`Watchdog` — a poll budget in **nanoseconds** (not iterations)
  that :func:`repro.core.ops.base._poll_status` checks against the
  simulated clock.  When the budget is exhausted the op raises
  :class:`OpTimeout` instead of spinning to the iteration cap.
* :class:`RecoverableOpError` — the exception family the software
  environment converts into ``task.error`` (the task completes with a
  ``None`` result and the error attached) instead of letting it
  propagate and kill the scheduler loop.  Every other LUN keeps being
  served.
* :class:`RecoveryManager` — the escalation state machine a host-side
  process drives ops through::

      op times out
        └─ bounded retry-with-backoff: re-poll status; a *slow* die
           (stretched busy) finishes here and the op is re-issued
        └─ targeted RESET (legal while the array is busy; cancels the
           hung operation, which never committed) then re-issue
        └─ mark the die degraded/offline; subsequent ops fail fast
           with :class:`DieDegraded` while the rest of the package
           keeps serving (graceful degradation)

  Program/erase ops that complete but report the ONFI FAIL bit are
  surfaced as :class:`OpFailed` so the FTL's bad-block machinery can
  take over (rewrite + retirement).

Everything here is opt-in: with no watchdog installed the poll loop is
byte-for-byte the historical one, and a controller without a
``RecoveryManager`` behaves exactly as before.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional

from repro.onfi.status import StatusRegister
from repro.sim import Timeout


class RecoverableOpError(RuntimeError):
    """Base for op-level failures the environment must survive.

    Raised inside an operation generator; the software environment
    catches it, attaches it to the task as ``task.error``, and finishes
    the task with a ``None`` result so waiters unblock.
    """

    def __init__(self, message: str, lun: int = -1):
        super().__init__(message)
        self.lun = lun


class OpFailed(RecoverableOpError):
    """A program/erase completed with the ONFI FAIL bit set."""

    def __init__(self, kind: str, lun: int, detail: str = ""):
        super().__init__(
            f"{kind} on LUN {lun} reported FAIL{': ' + detail if detail else ''}",
            lun=lun,
        )
        self.kind = kind


class OpTimeout(RecoverableOpError):
    """A busy-wait exhausted its watchdog budget (stuck LUN)."""

    def __init__(self, what: str, lun: int, budget_ns: int):
        super().__init__(
            f"{what} watchdog expired after {budget_ns} ns on LUN {lun}",
            lun=lun,
        )
        self.what = what
        self.budget_ns = budget_ns


class DieDegraded(RuntimeError):
    """The die was taken offline after escalation failed."""

    def __init__(self, lun: int, reason: str = "escalation exhausted"):
        super().__init__(f"LUN {lun} degraded: {reason}")
        self.lun = lun


@dataclass(frozen=True)
class Watchdog:
    """Nanosecond poll budget for the status-poll loops."""

    budget_ns: int

    def __post_init__(self) -> None:
        if self.budget_ns <= 0:
            raise ValueError("watchdog budget must be positive")

    @classmethod
    def for_vendor(cls, vendor, multiplier: float = 4.0) -> "Watchdog":
        """Budget sized off the vendor's slowest array time (tBERS is
        the worst case; jitter and suspend/resume stay inside a small
        multiple of it)."""
        timing = vendor.timing
        worst = max(
            timing.t_read_ns,
            timing.t_prog_ns,
            timing.t_bers_ns,
            timing.t_reset_ns,
            timing.t_param_read_ns,
        )
        return cls(budget_ns=int(worst * multiplier))


@dataclass(frozen=True)
class RecoveryPolicy:
    """Escalation knobs for :class:`RecoveryManager`."""

    max_status_retries: int = 2   # stage-1 re-polls before RESET
    backoff_ns: int = 100_000     # first retry delay; doubles per retry
    raise_on_fail: bool = True    # surface OpFailed on ONFI FAIL


@dataclass
class RecoveryStats:
    """Counters in the :class:`ReliabilityStats` style, exported to the
    obs metrics layer so chaos runs are visible in dumps/traces."""

    timeouts: int = 0             # ops whose watchdog expired
    op_failures: int = 0          # program/erase reporting FAIL
    status_retries: int = 0       # stage-1 backoff re-polls issued
    resets: int = 0               # stage-2 targeted RESETs issued
    recovered_by_retry: int = 0   # slow die: op finished late, re-issue OK
    recovered_by_reset: int = 0   # RESET cleared the hang, re-issue OK
    degraded: int = 0             # dies taken offline
    rejected_on_degraded: int = 0  # ops refused against an offline die

    def as_dict(self) -> dict:
        return {
            "timeouts": self.timeouts,
            "op_failures": self.op_failures,
            "status_retries": self.status_retries,
            "resets": self.resets,
            "recovered_by_retry": self.recovered_by_retry,
            "recovered_by_reset": self.recovered_by_reset,
            "degraded": self.degraded,
            "rejected_on_degraded": self.rejected_on_degraded,
        }


class RecoveryManager:
    """Drives controller ops through the retry → RESET → degrade
    escalation.  Use from a simulation process::

        recovery = RecoveryManager(controller)
        result = yield from recovery.program_page(lun, block, page, addr)
    """

    def __init__(
        self,
        controller,
        policy: Optional[RecoveryPolicy] = None,
        watchdog: Optional[Watchdog] = None,
    ):
        self.controller = controller
        self.policy = policy or RecoveryPolicy()
        self.stats = RecoveryStats()
        self.degraded_luns: set[int] = set()
        if watchdog is not None:
            controller.env.watchdog = watchdog
        if controller.env.watchdog is None:
            raise ValueError(
                "RecoveryManager needs a watchdog (pass one here or set "
                "ControllerConfig.watchdog) — without a poll budget a hung "
                "die can never time out"
            )

    # -- guarded op surface (mirrors the controller convenience API) ----

    def read_page(self, lun: int, block: int, page: int,
                  dram_address: int) -> Generator:
        result = yield from self._guarded(
            "read", lun,
            lambda: self.controller.read_page(lun, block, page, dram_address),
        )
        return result

    def program_page(self, lun: int, block: int, page: int,
                     dram_address: int) -> Generator:
        result = yield from self._guarded(
            "program", lun,
            lambda: self.controller.program_page(lun, block, page, dram_address),
        )
        return result

    def erase_block(self, lun: int, block: int) -> Generator:
        result = yield from self._guarded(
            "erase", lun,
            lambda: self.controller.erase_block(lun, block),
        )
        return result

    # -- the state machine ----------------------------------------------

    def _guarded(self, kind: str, lun: int, submit) -> Generator:
        if lun in self.degraded_luns:
            self.stats.rejected_on_degraded += 1
            raise DieDegraded(lun, reason="die is offline")
        task = submit()
        result = yield from self.controller.wait(task)
        if task.error is None:
            return self._check(kind, lun, result)
        result = yield from self._escalate(kind, lun, submit)
        return result

    def _check(self, kind: str, lun: int, result):
        if kind in ("program", "erase") and not result:
            self.stats.op_failures += 1
            if self.policy.raise_on_fail:
                raise OpFailed(kind, lun)
        return result

    def _escalate(self, kind: str, lun: int, submit) -> Generator:
        self.stats.timeouts += 1
        # Stage 1: bounded retry-with-backoff.  The die may merely be
        # slow (a stretched busy): re-poll status and, once it reports
        # ready, re-issue the operation against the now-idle array.
        for attempt in range(self.policy.max_status_retries):
            yield Timeout(self.policy.backoff_ns << attempt)
            self.stats.status_retries += 1
            status = yield from self._read_status(lun)
            if status is not None and StatusRegister.is_ready(status):
                if kind in ("program", "erase"):
                    # The slow die finished the op while we waited: the
                    # array committed (or FAILed) — re-issuing would
                    # double-program.  The status byte is the verdict.
                    self.stats.recovered_by_retry += 1
                    return self._check(
                        kind, lun, not StatusRegister.is_failed(status))
                # Reads are idempotent: re-issue against the idle array.
                task = submit()
                result = yield from self.controller.wait(task)
                if task.error is None:
                    self.stats.recovered_by_retry += 1
                    return self._check(kind, lun, result)
                break
        # Stage 2: targeted RESET.  Legal while the array is busy; it
        # cancels the hung operation (which never committed to the
        # array) and returns the die to idle after tRST.
        self.stats.resets += 1
        reset_task = self.controller.reset(lun)
        yield from self.controller.wait(reset_task)
        if reset_task.error is None:
            task = submit()
            result = yield from self.controller.wait(task)
            if task.error is None:
                self.stats.recovered_by_reset += 1
                return self._check(kind, lun, result)
        # Stage 3: the RESET itself hung (or the re-issue did): the die
        # is gone.  Take it offline; the rest of the package keeps
        # serving.
        self.degraded_luns.add(lun)
        self.stats.degraded += 1
        raise DieDegraded(lun)

    def _read_status(self, lun: int) -> Generator:
        from repro.core.ops import read_status_op

        task = self.controller.submit(read_status_op, lun)
        status = yield from self.controller.wait(task)
        if task.error is not None:
            return None
        return status

"""The TLM compiled-plan runner: data-plane ops as single kernel events.

The generic execution path is faithful to the paper's software stack:
every transaction crosses the modeled runtime (admission, scheduler
iterations, context switches, completion wakeups) and every status
poll is a full round trip.  That faithfulness is the point of the
waveform tier — and of the TLM tier's *exact* mode, which the
equivalence harness holds to 0 ns drift.  But a scale-out throughput
workload pays that per-op machinery millions of times without reading
anything from it.

This module is the TLM tier's second gear.  For operations submitted
through the FTL-facing convenience wrappers (``controller.read_page``
and friends), the op-IR program is checked by the compile pass
(:func:`repro.core.opir.summarize.plan_check`) and executed as a
*compiled plan* instead of being interpreted.  Two strategies, chosen
per program:

* **Template execution** (the fast path).  Straight-line programs —
  transactions, handle declarations, polls, sleeps, a return — are
  compiled once per cached program object into a :class:`_Template`:
  segment durations, per-action offsets, latched opcodes and address
  bytes, batched channel-stats deltas, and the closed-form software
  cost.  Executing a template is a handful of kernel events: one
  channel-mutex hold plus one ``Timeout`` per transaction, with the
  die driven by *direct calls into the same LUN action handlers* the
  waveform tier uses (``_on_command`` / ``_on_address`` / data
  movement) at their exact logical nanoseconds.  Same handlers, same
  order, same RNG draws — die state, payload bytes, status bits,
  fault-hook invocations, and array aging are identical to the
  waveform tier; only the bus-segment *objects* and the runtime's
  per-event machinery are gone.  Each poll site becomes a ready-wait:
  sleep to the die's next pending completion, then one real STATUS
  command and sample.

* **Interpreted plan execution** (the fallback gear).  Programs with
  closed but non-trivial control flow (branches, loops, callees), and
  any op running while a bus-level observer is attached (tracer,
  channel fault hook, bus sanitizer, unreliable PHY trim), replay the
  IR node by node with real segments delivered inline through the
  backend — full observability, still far cheaper than the generic
  runtime.

Per-op software latency is therefore *modeled*, not replayed; per-LUN
ordering, channel arbitration, die busy windows, data, and status are
unchanged.  Operations that need exact latency (the equivalence
harness, the logic-analyzer experiments) go through ``submit()``,
which never takes this path.

The runner refuses work it cannot replay faithfully: programs with
data-dependent exits, gang polls, or hook predicates fall back to the
generic path, as does the whole fast path when a watchdog or runtime
sanitizers are attached (those observe the generic runtime's events).
"""

from __future__ import annotations

from collections import deque
from typing import Generator, Optional

from repro.core.opir.compile import compile_segment
from repro.core.opir.interp import _mint_handle
from repro.core.opir.nodes import (
    Branch,
    CallOp,
    DataXfer,
    DeclareHandle,
    EvalState,
    LatchSeq,
    Loop,
    OpProgram,
    PollStatus,
    Reg,
    Return,
    SetReg,
    SoftSleep,
    Txn,
    eval_expr,
)
from repro.core.opir.registry import _cached_program, _resolved_builder
from repro.core.opir.summarize import _static_kwargs, plan_check
from repro.core.recovery import RecoverableOpError
from repro.core.softenv.base import Task, TaskState
from repro.core.ufsm.ca_writer import cmd
from repro.flash.lun import _DataSource
from repro.onfi.commands import CMD
from repro.onfi.signals import (
    AddressLatch,
    CommandLatch,
    DataInAction,
    DataOutAction,
)
from repro.onfi.status import StatusRegister
from repro.sim import Timeout


class _PlanReturn(Exception):
    def __init__(self, value):
        super().__init__()
        self.value = value


class _PlanContext:
    """The slice of :class:`OperationContext` the op-IR compiler needs:
    the µFSM bank, the op's chip mask, and the Packetizer."""

    __slots__ = ("ufsm", "chip_mask", "packetizer", "lun", "label")

    def __init__(self, ufsm, chip_mask: int, packetizer, lun, label: str):
        self.ufsm = ufsm
        self.chip_mask = chip_mask
        self.packetizer = packetizer
        self.lun = lun
        self.label = label


class _OutShim:
    """Stand-in for a :class:`DataOutAction` on the template path — the
    LUN handler only reads ``nbytes`` and ``dma_handle``, so one
    mutable shim per executor replaces an allocation per burst.  Safe
    because set and use happen in the same scheduler turn."""

    __slots__ = ("nbytes", "dma_handle")


class _InShim:
    """Stand-in for a :class:`DataInAction` (adds ``column``)."""

    __slots__ = ("nbytes", "column", "dma_handle")


# Template phase tags (first element of each phase tuple).
_PH_TXN = 0
_PH_HANDLE = 1
_PH_POLL = 2
_PH_SLEEP = 3

# Template op tags (first element of each die-op tuple).
_OP_CMD = 0
_OP_ADDR = 1
_OP_DATA_OUT = 2
_OP_DATA_IN = 3

_NO_RESULT = object()


class _Template:
    """A straight-line op program compiled to an execution recipe.

    Templates are shared across every program with the same structural
    *fingerprint* (:meth:`PlanExecutor._fingerprint`): latch counts and
    opcodes, burst sizes, timer parameters, poll shapes — everything
    segment durations and action offsets depend on.  Values that vary
    per instance (address bytes, DRAM targets, inline payloads) are
    *not* baked; die ops and handle phases record node paths into the
    instance program and the runner reads them per run.  One compile
    therefore serves a whole workload's worth of addresses.

    Phases are tuples tagged by ``_PH_*``; transaction phases carry
    per-segment die-op lists tagged by ``_OP_*`` with offsets relative
    to the transaction start, plus the batched channel-stats delta
    ``(segments, busy_ns, bytes_in, bytes_out, per-kind counts)``.
    DMA handles are minted per run, so concurrent runs never alias a
    descriptor.
    """

    __slots__ = ("sw_ns", "phases", "result_expr", "has_data")

    def __init__(self, sw_ns, phases, result_expr, has_data):
        self.sw_ns = sw_ns
        self.phases = phases
        self.result_expr = result_expr
        self.has_data = has_data


def _parked() -> Generator:
    """Placeholder generator for plan-run tasks: the runner completes
    the task itself; the environment never steps it."""
    return
    yield  # pragma: no cover


class PlanExecutor:
    """Executes plannable op-IR programs without the generic runtime.

    One FIFO per LUN preserves the environment's admission semantics
    (``max_tasks_per_lun=1``): operations against the same die run in
    submission order, one at a time; operations against different dies
    contend only for the channel mutex, exactly like the generic path.
    """

    def __init__(self, controller):
        self.controller = controller
        self.sim = controller.sim
        self.env = controller.env
        self.channel = controller.channel
        self.backend = controller.backend
        self.ufsm = controller.ufsm
        self.packetizer = controller.packetizer
        cpu = controller.cpu
        costs = controller.env.costs
        # The closed-form software cost constants (see module docstring).
        self.pre_txn_ns = cpu.cycles_to_ns(costs.serialized_txn_cycles())
        self.wakeup_ns = cpu.cycles_to_ns(costs.wakeup)
        self.repoll_ns = max(controller.config.vendor.timing.t_poll_min_ns, 1)
        self._queues: dict[int, deque] = {}
        self._running: set[int] = set()
        # Per-shape dispatch cache, keyed by (op name, kwarg names): a
        # builder's control-flow *shape* is a function of which kwargs
        # it receives, never of their values (addresses and DMA targets
        # only parameterize latch bytes), so one walk per shape decides
        # every submission of that shape.  Values: False (unplannable)
        # or (builder name to use, inline-per-call flag) — the name is
        # the wrapper's callee when the wrapper collapses to it with
        # identical kwargs, saving a program build per submission.
        self._shapes: dict[tuple, object] = {}
        # Two-level template cache.  id(program) -> (program, template)
        # answers repeat submissions of a cached program in one dict
        # hit (the reference pins the id); fingerprint -> template
        # shares one compiled recipe across all programs that differ
        # only in instance values.  Both bounded like the registry.
        self._templates: dict[int, tuple] = {}
        self._tpl_shapes: dict[tuple, object] = {}
        self._poll_txns: dict[int, tuple] = {}
        self._out_shim = _OutShim()
        self._in_shim = _InShim()
        self.ops_planned = 0
        self.ops_templated = 0
        self.ops_declined = 0

    # -- submission ----------------------------------------------------

    def try_submit(self, op_name: str, lun_position: int, priority: int,
                   label: str, kwargs: dict) -> Optional[Task]:
        """Plan and enqueue one operation; None = take the generic path."""
        for value in kwargs.values():
            if callable(value):
                self.ops_declined += 1
                return None  # hooks need the interpreter
        shape = (op_name, frozenset(kwargs))
        info = self._shapes.get(shape)
        vendor = self.controller.config.vendor
        if info is None:
            info = self._classify_shape(op_name, vendor, kwargs)
            self._shapes[shape] = info
        if info is False:
            self.ops_declined += 1
            return None
        build_name, per_call_inline = info
        try:
            program = _cached_program(_resolved_builder(build_name, vendor),
                                      kwargs)
        except Exception:
            self.ops_declined += 1
            return None  # bad args: let the generic path report
        if per_call_inline:
            program = self._inline_wrapper(program, vendor)
        template = self._template_for(program, lun_position, label)
        self.ops_planned += 1
        task = Task(self.sim, _parked(), lun_position, priority=priority,
                    label=label or op_name)
        self.env.tasks_submitted += 1
        queue = self._queues.setdefault(lun_position, deque())
        queue.append((task, program, template))
        if lun_position not in self._running:
            self._running.add(lun_position)
            self.sim.spawn(self._runner(lun_position),
                           name=f"tlm-plan-lun{lun_position}")
        return task

    def _classify_shape(self, op_name: str, vendor, kwargs: dict):
        """One-time dispatch decision for a (op, kwarg-names) shape."""
        try:
            builder = _resolved_builder(op_name, vendor)
            program = _cached_program(builder, kwargs)
        except Exception:
            return False
        if not plan_check(program, vendor):
            return False
        callee = self._wrapper_callee(program)
        if callee is not None:
            callee_name, callee_kwargs = callee
            try:
                same = callee_kwargs == kwargs
            except Exception:
                same = False
            if same:
                return (callee_name, False)  # build the callee directly
            return (op_name, True)  # collapse per call
        return (op_name, False)

    @staticmethod
    def _wrapper_callee(program: OpProgram):
        """(callee name, static kwargs) when ``program`` is a pure
        one-CallOp wrapper (``full_page_read`` → ``read_page``)."""
        nodes = program.nodes
        if (len(nodes) == 2 and isinstance(nodes[0], CallOp)
                and isinstance(nodes[1], Return)
                and isinstance(nodes[1].expr, Reg)
                and nodes[1].expr.name == nodes[0].dest):
            kwargs = _static_kwargs(nodes[0])
            if kwargs is not None:
                return nodes[0].op, kwargs
        return None

    def _inline_wrapper(self, program: OpProgram, vendor) -> OpProgram:
        """Collapse a one-CallOp wrapper to its callee program."""
        callee = self._wrapper_callee(program)
        if callee is not None:
            try:
                return _cached_program(
                    _resolved_builder(callee[0], vendor), callee[1])
            except Exception:
                pass
        return program

    # -- template compilation ------------------------------------------

    def _template_for(self, program: OpProgram, lun_position: int,
                      label: str) -> Optional[_Template]:
        entry = self._templates.get(id(program))
        if entry is not None and entry[0] is program:
            return entry[1]
        try:
            fingerprint = self._fingerprint(program)
            template = self._tpl_shapes.get(fingerprint) \
                if fingerprint is not None else False
            if template is None:  # new shape: compile once
                ctx = _PlanContext(self.ufsm, 1 << lun_position,
                                   self.packetizer,
                                   self.channel.luns[lun_position], label)
                template = self._compile_template(ctx, program)
                if len(self._tpl_shapes) >= 512:
                    self._tpl_shapes.clear()
                self._tpl_shapes[fingerprint] = template \
                    if template is not None else False
        except Exception:
            template = False
        if template is False:
            template = None
        if len(self._templates) >= 2048:
            self._templates.clear()
        self._templates[id(program)] = (program, template)
        return template

    @staticmethod
    def _fingerprint(program: OpProgram) -> Optional[tuple]:
        """The structural identity a template depends on: everything
        that determines segment durations, action offsets, and stats —
        latch counts and command opcodes, address byte counts, burst
        sizes, timer parameters, poll and return shapes.  Instance
        values (address bytes, DRAM targets, inline payloads) are
        deliberately excluded; the runner reads them per run.  None
        means the program cannot be templated.
        """
        parts = []
        for node in program.nodes:
            if isinstance(node, Txn):
                seg_parts = []
                for seg in node.segments:
                    if getattr(seg, "chip_mask", None) is not None \
                            or getattr(seg, "via_chip_control", False):
                        return None  # gang segments keep real masks
                    if isinstance(seg, LatchSeq):
                        seg_parts.append(("L",) + tuple(
                            (latch.kind, latch.value) if latch.kind == "cmd"
                            else ("A", len(latch.value))
                            for latch in seg.latches))
                    elif isinstance(seg, DataXfer):
                        seg_parts.append((
                            "D", seg.direction, seg.nbytes, seg.column,
                            seg.after_address, seg.handle.name))
                    else:  # TimerWait
                        seg_parts.append(("W", seg.ns, seg.param))
                parts.append(("T",) + tuple(seg_parts))
            elif isinstance(node, DeclareHandle):
                parts.append(("H", node.name, node.source, node.nbytes))
            elif isinstance(node, PollStatus):
                if node.chip_mask is not None:
                    return None
                parts.append(("P", node.until, node.dest, node.max_polls))
            elif isinstance(node, SoftSleep):
                if not isinstance(node.ns, int):
                    return None
                parts.append(("S", node.ns))
            elif isinstance(node, Return):
                parts.append(("R", node.expr))
                break
            else:
                return None  # Branch/Loop/CallOp/SetReg: interpreted path
        return tuple(parts)

    def _compile_template(self, ctx: _PlanContext,
                          program: OpProgram) -> Optional[_Template]:
        """Bake one program of a fingerprint class into a template.

        Segments are lowered once through the real µFSM emitters — the
        same compile the interpreted path performs per run — and only
        their durations, action offsets, baked opcodes, and node paths
        for instance values are kept.  The fingerprint guarantees the
        result is valid for every program in the class.
        """
        state = EvalState(None)  # scratch: compile-time handle minting
        phases = []
        result_expr = _NO_RESULT
        has_data = False
        txn_count = 0
        poll_count = 0
        for index, node in enumerate(program.nodes):
            if isinstance(node, Txn):
                phase = self._compile_txn(ctx, node, index, state)
                has_data = has_data or phase[2][3] or phase[2][2]
                phases.append(phase)
                txn_count += 1
            elif isinstance(node, DeclareHandle):
                state.handles[node.name] = _mint_handle(ctx, node, state)
                phases.append((_PH_HANDLE, index))
            elif isinstance(node, PollStatus):
                phases.append(self._compile_poll(node))
                poll_count += 1
            elif isinstance(node, SoftSleep):
                phases.append((_PH_SLEEP, node.ns))
            elif isinstance(node, Return):
                result_expr = node.expr
                break
        sw_ns = (self.pre_txn_ns * (txn_count + poll_count)
                 + self.wakeup_ns * poll_count)
        return _Template(sw_ns, tuple(phases), result_expr, has_data)

    def _compile_txn(self, ctx: _PlanContext, node: Txn, node_index: int,
                     state: EvalState):
        hold = 0
        nseg = 0
        bytes_in = 0
        bytes_out = 0
        kinds: dict[str, int] = {}
        segs = []
        for seg_index, seg_node in enumerate(node.segments):
            segment = compile_segment(ctx, seg_node, state)
            nseg += 1
            kinds[segment.kind.value] = kinds.get(segment.kind.value, 0) + 1
            ops = []
            addr_index = 0
            for offset, action in segment.actions:
                at = hold + offset
                if isinstance(action, CommandLatch):
                    ops.append((_OP_CMD, at, action.opcode))
                elif isinstance(action, AddressLatch):
                    # Address bytes vary per instance: record the path
                    # to the latch (the j-th address-kind latch of this
                    # LatchSeq) instead of the bytes.
                    latch_index = addr_index
                    addr_index += 1
                    position = 0
                    for li, latch in enumerate(seg_node.latches):
                        if latch.kind != "cmd":
                            if position == latch_index:
                                ops.append((_OP_ADDR, at, node_index,
                                            seg_index, li))
                                break
                            position += 1
                elif isinstance(action, DataOutAction):
                    bytes_out += action.nbytes
                    ops.append((_OP_DATA_OUT, at, action.nbytes,
                                seg_node.handle.name))
                elif isinstance(action, DataInAction):
                    bytes_in += action.nbytes
                    ops.append((_OP_DATA_IN, at, action.nbytes,
                                action.column, seg_node.handle.name))
                # IdleWait: pure time, no die effect.
            segs.append(tuple(ops))
            hold += segment.duration_ns
        stats = (nseg, hold, bytes_in, bytes_out, tuple(kinds.items()))
        return (_PH_TXN, hold, stats, tuple(segs))

    def _compile_poll(self, node: PollStatus):
        latch, data, _handle = self._poll_txn(1)  # durations are mask-free
        cmd_off = latch.actions[0][0]
        data_off = next(off for off, action in data.actions
                        if isinstance(action, DataOutAction))
        sample_off = latch.duration_ns + data_off
        hold = latch.duration_ns + data.duration_ns
        kinds = ((latch.kind.value, 1), (data.kind.value, 1))
        predicate = (StatusRegister.is_ready if node.until == "ready"
                     else StatusRegister.is_array_ready)
        return (_PH_POLL, predicate, node.dest, node.max_polls, hold,
                cmd_off, sample_off, kinds)

    # -- template execution --------------------------------------------

    def _run_template(self, ctx: _PlanContext, template: _Template,
                      program: OpProgram) -> Generator:
        state = EvalState(None)
        handles = state.handles
        nodes = program.nodes
        lun = ctx.lun
        channel = self.channel
        sim = self.sim
        if template.sw_ns:
            yield Timeout(template.sw_ns)
        for phase in template.phases:
            tag = phase[0]
            if tag == _PH_TXN:
                _, hold, stats, segs = phase
                yield from channel.acquire(owner=ctx.label)
                base = sim.now
                try:
                    for ops in segs:
                        self._apply_seg(lun, ops, base, handles, nodes)
                finally:
                    lun._action_time = None
                chan_stats = channel.stats
                nseg, busy, b_in, b_out, kinds = stats
                chan_stats.segments += nseg
                chan_stats.busy_ns += busy
                chan_stats.data_bytes_in += b_in
                chan_stats.data_bytes_out += b_out
                per_kind = chan_stats.per_kind
                for key, count in kinds:
                    per_kind[key] = per_kind.get(key, 0) + count
                if hold:
                    yield Timeout(hold)
                channel.release()
            elif tag == _PH_POLL:
                yield from self._template_poll(ctx, phase, state)
            elif tag == _PH_HANDLE:
                node = nodes[phase[1]]
                handles[node.name] = _mint_handle(ctx, node, state)
            else:  # _PH_SLEEP
                yield Timeout(phase[1])
        if template.result_expr is not _NO_RESULT:
            return eval_expr(template.result_expr, state)
        return None

    def _apply_seg(self, lun, ops, base: int, handles: dict, nodes) -> None:
        """Drive the die through one segment's decoded actions — the
        same LUN handlers, at the same logical nanoseconds, in the same
        order as inline waveform delivery; only the segment object is
        gone.  Catch-up mirrors ``deliver_segment_inline``: pending
        completions due before an action fire first, with the segment-
        start epoch breaking exact-time ties."""
        if not ops:
            return
        if lun._pending_completions:
            epoch = lun._completion_seq
            run_due = lun._run_due_completions
            for op in ops:
                at = base + op[1]
                run_due(at, epoch)
                lun._action_time = at
                self._apply_op(lun, op, handles, nodes)
        else:
            for op in ops:
                lun._action_time = base + op[1]
                self._apply_op(lun, op, handles, nodes)

    def _apply_op(self, lun, op, handles: dict, nodes) -> None:
        tag = op[0]
        if tag == _OP_CMD:
            lun._on_command(op[2])
        elif tag == _OP_ADDR:
            # op = (_OP_ADDR, offset, node idx, segment idx, latch idx):
            # the address bytes live in the instance program.
            lun._on_address(nodes[op[2]].segments[op[3]].latches[op[4]].value)
        elif tag == _OP_DATA_OUT:
            shim = self._out_shim
            shim.nbytes = op[2]
            shim.dma_handle = handles[op[3]]
            lun._on_data_out(shim)
        else:  # _OP_DATA_IN
            shim = self._in_shim
            shim.nbytes = op[2]
            shim.column = op[3]
            shim.dma_handle = handles[op[4]]
            lun._on_data_in(shim)

    def _template_poll(self, ctx: _PlanContext, phase,
                       state: EvalState) -> Generator:
        _, predicate, dest, max_polls, hold, cmd_off, sample_off, kinds = phase
        lun = ctx.lun
        channel = self.channel
        sim = self.sim
        # The die knows when its busy window ends; sleeping there first
        # makes the common case exactly one status round trip.  (Under
        # load the waveform tier's poll count converges to the same
        # one-poll floor, because contention stretches each round trip
        # past the remaining busy time.)
        end = lun.next_completion_ns()
        now = sim.now
        if end is not None and end > now:
            yield Timeout(end - now)
        polls = 0
        while True:
            yield from channel.acquire(owner=ctx.label)
            base = sim.now
            if lun._pending_completions:
                epoch = lun._completion_seq
                lun._run_due_completions(base + cmd_off, epoch)
                lun._action_time = base + cmd_off
                lun._on_command(CMD.READ_STATUS)
                lun._run_due_completions(base + sample_off, epoch)
            else:
                lun._action_time = base + cmd_off
                lun._on_command(CMD.READ_STATUS)
            lun._action_time = base + sample_off
            if lun._data_source is _DataSource.STATUS:
                # The 1-byte status burst, minus the array and handle.
                lun.last_status_sample_ns = base + sample_off
                status = lun.status.value()
            else:
                # A completion between latch and burst re-armed the data
                # source; sample through the real produce path so the
                # (degenerate) byte matches inline delivery exactly.
                status = int(lun._produce_data(1)[0])
            lun._action_time = None
            chan_stats = channel.stats
            chan_stats.segments += 2
            chan_stats.busy_ns += hold
            chan_stats.data_bytes_out += 1
            per_kind = chan_stats.per_kind
            for key, count in kinds:
                per_kind[key] = per_kind.get(key, 0) + count
            yield Timeout(hold)
            channel.release()
            polls += 1
            if predicate(status):
                if dest:
                    state.regs[dest] = status
                return
            if polls >= max_polls:
                raise RuntimeError("status poll budget exhausted — stuck LUN?")
            # Not ready: charge the extra round's runtime cost, then
            # sleep to the die's next pending completion, or re-poll on
            # the minimum legal grid when the die is opaque (hung-die
            # faults keep the same poll-budget escape as the generic
            # path).
            extra = self.pre_txn_ns + self.wakeup_ns
            if extra:
                yield Timeout(extra)
            end = lun.next_completion_ns()
            now = sim.now
            if end is not None and end > now:
                yield Timeout(end - now)
            else:
                yield Timeout(self.repoll_ns)

    # -- the per-LUN runner --------------------------------------------

    def _runner(self, lun_position: int) -> Generator:
        queue = self._queues[lun_position]
        channel = self.channel
        try:
            while queue:
                task, program, template = queue.popleft()
                task.admitted_at = self.sim.now
                task.state = TaskState.RUNNING
                lun = channel.luns[lun_position]
                ctx = _PlanContext(self.ufsm, 1 << lun_position,
                                   self.packetizer, lun, task.label)
                # Bus-level observers need real segments: hand the op to
                # the interpreted plan path, whose deliveries route
                # through the full backend.  Checked per op, so hooks
                # attached mid-run take effect immediately.
                use_template = (
                    template is not None
                    and self.sim._tracer is None
                    and channel._fault_hook is None
                    and channel._san_bus is None
                    and (not template.has_data
                         or not channel.interface.ddr
                         or channel.phy.data_reliable(lun_position))
                )
                result = None
                try:
                    if use_template:
                        self.ops_templated += 1
                        result = yield from self._run_template(
                            ctx, template, program)
                    else:
                        result = yield from self._run_program(ctx, program)
                except RecoverableOpError as exc:
                    task.error = exc
                    self.env.tasks_failed += 1
                self._finish(task, result)
        finally:
            self._running.discard(lun_position)

    def _finish(self, task: Task, result) -> None:
        task.state = TaskState.DONE
        task.result = result
        task.finished_at = self.sim.now
        tracer = self.sim._tracer
        if tracer is not None:
            start = task.admitted_at if task.admitted_at is not None \
                else task.submitted_at
            tracer.complete(
                "task", f"task/lun{task.lun_position}", task.label,
                start, self.sim.now - start,
                {"admission_wait_ns": start - task.submitted_at},
            )
        self.env.tasks_completed += 1
        task.completed.fire(result)

    # -- interpreted plan replay ---------------------------------------

    def _run_program(self, ctx: _PlanContext, program: OpProgram) -> Generator:
        state = EvalState(None)
        try:
            yield from self._run_nodes(ctx, program.nodes, state)
        except _PlanReturn as signal:
            return signal.value
        return None

    def _run_nodes(self, ctx: _PlanContext, nodes, state: EvalState) -> Generator:
        for node in nodes:
            if isinstance(node, Txn):
                yield from self._run_txn(ctx, node, state)
            elif isinstance(node, DeclareHandle):
                state.handles[node.name] = _mint_handle(ctx, node, state)
            elif isinstance(node, PollStatus):
                yield from self._wait_ready(ctx, node, state)
            elif isinstance(node, SoftSleep):
                ns = eval_expr(node.ns, state)
                if ns:
                    yield Timeout(ns)
            elif isinstance(node, SetReg):
                state.regs[node.name] = eval_expr(node.expr, state)
            elif isinstance(node, Branch):
                branch = node.then if eval_expr(node.pred, state) else node.orelse
                yield from self._run_nodes(ctx, branch, state)
            elif isinstance(node, Loop):
                for index in range(node.count):
                    state.regs[node.var] = index
                    yield from self._run_nodes(ctx, node.body, state)
            elif isinstance(node, CallOp):
                kwargs = {name: eval_expr(value, state)
                          for name, value in node.kwargs}
                vendor = self.controller.config.vendor
                callee = _cached_program(
                    _resolved_builder(node.op, vendor), kwargs)
                value = yield from self._run_program(ctx, callee)
                if node.dest:
                    state.regs[node.dest] = value
            elif isinstance(node, Return):
                raise _PlanReturn(eval_expr(node.expr, state))
            else:  # pragma: no cover - plan_check excludes these
                raise TypeError(
                    f"{type(node).__name__} escaped the plan gate")

    def _deliver(self, segment, at: int, lun) -> None:
        """Deliver one plan segment: the observable effects of
        :meth:`TLMBackend._deliver` minus the hooks that are provably
        inactive — checked per call, so a tracer, fault injector, or
        sanitizer attached after construction still routes every
        segment through the full backend path."""
        channel = self.channel
        if (self.sim._tracer is not None or channel._fault_hook is not None
                or channel._san_bus is not None):
            self.backend._deliver(channel, segment, at)
            return
        segment.emitted_at = at
        channel.stats.record(segment)
        channel._apply_phy(segment, (lun.position,))
        lun.deliver_segment_inline(segment, at)

    def _run_txn(self, ctx: _PlanContext, node: Txn,
                 state: EvalState) -> Generator:
        segments = [compile_segment(ctx, seg, state) for seg in node.segments]
        if self.pre_txn_ns:
            yield Timeout(self.pre_txn_ns)
        yield from self.channel.acquire(owner=ctx.label)
        at = self.sim.now
        base = at
        for segment in segments:
            self._deliver(segment, at, ctx.lun)
            at += segment.duration_ns
        if at > base:
            yield Timeout(at - base)
        self.channel.release()

    def _poll_txn(self, mask: int):
        """The status round trip for one chip mask, built once: the
        latch, the 1-byte data segment, and its private capture handle.
        Safe to reuse because delivery and the status read happen in
        the same scheduler turn, and the per-LUN FIFO means at most one
        poll per mask is in flight."""
        cached = self._poll_txns.get(mask)
        if cached is None:
            handle = self.packetizer.capture(1)
            latch = self.ufsm.ca_writer.emit([cmd(CMD.READ_STATUS)],
                                             chip_mask=mask)
            data = self.ufsm.data_reader.emit(1, handle, chip_mask=mask)
            cached = (latch, data, handle)
            self._poll_txns[mask] = cached
        return cached

    def _wait_ready(self, ctx: _PlanContext, node: PollStatus,
                    state: EvalState) -> Generator:
        predicate = (StatusRegister.is_ready if node.until == "ready"
                     else StatusRegister.is_array_ready)
        lun = ctx.lun
        latch, data, handle = self._poll_txn(ctx.chip_mask)
        round_ns = latch.duration_ns + data.duration_ns
        # See _template_poll for why the pre-sleep is exact.
        end = lun.next_completion_ns()
        now = self.sim.now
        if end is not None and end > now:
            yield Timeout(end - now)
        for _ in range(node.max_polls):
            if self.pre_txn_ns:
                yield Timeout(self.pre_txn_ns)
            yield from self.channel.acquire(owner=ctx.label)
            at = self.sim.now
            self._deliver(latch, at, lun)
            self._deliver(data, at + latch.duration_ns, lun)
            status = int(handle.delivered[0])
            yield Timeout(round_ns)
            self.channel.release()
            if self.wakeup_ns:
                yield Timeout(self.wakeup_ns)
            if predicate(status):
                if node.dest:
                    state.regs[node.dest] = status
                return
            end = lun.next_completion_ns()
            now = self.sim.now
            if end is not None and end > now:
                yield Timeout(end - now)
            else:
                yield Timeout(self.repoll_ns)
        raise RuntimeError(
            f"{node.until} poll budget exhausted — stuck LUN?")

    def describe(self) -> str:
        return (f"plan-executor: {self.ops_planned} planned "
                f"({self.ops_templated} templated), "
                f"{self.ops_declined} declined")

"""Timer µFSM: the punctuation of the instruction set.

Produces a pause of at least ``duration`` nanoseconds in the waveform —
the mechanism operations use for the category-3 waits they own (tR when
not polling, the tADL of a SET FEATURES, vendor-mandated gaps).
"""

from __future__ import annotations

from repro.core.ufsm.base import HardwareInventory, MicroFsm
from repro.onfi.signals import IdleWait, SegmentKind, WaveformSegment


class TimerFsm(MicroFsm):
    """Emits pure-wait segments."""

    name = "timer"

    def emit(self, duration_ns: int, chip_mask: int = 0b1, label: str = "") -> WaveformSegment:
        if duration_ns < 0:
            raise ValueError("timer duration must be >= 0")
        self._count()
        return WaveformSegment(
            kind=SegmentKind.TIMER,
            duration_ns=duration_ns,
            actions=((0, IdleWait(duration_ns)),),
            chip_mask=chip_mask,
            label=label or f"wait{duration_ns}",
        )

    def inventory(self) -> HardwareInventory:
        return HardwareInventory(
            fsm_states=3,
            registers_bits=48,
            comment="down-counter + reload register",
        )

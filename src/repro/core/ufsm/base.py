"""µFSM base machinery.

A µFSM owns the category-1 and category-2 timing of the segments it
emits (Section IV-B): all intra-segment waits and the mandatory waits
adjacent to its segment are its responsibility.  The SSD Architect's
operation code never touches a timing parameter below tR.

Every µFSM also reports a structural inventory (states, registers,
buffer bits) which the area model (:mod:`repro.analysis.area`) sums
into the Table III LUT/FF/BRAM estimates.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.onfi.datamodes import DataInterface
from repro.onfi.timing import TimingSet, timing_for_mode


@dataclass(frozen=True)
class HardwareInventory:
    """Structural size of one hardware module (area-model input)."""

    fsm_states: int
    registers_bits: int
    buffer_bits: int = 0
    comment: str = ""


class MicroFsm(ABC):
    """A parameterized waveform-segment emitter."""

    name: str = "ufsm"

    def __init__(self, interface: DataInterface):
        self.interface = interface
        self.timing: TimingSet = timing_for_mode(interface.name)
        self.emissions = 0

    def retarget(self, interface: DataInterface) -> None:
        """Re-bind to a different data mode (same parameter interface)."""
        self.interface = interface
        self.timing = timing_for_mode(interface.name)

    @abstractmethod
    def inventory(self) -> HardwareInventory:
        """Structural inventory for the area model."""

    def _count(self) -> None:
        self.emissions += 1


class UfsmBank:
    """The full µFSM complement of one channel controller.

    One bank per channel: the µFSMs are shared by all operations (that
    sharing is the area saving Table III shows), and retargeting the
    bank retargets every µFSM coherently.
    """

    def __init__(self, interface: DataInterface):
        # Imports here avoid a cycle with the concrete µFSM modules.
        from repro.core.ufsm.ca_writer import CAWriter
        from repro.core.ufsm.chip_control import ChipControl
        from repro.core.ufsm.data_reader import DataReader
        from repro.core.ufsm.data_writer import DataWriter
        from repro.core.ufsm.timer import TimerFsm

        self.interface = interface
        self.ca_writer = CAWriter(interface)
        self.data_writer = DataWriter(interface)
        self.data_reader = DataReader(interface)
        self.chip_control = ChipControl(interface)
        self.timer = TimerFsm(interface)

    def all(self) -> list[MicroFsm]:
        return [
            self.ca_writer,
            self.data_writer,
            self.data_reader,
            self.chip_control,
            self.timer,
        ]

    def retarget(self, interface: DataInterface) -> None:
        self.interface = interface
        for ufsm in self.all():
            ufsm.retarget(interface)

"""Command/Address Writer µFSM.

Parameterized exactly as Fig. 6 describes: the number of latches, a
vector of latch types, and a vector of latch values.  The emitter
computes all intra-segment timing (latch cycle times from the current
mode's timing set) and appends the mandatory category-2 waits: tWB
after a confirm-class command (the wait before R/B# drops) and tWHR
after a command that will be followed by a data-out (status reads).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Union

from repro.core.ufsm.base import HardwareInventory, MicroFsm
from repro.onfi.commands import CMD, CommandClass, classify_opcode
from repro.onfi.signals import (
    AddressLatch,
    CommandLatch,
    SegmentKind,
    WaveformSegment,
)

# Confirm opcodes after which the package drops R/B#: the C/A Writer
# owns the tWB wait that follows them (Section IV-B, category 2).
_CONFIRM_CLASSES = {
    CommandClass.READ_CONFIRM,
    CommandClass.CACHE_READ_CONFIRM,
    CommandClass.CACHE_READ_END,
    CommandClass.PROGRAM_CONFIRM,
    CommandClass.CACHE_PROGRAM_CONFIRM,
    CommandClass.ERASE_CONFIRM,
    CommandClass.RESET,
}

# Commands that are immediately followed by a data-out burst: the C/A
# Writer owns the tWHR turnaround after them.
_DATA_TURNAROUND = {CMD.READ_STATUS, CMD.READ_STATUS_ENHANCED, CMD.READ_ID}


@dataclass(frozen=True)
class Latch:
    """One latch descriptor: ``kind`` is 'cmd' or 'addr'."""

    kind: str
    value: Union[int, tuple[int, ...]]

    def __post_init__(self) -> None:
        if self.kind not in ("cmd", "addr"):
            raise ValueError(f"latch kind must be 'cmd' or 'addr', got {self.kind!r}")
        if self.kind == "cmd" and not isinstance(self.value, int):
            raise ValueError("command latch value must be an opcode byte")
        if self.kind == "addr" and isinstance(self.value, int):
            raise ValueError("address latch value must be a byte tuple")


def cmd(opcode: int) -> Latch:
    return Latch("cmd", opcode)


def addr(address_bytes: Iterable[int]) -> Latch:
    return Latch("addr", tuple(address_bytes))


class CAWriter(MicroFsm):
    """Emits command/address preamble segments."""

    name = "ca_writer"

    # The encoded form of a latch vector depends only on the vector and
    # the mode's timing set, so hot-path C/A sequences (the read
    # preamble, the status poll) are encoded once and replayed.  Bounded
    # so pathological workloads (every page a distinct address) cannot
    # grow it without limit.
    _ENCODE_CACHE_MAX = 1024

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._encode_cache: dict = {}
        self.encode_cache_hits = 0
        self.encode_cache_misses = 0

    def retarget(self, interface) -> None:
        # A mode change invalidates every cached encoding.
        super().retarget(interface)
        self._encode_cache.clear()

    def emit(self, latches: list[Latch], chip_mask: int = 0b1, label: str = "") -> WaveformSegment:
        """Build one CMD_ADDR segment from a latch vector."""
        if not latches:
            raise ValueError("a C/A segment needs at least one latch")
        self._count()
        key = tuple(latches)
        cached = self._encode_cache.get(key)
        if cached is None:
            cached = self._encode(latches)
            if len(self._encode_cache) >= self._ENCODE_CACHE_MAX:
                self._encode_cache.clear()
            self._encode_cache[key] = cached
            self.encode_cache_misses += 1
        else:
            self.encode_cache_hits += 1
        duration_ns, actions = cached
        # Segments are mutable (Chip Control rewrites chip_mask), so a
        # fresh one is minted per emit; only the encoding is shared.
        return WaveformSegment(
            kind=SegmentKind.CMD_ADDR,
            duration_ns=duration_ns,
            actions=actions,
            chip_mask=chip_mask,
            label=label or "c/a",
        )

    def _encode(self, latches: list[Latch]) -> tuple[int, tuple]:
        """Encode a latch vector: (duration_ns, latch actions)."""
        cycle = self.timing.latch_cycle_ns()
        actions = []
        t = self.timing.tCS  # CE# setup before the first latch
        last_opcode = None
        for latch in latches:
            if latch.kind == "cmd":
                actions.append((t, CommandLatch(int(latch.value))))
                t += cycle
                last_opcode = int(latch.value)
            else:
                address_bytes = tuple(latch.value)
                actions.append((t, AddressLatch(address_bytes)))
                t += cycle * len(address_bytes)
                last_opcode = None
        t += self.timing.tCH  # CE# hold

        # Category-2 mandatory waits owned by this µFSM.
        if last_opcode is not None:
            if classify_opcode(last_opcode) in _CONFIRM_CLASSES:
                t += self.timing.tWB
            elif last_opcode in _DATA_TURNAROUND:
                t += self.timing.tWHR
        return t, tuple(actions)

    def inventory(self) -> HardwareInventory:
        # Latch-cycle sequencing (setup/pulse/hold sub-states per mode),
        # the latch-type/value vector registers, and per-mode timing
        # counters.  NV-DDR2 support needs its own cycle sub-FSM, hence
        # the state count.
        return HardwareInventory(
            fsm_states=36,
            registers_bits=450,
            buffer_bits=128,
            comment="latch sequencer + value FIFO + timing counters",
        )

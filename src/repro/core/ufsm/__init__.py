"""The µFSM instruction set (Fig. 6).

Each µFSM is a parameterized waveform-segment emitter.  Re-targeting a
µFSM to a different data-interface mode re-binds its timing set, but its
*interface* (the parameters it takes) is identical across modes — which
is the property that makes operations written against µFSMs portable
across packages and speeds.
"""

from repro.core.ufsm.base import MicroFsm, UfsmBank
from repro.core.ufsm.ca_writer import CAWriter, Latch
from repro.core.ufsm.data_reader import DataReader
from repro.core.ufsm.data_writer import DataWriter
from repro.core.ufsm.chip_control import ChipControl
from repro.core.ufsm.timer import TimerFsm

__all__ = [
    "MicroFsm",
    "UfsmBank",
    "CAWriter",
    "Latch",
    "DataReader",
    "DataWriter",
    "ChipControl",
    "TimerFsm",
]

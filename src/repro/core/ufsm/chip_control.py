"""Chip Control µFSM: the chip-enable modifier.

"This µFSM changes how other µFSMs emit theirs" (Fig. 6d): it takes a
bitmap with one bit per package position and redirects any segment to
that set of chips — including more than one at a time, which is what
enables gang-scheduled operations (the RAIL use case of Section IV-A).
"""

from __future__ import annotations

from repro.core.ufsm.base import HardwareInventory, MicroFsm
from repro.onfi.signals import WaveformSegment


class ChipControl(MicroFsm):
    """Applies a chip-enable bitmap to segments."""

    name = "chip_control"

    def apply(self, segment: WaveformSegment, chip_mask: int) -> WaveformSegment:
        """Redirect ``segment`` to the chips selected by ``chip_mask``."""
        if chip_mask <= 0:
            raise ValueError("chip mask must select at least one position")
        self._count()
        segment.chip_mask = chip_mask
        return segment

    @staticmethod
    def mask_for(position: int) -> int:
        """Single-chip mask for a LUN position."""
        if position < 0:
            raise ValueError("position must be non-negative")
        return 1 << position

    @staticmethod
    def gang_mask(positions: list[int]) -> int:
        """Multi-chip mask for gang-scheduled segments."""
        if not positions:
            raise ValueError("gang mask needs at least one position")
        mask = 0
        for position in positions:
            mask |= 1 << position
        return mask

    def inventory(self) -> HardwareInventory:
        return HardwareInventory(
            fsm_states=4,
            registers_bits=64,
            comment="CE# fan-out register + setup/hold pacing",
        )

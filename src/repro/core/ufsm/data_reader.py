"""Data Reader µFSM: transfers data out of the LUN's register.

Functionally the inverse of the Data Writer; also owns DQS/RE# timing
and the tRHW turnaround when a command will follow the burst.
"""

from __future__ import annotations

from repro.core.ufsm.base import HardwareInventory, MicroFsm
from repro.dram import DmaHandle
from repro.onfi.signals import DataOutAction, SegmentKind, WaveformSegment


class DataReader(MicroFsm):
    """Emits DATA_OUT burst segments."""

    name = "data_reader"

    def emit(
        self,
        nbytes: int,
        handle: DmaHandle,
        chip_mask: int = 0b1,
        label: str = "",
    ) -> WaveformSegment:
        """One read burst of ``nbytes`` sinking into ``handle``."""
        if nbytes <= 0:
            raise ValueError("data burst must be positive")
        self._count()
        lead = self.timing.tRR  # ready-to-RE# low (category 2)
        burst = self.interface.transfer_ns(nbytes)
        return WaveformSegment(
            kind=SegmentKind.DATA_OUT,
            duration_ns=lead + burst + self.timing.tRHW,
            actions=((lead, DataOutAction(nbytes, dma_handle=handle)),),
            chip_mask=chip_mask,
            label=label or f"dout{nbytes}",
        )

    def inventory(self) -> HardwareInventory:
        # RE# pacing, DQS capture with alignment/deskew registers, and
        # staging toward the Packetizer (the capture path needs more
        # phase logic than the drive path, but the same order).
        return HardwareInventory(
            fsm_states=40,
            registers_bits=650,
            buffer_bits=512,
            comment="RE#/DQS capture + deskew + packet staging",
        )

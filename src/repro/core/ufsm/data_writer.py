"""Data Writer µFSM: transfers data into the LUN's page register.

Programmed in tandem with the Packetizer: this µFSM takes the byte
count, the Packetizer handle carries the DRAM source.  The emitter owns
the strobe (DQS) timing — the operation code never sees it — and the
tADL wait that must separate an address phase from data loading.
"""

from __future__ import annotations

from repro.core.ufsm.base import HardwareInventory, MicroFsm
from repro.dram import DmaHandle
from repro.onfi.signals import DataInAction, SegmentKind, WaveformSegment


class DataWriter(MicroFsm):
    """Emits DATA_IN burst segments."""

    name = "data_writer"

    def emit(
        self,
        nbytes: int,
        handle: DmaHandle,
        column: int = 0,
        chip_mask: int = 0b1,
        after_address: bool = False,
        label: str = "",
    ) -> WaveformSegment:
        """One write burst of ``nbytes`` sourced from ``handle``.

        ``after_address=True`` prepends the tADL wait (the burst follows
        an address phase in the same transaction, e.g. SET FEATURES).
        """
        if nbytes <= 0:
            raise ValueError("data burst must be positive")
        self._count()
        lead = self.timing.tADL if after_address else 0
        burst = self.interface.transfer_ns(nbytes)
        return WaveformSegment(
            kind=SegmentKind.DATA_IN,
            duration_ns=lead + burst,
            actions=((lead, DataInAction(nbytes, column=column, dma_handle=handle)),),
            chip_mask=chip_mask,
            label=label or f"din{nbytes}",
        )

    def inventory(self) -> HardwareInventory:
        # Byte counters, the DQS generator with per-mode phase logic
        # (serializer, preamble/postamble sequencing), and staging
        # registers toward the Packetizer.
        return HardwareInventory(
            fsm_states=40,
            registers_bits=650,
            buffer_bits=512,
            comment="DQS driver + serializer + packet staging",
        )

"""The BABOL controller facade.

Wires the full Fig. 5 stack — channel + LUN population, µFSM bank,
Packetizer, Executor, and the chosen software environment — and exposes
the FTL-facing API: submit an operation against a LUN, get a
:class:`~repro.core.softenv.base.Task` back, wait on it from a
simulation process.

>>> sim = Simulator()
>>> controller = BabolController(sim, ControllerConfig(vendor=HYNIX_V7,
...                                                    lun_count=2))
>>> task = controller.read_page(lun=0, block=1, page=2, dram_address=0)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Generator, Optional

from repro.bus.channel import Channel
from repro.bus.phy import ChannelPhy
from repro.core.backend import resolve_backend
from repro.core.executor import Executor
from repro.core.ops import (
    erase_block_op,
    full_page_read_op,
    get_features_op,
    partial_read_op,
    program_page_op,
    pslc_erase_op,
    pslc_program_op,
    pslc_read_op,
    read_id_op,
    read_page_op,
    read_parameter_page_op,
    read_with_retry_op,
    reset_op,
    set_features_op,
)
from repro.core.packetizer import Packetizer
from repro.core.softenv import (
    CoroutineEnvironment,
    Cpu,
    GHZ,
    RtosEnvironment,
    SoftwareEnvironment,
    Task,
)
from repro.core.softenv.task_scheduler import TaskScheduler
from repro.core.softenv.txn_scheduler import TxnScheduler
from repro.core.ufsm.base import UfsmBank
from repro.dram import DramBuffer
from repro.flash.lun import Lun
from repro.flash.package import build_channel_population
from repro.flash.vendors import HYNIX_V7, VendorProfile
from repro.onfi.datamodes import DataInterface, NVDDR2_200
from repro.onfi.geometry import AddressCodec, PhysicalAddress
from repro.sim import Simulator

RUNTIMES = {"coroutine": CoroutineEnvironment, "rtos": RtosEnvironment}


@dataclass
class ControllerConfig:
    """Everything needed to stand up one BABOL channel controller."""

    vendor: VendorProfile = field(default_factory=lambda: HYNIX_V7)
    lun_count: int = 8
    interface: DataInterface = NVDDR2_200
    runtime: str = "coroutine"
    cpu_freq_hz: int = GHZ
    cpu_cpi: float = 1.0
    dram_size: int = 64 * 1024 * 1024
    executor_dispatch_ns: int = 50
    executor_queue_depth: int = 1
    track_data: bool = True
    seed: int = 0
    # Fidelity tier: "waveform" simulates every bus segment at its
    # nanosecond; "tlm" collapses each transaction into one kernel
    # event (identical data/status, same per-op latency for
    # unpreempted ops, ~10x the simulated ops per wall-second).
    fidelity: str = "waveform"
    # Sanitizer names ("all", "bus,flash", a tuple, ...) attached at
    # construction; empty means no runtime checking and zero overhead.
    sanitizers: object = ()
    # Optional repro.core.recovery.Watchdog bounding every busy-wait in
    # nanoseconds; None keeps the historical unbounded poll loops.
    watchdog: object = None

    def validate(self) -> None:
        from repro.core.backend import FIDELITIES

        if self.runtime not in RUNTIMES:
            raise ValueError(f"runtime must be one of {sorted(RUNTIMES)}")
        if self.lun_count <= 0:
            raise ValueError("lun_count must be positive")
        if not isinstance(self.fidelity, str) or \
                self.fidelity not in FIDELITIES:
            raise ValueError(f"fidelity must be one of {FIDELITIES}")


class BabolController:
    """One software-defined channel controller."""

    def __init__(
        self,
        sim: Simulator,
        config: Optional[ControllerConfig] = None,
        task_scheduler: Optional[TaskScheduler] = None,
        txn_scheduler: Optional[TxnScheduler] = None,
        phy: Optional[ChannelPhy] = None,
        sanitizers=None,
        diagnostics=None,
    ):
        self.sim = sim
        self.config = config or ControllerConfig()
        self.config.validate()
        cfg = self.config

        self.luns: list[Lun] = build_channel_population(
            sim, cfg.vendor, cfg.lun_count, seed=cfg.seed, track_data=cfg.track_data
        )
        self.backend = resolve_backend(cfg.fidelity)
        self.channel = Channel(sim, self.luns, interface=cfg.interface,
                               phy=phy, backend=self.backend)
        self.dram = DramBuffer(cfg.dram_size)
        self.ufsm = UfsmBank(cfg.interface)
        self.packetizer = Packetizer(self.dram)
        self.executor = Executor(
            sim,
            self.channel,
            dispatch_latency_ns=cfg.executor_dispatch_ns,
            queue_depth=cfg.executor_queue_depth,
        )
        self.cpu = Cpu(sim, cfg.cpu_freq_hz, cpi=cfg.cpu_cpi, name=cfg.runtime)
        env_class = RUNTIMES[cfg.runtime]
        self.env: SoftwareEnvironment = env_class(
            sim=sim,
            executor=self.executor,
            ufsm=self.ufsm,
            packetizer=self.packetizer,
            cpu=self.cpu,
            task_scheduler=task_scheduler,
            txn_scheduler=txn_scheduler,
            vendor=cfg.vendor,
        )
        self.env.backend = self.backend
        if cfg.watchdog is not None:
            self.env.watchdog = cfg.watchdog
        self.codec = AddressCodec(cfg.vendor.geometry)

        # Runtime sanitizers: `sanitizers=` kwarg wins, else the config
        # field; anything falsy leaves every hook None (zero overhead).
        spec = sanitizers if sanitizers is not None else cfg.sanitizers
        self.diagnostics = diagnostics
        self.sanitizers: tuple = ()
        if spec:
            from repro.analysis.diagnostics import DiagnosticReport
            from repro.sanitize import attach_sanitizers

            if self.diagnostics is None:
                self.diagnostics = DiagnosticReport()
            self.sanitizers = attach_sanitizers(self, spec, self.diagnostics)

        # The TLM tier's compiled-plan runner for the FTL-facing data
        # plane (read_page/program_page/erase_block/...).  It needs the
        # generic runtime out of the loop, so it stands down when a
        # watchdog or sanitizers are attached — both observe the
        # generic runtime's events.
        self.fast_ops = None
        if not self.backend.waveform and cfg.watchdog is None \
                and not self.sanitizers:
            from repro.core.fastops import PlanExecutor

            self.fast_ops = PlanExecutor(self)

    # ------------------------------------------------------------------
    # Generic submission
    # ------------------------------------------------------------------

    def submit(
        self,
        op_factory: Callable,
        lun: int,
        priority: int = 1,
        label: str = "",
        _plan: bool = False,
        **op_kwargs,
    ) -> Task:
        """Submit any operation from :mod:`repro.core.ops` (or your own).

        The generic path always runs the full software runtime — exact
        per-op latency in every fidelity tier.  ``_plan=True`` (set by
        the data-plane convenience wrappers) lets the TLM tier execute
        the op as a compiled plan instead: identical data, status, die
        state, and faults, with the runtime's cycle costs charged in
        closed form rather than simulated (see :mod:`repro.core.fastops`).
        """
        self._check_lun(lun)

        if _plan and self.fast_ops is not None:
            name = getattr(op_factory, "__name__", "").removesuffix("_op")
            task = self.fast_ops.try_submit(name, lun, priority,
                                            label or name, op_kwargs)
            if task is not None:
                return task

        def bound(ctx):
            return op_factory(ctx, **op_kwargs)

        bound.__name__ = getattr(op_factory, "__name__", "op")
        return self.env.submit(bound, lun, priority=priority,
                               label=label or bound.__name__)

    def wait(self, task: Task) -> Generator:
        """Simulation-process helper: block until ``task`` finishes."""
        result = yield from self.env.wait_task(task)
        return result

    def run_to_completion(self, task: Task):
        """Drive the simulation until ``task`` finishes; returns its result."""
        return self.sim.run_process(self.wait(task))

    # ------------------------------------------------------------------
    # Convenience wrappers for the standard operations
    # ------------------------------------------------------------------

    def read_page(self, lun: int, block: int, page: int, dram_address: int,
                  column: int = 0, length: Optional[int] = None,
                  priority: int = 1) -> Task:
        address = PhysicalAddress(block=block, page=page, column=column)
        op = read_page_op if column or length else full_page_read_op
        kwargs = dict(codec=self.codec, address=address, dram_address=dram_address)
        if column or length:
            kwargs["length"] = length
        return self.submit(op, lun, priority=priority, _plan=True, **kwargs)

    def partial_read(self, lun: int, block: int, page: int, column: int,
                     length: int, dram_address: int) -> Task:
        address = PhysicalAddress(block=block, page=page, column=column)
        return self.submit(
            partial_read_op, lun, codec=self.codec, address=address,
            dram_address=dram_address, length=length, _plan=True,
        )

    def program_page(self, lun: int, block: int, page: int,
                     dram_address: int, priority: int = 1) -> Task:
        address = PhysicalAddress(block=block, page=page)
        return self.submit(
            program_page_op, lun, priority=priority, codec=self.codec,
            address=address, dram_address=dram_address, _plan=True,
        )

    def erase_block(self, lun: int, block: int, priority: int = 1) -> Task:
        return self.submit(
            erase_block_op, lun, priority=priority, codec=self.codec,
            block=block, _plan=True,
        )

    def pslc_read(self, lun: int, block: int, page: int, dram_address: int) -> Task:
        address = PhysicalAddress(block=block, page=page)
        return self.submit(
            pslc_read_op, lun, codec=self.codec, address=address,
            dram_address=dram_address, _plan=True,
        )

    def pslc_program(self, lun: int, block: int, page: int, dram_address: int) -> Task:
        address = PhysicalAddress(block=block, page=page)
        return self.submit(
            pslc_program_op, lun, codec=self.codec, address=address,
            dram_address=dram_address, _plan=True,
        )

    def pslc_erase(self, lun: int, block: int) -> Task:
        return self.submit(pslc_erase_op, lun, codec=self.codec, block=block,
                           _plan=True)

    def read_with_retry(self, lun: int, block: int, page: int,
                        dram_address: int, validate, max_levels: int = 8) -> Task:
        address = PhysicalAddress(block=block, page=page)
        return self.submit(
            read_with_retry_op, lun, codec=self.codec, address=address,
            dram_address=dram_address, validate=validate, max_levels=max_levels,
        )

    def set_features(self, lun: int, feature_address: int,
                     params: tuple[int, int, int, int]) -> Task:
        return self.submit(
            set_features_op, lun, feature_address=feature_address, params=params,
            feat_busy_ns=self.config.vendor.timing.t_feat_ns,
        )

    def get_features(self, lun: int, feature_address: int) -> Task:
        return self.submit(
            get_features_op, lun, feature_address=feature_address,
            feat_busy_ns=self.config.vendor.timing.t_feat_ns,
        )

    def read_id(self, lun: int, area: int = 0x00) -> Task:
        return self.submit(read_id_op, lun, area=area)

    def read_parameter_page(self, lun: int) -> Task:
        return self.submit(
            read_parameter_page_op, lun,
            param_busy_ns=self.config.vendor.timing.t_param_read_ns,
        )

    def reset(self, lun: int) -> Task:
        return self.submit(reset_op, lun)

    # ------------------------------------------------------------------

    def _check_lun(self, lun: int) -> None:
        if not 0 <= lun < len(self.luns):
            raise ValueError(f"LUN {lun} out of range (have {len(self.luns)})")

    def describe(self) -> str:
        cfg = self.config
        return (
            f"BABOL[{cfg.runtime}] {cfg.vendor.manufacturer} x{cfg.lun_count} "
            f"{cfg.interface.name} cpu={self.cpu.describe()}"
        )

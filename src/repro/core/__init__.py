"""BABOL: the paper's contribution.

The core package implements the software-defined controller of Fig. 5:

* :mod:`repro.core.ufsm` — the five parameterized waveform-segment
  emitters (C/A Writer, Data Writer, Data Reader, Chip Control, Timer);
* :mod:`repro.core.packetizer` — the DMA companion of the data µFSMs;
* :mod:`repro.core.transaction` — the queueable "waveform instruction"
  unit that decouples scheduling from execution;
* :mod:`repro.core.executor` — the hardware execution half draining the
  transaction queue onto the channel;
* :mod:`repro.core.softenv` — the software half: modeled CPU, task and
  transaction schedulers, and the Coroutine/RTOS runtimes;
* :mod:`repro.core.ops` — the operation library written against the
  µFSM instruction set (Algorithms 1–3 and friends);
* :mod:`repro.core.controller` — the FTL-facing facade.
"""

from repro.core.controller import BabolController, ControllerConfig
from repro.core.recovery import (
    DieDegraded,
    OpFailed,
    OpTimeout,
    RecoverableOpError,
    RecoveryManager,
    RecoveryPolicy,
    RecoveryStats,
    Watchdog,
)
from repro.core.storage import StorageConfig, StorageController, build_storage
from repro.core.transaction import Transaction, TxnKind

__all__ = [
    "BabolController",
    "ControllerConfig",
    "DieDegraded",
    "OpFailed",
    "OpTimeout",
    "RecoverableOpError",
    "RecoveryManager",
    "RecoveryPolicy",
    "RecoveryStats",
    "Watchdog",
    "StorageConfig",
    "StorageController",
    "build_storage",
    "Transaction",
    "TxnKind",
]

"""The multi-channel Storage Controller (Fig. 1, center).

"A conventional Storage Controller exports a continuous Flash memory
address range to the FTL.  Internally, however, it bundles relatively
small and slow Flash packages into a structure called *channel*."

This class bundles several BABOL channel controllers behind a flat LUN
address space, so the FTL (and anything else speaking the shared
request surface) can stripe across channels transparently.  Channels
can share one controller CPU (``shared_cpu=True`` — the Cosmos+
situation, two cores driving the whole device) or get a core each;
the difference is measurable and is one of the ablations an SSD
Architect would actually run.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Generator, Optional

from repro.core.controller import BabolController, ControllerConfig
from repro.core.softenv import Cpu
from repro.core.softenv.base import Task
from repro.flash.vendors import HYNIX_V7, VendorProfile
from repro.onfi.datamodes import DataInterface, NVDDR2_200
from repro.onfi.geometry import AddressCodec
from repro.sim import Simulator


@dataclass
class StorageConfig:
    """Sizing of the multi-channel controller."""

    channel_count: int = 4
    channel: ControllerConfig = field(default_factory=ControllerConfig)
    shared_cpu: bool = True

    def validate(self) -> None:
        if self.channel_count <= 0:
            raise ValueError("channel_count must be positive")
        self.channel.validate()


class StorageController:
    """Flat-addressed bundle of BABOL channel controllers."""

    def __init__(self, sim: Simulator, config: Optional[StorageConfig] = None):
        self.sim = sim
        self.config = config or StorageConfig()
        self.config.validate()
        cfg = self.config

        shared_cpu: Optional[Cpu] = None
        if cfg.shared_cpu:
            shared_cpu = Cpu(
                sim, cfg.channel.cpu_freq_hz, cpi=cfg.channel.cpu_cpi,
                name=f"{cfg.channel.runtime}-shared", exclusive=True,
            )

        self.channels: list[BabolController] = []
        for index in range(cfg.channel_count):
            channel_cfg = replace(cfg.channel, seed=cfg.channel.seed + 1000 * index)
            controller = BabolController(sim, channel_cfg)
            # Distinct track names so traces keep the channels apart.
            controller.channel.name = f"ch{index}"
            if shared_cpu is not None:
                # Rebind the channel's environment onto the shared core.
                controller.cpu = shared_cpu
                controller.env.cpu = shared_cpu
            self.channels.append(controller)
        self.cpu = shared_cpu or self.channels[0].cpu
        self.luns_per_channel = cfg.channel.lun_count

        # Flat LUN view: the FTL's striping works unchanged.
        self.luns = [lun for channel in self.channels for lun in channel.luns]
        self.codec: AddressCodec = self.channels[0].codec

        # One device-level DRAM staging buffer shared by every channel's
        # Packetizer (the Fig. 1 data buffer is global to the SSD).
        from repro.dram import DramBuffer

        self._dram = DramBuffer(cfg.channel.dram_size)
        for channel in self.channels:
            channel.dram = self._dram
            channel.packetizer.dram = self._dram

    # -- routing ---------------------------------------------------------

    def route(self, lun: int) -> tuple[BabolController, int]:
        if not 0 <= lun < len(self.luns):
            raise ValueError(f"LUN {lun} out of range (have {len(self.luns)})")
        return (
            self.channels[lun // self.luns_per_channel],
            lun % self.luns_per_channel,
        )

    # -- shared request surface (mirrors BabolController) -------------------

    def read_page(self, lun: int, block: int, page: int, dram_address: int,
                  column: int = 0, length: Optional[int] = None,
                  priority: int = 1) -> Task:
        channel, local = self.route(lun)
        return channel.read_page(local, block, page, dram_address,
                                 column=column, length=length, priority=priority)

    def program_page(self, lun: int, block: int, page: int,
                     dram_address: int, priority: int = 1) -> Task:
        channel, local = self.route(lun)
        return channel.program_page(local, block, page, dram_address,
                                    priority=priority)

    def erase_block(self, lun: int, block: int, priority: int = 1) -> Task:
        channel, local = self.route(lun)
        return channel.erase_block(local, block, priority=priority)

    @staticmethod
    def wait(task: Task) -> Generator:
        from repro.core.softenv.base import SoftwareEnvironment

        result = yield from SoftwareEnvironment.wait_task(task)
        return result

    def run_to_completion(self, task: Task):
        return self.sim.run_process(self.wait(task))

    @property
    def dram(self):
        """The device-level DRAM staging buffer (shared by all channels)."""
        return self._dram

    def describe(self) -> str:
        cfg = self.config
        cpu = "shared" if cfg.shared_cpu else "per-channel"
        return (
            f"StorageController: {cfg.channel_count} channels x "
            f"{self.luns_per_channel} LUNs ({cfg.channel.runtime}, {cpu} CPU)"
        )


def build_storage(
    sim: Simulator,
    channel_count: int = 4,
    lun_count: int = 8,
    vendor: VendorProfile = HYNIX_V7,
    interface: DataInterface = NVDDR2_200,
    runtime: str = "rtos",
    cpu_freq_hz: int = 1_000_000_000,
    shared_cpu: bool = True,
    track_data: bool = True,
) -> StorageController:
    """Convenience constructor for the common case."""
    return StorageController(
        sim,
        StorageConfig(
            channel_count=channel_count,
            shared_cpu=shared_cpu,
            channel=ControllerConfig(
                vendor=vendor, lun_count=lun_count, interface=interface,
                runtime=runtime, cpu_freq_hz=cpu_freq_hz, track_data=track_data,
            ),
        ),
    )

"""Preemptive reads over long erases/programs (suspend/resume policy).

The literature the paper cites ([23] Kim et al., [54] Wu & He) shows
that suspending a multi-millisecond ERASE for a latency-critical READ
slashes read tail latency.  BABOL makes the mechanism a two-latch
vendor operation; this module supplies the *policy*: a per-LUN manager
that tracks long-running background operations and, when a preemptible
read arrives, composes suspend → read → resume into one scheduled
operation (one task owns the LUN throughout, so ONFI sequencing stays
legal).

This is exactly the kind of feature that motivates a software-defined
controller: on a hard-wired design it is a respin; here it is a policy
class over existing operations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, Optional

from repro.core.controller import BabolController
from repro.core.ops import (
    erase_block_op,
    poll_until_ready,
    program_page_op,
    read_page_op,
    resume_op,
    suspend_op,
)
from repro.core.ops.base import single_latch_txn
from repro.core.softenv.base import OperationContext
from repro.core.transaction import TxnKind
from repro.core.ufsm.ca_writer import addr, cmd
from repro.onfi.commands import CMD
from repro.onfi.geometry import AddressCodec, PhysicalAddress
from repro.onfi.status import StatusRegister
from repro.sim.sync import Queue, Trigger


@dataclass
class _ReadRequest:
    block: int
    page: int
    dram_address: int
    done: Trigger
    result: object = None


@dataclass
class PreemptStats:
    erases: int = 0
    programs: int = 0
    reads: int = 0
    preemptions: int = 0


class PreemptiveLunManager:
    """Suspend/resume policy for one LUN.

    Background erases/programs run through :meth:`erase` / :meth:`program`;
    reads submitted with :meth:`read` preempt an in-flight background
    operation instead of queueing behind its multi-millisecond busy
    time.  All media work for the LUN funnels through this manager so
    the composed suspend→read→resume sequences own the LUN exclusively.
    """

    def __init__(self, controller: BabolController, lun: int,
                 min_remaining_ns: int = 100_000):
        self.controller = controller
        self.lun = lun
        self.codec: AddressCodec = controller.codec
        self.min_remaining_ns = min_remaining_ns
        self.stats = PreemptStats()
        self._pending_reads: Queue = Queue(controller.sim)
        self._background_active = False

    # -- host-facing API (simulation-process generators) ---------------------

    def read(self, block: int, page: int, dram_address: int) -> Generator:
        """Latency-critical read; preempts a background op if one runs."""
        if self._background_active:
            request = _ReadRequest(block, page, dram_address,
                                   Trigger(self.controller.sim))
            self._pending_reads.put(request)
            result = yield from request.done.wait()
            return result
        task = self.controller.submit(
            read_page_op, self.lun, priority=0, codec=self.codec,
            address=PhysicalAddress(block=block, page=page),
            dram_address=dram_address,
        )
        result = yield from self.controller.wait(task)
        self.stats.reads += 1
        return result

    def erase(self, block: int) -> Generator:
        """Background erase; yields to preempting reads at suspensions."""
        self._background_active = True
        try:
            task = self.controller.submit(
                self._preemptible_op, self.lun, priority=2,
                kind="erase", block=block, page=0, dram_address=0,
            )
            ok = yield from self.controller.wait(task)
            self.stats.erases += 1
        finally:
            self._background_active = False
        yield from self._drain_leftovers()
        return ok

    def program(self, block: int, page: int, dram_address: int) -> Generator:
        """Background program with the same preemption window."""
        self._background_active = True
        try:
            task = self.controller.submit(
                self._preemptible_op, self.lun, priority=2,
                kind="program", block=block, page=page,
                dram_address=dram_address,
            )
            ok = yield from self.controller.wait(task)
            self.stats.programs += 1
        finally:
            self._background_active = False
        yield from self._drain_leftovers()
        return ok

    def _drain_leftovers(self) -> Generator:
        """Serve reads that arrived after the last preemption window."""
        while True:
            request = self._pending_reads.try_get()
            if request is None:
                return
            task = self.controller.submit(
                read_page_op, self.lun, priority=0, codec=self.codec,
                address=PhysicalAddress(block=request.block, page=request.page),
                dram_address=request.dram_address,
            )
            result = yield from self.controller.wait(task)
            self.stats.reads += 1
            request.result = result
            request.done.fire(result)

    # -- the composed operation ------------------------------------------------

    def _preemptible_op(self, ctx: OperationContext, kind: str, block: int,
                        page: int, dram_address: int) -> Generator:
        """Start the background op, then poll; any queued read triggers
        suspend → read(s) → resume until the background op finishes."""
        bank = ctx.ufsm
        if kind == "erase":
            row = self.codec.row_address(PhysicalAddress(block=block, page=0))
            start = ctx.transaction(TxnKind.CMD_ADDR, label="preempt-erase")
            start.add_segment(bank.ca_writer.emit(
                [cmd(CMD.ERASE_1ST), addr(self.codec.encode_row(row)),
                 cmd(CMD.ERASE_2ND)],
                chip_mask=ctx.chip_mask,
            ))
            yield from ctx.add_transaction(start)
        else:
            handle = ctx.packetizer.to_flash(
                dram_address, self.codec.geometry.full_page_size
            )
            load = ctx.transaction(TxnKind.DATA_IN, label="preempt-program")
            load.add_segment(bank.ca_writer.emit(
                [cmd(CMD.PROGRAM_1ST),
                 addr(self.codec.encode(PhysicalAddress(block=block, page=page)))],
                chip_mask=ctx.chip_mask,
            ))
            load.add_segment(bank.data_writer.emit(
                self.codec.geometry.full_page_size, handle,
                chip_mask=ctx.chip_mask, after_address=True,
            ))
            yield from ctx.add_transaction(load)
            confirm = single_latch_txn(ctx, [cmd(CMD.PROGRAM_2ND)],
                                       label="preempt-program-confirm")
            yield from ctx.add_transaction(confirm)

        # Poll loop with preemption windows.
        from repro.core.ops.status import read_status_op

        while True:
            request = self._pending_reads.try_get()
            if request is not None:
                self.stats.preemptions += 1
                yield from suspend_op(ctx)
                while request is not None:
                    result = yield from read_page_op(
                        ctx, self.codec,
                        PhysicalAddress(block=request.block, page=request.page),
                        request.dram_address,
                    )
                    self.stats.reads += 1
                    request.result = result
                    request.done.fire(result)
                    request = self._pending_reads.try_get()
                yield from resume_op(ctx)
            status = yield from read_status_op(ctx)
            if StatusRegister.is_ready(status) and not StatusRegister.is_array_ready(
                status
            ):
                continue
            if StatusRegister.is_ready(status) and not self._is_suspended(status):
                return not StatusRegister.is_failed(status)

    @staticmethod
    def _is_suspended(status: int) -> bool:
        from repro.onfi.status import StatusBits

        return bool(status & StatusBits.CSP)

    def describe(self) -> str:
        s = self.stats
        return (
            f"PreemptiveLunManager[lun{self.lun}]: {s.reads} reads, "
            f"{s.erases} erases, {s.programs} programs, "
            f"{s.preemptions} preemption(s)"
        )

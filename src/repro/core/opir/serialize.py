"""IR serialization: op programs to/from JSON.

A serialized program is the replay/diff artifact the IR makes possible
(cf. Copycat-style record-and-replay): dump what a controller *would*
send, diff it across runs or vendor profiles, or rebuild and execute
the program in another process.  Round-tripping is exact —
``from_json(to_json(p)) == p`` — which the serialization tests pin.

The format is ``$type``-tagged JSON objects.  Node dataclasses map to
``{"$type": "node:LatchSeq", ...fields}``; the handful of non-JSON
value types (latches, tuples, enums, addresses, codecs, expression
atoms) each get their own tag.  Hooks (callables) never appear inside
programs — they live at the interpreter boundary — so every program is
serializable by construction.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any

from repro.core.opir import nodes as _nodes
from repro.core.opir.nodes import E, HandleRef, OpProgram, Reg
from repro.core.transaction import TxnKind
from repro.core.ufsm.ca_writer import Latch
from repro.onfi.geometry import AddressCodec, Geometry, PhysicalAddress

_NODE_TYPES = {
    cls.__name__: cls
    for cls in _nodes.STEP_NODES + _nodes.SEGMENT_NODES
}


def encode_value(value: Any) -> Any:
    """Lower one IR value to JSON-compatible data."""
    if isinstance(value, OpProgram):
        return {
            "$type": "program",
            "name": value.name,
            "doc": value.doc,
            "nodes": [encode_value(n) for n in value.nodes],
        }
    if isinstance(value, _nodes.STEP_NODES + _nodes.SEGMENT_NODES):
        out: dict = {"$type": f"node:{type(value).__name__}"}
        for field in dataclasses.fields(value):
            out[field.name] = encode_value(getattr(value, field.name))
        return out
    if isinstance(value, Reg):
        return {"$type": "reg", "name": value.name}
    if isinstance(value, HandleRef):
        return {"$type": "handle", "name": value.name}
    if isinstance(value, E):
        return {"$type": "expr", "op": value.op,
                "args": [encode_value(a) for a in value.args]}
    if isinstance(value, Latch):
        return {"$type": "latch", "kind": value.kind,
                "value": encode_value(value.value)}
    if isinstance(value, TxnKind):
        return {"$type": "txnkind", "value": value.value}
    if isinstance(value, PhysicalAddress):
        return {"$type": "address", "block": value.block,
                "page": value.page, "column": value.column}
    if isinstance(value, AddressCodec):
        return {"$type": "codec",
                "geometry": dataclasses.asdict(value.geometry)}
    if isinstance(value, (bytes, bytearray)):
        # DeclareHandle.data (inline payloads) is in the Value union as
        # bytes; hex keeps the JSON readable and the round trip exact.
        return {"$type": "bytes", "hex": bytes(value).hex()}
    if isinstance(value, tuple):
        return {"$type": "tuple", "items": [encode_value(v) for v in value]}
    if isinstance(value, list):
        return [encode_value(v) for v in value]
    if isinstance(value, dict):
        return {"$type": "dict",
                "items": {k: encode_value(v) for k, v in value.items()}}
    if isinstance(value, bool) or value is None or isinstance(value, (str, float)):
        return value
    if isinstance(value, int):  # includes IntEnums (CMD, FeatureAddress)
        return int(value)
    raise TypeError(f"cannot serialize {type(value).__name__}: {value!r}")


def decode_value(data: Any) -> Any:
    """Inverse of :func:`encode_value`."""
    if isinstance(data, list):
        return [decode_value(v) for v in data]
    if not isinstance(data, dict):
        return data
    tag = data.get("$type")
    if tag == "program":
        return OpProgram(
            name=data["name"],
            nodes=tuple(decode_value(n) for n in data["nodes"]),
            doc=data.get("doc", ""),
        )
    if tag is not None and tag.startswith("node:"):
        cls = _NODE_TYPES.get(tag[len("node:"):])
        if cls is None:
            raise ValueError(f"unknown IR node type {tag!r}")
        kwargs = {
            key: decode_value(value)
            for key, value in data.items()
            if key != "$type"
        }
        return cls(**kwargs)
    if tag == "reg":
        return Reg(data["name"])
    if tag == "handle":
        return HandleRef(data["name"])
    if tag == "expr":
        return E(data["op"], tuple(decode_value(a) for a in data["args"]))
    if tag == "latch":
        return Latch(data["kind"], decode_value(data["value"]))
    if tag == "txnkind":
        return TxnKind(data["value"])
    if tag == "address":
        return PhysicalAddress(block=data["block"], page=data["page"],
                               column=data["column"])
    if tag == "codec":
        return AddressCodec(Geometry(**data["geometry"]))
    if tag == "bytes":
        return bytes.fromhex(data["hex"])
    if tag == "tuple":
        return tuple(decode_value(v) for v in data["items"])
    if tag == "dict":
        return {k: decode_value(v) for k, v in data["items"].items()}
    raise ValueError(f"unknown $type tag {tag!r}")


def to_json(program: OpProgram, indent: int = 2) -> str:
    """Serialize a program to a deterministic JSON string."""
    return json.dumps(encode_value(program), indent=indent, sort_keys=True)


def from_json(text: str) -> OpProgram:
    """Rebuild a program from :func:`to_json` output."""
    program = decode_value(json.loads(text))
    if not isinstance(program, OpProgram):
        raise ValueError("JSON document is not a serialized OpProgram")
    return program

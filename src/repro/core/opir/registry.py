"""The op-program registry: name -> program builder, with vendor overrides.

A *builder* is a plain function taking the operation's keyword
arguments (minus hooks — callables are routed to the interpreter as
hooks) and returning an :class:`~repro.core.opir.nodes.OpProgram`.
The builder runs at "compile time": it encodes addresses, unrolls
data-independent loops, and resolves geometry, so the interpreter's
hot path touches no codec.

Vendor profiles override operations wholesale by carrying
``op_overrides`` pairs (:meth:`~repro.flash.vendors.VendorProfile.with_op_override`);
:func:`resolve_builder` consults the target vendor first — the paper's
new-package bring-up story (Section IV-C) as a table change.

Built programs are memoized per (builder, kwargs) when the kwargs are
hashable, so the hot read path builds its program once and replays the
cached node tree on every call.
"""

from __future__ import annotations

from typing import Callable

from repro.core.opir.interp import run_program
from repro.core.opir.nodes import OpProgram

_BUILDERS: dict[str, Callable[..., OpProgram]] = {}
_PROGRAM_CACHE: dict = {}
_PROGRAM_CACHE_MAX = 512
# (op name, id(vendor)) -> (vendor, builder): memoized override
# resolution so the hot dispatch path never rescans ``op_overrides``.
# The vendor is kept in the value both to pin its id against reuse and
# to validate the hit (`is` check) before trusting it.
_RESOLVE_CACHE: dict = {}
_RESOLVE_CACHE_MAX = 256
_programs_loaded = False

#: Hot-path cache counters, surfaced by ``repro perf`` — how often the
#: dispatch path reused a resolved builder / a built program.
CACHE_STATS = {
    "resolve_hits": 0,
    "resolve_misses": 0,
    "program_hits": 0,
    "program_misses": 0,
}


def op_program(name: str):
    """Register a program builder under ``name`` (decorator)."""

    def register(builder: Callable[..., OpProgram]) -> Callable[..., OpProgram]:
        builder.program_name = name
        _BUILDERS[name] = builder
        return builder

    return register


def _ensure_programs() -> None:
    """Import the built-in program library exactly once (lazy: the
    programs module must not be imported while ``repro.core.ops`` is
    still initializing)."""
    global _programs_loaded
    if not _programs_loaded:
        import repro.core.opir.programs  # noqa: F401  (registers builders)

        _programs_loaded = True


def list_ops() -> list[str]:
    """Names of every registered built-in operation program."""
    _ensure_programs()
    return sorted(_BUILDERS)


def resolve_builder(name: str, vendor=None) -> Callable[..., OpProgram]:
    """The builder for ``name``, honouring ``vendor.op_overrides``."""
    if vendor is not None:
        for key, builder in getattr(vendor, "op_overrides", ()) or ():
            if key == name:
                return builder
    _ensure_programs()
    try:
        return _BUILDERS[name]
    except KeyError:
        raise KeyError(
            f"no operation program named {name!r}; known: {list_ops()}"
        ) from None


def build_program(name: str, vendor=None, **kwargs) -> OpProgram:
    """Build (uncached) the program for ``name`` with ``kwargs``."""
    return resolve_builder(name, vendor)(**kwargs)


def _cached_program(builder: Callable[..., OpProgram], kwargs: dict) -> OpProgram:
    try:
        key = (builder, tuple(sorted(kwargs.items())))
        program = _PROGRAM_CACHE.get(key)
    except TypeError:  # unhashable kwarg (lists of pages, ...): build fresh
        CACHE_STATS["program_misses"] += 1
        return builder(**kwargs)
    if program is None:
        CACHE_STATS["program_misses"] += 1
        program = builder(**kwargs)
        if len(_PROGRAM_CACHE) >= _PROGRAM_CACHE_MAX:
            _PROGRAM_CACHE.clear()
        _PROGRAM_CACHE[key] = program
    else:
        CACHE_STATS["program_hits"] += 1
    return program


def _resolved_builder(name: str, vendor) -> Callable[..., OpProgram]:
    """``resolve_builder`` behind a (name, vendor-identity) cache."""
    key = (name, id(vendor))
    hit = _RESOLVE_CACHE.get(key)
    if hit is not None and hit[0] is vendor:
        CACHE_STATS["resolve_hits"] += 1
        return hit[1]
    CACHE_STATS["resolve_misses"] += 1
    builder = resolve_builder(name, vendor)
    if len(_RESOLVE_CACHE) >= _RESOLVE_CACHE_MAX:
        _RESOLVE_CACHE.clear()
    _RESOLVE_CACHE[key] = (vendor, builder)
    return builder


def cache_stats() -> dict:
    """Snapshot of the dispatch-path cache counters (sorted keys)."""
    return dict(sorted(CACHE_STATS.items()))


def run_op(ctx, name: str, **kwargs):
    """Resolve, build, and interpret the program for ``name``.

    Callable kwargs become interpreter hooks (reachable from programs
    via ``E("hook", (kwarg_name, ...))``); everything else goes to the
    builder.  This is the body of every thin ``*_op`` wrapper.
    """
    hooks = None
    for value in kwargs.values():
        if callable(value):
            hooks = {k: v for k, v in kwargs.items() if callable(v)}
            kwargs = {k: v for k, v in kwargs.items() if k not in hooks}
            break
    builder = _resolved_builder(name, getattr(ctx, "vendor", None))
    program = _cached_program(builder, kwargs)
    result = yield from run_program(ctx, program, hooks=hooks)
    return result

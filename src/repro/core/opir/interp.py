"""The op-program interpreter: run an IR program through a context.

``run_program`` is a generator over environment commands, exactly like
a hand-written operation — the software environment cannot tell the
difference (and the golden tests assert it cannot: same segments, same
nanoseconds, same results).  Composition goes through the public
``*_op`` wrappers (:class:`~repro.core.opir.nodes.CallOp`) and status
polls through :func:`~repro.core.ops.base.poll_until_ready`, so traced
spans nest the way Algorithm 2 nests Algorithm 1 and vendor overrides
resolve for callees too.
"""

from __future__ import annotations

import numpy as np

from repro.core.opir.compile import build_transaction, resolve_mask
from repro.core.opir.nodes import (
    Branch,
    BreakIf,
    CallOp,
    DeclareHandle,
    EvalState,
    Loop,
    OpProgram,
    PollStatus,
    Return,
    SelectFirstReady,
    SetReg,
    SoftSleep,
    Txn,
    effective_poll_period,
    eval_expr,
)


# Poll/compose helpers live in ``repro.core.ops``, which imports this
# module — so they are resolved lazily, once, at first use.
_POLL_FNS = None
_OPS_MODULE = None
_SELECT_FNS = None


class _BreakSignal(Exception):
    pass


class _ReturnSignal(Exception):
    def __init__(self, value):
        super().__init__()
        self.value = value


def run_program(ctx, program: OpProgram, hooks=None):
    """Execute ``program`` against ``ctx``; returns its Return value."""
    state = EvalState(hooks)
    try:
        yield from _run_nodes(ctx, program.nodes, state)
    except _ReturnSignal as signal:
        return signal.value
    return None


def _run_nodes(ctx, nodes, state: EvalState):
    for node in nodes:
        if isinstance(node, Txn):
            txn = build_transaction(ctx, node, state)
            yield from ctx.add_transaction(txn)
        elif isinstance(node, DeclareHandle):
            state.handles[node.name] = _mint_handle(ctx, node, state)
        elif isinstance(node, PollStatus):
            yield from _poll(ctx, node, state)
        elif isinstance(node, SoftSleep):
            yield from ctx.sleep(eval_expr(node.ns, state))
        elif isinstance(node, CallOp):
            yield from _call_op(ctx, node, state)
        elif isinstance(node, SetReg):
            state.regs[node.name] = eval_expr(node.expr, state)
        elif isinstance(node, Branch):
            branch = node.then if eval_expr(node.pred, state) else node.orelse
            yield from _run_nodes(ctx, branch, state)
        elif isinstance(node, Loop):
            for index in range(node.count):
                state.regs[node.var] = index
                try:
                    yield from _run_nodes(ctx, node.body, state)
                except _BreakSignal:
                    break
        elif isinstance(node, BreakIf):
            if eval_expr(node.pred, state):
                for name, expr in node.sets:
                    state.regs[name] = eval_expr(expr, state)
                raise _BreakSignal()
        elif isinstance(node, SelectFirstReady):
            yield from _select_first_ready(ctx, node, state)
        elif isinstance(node, Return):
            raise _ReturnSignal(eval_expr(node.expr, state))
        else:
            raise TypeError(f"{type(node).__name__} is not a step node")


def _mint_handle(ctx, node: DeclareHandle, state: EvalState):
    packetizer = ctx.packetizer
    if node.source == "capture":
        return packetizer.capture(node.nbytes)
    if node.source == "from_flash":
        return packetizer.from_flash(node.dram_address, node.nbytes)
    if node.source == "to_flash":
        return packetizer.to_flash(node.dram_address, node.nbytes)
    if node.source == "inline":
        data = eval_expr(node.data, state)
        return packetizer.inline(np.array(data, dtype=np.uint8))
    raise ValueError(f"unknown handle source {node.source!r}")


def _poll(ctx, node: PollStatus, state: EvalState):
    global _POLL_FNS
    if _POLL_FNS is None:
        from repro.core.ops.base import poll_until_array_ready, poll_until_ready

        _POLL_FNS = (poll_until_ready, poll_until_array_ready)
    poll_until_ready, poll_until_array_ready = _POLL_FNS

    mask = None if node.chip_mask is None else eval_expr(node.chip_mask, state)
    period = effective_poll_period(node.period_ns)
    if node.until == "ready":
        status = yield from poll_until_ready(
            ctx, chip_mask=mask, max_polls=node.max_polls, period_ns=period
        )
    elif node.until == "array_ready":
        status = yield from poll_until_array_ready(
            ctx, chip_mask=mask, max_polls=node.max_polls, period_ns=period
        )
    else:
        raise ValueError(f"PollStatus until must be 'ready' or 'array_ready', got {node.until!r}")
    if node.dest:
        state.regs[node.dest] = status


def _call_op(ctx, node: CallOp, state: EvalState):
    global _OPS_MODULE
    if _OPS_MODULE is None:
        import repro.core.ops as _OPS_MODULE  # noqa: PLW0603
    ops_module = _OPS_MODULE

    try:
        fn = getattr(ops_module, f"{node.op}_op")
    except AttributeError:
        raise KeyError(f"CallOp target {node.op!r} is not a library operation") from None
    kwargs = {name: eval_expr(value, state) for name, value in node.kwargs}
    result = yield from fn(ctx, **kwargs)
    if node.dest:
        state.regs[node.dest] = result


def _select_first_ready(ctx, node: SelectFirstReady, state: EvalState):
    global _SELECT_FNS
    if _SELECT_FNS is None:
        from repro.core.ops.status import read_status_op
        from repro.core.ufsm.chip_control import ChipControl
        from repro.onfi.status import StatusRegister

        _SELECT_FNS = (read_status_op, ChipControl, StatusRegister)
    read_status_op, ChipControl, StatusRegister = _SELECT_FNS

    winner = None
    for _ in range(node.max_rounds):
        for position in node.positions:
            mask = ChipControl.mask_for(position)
            status = yield from read_status_op(ctx, chip_mask=mask)
            if StatusRegister.is_ready(status):
                winner = position
                break
        if winner is not None:
            break
    else:
        raise RuntimeError("gang poll budget exhausted — no replica became ready")
    state.regs[node.dest_pos] = winner
    state.regs[node.dest_mask] = ChipControl.mask_for(winner)

"""The built-in operation programs: `core/ops` rewritten as IR values.

Each builder mirrors one seed generator from ``repro.core.ops`` —
same latches, same transaction labels, same poll points, same handle
mint order — so the golden-equivalence tests can hold the two side by
side segment for segment.  Builders run at "compile time": addresses
are encoded, data-independent loops (cache pages, multi-plane queues,
retry level sweeps) are unrolled, and argument validation happens
before a single segment exists.

This module must not import :mod:`repro.core.ops` (the wrappers there
import the registry, which imports us); composition is expressed with
:class:`~repro.core.opir.nodes.CallOp` and resolved lazily by the
interpreter.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.opir.nodes import (
    Branch,
    BreakIf,
    CallOp,
    DataXfer,
    DeclareHandle,
    E,
    HandleRef,
    LatchSeq,
    Loop,
    OpProgram,
    PollStatus,
    Reg,
    Return,
    SelectFirstReady,
    SetReg,
    SoftSleep,
    TimerWait,
    Txn,
)
from repro.core.opir.registry import op_program
from repro.core.transaction import TxnKind
from repro.core.ufsm.ca_writer import addr, cmd
from repro.core.ufsm.chip_control import ChipControl
from repro.onfi.commands import CMD
from repro.onfi.geometry import AddressCodec, PhysicalAddress
from repro.onfi.status import StatusBits

_FEAT_MARGIN_NS = 200
_PARAM_MARGIN_NS = 500


def _col_change(codec: AddressCodec, column: int) -> tuple:
    """The CHANGE READ COLUMN latch triple (05h-addr-E0h)."""
    return (
        cmd(CMD.CHANGE_READ_COL_1ST),
        addr(codec.encode_column(column)),
        cmd(CMD.CHANGE_READ_COL_2ND),
    )


def _read_preamble(codec: AddressCodec, address: PhysicalAddress) -> tuple:
    """The READ latch triple (00h-addr-30h)."""
    return (cmd(CMD.READ_1ST), addr(codec.encode(address)), cmd(CMD.READ_2ND))


def _not_failed(status) -> E:
    return E("not_failed", (status,))


# ---------------------------------------------------------------------------
# Status (Algorithm 1)
# ---------------------------------------------------------------------------


@op_program("read_status")
def read_status_program(chip_mask: Optional[int] = None) -> OpProgram:
    return OpProgram(
        "read_status",
        (
            DeclareHandle("s", "capture", nbytes=1),
            Txn(
                TxnKind.POLL,
                (
                    LatchSeq((cmd(CMD.READ_STATUS),), chip_mask=chip_mask),
                    DataXfer("out", 1, HandleRef("s"), chip_mask=chip_mask),
                ),
                label="read-status",
            ),
            Return(E("delivered_byte", (HandleRef("s"),))),
        ),
        doc="One status poll; returns the status byte.",
    )


@op_program("read_status_enhanced")
def read_status_enhanced_program(
    row_address_bytes: tuple[int, ...],
    chip_mask: Optional[int] = None,
) -> OpProgram:
    return OpProgram(
        "read_status_enhanced",
        (
            DeclareHandle("s", "capture", nbytes=1),
            Txn(
                TxnKind.POLL,
                (
                    LatchSeq(
                        (cmd(CMD.READ_STATUS_ENHANCED), addr(tuple(row_address_bytes))),
                        chip_mask=chip_mask,
                    ),
                    DataXfer("out", 1, HandleRef("s"), chip_mask=chip_mask),
                ),
                label="read-status-enhanced",
            ),
            Return(E("delivered_byte", (HandleRef("s"),))),
        ),
        doc="READ STATUS ENHANCED (0x78): per-LUN status.",
    )


# ---------------------------------------------------------------------------
# READ (Algorithm 2 and variants)
# ---------------------------------------------------------------------------


@op_program("read_page")
def read_page_program(
    codec: AddressCodec,
    address: PhysicalAddress,
    dram_address: int,
    length: Optional[int] = None,
) -> OpProgram:
    nbytes = length if length is not None else codec.geometry.full_page_size
    return OpProgram(
        "read_page",
        (
            Txn(
                TxnKind.CMD_ADDR,
                (LatchSeq(_read_preamble(codec, address)),),
                label="read-preamble",
            ),
            PollStatus(until="ready", dest="status"),
            DeclareHandle("h", "from_flash", nbytes=nbytes, dram_address=dram_address),
            Txn(
                TxnKind.DATA_OUT,
                (
                    LatchSeq(_col_change(codec, address.column)),
                    TimerWait(param="tCCS"),
                    DataXfer("out", nbytes, HandleRef("h")),
                ),
                label="read-transfer",
            ),
            Return((Reg("status"), HandleRef("h"))),
        ),
        doc="READ with Column Address Change (Fig. 8, Algorithm 2).",
    )


@op_program("full_page_read")
def full_page_read_program(
    codec: AddressCodec,
    address: PhysicalAddress,
    dram_address: int,
) -> OpProgram:
    base = PhysicalAddress(block=address.block, page=address.page, column=0)
    return OpProgram(
        "full_page_read",
        (
            CallOp(
                "read_page",
                kwargs=(
                    ("codec", codec),
                    ("address", base),
                    ("dram_address", dram_address),
                ),
                dest="r",
            ),
            Return(Reg("r")),
        ),
        doc="Column-0 full-page READ — Algorithm 2's degenerate case.",
    )


@op_program("partial_read")
def partial_read_program(
    codec: AddressCodec,
    address: PhysicalAddress,
    dram_address: int,
    length: int,
) -> OpProgram:
    if length <= 0:
        raise ValueError("partial read length must be positive")
    return OpProgram(
        "partial_read",
        (
            CallOp(
                "read_page",
                kwargs=(
                    ("codec", codec),
                    ("address", address),
                    ("dram_address", dram_address),
                    ("length", length),
                ),
                dest="r",
            ),
            Return(Reg("r")),
        ),
        doc="Sub-page READ from address.column.",
    )


@op_program("read_page_timed_wait")
def read_page_timed_wait_program(
    codec: AddressCodec,
    address: PhysicalAddress,
    dram_address: int,
    wait_ns: int,
    length: Optional[int] = None,
) -> OpProgram:
    nbytes = length if length is not None else codec.geometry.full_page_size
    return OpProgram(
        "read_page_timed_wait",
        (
            Txn(
                TxnKind.CMD_ADDR,
                (LatchSeq(_read_preamble(codec, address)),),
                label="read-preamble-timed",
            ),
            # The category-3 wait as a software sleep: the channel is
            # free while the array works (the polling-ablation variant).
            SoftSleep(wait_ns),
            DeclareHandle("h", "from_flash", nbytes=nbytes, dram_address=dram_address),
            Txn(
                TxnKind.DATA_OUT,
                (
                    LatchSeq(_col_change(codec, address.column)),
                    TimerWait(param="tCCS"),
                    DataXfer("out", nbytes, HandleRef("h")),
                ),
                label="read-transfer-timed",
            ),
            # No status was read on this path; report the nominal ready code.
            Return((int(StatusBits.RDY), HandleRef("h"))),
        ),
        doc="READ using a fixed wait instead of status polling.",
    )


# ---------------------------------------------------------------------------
# PROGRAM
# ---------------------------------------------------------------------------


@op_program("program_page")
def program_page_program(
    codec: AddressCodec,
    address: PhysicalAddress,
    dram_address: int,
    length: Optional[int] = None,
) -> OpProgram:
    nbytes = length if length is not None else codec.geometry.full_page_size
    return OpProgram(
        "program_page",
        (
            DeclareHandle("h", "to_flash", nbytes=nbytes, dram_address=dram_address),
            Txn(
                TxnKind.DATA_IN,
                (
                    LatchSeq((cmd(CMD.PROGRAM_1ST), addr(codec.encode(address)))),
                    DataXfer(
                        "in", nbytes, HandleRef("h"),
                        column=address.column, after_address=True,
                    ),
                ),
                label="program-load",
            ),
            Txn(
                TxnKind.CMD_ADDR,
                (LatchSeq((cmd(CMD.PROGRAM_2ND),)),),
                label="program-confirm",
            ),
            PollStatus(until="ready", dest="status"),
            Return(_not_failed(Reg("status"))),
        ),
        doc="Three-phase PROGRAM: load, confirm, poll.",
    )


@op_program("partial_program")
def partial_program_program(
    codec: AddressCodec,
    address: PhysicalAddress,
    chunks: Sequence[tuple[int, int, int]],
) -> OpProgram:
    if not chunks:
        raise ValueError("partial program needs at least one chunk")
    nodes: list = []
    first_column, first_dram, first_len = chunks[0]
    first_address = PhysicalAddress(
        block=address.block, page=address.page, column=first_column
    )
    nodes.append(
        DeclareHandle("h0", "to_flash", nbytes=first_len, dram_address=first_dram)
    )
    nodes.append(
        Txn(
            TxnKind.DATA_IN,
            (
                LatchSeq((cmd(CMD.PROGRAM_1ST), addr(codec.encode(first_address)))),
                DataXfer(
                    "in", first_len, HandleRef("h0"),
                    column=first_column, after_address=True,
                ),
            ),
            label="partial-program-load",
        )
    )
    for index, (column, dram_address, nbytes) in enumerate(chunks[1:], start=1):
        handle = f"h{index}"
        nodes.append(
            DeclareHandle(handle, "to_flash", nbytes=nbytes, dram_address=dram_address)
        )
        nodes.append(
            Txn(
                TxnKind.DATA_IN,
                (
                    LatchSeq(
                        (cmd(CMD.CHANGE_WRITE_COL), addr(codec.encode_column(column)))
                    ),
                    DataXfer(
                        "in", nbytes, HandleRef(handle),
                        column=column, after_address=True,
                    ),
                ),
                label="partial-program-chunk",
            )
        )
    nodes.append(
        Txn(
            TxnKind.CMD_ADDR,
            (LatchSeq((cmd(CMD.PROGRAM_2ND),)),),
            label="partial-program-confirm",
        )
    )
    nodes.append(PollStatus(until="ready", dest="status"))
    nodes.append(Return(_not_failed(Reg("status"))))
    return OpProgram(
        "partial_program",
        tuple(nodes),
        doc="Disjoint-chunk PROGRAM via CHANGE WRITE COLUMN.",
    )


# ---------------------------------------------------------------------------
# ERASE
# ---------------------------------------------------------------------------


@op_program("erase_block")
def erase_block_program(codec: AddressCodec, block: int) -> OpProgram:
    row = codec.row_address(PhysicalAddress(block=block, page=0))
    return OpProgram(
        "erase_block",
        (
            Txn(
                TxnKind.CMD_ADDR,
                (
                    LatchSeq(
                        (
                            cmd(CMD.ERASE_1ST),
                            addr(codec.encode_row(row)),
                            cmd(CMD.ERASE_2ND),
                        )
                    ),
                ),
                label="erase",
            ),
            PollStatus(until="ready", dest="status"),
            Return(_not_failed(Reg("status"))),
        ),
        doc="ERASE: 0x60 + row + 0xD0, then poll.",
    )


# ---------------------------------------------------------------------------
# Cache operations
# ---------------------------------------------------------------------------


@op_program("cache_read_sequential")
def cache_read_sequential_program(
    codec: AddressCodec,
    start: PhysicalAddress,
    dram_addresses: Sequence[int],
) -> OpProgram:
    if not dram_addresses:
        raise ValueError("cache read needs at least one destination")
    page_bytes = codec.geometry.full_page_size
    count = len(dram_addresses)
    nodes: list = [
        Txn(
            TxnKind.CMD_ADDR,
            (LatchSeq(_read_preamble(codec, start)),),
            label="cache-read-start",
        ),
        PollStatus(until="ready"),
    ]
    for index, dram_address in enumerate(dram_addresses):
        final = index == count - 1
        opcode = CMD.READ_CACHE_END if final else CMD.READ_CACHE_SEQ
        handle = f"h{index}"
        nodes.append(
            Txn(
                TxnKind.CMD_ADDR,
                (LatchSeq((cmd(opcode),)),),
                label="cache-read-flip",
            )
        )
        nodes.append(
            DeclareHandle(
                handle, "from_flash", nbytes=page_bytes, dram_address=dram_address
            )
        )
        nodes.append(
            Txn(
                TxnKind.DATA_OUT,
                (DataXfer("out", page_bytes, HandleRef(handle)),),
                label="cache-read-page",
            )
        )
        if not final:
            nodes.append(PollStatus(until="array_ready"))
    nodes.append(Return([HandleRef(f"h{i}") for i in range(count)]))
    return OpProgram(
        "cache_read_sequential",
        tuple(nodes),
        doc="READ CACHE SEQUENTIAL: overlap tR with transfers.",
    )


@op_program("cache_program")
def cache_program_program(
    codec: AddressCodec,
    pages: Sequence[tuple[PhysicalAddress, int]],
) -> OpProgram:
    if not pages:
        raise ValueError("cache program needs at least one page")
    page_bytes = codec.geometry.full_page_size
    nodes: list = [SetReg("ok", True)]
    for index, (address, dram_address) in enumerate(pages):
        final = index == len(pages) - 1
        handle = f"h{index}"
        nodes.append(
            DeclareHandle(
                handle, "to_flash", nbytes=page_bytes, dram_address=dram_address
            )
        )
        nodes.append(
            Txn(
                TxnKind.DATA_IN,
                (
                    LatchSeq((cmd(CMD.PROGRAM_1ST), addr(codec.encode(address)))),
                    DataXfer("in", page_bytes, HandleRef(handle), after_address=True),
                ),
                label="cache-program-load",
            )
        )
        if index > 0:
            status = f"s{index}"
            nodes.append(PollStatus(until="array_ready", dest=status))
            nodes.append(
                SetReg("ok", E("and", (Reg("ok"), _not_failed(Reg(status)))))
            )
        opcode = CMD.PROGRAM_2ND if final else CMD.CACHE_PROGRAM_2ND
        nodes.append(
            Txn(
                TxnKind.CMD_ADDR,
                (LatchSeq((cmd(opcode),)),),
                label="cache-program-confirm",
            )
        )
    nodes.append(PollStatus(until="array_ready", dest="sf"))
    nodes.append(SetReg("ok", E("and", (Reg("ok"), _not_failed(Reg("sf"))))))
    nodes.append(Return(Reg("ok")))
    return OpProgram(
        "cache_program",
        tuple(nodes),
        doc="CACHE PROGRAM: bursts overlap background tPROG.",
    )


# ---------------------------------------------------------------------------
# Multi-plane operations
# ---------------------------------------------------------------------------


def _check_distinct_planes(
    codec: AddressCodec, addresses: Sequence[PhysicalAddress]
) -> None:
    planes = [codec.plane_of(a) for a in addresses]
    if len(set(planes)) != len(planes):
        raise ValueError("multi-plane targets must address distinct planes")


@op_program("multiplane_read")
def multiplane_read_program(
    codec: AddressCodec,
    addresses: Sequence[PhysicalAddress],
    dram_addresses: Sequence[int],
) -> OpProgram:
    if len(addresses) != len(dram_addresses) or not addresses:
        raise ValueError("need one DRAM destination per plane address")
    _check_distinct_planes(codec, addresses)
    page_bytes = codec.geometry.full_page_size
    nodes: list = []
    for index, address in enumerate(addresses):
        final = index == len(addresses) - 1
        confirm = CMD.READ_2ND if final else CMD.MP_READ_2ND
        nodes.append(
            Txn(
                TxnKind.CMD_ADDR,
                (
                    LatchSeq(
                        (cmd(CMD.READ_1ST), addr(codec.encode(address)), cmd(confirm))
                    ),
                ),
                label="mp-read-queue",
            )
        )
        # Queue cycles incur a short tDBSY; the final confirm the full tR.
        nodes.append(PollStatus(until="ready"))
    for index, (address, dram_address) in enumerate(zip(addresses, dram_addresses)):
        handle = f"h{index}"
        nodes.append(
            DeclareHandle(
                handle, "from_flash", nbytes=page_bytes, dram_address=dram_address
            )
        )
        nodes.append(
            Txn(
                TxnKind.DATA_OUT,
                (
                    LatchSeq(
                        (
                            cmd(CMD.CHANGE_READ_COL_ENH_1ST),
                            addr(codec.encode(address)),
                            cmd(CMD.CHANGE_READ_COL_2ND),
                        )
                    ),
                    TimerWait(param="tCCS"),
                    DataXfer("out", page_bytes, HandleRef(handle)),
                ),
                label="mp-read-transfer",
            )
        )
    nodes.append(Return([HandleRef(f"h{i}") for i in range(len(addresses))]))
    return OpProgram(
        "multiplane_read",
        tuple(nodes),
        doc="One page per plane in a single array time.",
    )


@op_program("multiplane_program")
def multiplane_program_program(
    codec: AddressCodec,
    pages: Sequence[tuple[PhysicalAddress, int]],
) -> OpProgram:
    if not pages:
        raise ValueError("multi-plane program needs at least one page")
    _check_distinct_planes(codec, [address for address, _ in pages])
    page_bytes = codec.geometry.full_page_size
    nodes: list = []
    for index, (address, dram_address) in enumerate(pages):
        final = index == len(pages) - 1
        handle = f"h{index}"
        nodes.append(
            DeclareHandle(
                handle, "to_flash", nbytes=page_bytes, dram_address=dram_address
            )
        )
        nodes.append(
            Txn(
                TxnKind.DATA_IN,
                (
                    LatchSeq((cmd(CMD.PROGRAM_1ST), addr(codec.encode(address)))),
                    DataXfer("in", page_bytes, HandleRef(handle), after_address=True),
                ),
                label="mp-program-load",
            )
        )
        confirm = CMD.PROGRAM_2ND if final else CMD.MP_PROGRAM_2ND
        nodes.append(
            Txn(
                TxnKind.CMD_ADDR,
                (LatchSeq((cmd(confirm),)),),
                label="mp-program-confirm",
            )
        )
        if not final:
            nodes.append(PollStatus(until="ready"))  # tDBSY between queue cycles
    nodes.append(PollStatus(until="ready", dest="status"))
    nodes.append(Return(_not_failed(Reg("status"))))
    return OpProgram(
        "multiplane_program",
        tuple(nodes),
        doc="One page per plane in a single tPROG.",
    )


@op_program("multiplane_erase")
def multiplane_erase_program(codec: AddressCodec, blocks: Sequence[int]) -> OpProgram:
    if not blocks:
        raise ValueError("multi-plane erase needs at least one block")
    addresses = [PhysicalAddress(block=b, page=0) for b in blocks]
    _check_distinct_planes(codec, addresses)
    nodes: list = []
    for index, address in enumerate(addresses):
        final = index == len(addresses) - 1
        confirm = CMD.ERASE_2ND if final else CMD.MP_ERASE_2ND
        row = codec.row_address(address)
        nodes.append(
            Txn(
                TxnKind.CMD_ADDR,
                (
                    LatchSeq(
                        (cmd(CMD.ERASE_1ST), addr(codec.encode_row(row)), cmd(confirm))
                    ),
                ),
                label="mp-erase",
            )
        )
        if not final:
            nodes.append(PollStatus(until="ready"))
    nodes.append(PollStatus(until="ready", dest="status"))
    nodes.append(Return(_not_failed(Reg("status"))))
    return OpProgram(
        "multiplane_erase",
        tuple(nodes),
        doc="One block per plane in a single tBERS.",
    )


# ---------------------------------------------------------------------------
# Gang-scheduled READ (the RAIL idiom)
# ---------------------------------------------------------------------------


@op_program("gang_read")
def gang_read_program(
    codec: AddressCodec,
    address: PhysicalAddress,
    positions: Sequence[int],
    dram_address: int,
) -> OpProgram:
    if not positions:
        raise ValueError("gang read needs at least one position")
    gang_mask = ChipControl.gang_mask(list(positions))
    page_bytes = codec.geometry.full_page_size
    winner_mask = Reg("winner_mask")
    return OpProgram(
        "gang_read",
        (
            Txn(
                TxnKind.CMD_ADDR,
                (
                    LatchSeq(
                        _read_preamble(codec, address),
                        chip_mask=gang_mask,
                        via_chip_control=True,
                    ),
                ),
                label="gang-read-preamble",
            ),
            # Poll the replicas round-robin; first RDY wins.
            SelectFirstReady(tuple(positions)),
            DeclareHandle(
                "h", "from_flash", nbytes=page_bytes, dram_address=dram_address
            ),
            Txn(
                TxnKind.DATA_OUT,
                (
                    LatchSeq(_col_change(codec, address.column), chip_mask=winner_mask),
                    TimerWait(param="tCCS", chip_mask=winner_mask),
                    DataXfer(
                        "out", page_bytes, HandleRef("h"), chip_mask=winner_mask
                    ),
                ),
                label="gang-read-transfer",
            ),
            Return((Reg("winner"), HandleRef("h"))),
        ),
        doc="Broadcast READ to replicas; transfer from first ready LUN.",
    )


# ---------------------------------------------------------------------------
# pSLC operations (Fig. 8, Algorithm 3)
# ---------------------------------------------------------------------------


@op_program("pslc_read")
def pslc_read_program(
    codec: AddressCodec,
    address: PhysicalAddress,
    dram_address: int,
    length: Optional[int] = None,
) -> OpProgram:
    nbytes = length if length is not None else codec.geometry.full_page_size
    return OpProgram(
        "pslc_read",
        (
            Txn(
                TxnKind.CMD_ADDR,
                (
                    LatchSeq(
                        (cmd(CMD.VENDOR_PSLC_ENTER),)  # <- the Alg. 3 diff
                        + _read_preamble(codec, address)
                    ),
                ),
                label="pslc-read-preamble",
            ),
            PollStatus(until="ready", dest="status"),
            DeclareHandle("h", "from_flash", nbytes=nbytes, dram_address=dram_address),
            Txn(
                TxnKind.DATA_OUT,
                (
                    LatchSeq(_col_change(codec, address.column)),
                    TimerWait(param="tCCS"),
                    DataXfer("out", nbytes, HandleRef("h")),
                    LatchSeq((cmd(CMD.VENDOR_PSLC_EXIT),)),
                ),
                label="pslc-read-transfer",
            ),
            Return((Reg("status"), HandleRef("h"))),
        ),
        doc="pSLC PAGE READ (Algorithm 2 + mode enter/exit latches).",
    )


@op_program("pslc_program")
def pslc_program_program(
    codec: AddressCodec,
    address: PhysicalAddress,
    dram_address: int,
    length: Optional[int] = None,
) -> OpProgram:
    nbytes = length if length is not None else codec.geometry.full_page_size
    return OpProgram(
        "pslc_program",
        (
            DeclareHandle("h", "to_flash", nbytes=nbytes, dram_address=dram_address),
            Txn(
                TxnKind.DATA_IN,
                (
                    LatchSeq(
                        (
                            cmd(CMD.VENDOR_PSLC_ENTER),
                            cmd(CMD.PROGRAM_1ST),
                            addr(codec.encode(address)),
                        )
                    ),
                    DataXfer(
                        "in", nbytes, HandleRef("h"),
                        column=address.column, after_address=True,
                    ),
                ),
                label="pslc-program-load",
            ),
            Txn(
                TxnKind.CMD_ADDR,
                (LatchSeq((cmd(CMD.PROGRAM_2ND),)),),
                label="pslc-program-confirm",
            ),
            PollStatus(until="ready", dest="status"),
            Txn(
                TxnKind.CONFIG,
                (LatchSeq((cmd(CMD.VENDOR_PSLC_EXIT),)),),
                label="pslc-exit",
            ),
            Return(_not_failed(Reg("status"))),
        ),
        doc="pSLC PROGRAM: one-bit-per-cell commit.",
    )


@op_program("pslc_erase")
def pslc_erase_program(codec: AddressCodec, block: int) -> OpProgram:
    row = codec.row_address(PhysicalAddress(block=block, page=0))
    return OpProgram(
        "pslc_erase",
        (
            Txn(
                TxnKind.CMD_ADDR,
                (
                    LatchSeq(
                        (
                            cmd(CMD.VENDOR_PSLC_ENTER),
                            cmd(CMD.ERASE_1ST),
                            addr(codec.encode_row(row)),
                            cmd(CMD.ERASE_2ND),
                        )
                    ),
                ),
                label="pslc-erase",
            ),
            PollStatus(until="ready", dest="status"),
            Txn(
                TxnKind.CONFIG,
                (LatchSeq((cmd(CMD.VENDOR_PSLC_EXIT),)),),
                label="pslc-exit",
            ),
            Return(_not_failed(Reg("status"))),
        ),
        doc="pSLC ERASE: re-dedicates the block to pSLC duty.",
    )


# ---------------------------------------------------------------------------
# READ RETRY (the data-dependent loop)
# ---------------------------------------------------------------------------


@op_program("read_with_retry")
def read_with_retry_program(
    codec: AddressCodec,
    address: PhysicalAddress,
    dram_address: int,
    max_levels: int = 8,
    feat_busy_ns: int = 1_000,
) -> OpProgram:
    from repro.onfi.features import FeatureAddress

    def set_level(params) -> CallOp:
        return CallOp(
            "set_features",
            kwargs=(
                ("feature_address", FeatureAddress.VENDOR_READ_RETRY),
                ("params", params),
                ("feat_busy_ns", feat_busy_ns),
            ),
        )

    return OpProgram(
        "read_with_retry",
        (
            SetReg("level_used", None),
            SetReg("handle", None),
            Loop(
                "level",
                max_levels,
                (
                    Branch(
                        E("gt", (Reg("level"), 0)),
                        then=(set_level((Reg("level"), 0, 0, 0)),),
                    ),
                    CallOp(
                        "read_page",
                        kwargs=(
                            ("codec", codec),
                            ("address", address),
                            ("dram_address", dram_address),
                        ),
                        dest="rr",
                    ),
                    SetReg("handle", E("item", (Reg("rr"), 1))),
                    BreakIf(
                        E("hook", ("validate", Reg("handle"))),
                        sets=(("level_used", Reg("level")),),
                    ),
                ),
            ),
            # A non-default level was programmed (or the sweep exhausted);
            # restore the factory default so later reads start clean.
            Branch(
                E("ne", (Reg("level_used"), 0)),
                then=(set_level((0, 0, 0, 0)),),
            ),
            Return((Reg("level_used"), Reg("handle"))),
        ),
        doc="Escalating read-voltage sweep with an ECC validate hook.",
    )


# ---------------------------------------------------------------------------
# Features / identification / reset
# ---------------------------------------------------------------------------


@op_program("set_features")
def set_features_program(
    feature_address: int,
    params: tuple[int, int, int, int],
    feat_busy_ns: int = 1_000,
) -> OpProgram:
    return OpProgram(
        "set_features",
        (
            DeclareHandle("p", "inline", data=tuple(params)),
            Txn(
                TxnKind.CONFIG,
                (
                    LatchSeq(
                        (cmd(CMD.SET_FEATURES), addr((int(feature_address),)))
                    ),
                    DataXfer("in", 4, HandleRef("p"), after_address=True),
                    TimerWait(
                        ns=feat_busy_ns + _FEAT_MARGIN_NS,
                        reason="tFEAT busy: fixed and short, polling would waste more",
                    ),
                ),
                label="set-features",
            ),
            Return(True),
        ),
        doc="Write a 4-byte feature record (0xEF).",
    )


@op_program("get_features")
def get_features_program(
    feature_address: int,
    feat_busy_ns: int = 1_000,
) -> OpProgram:
    return OpProgram(
        "get_features",
        (
            DeclareHandle("f", "capture", nbytes=4),
            Txn(
                TxnKind.CONFIG,
                (
                    LatchSeq(
                        (cmd(CMD.GET_FEATURES), addr((int(feature_address),)))
                    ),
                    TimerWait(
                        ns=feat_busy_ns + _FEAT_MARGIN_NS,
                        reason="tFEAT busy before the record streams out",
                    ),
                    DataXfer("out", 4, HandleRef("f")),
                ),
                label="get-features",
            ),
            Return(E("delivered_tuple", (HandleRef("f"),))),
        ),
        doc="Read a 4-byte feature record (0xEE).",
    )


@op_program("reset")
def reset_program(synchronous: bool = False) -> OpProgram:
    opcode = CMD.SYNCHRONOUS_RESET if synchronous else CMD.RESET
    return OpProgram(
        "reset",
        (
            Txn(TxnKind.CONFIG, (LatchSeq((cmd(opcode),)),), label="reset"),
            PollStatus(until="ready", dest="status"),
            Return(Reg("status")),
        ),
        doc="RESET (0xFF) or SYNCHRONOUS RESET (0xFC); polls until ready.",
    )


@op_program("read_id")
def read_id_program(area: int = 0x00, nbytes: int = 5) -> OpProgram:
    return OpProgram(
        "read_id",
        (
            DeclareHandle("i", "capture", nbytes=nbytes),
            Txn(
                TxnKind.CONFIG,
                (
                    LatchSeq((cmd(CMD.READ_ID), addr((area,)))),
                    TimerWait(param="tWHR"),
                    DataXfer("out", nbytes, HandleRef("i")),
                ),
                label="read-id",
            ),
            Return(E("delivered_tuple", (HandleRef("i"),))),
        ),
        doc="READ ID (0x90); area 0x00 = JEDEC, 0x20 = ONFI signature.",
    )


@op_program("read_parameter_page")
def read_parameter_page_program(param_busy_ns: int, nbytes: int = 256) -> OpProgram:
    return OpProgram(
        "read_parameter_page",
        (
            DeclareHandle("p", "capture", nbytes=nbytes),
            Txn(
                TxnKind.CONFIG,
                (
                    LatchSeq((cmd(CMD.READ_PARAMETER_PAGE), addr((0x00,)))),
                    TimerWait(
                        ns=param_busy_ns + _PARAM_MARGIN_NS,
                        reason="parameter-page fetch: a category-3 wait the op owns",
                    ),
                    DataXfer("out", nbytes, HandleRef("p")),
                ),
                label="read-parameter-page",
            ),
            Return(E("delivered", (HandleRef("p"),))),
        ),
        doc="READ PARAMETER PAGE (0xEC); returns the raw bytes.",
    )


# ---------------------------------------------------------------------------
# Suspend / resume and the composed preemptive-read erase
# ---------------------------------------------------------------------------


@op_program("suspend")
def suspend_program() -> OpProgram:
    return OpProgram(
        "suspend",
        (
            Txn(
                TxnKind.CONFIG,
                (LatchSeq((cmd(CMD.VENDOR_SUSPEND),)),),
                label="suspend",
            ),
            Return(True),
        ),
        doc="Suspend the in-flight program/erase on the target LUN.",
    )


@op_program("resume")
def resume_program() -> OpProgram:
    return OpProgram(
        "resume",
        (
            Txn(
                TxnKind.CONFIG,
                (LatchSeq((cmd(CMD.VENDOR_RESUME),)),),
                label="resume",
            ),
            Return(True),
        ),
        doc="Resume a previously suspended program/erase.",
    )


@op_program("erase_with_preemptive_read")
def erase_with_preemptive_read_program(
    codec: AddressCodec,
    erase_block: int,
    read_address: PhysicalAddress,
    dram_address: int,
    suspend_after_ns: int,
) -> OpProgram:
    row = codec.row_address(PhysicalAddress(block=erase_block, page=0))
    return OpProgram(
        "erase_with_preemptive_read",
        (
            Txn(
                TxnKind.CMD_ADDR,
                (
                    LatchSeq(
                        (
                            cmd(CMD.ERASE_1ST),
                            addr(codec.encode_row(row)),
                            cmd(CMD.ERASE_2ND),
                        )
                    ),
                ),
                label="erase-start",
            ),
            # Let the erase make progress, then preempt it.
            SoftSleep(suspend_after_ns),
            CallOp("suspend"),
            CallOp(
                "read_page",
                kwargs=(
                    ("codec", codec),
                    ("address", read_address),
                    ("dram_address", dram_address),
                ),
                dest="r",
            ),
            SetReg("handle", E("item", (Reg("r"), 1))),
            CallOp("resume"),
            PollStatus(until="ready", dest="status"),
            Return((_not_failed(Reg("status")), Reg("handle"))),
        ),
        doc="Erase, suspend for an urgent read, resume, complete.",
    )

"""The op-program IR: declarative node set for flash operations.

BABOL's core claim is that flash operations are *software* — programs
over the five µFSMs (Fig. 8, Algorithms 1–3).  This module makes that
literal: an operation is an :class:`OpProgram`, a tree of small frozen
dataclasses describing latch sequences, timer waits, data bursts,
status polls, and the (rare) data-dependent control flow.  Programs are
pure values — no generators, no context — which is what buys the three
things imperative generators could never give us:

* a static linter (:mod:`repro.analysis.op_lint`) can walk a program
  and check tCCS/tADL ordering, poll budgets, and channel-hold time
  before anything runs;
* programs serialize to JSON (:mod:`repro.core.opir.serialize`) for
  trace replay and cross-run diffing;
* vendors override whole operations by supplying a different program
  builder (:mod:`repro.flash.vendors`), not by monkeypatching code.

Execution is split the way the paper splits it: a *compiler*
(:mod:`repro.core.opir.compile`) lowers segment nodes to waveform
segments against a :class:`~repro.core.ufsm.base.UfsmBank`, and an
*interpreter* (:mod:`repro.core.opir.interp`) runs the program through
an :class:`~repro.core.softenv.base.OperationContext` with byte/ns
identical behaviour to the original hand-written generators (pinned by
``tests/test_opir_golden.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Union

from repro.core.transaction import TxnKind
from repro.core.ufsm.ca_writer import Latch
from repro.onfi.status import StatusRegister

__all__ = [
    "Reg",
    "HandleRef",
    "E",
    "EvalState",
    "eval_expr",
    "LatchSeq",
    "TimerWait",
    "DataXfer",
    "Txn",
    "DeclareHandle",
    "PollStatus",
    "SoftSleep",
    "CallOp",
    "SetReg",
    "Branch",
    "Loop",
    "BreakIf",
    "SelectFirstReady",
    "Return",
    "OpProgram",
    "SEGMENT_NODES",
    "STEP_NODES",
]


# ---------------------------------------------------------------------------
# Expressions: the tiny value language of the IR.
#
# Any "value position" in a node (a chip mask, a register assignment, a
# return expression, CallOp kwargs) may hold a literal, a tuple/list of
# values, or one of the three expression kinds below.  Evaluation is
# :func:`eval_expr`; undefined registers evaluate to ``None`` (matching
# the seeds' ``level_used = None`` initializations).
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Reg:
    """Read a named interpreter register."""

    name: str


@dataclass(frozen=True)
class HandleRef:
    """Reference a DMA handle minted by a :class:`DeclareHandle`."""

    name: str


@dataclass(frozen=True)
class E:
    """A primitive operator application; ``args`` are value positions.

    Operators:

    ``item``            ``args = (seq, index)`` — subscript
    ``and``             ``args = (a, b)`` — Python ``and``
    ``gt`` / ``ne``     ``args = (a, b)`` — comparisons
    ``not_failed``      ``args = (status,)`` — ``not StatusRegister.is_failed``
    ``delivered``       ``args = (handle,)`` — the raw delivered array
    ``delivered_byte``  ``args = (handle,)`` — ``int(delivered[0])``
    ``delivered_tuple`` ``args = (handle,)`` — ``tuple(int(b) ...)``
    ``hook``            ``args = (hook_name, *call_args)`` — invoke a
                        caller-supplied callable (e.g. an ECC validate)
    """

    op: str
    args: tuple = ()


class EvalState:
    """Mutable interpreter state: registers, handles, and hooks."""

    __slots__ = ("regs", "handles", "hooks")

    def __init__(self, hooks: Optional[dict] = None):
        self.regs: dict[str, Any] = {}
        self.handles: dict[str, Any] = {}
        self.hooks: dict[str, Callable] = dict(hooks or {})


def eval_expr(value: Any, state: EvalState) -> Any:
    """Evaluate a value position against the interpreter state."""
    if isinstance(value, Reg):
        return state.regs.get(value.name)
    if isinstance(value, HandleRef):
        try:
            return state.handles[value.name]
        except KeyError:
            raise KeyError(f"handle {value.name!r} referenced before declaration") from None
    if isinstance(value, E):
        return _apply(value, state)
    if isinstance(value, tuple):
        return tuple(eval_expr(item, state) for item in value)
    if isinstance(value, list):
        return [eval_expr(item, state) for item in value]
    return value


def _apply(expr: E, state: EvalState) -> Any:
    op = expr.op
    if op == "hook":
        name = expr.args[0]
        try:
            hook = state.hooks[name]
        except KeyError:
            raise KeyError(f"program calls hook {name!r} but none was supplied") from None
        return hook(*(eval_expr(a, state) for a in expr.args[1:]))
    args = [eval_expr(a, state) for a in expr.args]
    if op == "item":
        return args[0][args[1]]
    if op == "and":
        return args[0] and args[1]
    if op == "gt":
        return args[0] > args[1]
    if op == "ne":
        return args[0] != args[1]
    if op == "not_failed":
        return not StatusRegister.is_failed(args[0])
    if op == "delivered":
        return args[0].delivered
    if op == "delivered_byte":
        return int(args[0].delivered[0])
    if op == "delivered_tuple":
        return tuple(int(b) for b in args[0].delivered)
    raise ValueError(f"unknown expression operator {op!r}")


# ---------------------------------------------------------------------------
# Segment nodes: lowered to WaveformSegments by the compiler.  A
# ``chip_mask`` of ``None`` means "the operation's target mask"
# (``ctx.chip_mask``) — resolved at run time, so one program serves any
# LUN position.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class LatchSeq:
    """One C/A Writer emission: a tuple of command/address latches.

    ``via_chip_control=True`` reproduces the gang-scheduling idiom: the
    segment is emitted with the default mask and then redirected by the
    Chip Control µFSM (Fig. 6d), exactly as ``gang_read_op`` did.
    """

    latches: tuple[Latch, ...]
    chip_mask: Any = None
    label: str = ""
    via_chip_control: bool = False


@dataclass(frozen=True)
class TimerWait:
    """A Timer µFSM segment: a category-2/3 wait on the channel.

    Exactly one of ``ns`` (absolute) or ``param`` (a
    :class:`~repro.onfi.timing.TimingSet` attribute such as ``"tCCS"``,
    resolved against the bank's current mode at compile time) must be
    given.  ``reason`` documents *why* a long wait holds the channel —
    the channel-hold lint (OPL004) requires it for waits over its
    threshold.
    """

    ns: Optional[int] = None
    param: Optional[str] = None
    chip_mask: Any = None
    label: str = ""
    reason: str = ""


@dataclass(frozen=True)
class DataXfer:
    """A data burst: ``direction`` is ``"out"`` (Data Reader, flash to
    controller) or ``"in"`` (Data Writer).  ``after_address=True``
    prepends the tADL wait on the in path (the SET FEATURES / PROGRAM
    contract)."""

    direction: str
    nbytes: int
    handle: HandleRef
    column: int = 0
    after_address: bool = False
    chip_mask: Any = None
    label: str = ""


SEGMENT_NODES = (LatchSeq, TimerWait, DataXfer)


# ---------------------------------------------------------------------------
# Step nodes: executed in order by the interpreter.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Txn:
    """Build one transaction from segment nodes and ``co_await`` it."""

    kind: TxnKind
    segments: tuple
    label: str = ""


@dataclass(frozen=True)
class DeclareHandle:
    """Mint a Packetizer DMA handle and bind it to ``name``.

    ``source`` selects the Packetizer verb: ``"from_flash"`` /
    ``"to_flash"`` (DRAM-bound, need ``dram_address``), ``"capture"``
    (controller-internal register reads), or ``"inline"`` (immediate
    bytes from ``data``, e.g. SET FEATURES parameters).
    """

    name: str
    source: str
    nbytes: int = 0
    dram_address: Optional[int] = None
    data: tuple = ()


# THE definition of "unpaced": a PollStatus with no explicit period
# re-polls back to back.  The interpreter's fallback, the ops-layer
# defaults, and the OPL008 lint all resolve pacing through
# effective_poll_period so the semantics cannot drift apart.
UNPACED_POLL_PERIOD_NS = 0


def effective_poll_period(period_ns: Optional[int]) -> int:
    """Resolve a ``PollStatus.period_ns`` field (None = unpaced)."""
    return UNPACED_POLL_PERIOD_NS if period_ns is None else period_ns


@dataclass(frozen=True)
class PollStatus:
    """Poll READ STATUS until a readiness bit (Algorithm 2, lines 7..9).

    ``until`` is ``"ready"`` (RDY — array or register free) or
    ``"array_ready"`` (ARDY — the cache ops' inner readiness).  The
    final status byte lands in register ``dest`` when given.  A finite
    ``max_polls`` is mandatory — the linter rejects unbounded polls.

    ``period_ns`` paces the loop: the task soft-sleeps that long
    between polls (channel released) instead of re-polling back to
    back.  ``None`` keeps the historical unpaced loop; the linter
    (OPL008) flags explicit periods below the vendor minimum.
    """

    until: str = "ready"
    dest: Optional[str] = None
    chip_mask: Any = None
    max_polls: int = 100_000
    period_ns: Optional[int] = None


@dataclass(frozen=True)
class SoftSleep:
    """Suspend the task in software for ``ns`` — the channel is NOT
    held (contrast with an in-transaction :class:`TimerWait`)."""

    ns: Any


@dataclass(frozen=True)
class CallOp:
    """Invoke another registered operation (Algorithm 2 calling
    Algorithm 1).  Goes through the public ``*_op`` wrapper, so traced
    spans nest and vendor overrides resolve for the callee too."""

    op: str
    kwargs: tuple = ()  # tuple of (name, value) pairs; values are value positions
    dest: Optional[str] = None


@dataclass(frozen=True)
class SetReg:
    """Assign ``expr`` to register ``name``."""

    name: str
    expr: Any = None


@dataclass(frozen=True)
class Branch:
    """Run ``then`` when ``pred`` evaluates truthy, else ``orelse``."""

    pred: Any
    then: tuple = ()
    orelse: tuple = ()


@dataclass(frozen=True)
class Loop:
    """Run ``body`` ``count`` times with the index bound to register
    ``var``; a :class:`BreakIf` inside the body exits early."""

    var: str
    count: int
    body: tuple = ()


@dataclass(frozen=True)
class BreakIf:
    """Break the innermost :class:`Loop` when ``pred`` is truthy,
    applying the ``sets`` register assignments first."""

    pred: Any
    sets: tuple = ()  # tuple of (reg_name, expr) pairs


@dataclass(frozen=True)
class SelectFirstReady:
    """Round-robin status-poll a set of LUN positions until one reports
    RDY (the gang-read / RAIL idiom).  The winning position lands in
    ``dest_pos`` and its single-chip mask in ``dest_mask``."""

    positions: tuple[int, ...]
    dest_pos: str = "winner"
    dest_mask: str = "winner_mask"
    max_rounds: int = 100_000


@dataclass(frozen=True)
class Return:
    """Finish the program; ``expr`` is the operation's result."""

    expr: Any = None


STEP_NODES = (
    Txn,
    DeclareHandle,
    PollStatus,
    SoftSleep,
    CallOp,
    SetReg,
    Branch,
    Loop,
    BreakIf,
    SelectFirstReady,
    Return,
)


@dataclass(frozen=True)
class OpProgram:
    """A complete operation: a name and an ordered node tuple."""

    name: str
    nodes: tuple
    doc: str = field(default="", compare=False)

    def walk(self):
        """Pre-order traversal of every node (steps and segments)."""
        yield from _walk(self.nodes)


def _walk(nodes):
    for node in nodes:
        yield node
        if isinstance(node, Txn):
            yield from _walk(node.segments)
        elif isinstance(node, Branch):
            yield from _walk(node.then)
            yield from _walk(node.orelse)
        elif isinstance(node, Loop):
            yield from _walk(node.body)


def kwargs_tuple(mapping: dict) -> tuple:
    """Normalize a kwargs dict into the sorted pair-tuple CallOp wants."""
    return tuple(sorted(mapping.items()))


Value = Union[Reg, HandleRef, E, int, str, bytes, None]

"""The op-program compiler: lower segment nodes to waveform segments.

This is the "table to wires" half of the IR: given a
:class:`~repro.core.softenv.base.OperationContext` (whose µFSM bank
carries the current data mode's timing), each segment node lowers to
exactly the µFSM emission the hand-written generators performed —
same emitter, same arguments, same order — so the resulting waveform
is byte/ns identical to the seeds.
"""

from __future__ import annotations

from repro.core.opir.nodes import (
    DataXfer,
    EvalState,
    LatchSeq,
    TimerWait,
    Txn,
    eval_expr,
)
from repro.core.transaction import Transaction
from repro.onfi.signals import WaveformSegment


def resolve_mask(ctx, chip_mask, state: EvalState) -> int:
    """A node's chip mask: ``None`` means the operation's target."""
    if chip_mask is None:
        return ctx.chip_mask
    return eval_expr(chip_mask, state)


def resolve_timer_ns(bank, node: TimerWait) -> int:
    """The duration of a :class:`TimerWait` against ``bank``'s timing."""
    if (node.ns is None) == (node.param is None):
        raise ValueError("TimerWait needs exactly one of ns= or param=")
    if node.ns is not None:
        return node.ns
    try:
        return getattr(bank.ca_writer.timing, node.param)
    except AttributeError:
        raise ValueError(
            f"TimerWait param {node.param!r} is not a timing parameter"
        ) from None


def compile_segment(ctx, node, state: EvalState) -> WaveformSegment:
    """Lower one segment node via the bank's µFSM emitters."""
    bank = ctx.ufsm
    if isinstance(node, LatchSeq):
        if node.via_chip_control:
            # Emit with the default mask, then let Chip Control redirect
            # it — the gang-scheduling idiom (Fig. 6d).
            segment = bank.ca_writer.emit(list(node.latches), label=node.label)
            return bank.chip_control.apply(
                segment, eval_expr(node.chip_mask, state)
            )
        return bank.ca_writer.emit(
            list(node.latches),
            chip_mask=resolve_mask(ctx, node.chip_mask, state),
            label=node.label,
        )
    if isinstance(node, TimerWait):
        return bank.timer.emit(
            resolve_timer_ns(bank, node),
            chip_mask=resolve_mask(ctx, node.chip_mask, state),
            label=node.label,
        )
    if isinstance(node, DataXfer):
        handle = eval_expr(node.handle, state)
        mask = resolve_mask(ctx, node.chip_mask, state)
        if node.direction == "out":
            return bank.data_reader.emit(
                node.nbytes, handle, chip_mask=mask, label=node.label
            )
        if node.direction == "in":
            return bank.data_writer.emit(
                node.nbytes,
                handle,
                column=node.column,
                chip_mask=mask,
                after_address=node.after_address,
                label=node.label,
            )
        raise ValueError(f"DataXfer direction must be 'out' or 'in', got {node.direction!r}")
    raise TypeError(f"{type(node).__name__} is not a segment node")


def build_transaction(ctx, node: Txn, state: EvalState) -> Transaction:
    """Lower a :class:`Txn` node into one prepared transaction."""
    txn = ctx.transaction(node.kind, label=node.label)
    for segment_node in node.segments:
        txn.add_segment(compile_segment(ctx, segment_node, state))
    return txn

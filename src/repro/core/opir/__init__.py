"""The declarative op-program IR (compiler + interpreter + registry).

Flash operations as *values*: an :class:`OpProgram` is a tree of frozen
node dataclasses (:mod:`~repro.core.opir.nodes`), lowered to waveform
segments by the compiler (:mod:`~repro.core.opir.compile`), executed by
the interpreter generator (:mod:`~repro.core.opir.interp`), looked up —
with per-vendor overrides — through the registry
(:mod:`~repro.core.opir.registry`), and serialized to JSON for replay
and diffing (:mod:`~repro.core.opir.serialize`).  The public ``*_op``
wrappers in :mod:`repro.core.ops` are one-line shims over
:func:`run_op`.
"""

from repro.core.opir.nodes import (
    Branch,
    BreakIf,
    CallOp,
    DataXfer,
    DeclareHandle,
    E,
    HandleRef,
    LatchSeq,
    Loop,
    OpProgram,
    PollStatus,
    Reg,
    Return,
    SEGMENT_NODES,
    STEP_NODES,
    SelectFirstReady,
    SetReg,
    SoftSleep,
    TimerWait,
    Txn,
    kwargs_tuple,
)
from repro.core.opir.compile import build_transaction, compile_segment, resolve_timer_ns
from repro.core.opir.interp import run_program
from repro.core.opir.registry import (
    build_program,
    list_ops,
    op_program,
    resolve_builder,
    run_op,
)
from repro.core.opir.serialize import decode_value, encode_value, from_json, to_json

__all__ = [
    "Branch",
    "BreakIf",
    "CallOp",
    "DataXfer",
    "DeclareHandle",
    "E",
    "HandleRef",
    "LatchSeq",
    "Loop",
    "OpProgram",
    "PollStatus",
    "Reg",
    "Return",
    "SEGMENT_NODES",
    "STEP_NODES",
    "SelectFirstReady",
    "SetReg",
    "SoftSleep",
    "TimerWait",
    "Txn",
    "kwargs_tuple",
    "build_transaction",
    "compile_segment",
    "resolve_timer_ns",
    "run_program",
    "build_program",
    "list_ops",
    "op_program",
    "resolve_builder",
    "run_op",
    "decode_value",
    "encode_value",
    "from_json",
    "to_json",
]

"""Closed-form timing summaries compiled from op-IR programs.

The waveform tier learns an operation's cost by simulating it; the TLM
tier can *compute* most of it ahead of time.  This module is the
compile pass that does so: given a built
:class:`~repro.core.opir.nodes.OpProgram` and the µFSM bank whose
data-mode timing will drive it, :func:`summarize_program` folds the
node tree into a :class:`ProgramTimingSummary` — total channel
occupancy in nanoseconds, nominal array-busy time, transferred bytes,
and the number of transactions and poll sites — without touching the
simulator.  Loops multiply, branches take the pessimistic arm (and
mark the summary inexact), ``CallOp`` recurses into the callee's
program exactly as the interpreter would.

The same walk answers a second question the TLM fast path needs:
*may this program be executed as a compiled plan* (single kernel
events per transaction, ready-waits instead of poll loops)?  A program
is plannable when its control flow is closed — no ``BreakIf`` /
``SelectFirstReady`` / hook predicates, no gang-masked polls — so the
plan runner in :mod:`repro.core.fastops` can replay it without the
generic interpreter.  :func:`plan_check` is that gate; it is cheap
(a type walk, no µFSM emission) because it runs once per submission.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.opir.nodes import (
    Branch,
    BreakIf,
    CallOp,
    DataXfer,
    DeclareHandle,
    EvalState,
    LatchSeq,
    Loop,
    OpProgram,
    PollStatus,
    Return,
    SelectFirstReady,
    SetReg,
    SoftSleep,
    TimerWait,
    Txn,
    eval_expr,
)
from repro.core.opir.compile import resolve_timer_ns
from repro.dram import DmaHandle
from repro.onfi.commands import CMD

#: Confirm opcodes that start an array-busy window, mapped to the
#: vendor timing attribute naming its nominal duration.  (The die adds
#: seeded jitter at run time; the summary reports the table value.)
_BUSY_STARTERS = {
    CMD.READ_2ND: "t_read_ns",
    CMD.READ_CACHE_SEQ: "t_read_ns",
    CMD.READ_CACHE_END: "t_read_ns",
    CMD.PROGRAM_2ND: "t_prog_ns",
    CMD.CACHE_PROGRAM_2ND: "t_prog_ns",
    CMD.MP_READ_2ND: "t_dbsy_ns",
    CMD.MP_PROGRAM_2ND: "t_dbsy_ns",
    CMD.MP_ERASE_2ND: "t_dbsy_ns",
    CMD.ERASE_2ND: "t_bers_ns",
    CMD.RESET: "t_reset_ns",
    CMD.SYNCHRONOUS_RESET: "t_reset_ns",
    CMD.RESET_LUN: "t_reset_ns",
}


@dataclass(frozen=True)
class ProgramTimingSummary:
    """What an op-program costs, folded to closed form.

    ``channel_ns`` counts every segment of every non-poll transaction;
    poll round trips are workload-dependent, so they are reported as a
    site count plus the per-poll occupancy (``poll_txn_ns``) instead of
    being baked into the total.  ``exact`` is False when the program
    branches on runtime state and the summary had to take a maximum.
    """

    name: str
    channel_ns: int      # occupancy of all non-poll transactions
    lun_busy_ns: int     # nominal array busy time the program triggers
    bytes_in: int        # host -> flash payload bytes
    bytes_out: int       # flash -> host payload bytes
    txn_count: int       # non-poll transactions
    poll_sites: int      # PollStatus sites (each >= 1 round trip)
    poll_txn_ns: int     # channel occupancy of one status round trip
    exact: bool = True

    def software_ns(self, costs, cpu) -> int:
        """Closed-form runtime overhead: the serialized cycles the
        software environment charges to push this program's
        transactions, assuming one round trip per poll site."""
        per_txn = cpu.cycles_to_ns(costs.serialized_txn_cycles())
        wakeup = cpu.cycles_to_ns(costs.wakeup)
        txns = self.txn_count + self.poll_sites
        return txns * per_txn + self.poll_sites * wakeup

    def describe(self) -> str:
        tag = "" if self.exact else " (pessimistic)"
        return (
            f"{self.name}: {self.txn_count} txns {self.channel_ns} ns on-bus, "
            f"{self.poll_sites} poll sites, array {self.lun_busy_ns} ns, "
            f"in {self.bytes_in} B out {self.bytes_out} B{tag}"
        )


class _Acc:
    __slots__ = ("channel_ns", "lun_busy_ns", "bytes_in", "bytes_out",
                 "txn_count", "poll_sites", "exact")

    def __init__(self):
        self.channel_ns = 0
        self.lun_busy_ns = 0
        self.bytes_in = 0
        self.bytes_out = 0
        self.txn_count = 0
        self.poll_sites = 0
        self.exact = True

    def add(self, other: "_Acc", times: int = 1) -> None:
        self.channel_ns += other.channel_ns * times
        self.lun_busy_ns += other.lun_busy_ns * times
        self.bytes_in += other.bytes_in * times
        self.bytes_out += other.bytes_out * times
        self.txn_count += other.txn_count * times
        self.poll_sites += other.poll_sites * times
        self.exact = self.exact and other.exact


def _segment_ns(bank, node, state: EvalState) -> tuple[int, int, int]:
    """(duration, bytes_in, bytes_out) of one segment node — computed
    through the real µFSM emitters so the interface's word clock and
    latch cycle times are authoritative, with a scratch DMA handle
    standing in for the real descriptor."""
    if isinstance(node, LatchSeq):
        segment = bank.ca_writer.emit(list(node.latches))
        return segment.duration_ns, 0, 0
    if isinstance(node, TimerWait):
        return resolve_timer_ns(bank, node), 0, 0
    if isinstance(node, DataXfer):
        scratch = DmaHandle(None, 0, node.nbytes)
        if node.direction == "out":
            segment = bank.data_reader.emit(node.nbytes, scratch)
            return segment.duration_ns, 0, node.nbytes
        segment = bank.data_writer.emit(
            node.nbytes, scratch, after_address=node.after_address
        )
        return segment.duration_ns, node.nbytes, 0
    raise TypeError(f"{type(node).__name__} is not a segment node")


def _busy_ns(timing, node: Txn) -> int:
    total = 0
    for seg in node.segments:
        if not isinstance(seg, LatchSeq):
            continue
        for latch in seg.latches:
            param = _BUSY_STARTERS.get(getattr(latch, "value", None))
            if param is not None:
                total += getattr(timing, param)
    return total


def _poll_txn_ns(bank) -> int:
    latch = bank.ca_writer.emit([_status_cmd()])
    data = bank.data_reader.emit(1, DmaHandle(None, 0, 1))
    return latch.duration_ns + data.duration_ns


def _status_cmd():
    from repro.core.ufsm.ca_writer import cmd

    return cmd(CMD.READ_STATUS)


def _static_kwargs(node: CallOp):
    """Evaluate a CallOp's kwargs against an empty state; None when any
    argument depends on runtime registers or hooks."""
    state = EvalState(None)
    kwargs = {}
    for name, value in node.kwargs:
        try:
            kwargs[name] = eval_expr(value, state)
        except Exception:
            return None
    return kwargs


def _summarize_nodes(nodes, bank, timing, vendor, acc: _Acc, depth: int) -> None:
    from repro.core.opir.registry import _cached_program, _resolved_builder

    for node in nodes:
        if isinstance(node, Txn):
            acc.txn_count += 1
            for seg in node.segments:
                ns, bin_, bout = _segment_ns(bank, seg, EvalState(None))
                acc.channel_ns += ns
                acc.bytes_in += bin_
                acc.bytes_out += bout
            acc.lun_busy_ns += _busy_ns(timing, node)
        elif isinstance(node, PollStatus):
            acc.poll_sites += 1
        elif isinstance(node, (SelectFirstReady, BreakIf)):
            acc.exact = False  # data-dependent control flow
        elif isinstance(node, Branch):
            arms = []
            for body in (node.then, node.orelse):
                arm = _Acc()
                _summarize_nodes(body, bank, timing, vendor, arm, depth)
                arms.append(arm)
            widest = max(arms, key=lambda a: (a.channel_ns, a.txn_count))
            acc.add(widest)
            if any(a.channel_ns != widest.channel_ns
                   or a.txn_count != widest.txn_count for a in arms):
                acc.exact = False
        elif isinstance(node, Loop):
            body = _Acc()
            _summarize_nodes(node.body, bank, timing, vendor, body, depth)
            acc.add(body, times=node.count)
        elif isinstance(node, CallOp):
            if depth >= 8:
                acc.exact = False
                continue
            kwargs = _static_kwargs(node)
            if kwargs is None:
                acc.exact = False
                continue
            builder = _resolved_builder(node.op, vendor)
            callee = _cached_program(builder, kwargs)
            _summarize_nodes(callee.nodes, bank, timing, vendor, acc, depth + 1)
        # DeclareHandle / SetReg / SoftSleep / Return cost no channel time.


def summarize_program(program: OpProgram, bank, timing,
                      vendor=None) -> ProgramTimingSummary:
    """Fold ``program`` into its closed-form timing summary."""
    acc = _Acc()
    _summarize_nodes(program.nodes, bank, timing, vendor, acc, depth=0)
    return ProgramTimingSummary(
        name=program.name,
        channel_ns=acc.channel_ns,
        lun_busy_ns=acc.lun_busy_ns,
        bytes_in=acc.bytes_in,
        bytes_out=acc.bytes_out,
        txn_count=acc.txn_count,
        poll_sites=acc.poll_sites,
        poll_txn_ns=_poll_txn_ns(bank),
        exact=acc.exact,
    )


def summarize_op(name: str, bank, timing, vendor=None,
                 **kwargs) -> ProgramTimingSummary:
    """Build the program for ``name`` and summarize it."""
    from repro.core.opir.registry import _cached_program, _resolved_builder

    program = _cached_program(_resolved_builder(name, vendor), kwargs)
    return summarize_program(program, bank, timing, vendor=vendor)


# ---------------------------------------------------------------------------
# Plannability: may the TLM fast path replay this program?
# ---------------------------------------------------------------------------

_PLAN_SAFE = (Txn, DeclareHandle, SoftSleep, SetReg, Return)


def plan_check(program: OpProgram, vendor=None) -> bool:
    """True when the program's control flow is closed enough for the
    compiled-plan runner: every node type it can reach is replayable
    and every callee resolves with static arguments."""
    return _plan_walk(program.nodes, vendor, depth=0, prefix="nodes",
                      out=None)


def plan_blockers(program: OpProgram,
                  vendor=None) -> list[tuple[str, str]]:
    """Every reason ``plan_check`` demotes this program, as
    ``(node path, reason)`` pairs — empty when the program is
    plannable.  This is the explanatory mode of the same walk; the
    verifier surfaces the pairs as OPV501 info findings."""
    out: list[tuple[str, str]] = []
    _plan_walk(program.nodes, vendor, depth=0, prefix="nodes", out=out)
    return out


def _plan_walk(nodes, vendor, depth: int, prefix: str,
               out: "list[tuple[str, str]] | None") -> bool:
    """Shared plannability walk.  With ``out=None`` it is the fast
    boolean gate (stops at the first blocker); with a list it keeps
    walking and records every ``(path, reason)`` blocker."""
    from repro.core.opir.registry import _cached_program, _resolved_builder

    ok = True

    def blocked(path: str, reason: str) -> bool:
        nonlocal ok
        ok = False
        if out is not None:
            out.append((path, reason))
        return out is not None  # keep walking only in explain mode

    for index, node in enumerate(nodes):
        path = f"{prefix}[{index}]"
        if isinstance(node, (BreakIf, SelectFirstReady)):
            kind = type(node).__name__
            if not blocked(path, f"{kind} is a data-dependent exit the "
                                 f"plan runner cannot replay"):
                return False
        elif isinstance(node, Txn):
            for seg_index, seg in enumerate(node.segments):
                # The plan runner delivers to the op's single target
                # die; segments that re-mask or gang via Chip Control
                # stay on the exact path.
                if getattr(seg, "chip_mask", None) is not None \
                        or getattr(seg, "via_chip_control", False):
                    where = f"{path}.segments[{seg_index}]"
                    if not blocked(where, "segment re-targets dies "
                                          "(chip_mask / Chip Control)"):
                        return False
        elif isinstance(node, PollStatus):
            if node.chip_mask is not None:
                if not blocked(path, "gang-masked poll stays on the "
                                     "exact path"):
                    return False
        elif isinstance(node, Branch):
            then_ok = _plan_walk(node.then, vendor, depth,
                                 f"{path}.then", out)
            else_ok = _plan_walk(node.orelse, vendor, depth,
                                 f"{path}.orelse", out)
            if not (then_ok and else_ok):
                ok = False
                if out is None:
                    return False
        elif isinstance(node, Loop):
            if not _plan_walk(node.body, vendor, depth,
                              f"{path}.body", out):
                ok = False
                if out is None:
                    return False
        elif isinstance(node, CallOp):
            if depth >= 8:
                if not blocked(path, "call depth exceeds the plan "
                                     "compiler's limit (8)"):
                    return False
                continue
            kwargs = _static_kwargs(node)
            if kwargs is None:
                if not blocked(path, f"callee {node.op!r} takes "
                                     f"runtime-computed arguments"):
                    return False
                continue
            try:
                builder = _resolved_builder(node.op, vendor)
                callee = _cached_program(builder, kwargs)
            except Exception as exc:
                if not blocked(path, f"callee {node.op!r} failed to "
                                     f"build: {exc}"):
                    return False
                continue
            if not _plan_walk(callee.nodes, vendor, depth + 1,
                              f"{path}.{node.op}", out):
                ok = False
                if out is None:
                    return False
        elif not isinstance(node, _PLAN_SAFE):
            if not blocked(path, f"{type(node).__name__} has no plan "
                                 f"lowering"):
                return False
    return ok

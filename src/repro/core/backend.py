"""Pluggable execution backends: the fidelity tier seam.

BABOL's claims live at two altitudes.  Segment-level bus occupancy
(Figs. 8-11) needs every latch cycle and data burst on the simulated
bus at its exact nanosecond — that is the *waveform* tier, the model
this repository has always run.  End-to-end throughput at scale
(Fig. 12) only needs aggregate timing: when a transaction starts, how
long it holds the channel, and when each die goes ready.  The *tlm*
(transaction-level) tier keeps the behavioural model — data payloads,
status bits, faults, FTL state — bit-identical while collapsing each
transaction's bus traffic into a single kernel event, so scale-out
workloads run an order of magnitude more simulated ops per wall-second.

The seam is deliberately narrow: a backend owns exactly two generators,

* ``transmit(channel, segment)`` — one segment on the bus (the hardware
  baselines drive this directly), and
* ``run_transaction(channel, txn)`` — a whole prepared transaction (the
  executor's inner loop);

everything else (arbitration, scheduling, op programs, the dies) is
shared.  :class:`WaveformBackend` delegates to the channel's historical
per-segment path, byte-for-byte — golden traces do not move.
:class:`TLMBackend` performs the same bookkeeping at *logical* times
computed from segment offsets, delivers die actions inline, and yields
one :class:`~repro.sim.Timeout` for the whole transaction.

Timing equality is exact for unpreempted operations: the TLM tier
lands every die action, busy completion, and status sample on the same
nanosecond the waveform tier would (see ``flash/lun.py`` for the
logical-clock machinery and ``core/ops/base.py`` for the poll
fast-forward that preserves the polling grid).  Under contention the
tiers may diverge by scheduling noise — which is why the perf baseline
records its fidelity per cell and only compares like with like.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator

from repro.onfi.signals import SegmentKind, WaveformSegment
from repro.sim import Timeout

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.bus.channel import Channel
    from repro.core.transaction import Transaction


class FidelityError(RuntimeError):
    """A component that needs waveform fidelity met a TLM channel.

    Raised *at attach time* (sanitizer/analyzer construction, tap
    registration) so a run can never silently miss the events it was
    asked to observe.
    """


class ExecutionBackend:
    """Contract between the shared behavioural model and a timing engine.

    ``waveform``
        True when per-segment bus traffic is simulated — observers that
        sample the bus (logic analyzer, bus sanitizer, taps) require it.
    ``poll_fast_forward``
        True when the ops layer may skip redundant status polls by
        sleeping to the die-ready grid point (see ``_poll_status``).
    """

    name: str = "abstract"
    waveform: bool = True
    poll_fast_forward: bool = False

    def transmit(self, channel: "Channel",
                 segment: WaveformSegment) -> Generator:
        raise NotImplementedError

    def run_transaction(self, channel: "Channel",
                        txn: "Transaction") -> Generator:
        raise NotImplementedError

    def describe(self) -> str:
        return f"{type(self).__name__}({self.name})"


class WaveformBackend(ExecutionBackend):
    """The segment-accurate tier: the historical simulation, unchanged.

    Every segment occupies the bus for its duration in real simulated
    time; dies receive actions via per-offset kernel events.  Golden
    traces produced through this backend are byte-identical to the
    pre-seam simulator.
    """

    name = "waveform"
    waveform = True
    poll_fast_forward = False

    def transmit(self, channel: "Channel",
                 segment: WaveformSegment) -> Generator:
        yield from channel._transmit_waveform(segment)

    def run_transaction(self, channel: "Channel",
                        txn: "Transaction") -> Generator:
        for segment in txn.segments:
            yield from channel.transmit(segment)


class TLMBackend(ExecutionBackend):
    """The transaction-level tier: one kernel event per transaction.

    The full channel bookkeeping (stats, tracer spans, PHY reliability,
    fault hooks, die delivery) still happens per segment — but at
    *logical* times computed by accumulating segment durations, inside
    a single generator step.  The only kernel event is the final
    ``Timeout`` covering the whole transaction, so the bus mutex is
    held for exactly the same simulated nanoseconds as the waveform
    tier while the host does orders of magnitude less event-loop work.

    Die-side deferred work (busy completions, cache hand-offs) is
    scheduled at real kernel time as usual; when a later segment's
    logical action time passes a pending completion, the die fires it
    early ("catch-up") so intra-transaction timer waits that span a
    busy window observe the same before/after ordering as waveform.
    """

    name = "tlm"
    waveform = False
    poll_fast_forward = True

    def transmit(self, channel: "Channel",
                 segment: WaveformSegment) -> Generator:
        self._deliver(channel, segment, channel.sim.now)
        if segment.duration_ns:
            yield Timeout(segment.duration_ns)

    def run_transaction(self, channel: "Channel",
                        txn: "Transaction") -> Generator:
        sim = channel.sim
        base = sim.now
        at = base
        for segment in txn.segments:
            if not channel.mutex.locked:
                raise RuntimeError("transmit without owning the channel")
            self._deliver(channel, segment, at)
            at += segment.duration_ns
        if at > base:
            yield Timeout(at - base)

    def _deliver(self, channel: "Channel", segment: WaveformSegment,
                 at: int) -> None:
        """The waveform transmit bookkeeping, at logical time ``at``."""
        segment.emitted_at = at
        channel.stats.record(segment)
        tracer = channel.sim._tracer
        if tracer is not None:
            tracer.complete(
                "channel", f"channel/{channel.name}", segment.kind.value,
                at, segment.duration_ns,
                {"chip_mask": segment.chip_mask, "label": segment.label},
            )
        # Taps cannot be registered on a TLM channel (add_tap raises),
        # so there is no tap loop here by construction.
        if channel._san_bus is not None:
            channel._san_bus.on_transmit(at, segment, channel.mutex.owner)
        targets = segment.targets(channel.width)
        if not targets and segment.kind is not SegmentKind.TIMER:
            raise ValueError(f"segment {segment.describe()} selects no LUN")
        channel._apply_phy(segment, targets)
        if channel._fault_hook is not None:
            channel._fault_hook.on_transmit(at, segment, targets)
        for position in targets:
            channel.luns[position].deliver_segment_inline(segment, at)


FIDELITIES = ("waveform", "tlm")


def resolve_backend(fidelity) -> ExecutionBackend:
    """Map a ``--fidelity`` name (or an already-built backend) to an
    :class:`ExecutionBackend` instance."""
    if isinstance(fidelity, ExecutionBackend):
        return fidelity
    if fidelity == "waveform":
        return WaveformBackend()
    if fidelity == "tlm":
        return TLMBackend()
    raise ValueError(
        f"unknown fidelity {fidelity!r} (expected one of {FIDELITIES})"
    )

"""``repro chaos`` / ``repro crashfuzz`` — fault-injection campaigns."""

from __future__ import annotations

import json

from repro.cli.common import fidelity_opt, resolve_spec, spec_opts, vendor_opt
from repro.faults.chaos import CHAOS_GEOMETRY

CHAOS_BASE = {
    "name": "chaos",
    "stack": {
        "luns_per_channel": 4,
        "factory_bad_rate": 0.0,
        "geometry": dict(CHAOS_GEOMETRY),
    },
    "campaign": {},
}


def _crashfuzz_base() -> dict:
    from repro.analysis.crashfuzz import crashfuzz_spec

    return crashfuzz_spec().to_dict()


def cmd_chaos(args) -> int:
    """Run a seeded fault-injection campaign against BABOL (and, by
    default, both hardware baselines) and report what was injected,
    what recovered, and the added tail latency.  Exit 0 when every
    recoverable fault recovered, 1 when any did not, 2 when the chaos
    harness itself broke."""
    from repro.faults import EXIT_INTERNAL, run_chaos

    spec = resolve_spec(args, CHAOS_BASE, flags=(
        ("seed", "campaign.seed"),
        ("vendor", "stack.vendor"),
        ("campaign", "campaign.plan"),
        ("no_baselines", "campaign.baselines", lambda v: not v),
        ("fidelity", "stack.fidelity"),
    ))
    try:
        report = run_chaos(spec=spec)
        text = json.dumps(report, indent=2, sort_keys=True)
        if args.json:
            with open(args.json, "w") as handle:
                handle.write(text + "\n")
            print(f"chaos: report -> {args.json}")
        summary = report["summary"]
        print(
            f"chaos[{report['campaign']['name']} seed={report['campaign']['seed']}]"
            f" injected={summary['injected_total']}"
            f" recovered={summary['recovered_total']}"
            f" unrecovered={summary['unrecovered_total']}"
            f" degraded_luns={summary['degraded_luns']}"
        )
        for key, count in sorted(summary["unrecovered"].items()):
            print(f"  UNRECOVERED {key}: {count}")
    except Exception as exc:  # the harness broke — not a finding
        print(f"chaos: internal error: {exc!r}")
        return EXIT_INTERNAL
    return report["exit_code"]


def cmd_crashfuzz(args) -> int:
    """Crash-consistency fuzzing: a seeded workload through the
    queue-depth host engine, power killed at fuzzed nanoseconds, the
    media remounted, and every host-acked write verified readable with
    its acked contents.  Exit 0 when the contract held at every crash
    point, 1 on any violation, 2 when the harness itself broke."""
    from repro.analysis.crashfuzz import (
        EXIT_INTERNAL as FUZZ_INTERNAL,
        run_crashfuzz,
        summarize,
    )

    spec = resolve_spec(args, _crashfuzz_base(), flags=(
        ("seeds", "campaign.crash_seeds"),
        ("points", "campaign.crash_points"),
        ("channels", "stack.channels"),
        ("luns", "stack.luns_per_channel"),
        ("qd", "workload.queue_depth"),
        ("ios", "workload.io_count"),
        ("seed", "campaign.base_seed"),
        ("vendor", "stack.vendor"),
        ("fidelity", "stack.fidelity"),
    ))
    try:
        report = run_crashfuzz(spec=spec)
        if args.json:
            with open(args.json, "w") as handle:
                handle.write(json.dumps(report, indent=2, sort_keys=True)
                             + "\n")
            print(f"crashfuzz: report -> {args.json}")
        for line in summarize(report):
            print(line)
    except Exception as exc:  # the harness broke — not a finding
        print(f"crashfuzz: internal error: {exc!r}")
        return FUZZ_INTERNAL
    return report["exit_code"]


def add_parsers(sub) -> None:
    p = sub.add_parser("chaos",
                       help="seeded fault-injection campaign "
                            "(exit 0 recovered / 1 unrecovered / 2 internal)")
    p.add_argument("--seed", type=int, default=None)
    vendor_opt(p)
    p.add_argument("--campaign", default=None,
                   help="campaign JSON file (default: built-in campaign)")
    p.add_argument("--json", default=None, help="write the full report here")
    p.add_argument("--no-baselines", action="store_true", default=None,
                   help="run the FTL phase against BABOL only")
    fidelity_opt(p)
    spec_opts(p)
    p.set_defaults(func=cmd_chaos)

    p = sub.add_parser("crashfuzz",
                       help="crash-consistency fuzzing: power-cut at "
                            "fuzzed ns, remount, verify every acked "
                            "write (exit 0 clean / 1 violation / "
                            "2 internal)")
    p.add_argument("--seeds", type=int, default=None,
                   help="number of seeded workloads")
    p.add_argument("--points", type=int, default=None,
                   help="crash points fuzzed per seed")
    p.add_argument("--channels", type=int, default=None)
    p.add_argument("--luns", type=int, default=None,
                   help="LUNs per channel")
    p.add_argument("--qd", type=int, default=None, help="queue depth")
    p.add_argument("--ios", type=int, default=None,
                   help="host commands per workload")
    p.add_argument("--seed", type=int, default=None,
                   help="base seed the per-workload seeds derive from")
    vendor_opt(p)
    p.add_argument("--json", default=None, help="write the full report here")
    fidelity_opt(p)
    spec_opts(p)
    p.set_defaults(func=cmd_crashfuzz)

"""Shared CLI plumbing: option groups, table rendering, tracing,
and the one spec-resolution path every stack-building subcommand uses.

Override precedence (highest wins)::

    --set KEY=VALUE  >  explicit legacy flags  >  --spec FILE  >  defaults

Without ``--spec``, "defaults" means the subcommand's historical base
spec (so ``repro demo`` still runs the exact demo it always did).
With ``--spec``, the file is resolved against the *global* spec
defaults — which is what makes ``repro spec hash FILE`` equal the
``spec_hash`` a run of that file embeds in its artifacts.
"""

from __future__ import annotations

import copy
import json

from repro.flash.vendors import VENDOR_PROFILES
from repro.onfi.datamodes import NVDDR2_100, NVDDR2_200


def print_rows(headers, rows) -> None:
    widths = [
        max(len(str(headers[i])), *(len(str(r[i])) for r in rows)) if rows
        else len(str(headers[i]))
        for i in range(len(headers))
    ]
    print("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))


def interface_for(mt: int):
    return NVDDR2_200 if mt == 200 else NVDDR2_100


def make_tracer(args):
    """A Tracer when ``--trace`` was given, else None."""
    if not getattr(args, "trace", None):
        return None
    from repro.obs import Tracer

    return Tracer()


def write_trace_file(args, tracer, metrics=None, spec=None) -> None:
    if tracer is None:
        return
    from repro.obs import write_chrome_trace

    count = write_chrome_trace(args.trace, tracer, metrics=metrics, spec=spec)
    print(f"trace: {count} events -> {args.trace}")


# ----------------------------------------------------------------------
# Option groups
# ----------------------------------------------------------------------

def vendor_opt(p, default=None) -> None:
    p.add_argument("--vendor", default=default,
                   choices=sorted(VENDOR_PROFILES))


def trace_opt(p) -> None:
    p.add_argument("--trace", metavar="OUT.json", default=None,
                   help="write a Chrome trace_event capture of the "
                        "run(s) (open in Perfetto)")


def sanitize_opt(p) -> None:
    p.add_argument("--sanitize", default=None, metavar="NAMES",
                   help="attach runtime sanitizers (\"all\" or a "
                        "comma list of bus,flash,memory,liveness); "
                        "exit 1 if any fires")


def fidelity_opt(p) -> None:
    from repro.core.backend import FIDELITIES

    p.add_argument("--fidelity", default=None, choices=FIDELITIES,
                   help="execution backend: 'waveform' drives every "
                        "bus segment (exact); 'tlm' executes whole "
                        "transactions as single events (fast, same "
                        "data and per-op timing)")


def spec_opts(p) -> None:
    """``--spec FILE`` + ``--set KEY=VALUE`` on a stack-building
    subcommand."""
    p.add_argument("--spec", metavar="FILE", default=None,
                   help="experiment spec (.json or .toml) to run; "
                        "explicit flags and --set override it")
    p.add_argument("--set", dest="overrides", action="append",
                   default=[], metavar="KEY=VALUE",
                   help="dotted spec override, e.g. "
                        "--set stack.channels=8 (repeatable; applied "
                        "after --spec and flags)")


# ----------------------------------------------------------------------
# Spec resolution
# ----------------------------------------------------------------------

def resolve_spec(args, base=None, flags=()):
    """The :class:`~repro.config.specs.ExperimentSpec` one invocation
    describes.

    ``base`` is the subcommand's historical default document (ignored
    when ``--spec`` was given).  ``flags`` maps explicitly-passed
    legacy flags onto dotted spec paths: ``(attr, "stack.vendor")`` or
    ``(attr, path, transform)``; an attr whose value is ``None`` was
    not passed and leaves the document alone.
    """
    from repro.config import ExperimentSpec, SpecError, apply_overrides
    from repro.config.io import load_spec_dict

    if getattr(args, "spec", None):
        document = load_spec_dict(args.spec)
    else:
        document = copy.deepcopy(base) if base else {}
    for entry in flags:
        attr, path = entry[0], entry[1]
        transform = entry[2] if len(entry) > 2 else None
        value = getattr(args, attr, None)
        if value is None:
            continue
        if transform is not None:
            value = transform(value)
        apply_overrides(document, [f"{path}={json.dumps(value)}"])
    apply_overrides(document, list(getattr(args, "overrides", None) or []))
    try:
        return ExperimentSpec.from_dict(document)
    except SpecError as exc:
        source = getattr(args, "spec", None)
        if source:
            raise SpecError(f"{source}: {exc}") from None
        raise

"""``repro trace`` — dedicated observability capture."""

from __future__ import annotations

from repro.cli.common import resolve_spec, sanitize_opt, spec_opts, vendor_opt
from repro.sim import Simulator

TRACE_BASE = {
    "name": "trace",
    "stack": {"luns_per_channel": 4},
    "workload": {"io_count": 24},
}


def cmd_trace(args) -> int:
    """Run a mixed workload with the tracer and metrics registry on,
    write the Chrome trace, and print the per-track + metrics
    summaries."""
    from repro.analysis import LogicAnalyzer
    from repro.config.build import build_controllers
    from repro.obs import (
        MetricsRegistry,
        Tracer,
        register_controller_metrics,
        render_text_summary,
        write_chrome_trace,
    )

    spec = resolve_spec(args, TRACE_BASE, flags=(
        ("vendor", "stack.vendor"),
        ("luns", "stack.luns_per_channel"),
        ("ops", "workload.io_count"),
        ("runtime", "stack.runtime"),
        ("sanitize", "stack.sanitizers"),
    ))
    sim = Simulator()
    tracer = Tracer(categories=None if not args.kernel else
                    {"kernel", "channel", "txn", "cpu", "sched", "task", "op",
                     "host", "analyzer", "user"})
    sim.set_tracer(tracer)
    controller = build_controllers(sim, spec.stack)[0]
    analyzer = LogicAnalyzer(controller.channel)
    registry = register_controller_metrics(MetricsRegistry(), controller)
    op_latency = registry.histogram("op_latency_ns")

    # A read/program mix fanned across every LUN: enough concurrency to
    # make the channel-occupancy and queue-depth tracks interesting.
    page = controller.codec.geometry.full_page_size
    import numpy as np

    luns = spec.stack.luns_per_channel
    controller.dram.write(0, (np.arange(page) % 251).astype(np.uint8))
    tasks = []
    for i in range(spec.workload.io_count):
        lun = i % luns
        if i % 3 == 2:
            tasks.append(controller.program_page(lun, 1, i // luns, 0))
        else:
            tasks.append(controller.read_page(lun, 1, i // luns,
                                              page * (1 + lun)))
    for task in tasks:
        controller.run_to_completion(task)
        op_latency.observe(task.finished_at - task.submitted_at)

    registry.counter("analyzer_events").inc(len(analyzer.events))
    print(controller.describe())
    print(render_text_summary(tracer))
    print(registry.render_text("metrics:"))
    count = write_chrome_trace(args.out, tracer, metrics=registry, spec=spec)
    print(f"trace: {count} events -> {args.out}")
    if controller.diagnostics is not None and not controller.diagnostics.clean:
        print(controller.diagnostics.render_text(title="sanitize"))
        return controller.diagnostics.exit_code()
    return 0


def add_parsers(sub) -> None:
    p = sub.add_parser("trace",
                       help="observability capture of a mixed workload")
    vendor_opt(p)
    p.add_argument("--out", default="trace.json",
                   help="Chrome trace_event output path")
    p.add_argument("--luns", type=int, default=None)
    p.add_argument("--ops", type=int, default=None,
                   help="operations to run across the LUNs")
    p.add_argument("--runtime", default=None, choices=["coroutine", "rtos"])
    p.add_argument("--kernel", action="store_true",
                   help="also record the kernel event firehose")
    sanitize_opt(p)
    spec_opts(p)
    p.set_defaults(func=cmd_trace)

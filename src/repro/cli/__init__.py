"""The ``repro`` command-line interface.

One module per subcommand group:

* :mod:`repro.cli.figures` — paper figures/tables (demo, table1,
  fig10, fig11, fig12, table2, table3)
* :mod:`repro.cli.tracecmd` — Chrome trace capture of a mixed workload
* :mod:`repro.cli.staticchecks` — op-lint / verify-ops static analysis
* :mod:`repro.cli.sanitizecmd` — runtime sanitizer sweeps
* :mod:`repro.cli.faultscmd` — chaos / crashfuzz fault campaigns
* :mod:`repro.cli.benchcmd` — bench-smoke / perf benchmark artifacts
* :mod:`repro.cli.speccmd` — spec validate / show / hash

Every stack-building subcommand resolves its parameters into one
:class:`~repro.config.specs.ExperimentSpec` (``--spec`` / ``--set`` /
legacy flags — see :func:`repro.cli.common.resolve_spec`) and embeds
the resolved spec plus its ``spec_hash`` in whatever artifact it
writes.
"""

from repro.cli.main import build_parser, main

__all__ = ["build_parser", "main"]

"""``repro bench-smoke`` / ``repro perf`` — benchmark artifacts."""

from __future__ import annotations

import json

from repro.cli.common import (
    fidelity_opt,
    print_rows,
    resolve_spec,
    spec_opts,
    vendor_opt,
)
from repro.sim import Simulator

BENCH_SMOKE_BASE = {
    "name": "bench-smoke",
    "stack": {"luns_per_channel": 1},
    "workload": {"io_count": 4},
}

DEFAULT_SWEEP_CHANNELS = [1, 2, 4]
DEFAULT_SWEEP_QD = [8, 32]


def cmd_bench_smoke(args) -> int:
    """CI benchmark smoke: tiny, fast cells of Table I and Fig. 11 with
    wall-clock timings, serialized to JSON so the perf trajectory of the
    repository accumulates run over run."""
    import dataclasses
    import time

    from repro.analysis import LogicAnalyzer
    from repro.config.build import build_controllers, stack_profile
    from repro.onfi.datamodes import NVDDR2_200

    spec = resolve_spec(args, BENCH_SMOKE_BASE, flags=(
        ("vendor", "stack.vendor"),
        ("reads", "workload.io_count"),
        ("fidelity", "stack.fidelity"),
    ))
    fidelity = spec.stack.fidelity
    reads = spec.workload.io_count
    results: dict = {"schema": 2, "bench": "smoke",
                     "fidelity": fidelity,
                     "spec": spec.resolved(),
                     "spec_hash": spec.spec_hash()}
    if fidelity != "waveform":
        # The Fig. 11 cells measure the polling waveform itself through
        # the logic analyzer, which only exists at waveform fidelity —
        # they always run under that tier, whatever --fidelity says.
        print(f"bench-smoke: fig11 cells stay at fidelity=waveform "
              f"(the logic analyzer samples bus segments the "
              f"'{fidelity}' tier does not drive); dispatch cells "
              f"run at fidelity={fidelity}")

    started = time.perf_counter()
    vendor = stack_profile(spec.stack)
    results["table1"] = {
        "vendor": spec.stack.vendor,
        "t_read_us": vendor.timing.t_read_ns / 1000,
        "page_bytes": vendor.geometry.page_size,
        "transfer_us_200mt": NVDDR2_200.transfer_ns(
            vendor.geometry.full_page_size) / 1000,
    }

    fig11 = {}
    for runtime in ("rtos", "coroutine"):
        run_started = time.perf_counter()
        sim = Simulator()
        cell = dataclasses.replace(spec.stack, runtime=runtime,
                                   fidelity="waveform")
        controller = build_controllers(sim, cell)[0]
        analyzer = LogicAnalyzer(controller.channel)
        for i in range(reads):
            controller.run_to_completion(controller.read_page(0, 1, i, 0))
        summary = analyzer.polling_summary()
        fig11[runtime] = {
            "reads": reads,
            "polls": summary.count,
            "poll_period_us": summary.mean_ns / 1000,
            "read_latency_us": sim.now / reads / 1000,
            "sim_ns": sim.now,
            "wall_s": round(time.perf_counter() - run_started, 4),
        }
    results["fig11"] = fig11

    # Per-op dispatch overhead: fixed op counts on one coroutine LUN.
    # Wall time per op tracks the cost of the software dispatch path
    # itself (program build + interpretation + runtime scheduling), so
    # IR/runtime changes show up here run over run.
    from repro.core.ops import read_status_op

    dispatch_started = time.perf_counter()
    sim = Simulator()
    controller = build_controllers(
        sim, dataclasses.replace(spec.stack, runtime="coroutine"))[0]
    dispatch_reads = 150
    for i in range(dispatch_reads):
        controller.run_to_completion(controller.read_page(0, 1, i, 0))
    read_wall = time.perf_counter() - dispatch_started
    poll_started = time.perf_counter()
    polls = 400
    for _ in range(polls):
        controller.run_to_completion(controller.submit(read_status_op, 0))
    poll_wall = time.perf_counter() - poll_started
    results["dispatch"] = {
        "reads": dispatch_reads,
        "read_us_per_op": round(read_wall / dispatch_reads * 1e6, 1),
        "status_polls": polls,
        "status_us_per_op": round(poll_wall / polls * 1e6, 1),
    }
    # Power-loss recovery cell: one deterministic mid-workload crash and
    # remount, with the SPOR counters scraped through the obs registry —
    # the same pull collectors a monitoring stack would read.
    from repro.analysis.crashfuzz import (
        _build_ops,
        _build_stack,
        _controllers as _fuzz_controllers,
        _drive,
        _FUZZ_FTL,
        _fuzz_profile,
    )
    from repro.faults.power import (
        PowerCut,
        PowerLossError,
        apply_power_cut,
        restore_media,
        snapshot_media,
    )
    from repro.ftl.spor import mount_sharded
    from repro.obs import MetricsRegistry, register_spor_metrics

    import numpy as np

    spor_started = time.perf_counter()
    profile = _fuzz_profile(vendor)
    spor_sim, spor_controllers, _, spor_engine, spor_span = _build_stack(
        profile, 2, 2, 8, fidelity)
    spor_ops = _build_ops(np.random.default_rng(1234), 120, spor_span, 2, 8)
    cut_ns = spor_sim.now + 10_000_000
    PowerCut(spor_sim, cut_ns).arm(spor_controllers)
    try:
        _drive(spor_sim, spor_engine, spor_ops, profile.geometry.page_size)
    except PowerLossError:
        pass
    apply_power_cut(spor_controllers, cut_ns)
    images = snapshot_media(spor_controllers)
    mount_sim = Simulator()
    mount_controllers = _fuzz_controllers(mount_sim, profile, 2, 2,
                                          fidelity)
    restore_media(mount_controllers, images)
    _, mount_report = mount_sharded(mount_sim, mount_controllers, _FUZZ_FTL)
    registry = MetricsRegistry()
    register_spor_metrics(registry, mount_report)
    spor_cell = dict(registry.snapshot()["collected"]["spor"])
    spor_cell["wall_s"] = round(time.perf_counter() - spor_started, 4)
    results["spor"] = spor_cell

    results["wall_s"] = round(time.perf_counter() - started, 4)

    rendered = json.dumps(results, indent=2, sort_keys=True)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(rendered + "\n")
        print(f"bench-smoke -> {args.out}")
    print(rendered)
    return 0


def cmd_perf(args) -> int:
    """Scale-out perf sweep (channels × queue depth) with the
    perf-regression gate.  Writes ``BENCH_scale.json``; with
    ``--check BASELINE`` exits 1 when the fresh run regresses past the
    baseline's tolerances."""
    from repro.analysis.perfbench import (
        compare_reports,
        perf_spec,
        run_perf_sweep,
    )

    channel_counts = args.channels or DEFAULT_SWEEP_CHANNELS
    queue_depths = args.qd or DEFAULT_SWEEP_QD
    base = perf_spec().to_dict()
    spec = resolve_spec(args, base, flags=(
        ("vendor", "stack.vendor"),
        ("channels", "stack.channels", max),
        ("qd", "workload.queue_depth", max),
        ("luns", "stack.luns_per_channel"),
        ("ios", "workload.io_count"),
        ("pattern", "workload.pattern"),
        ("fidelity", "stack.fidelity"),
    ))
    report = run_perf_sweep(
        channel_counts=channel_counts,
        queue_depths=queue_depths,
        quick=args.quick,
        spec=spec,
    )
    rendered = json.dumps(report, indent=2, sort_keys=True)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(rendered + "\n")
        print(f"perf -> {args.out}")
    else:
        print(rendered)

    rows = []
    for key in sorted(report["cells"]):
        cell = report["cells"][key]
        rows.append([
            key, f"{cell['throughput_mb_s']:.1f}", f"{cell['iops']:.0f}",
            f"{cell['latency_us']['p99']:.1f}",
            f"{cell['host']['dispatch_us_per_op']:.1f}",
        ])
    print_rows(
        ["cell", "MB/s (sim)", "IOPS (sim)", "p99 µs (sim)", "host µs/op"],
        rows,
    )
    for label, ratio in sorted(report["scaling"].items()):
        print(f"scaling {label}: {ratio}x")

    if args.check:
        with open(args.check) as handle:
            baseline = json.load(handle)
        problems = compare_reports(report, baseline)
        if problems:
            for problem in problems:
                print(f"PERF REGRESSION: {problem}")
            return 1
        print(f"perf: within tolerance of baseline {args.check}")
    return 0


def add_parsers(sub) -> None:
    p = sub.add_parser("bench-smoke",
                       help="fast benchmark cells as JSON (CI artifact)")
    vendor_opt(p)
    p.add_argument("--reads", type=int, default=None)
    p.add_argument("--out", default=None, help="JSON output path")
    fidelity_opt(p)
    spec_opts(p)
    p.set_defaults(func=cmd_bench_smoke)

    p = sub.add_parser("perf",
                       help="multi-channel scale sweep + perf-regression "
                            "gate (exit 1 on regression vs --check baseline)")
    vendor_opt(p)
    p.add_argument("--channels", type=int, nargs="+", default=None,
                   help="channel counts to sweep")
    p.add_argument("--qd", type=int, nargs="+", default=None,
                   help="queue depths to sweep")
    p.add_argument("--luns", type=int, default=None,
                   help="LUNs per channel")
    p.add_argument("--ios", type=int, default=None,
                   help="commands per cell")
    p.add_argument("--pattern", default=None,
                   choices=["sequential", "random"])
    p.add_argument("--quick", action="store_true",
                   help="corner cells only (CI mode; keys stay "
                        "comparable with a full-sweep baseline)")
    fidelity_opt(p)
    p.add_argument("--out", default=None,
                   help="write the JSON report here (e.g. BENCH_scale.json)")
    p.add_argument("--check", metavar="BASELINE.json", default=None,
                   help="compare against a baseline report; exit 1 on "
                        "regression")
    spec_opts(p)
    p.set_defaults(func=cmd_perf)

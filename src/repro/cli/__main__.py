from repro.cli.main import main

if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

"""``repro op-lint`` / ``repro verify-ops`` — static op-program checks.

These analyze the op-IR library itself (no stack is built), so they
take no ``--spec``; their exit codes follow the 0 clean / 1 findings /
2 internal convention of :mod:`repro.analysis.diagnostics`.
"""

from __future__ import annotations

import json

from repro.flash.vendors import VENDOR_PROFILES, profile_by_name


def cmd_op_lint(args) -> int:
    """Statically lint every op program (built-ins x vendor profiles,
    honouring vendor overrides).  Exit 0 clean / 1 error findings (or
    incomplete coverage) / 2 internal error."""
    from repro.analysis.diagnostics import (
        EXIT_CLEAN,
        EXIT_FINDINGS,
        EXIT_INTERNAL,
        DiagnosticReport,
    )

    try:
        from repro.analysis import lint_library

        vendors = ([profile_by_name(args.vendor)] if args.vendor
                   else list(VENDOR_PROFILES.values()))
        findings, coverage = lint_library(vendors=vendors)
        report = DiagnosticReport([f.to_finding() for f in findings])
        if args.json:
            obj = report.to_json_obj()
            obj["coverage"] = {
                "registered": list(coverage.registered),
                "linted": list(coverage.linted),
                "skipped": list(coverage.skipped),
                "complete": coverage.complete,
            }
            print(json.dumps(obj, indent=2, sort_keys=True))
        else:
            for finding in findings:
                print(finding)
            print(f"op-lint: {coverage.describe()}")
            print(f"op-lint: {report.counts_line()}")
    except Exception as exc:  # the linter itself broke — not a finding
        print(f"op-lint: internal error: {exc!r}")
        return EXIT_INTERNAL
    if not coverage.complete:
        # A builder nobody lints is a silent hole in the CI gate.
        return EXIT_FINDINGS
    return EXIT_FINDINGS if report.exit_code() else EXIT_CLEAN


def cmd_verify_ops(args) -> int:
    """Statically verify every op program — abstract interpretation of
    protocol, timing, and liveness over all paths (built-ins plus
    vendor-override registrations, x vendor profiles x NV-DDR2 modes).
    Exit 0 clean / 1 error findings (or incomplete coverage) / 2
    internal error."""
    from repro.analysis.diagnostics import (
        EXIT_CLEAN,
        EXIT_FINDINGS,
        EXIT_INTERNAL,
        DiagnosticReport,
    )

    try:
        from repro.analysis import verify_library

        vendors = ([profile_by_name(args.vendor)] if args.vendor
                   else list(VENDOR_PROFILES.values()))
        modes = (args.mode,) if args.mode else None
        kwargs = {"vendors": vendors}
        if modes is not None:
            kwargs["modes"] = modes
        findings, coverage = verify_library(**kwargs)
        if not args.info:
            findings = [f for f in findings if f.severity != "info"]
        report = DiagnosticReport([f.to_finding() for f in findings])
        obj = report.to_json_obj()
        obj["coverage"] = {
            "registered": list(coverage.registered),
            "verified": list(coverage.verified),
            "skipped": list(coverage.skipped),
            "modes": list(coverage.modes),
            "complete": coverage.complete,
        }
        if args.json:
            text = json.dumps(obj, indent=2, sort_keys=True)
            if args.json == "-":
                print(text)
            else:
                with open(args.json, "w") as handle:
                    handle.write(text + "\n")
                print(f"verify-ops: findings -> {args.json}")
        if args.json != "-":
            for finding in findings:
                print(finding)
            print(f"verify-ops: {coverage.describe()}")
            print(f"verify-ops: {report.counts_line()}")
    except Exception as exc:  # the verifier itself broke — not a finding
        print(f"verify-ops: internal error: {exc!r}")
        return EXIT_INTERNAL
    if not coverage.complete:
        # A builder nobody verifies is a silent hole in the CI gate.
        return EXIT_FINDINGS
    return EXIT_FINDINGS if report.exit_code() else EXIT_CLEAN


def add_parsers(sub) -> None:
    p = sub.add_parser("op-lint",
                       help="statically lint the op-program library")
    p.add_argument("--vendor", default=None, choices=sorted(VENDOR_PROFILES),
                   help="lint one vendor profile (default: all)")
    p.add_argument("--json", action="store_true",
                   help="emit findings as JSON")
    p.set_defaults(func=cmd_op_lint)

    p = sub.add_parser("verify-ops",
                       help="statically verify the op-program library "
                            "(abstract interpretation)")
    p.add_argument("--vendor", default=None, choices=sorted(VENDOR_PROFILES),
                   help="verify one vendor profile (default: all)")
    p.add_argument("--mode", default=None,
                   choices=["NV-DDR2-100", "NV-DDR2-200"],
                   help="verify one data mode (default: both)")
    p.add_argument("--json", default=None, metavar="FILE",
                   help="write findings + coverage as JSON "
                        "('-' for stdout)")
    p.add_argument("--info", action="store_true",
                   help="include info-severity findings (OPV501 "
                        "plannability notes)")
    p.set_defaults(func=cmd_verify_ops)

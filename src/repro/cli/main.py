"""Parser assembly for the ``repro`` CLI.

Each subcommand group lives in its own module and contributes its
parsers through an ``add_parsers(sub)`` hook; this module only wires
them together.  Every stack-building subcommand accepts ``--spec FILE``
and ``--set KEY=VALUE`` (see :mod:`repro.cli.common` for the
precedence rules); ``repro spec`` inspects spec files without running
anything.
"""

from __future__ import annotations

import argparse
from typing import Optional, Sequence

from repro.cli import (
    benchcmd,
    faultscmd,
    figures,
    sanitizecmd,
    speccmd,
    staticchecks,
    tracecmd,
)
from repro.config.specs import SpecError


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="babol-repro",
        description="BABOL (MICRO 2024) reproduction experiments",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    figures.add_parsers(sub)
    tracecmd.add_parsers(sub)
    staticchecks.add_parsers(sub)
    sanitizecmd.add_parsers(sub)
    faultscmd.add_parsers(sub)
    benchcmd.add_parsers(sub)
    speccmd.add_parsers(sub)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except SpecError as exc:
        # A bad --spec file or --set override is a usage error, not an
        # internal failure of the experiment it never got to run.
        print(f"spec error: {exc}")
        return 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

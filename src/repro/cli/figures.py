"""Paper figure/table subcommands: demo, table1-3, fig10-12.

Every stack-building command here resolves an
:class:`~repro.config.specs.ExperimentSpec` first (``--spec``/``--set``
plus legacy flags — see :func:`repro.cli.common.resolve_spec`) and
builds its controllers through :mod:`repro.config.build`, so the same
spec document reproduces the same cells anywhere.
"""

from __future__ import annotations

import dataclasses

from repro.cli.common import (
    interface_for,
    make_tracer,
    print_rows,
    resolve_spec,
    sanitize_opt,
    spec_opts,
    trace_opt,
    vendor_opt,
    write_trace_file,
)
from repro.flash.vendors import VENDOR_PROFILES, profile_by_name
from repro.onfi.datamodes import NVDDR2_100, NVDDR2_200
from repro.sim import Simulator

DEMO_BASE = {
    "name": "demo",
    "stack": {"luns_per_channel": 8, "track_data": True},
}

FIG10_BASE = {
    "name": "fig10",
    "stack": {"luns_per_channel": 8},
}

FIG11_BASE = {
    "name": "fig11",
    "stack": {"luns_per_channel": 1},
    "workload": {"io_count": 8},
}

FIG12_BASE = {
    "name": "fig12",
    "stack": {"luns_per_channel": 1, "ftl": {}},
    "workload": {"queue_depth": 16},
}


def cmd_demo(args) -> int:
    import numpy as np

    from repro.config.build import build_controllers

    spec = resolve_spec(args, DEMO_BASE, flags=(
        ("vendor", "stack.vendor"),
        ("luns", "stack.luns_per_channel"),
        ("runtime", "stack.runtime"),
        ("sanitize", "stack.sanitizers"),
    ))
    sim = Simulator()
    tracer = make_tracer(args)
    sim.set_tracer(tracer)
    controller = build_controllers(sim, spec.stack)[0]
    page = controller.codec.geometry.full_page_size
    payload = (np.arange(page) % 251).astype(np.uint8)
    controller.dram.write(0, payload)
    controller.run_to_completion(controller.program_page(0, 1, 0, 0))
    controller.run_to_completion(controller.read_page(0, 1, 0, page))
    errors = int((controller.dram.read(page, page) != payload).sum())
    print(controller.describe())
    print(f"program+read roundtrip in {sim.now / 1000:.1f} us of device time; "
          f"{errors} raw byte error(s) before ECC")
    if tracer is not None:
        from repro.obs import MetricsRegistry, register_controller_metrics

        write_trace_file(args, tracer,
                         register_controller_metrics(MetricsRegistry(),
                                                     controller),
                         spec=spec)
    if controller.diagnostics is not None and not controller.diagnostics.clean:
        print(controller.diagnostics.render_text(title="sanitize"))
        return controller.diagnostics.exit_code()
    return 0


def cmd_table1(args) -> int:
    rows = []
    for name, vendor in VENDOR_PROFILES.items():
        rows.append([name, f"{vendor.timing.t_read_ns / 1000:.0f} us",
                     f"{vendor.geometry.page_size} B",
                     str(vendor.luns_per_channel)])
    print("Table I: flash memory parameters")
    print_rows(["vendor", "tR", "page", "LUNs/channel"], rows)
    full = profile_by_name("hynix").geometry.full_page_size
    print(f"page transfer: {NVDDR2_100.transfer_ns(full) / 1000:.0f} us @100MT/s, "
          f"{NVDDR2_200.transfer_ns(full) / 1000:.0f} us @200MT/s")
    return 0


def cmd_fig10(args) -> int:
    from repro.baselines import SyncHwController
    from repro.config.build import build_controllers, stack_profile
    from repro.core.softenv import MHZ
    from repro.host import measure_read_throughput

    spec = resolve_spec(args, FIG10_BASE, flags=(
        ("vendor", "stack.vendor"),
        ("luns", "stack.luns_per_channel"),
        ("interface", "stack.interface_mt"),
    ))
    vendor = stack_profile(spec.stack)
    luns = spec.stack.luns_per_channel
    rows = []

    # One tracer spans the whole sweep; each cell's tracks are kept
    # apart by a scope prefix (its own Perfetto thread group).
    tracer = make_tracer(args)

    sim = Simulator()
    if tracer is not None:
        tracer.scope = "sync-hw"
        sim.set_tracer(tracer)
    hw = SyncHwController(sim, vendor=vendor, lun_count=luns,
                          interface=interface_for(spec.stack.interface_mt),
                          track_data=False)
    result = measure_read_throughput(sim, hw, luns)
    rows.append(["HW baseline", "-", f"{result.throughput_mb_s:.1f}"])
    for runtime in ("rtos", "coroutine"):
        for mhz in args.freq_mhz:
            sim = Simulator()
            if tracer is not None:
                tracer.scope = f"{runtime}@{mhz}MHz"
                sim.set_tracer(tracer)
            cell = dataclasses.replace(spec.stack, runtime=runtime,
                                       cpu_freq_hz=mhz * MHZ)
            controller = build_controllers(sim, cell)[0]
            result = measure_read_throughput(sim, controller, luns)
            rows.append([runtime, f"{mhz} MHz", f"{result.throughput_mb_s:.1f}"])
    print(f"Fig. 10 cell: {spec.stack.vendor}, {spec.stack.interface_mt} MT/s, "
          f"{luns} LUNs (MB/s)")
    print_rows(["controller", "CPU", "throughput"], rows)
    write_trace_file(args, tracer, spec=spec)
    return 0


def cmd_fig11(args) -> int:
    from repro.analysis import LogicAnalyzer
    from repro.config.build import build_controllers

    spec = resolve_spec(args, FIG11_BASE, flags=(
        ("vendor", "stack.vendor"),
        ("reads", "workload.io_count"),
    ))
    reads = spec.workload.io_count
    rows = []
    tracer = make_tracer(args)
    for runtime in ("rtos", "coroutine"):
        sim = Simulator()
        if tracer is not None:
            tracer.scope = runtime
            sim.set_tracer(tracer)
        cell = dataclasses.replace(spec.stack, runtime=runtime)
        controller = build_controllers(sim, cell)[0]
        analyzer = LogicAnalyzer(controller.channel)
        for i in range(reads):
            controller.run_to_completion(controller.read_page(0, 1, i, 0))
        summary = analyzer.polling_summary()
        rows.append([runtime, str(summary.count),
                     f"{summary.mean_ns / 1000:.1f} us",
                     f"{sim.now / reads / 1000:.1f} us"])
    print("Fig. 11: polling period (1 LUN, 1 GHz)")
    print_rows(["runtime", "polls", "period", "READ latency"], rows)
    write_trace_file(args, tracer, spec=spec)
    return 0


def cmd_fig12(args) -> int:
    import dataclasses

    from repro.baselines import AsyncHwController
    from repro.config.build import build_controllers, stack_profile
    from repro.ftl import PageMappedFtl
    from repro.host import FioJob, HostInterface, run_fio

    spec = resolve_spec(args, FIG12_BASE, flags=(
        ("vendor", "stack.vendor"),
        ("pattern", "workload.pattern"),
    ))
    vendor = stack_profile(spec.stack)
    iodepth = spec.workload.queue_depth
    rows = []
    tracer = make_tracer(args)
    for ways in args.ways:
        bandwidths = []
        for kind in ("cosmos", "rtos", "coroutine"):
            sim = Simulator()
            if tracer is not None:
                tracer.scope = f"{kind}@{ways}way"
                sim.set_tracer(tracer)
            if kind == "cosmos":
                controller = AsyncHwController(
                    sim, vendor=vendor, lun_count=ways, track_data=False
                )
            else:
                cell = dataclasses.replace(spec.stack, runtime=kind,
                                           luns_per_channel=ways)
                controller = build_controllers(sim, cell)[0]
            ftl = PageMappedFtl(sim, controller,
                                spec.stack.ftl.to_ftl_config())
            ftl.prefill(min(ftl.logical_pages, 64 * ways))
            hic = HostInterface(sim, ftl, iodepth=iodepth)
            result = run_fio(sim, hic,
                             FioJob(pattern=spec.workload.pattern,
                                    io_count=24 * ways + 16,
                                    iodepth=iodepth))
            bandwidths.append(result.bandwidth_mb_s)
        rows.append([str(ways)] + [f"{bw:.1f}" for bw in bandwidths])
    print(f"Fig. 12: fio {spec.workload.pattern} read bandwidth (MB/s)")
    print_rows(["ways", "Cosmos+ (HW)", "BABOL-RTOS", "BABOL-Coro"], rows)
    write_trace_file(args, tracer, spec=spec)
    return 0


def cmd_table2(args) -> int:
    from repro.analysis import operation_loc_table

    table = operation_loc_table()
    rows = [[op, str(v["sync_hw"]), str(v["async_hw"]), str(v["babol"])]
            for op, v in table.items()]
    print("Table II: lines of code per operation (measured in this repo)")
    print_rows(["operation", "sync HW", "async HW", "BABOL"], rows)
    return 0


def cmd_table3(args) -> int:
    from repro.analysis import estimate_area
    from repro.analysis.area import babol_inventory
    from repro.baselines import AsyncHwController, SyncHwController

    estimates = {
        "sync HW": estimate_area(
            SyncHwController(Simulator(), lun_count=8, track_data=False).inventory()
        ),
        "async HW": estimate_area(
            AsyncHwController(Simulator(), lun_count=8, track_data=False).inventory()
        ),
        "BABOL": estimate_area(babol_inventory(8)),
    }
    rows = [[name, str(e.lut), str(e.ff), f"{e.bram:g}"]
            for name, e in estimates.items()]
    print("Table III: modeled FPGA resources")
    print_rows(["controller", "LUT", "FF", "BRAM"], rows)
    return 0


def add_parsers(sub) -> None:
    p = sub.add_parser("demo", help="program+read roundtrip demo")
    vendor_opt(p)
    trace_opt(p)
    p.add_argument("--luns", type=int, default=None)
    p.add_argument("--runtime", default=None, choices=["coroutine", "rtos"])
    sanitize_opt(p)
    spec_opts(p)
    p.set_defaults(func=cmd_demo)

    p = sub.add_parser("table1", help="flash parameters")
    p.set_defaults(func=cmd_table1)

    p = sub.add_parser("fig10", help="throughput cell")
    vendor_opt(p)
    trace_opt(p)
    p.add_argument("--luns", type=int, default=None)
    p.add_argument("--interface", type=int, default=None, choices=[100, 200])
    p.add_argument("--freq-mhz", type=int, nargs="+",
                   default=[150, 200, 400, 1000])
    spec_opts(p)
    p.set_defaults(func=cmd_fig10)

    p = sub.add_parser("fig11", help="polling breakdown")
    vendor_opt(p)
    trace_opt(p)
    p.add_argument("--reads", type=int, default=None)
    spec_opts(p)
    p.set_defaults(func=cmd_fig11)

    p = sub.add_parser("fig12", help="end-to-end fio bandwidth")
    vendor_opt(p)
    trace_opt(p)
    p.add_argument("--ways", type=int, nargs="+", default=[1, 2, 4, 8])
    p.add_argument("--pattern", default=None,
                   choices=["sequential", "random"])
    spec_opts(p)
    p.set_defaults(func=cmd_fig12)

    p = sub.add_parser("table2", help="lines of code")
    p.set_defaults(func=cmd_table2)

    p = sub.add_parser("table3", help="FPGA area")
    p.set_defaults(func=cmd_table3)

"""``repro spec`` — validate, inspect, and hash experiment specs.

These subcommands never build a stack; they operate purely on spec
documents, so they are safe to run in CI against every file under
``examples/specs/``.
"""

from __future__ import annotations


def cmd_spec_validate(args) -> int:
    """Parse + validate each FILE; print one line per file.  Exit 0 when
    every file is a valid spec, 1 otherwise."""
    from repro.config import SpecError, load_spec

    failures = 0
    for path in args.files:
        try:
            spec = load_spec(path)
        except (OSError, SpecError) as exc:
            print(f"FAIL {path}: {exc}")
            failures += 1
            continue
        print(f"ok   {path}  name={spec.name}  spec_hash={spec.spec_hash()}")
    return 1 if failures else 0


def cmd_spec_show(args) -> int:
    """Print one spec as canonical JSON — sparse by default, fully
    defaulted with ``--resolved`` (the exact document artifacts embed)."""
    from repro.config import SpecError, load_spec, to_toml

    try:
        spec = load_spec(args.file)
    except (OSError, SpecError) as exc:
        print(f"spec: {exc}")
        return 1
    if args.toml:
        print(to_toml(spec, resolved=args.resolved), end="")
    else:
        print(spec.to_json(resolved=args.resolved))
    return 0


def cmd_spec_hash(args) -> int:
    """Print the canonical content hash of each FILE — the same
    ``spec_hash`` a run of that spec embeds in its artifacts."""
    from repro.config import SpecError, load_spec

    failures = 0
    for path in args.files:
        try:
            spec = load_spec(path)
        except (OSError, SpecError) as exc:
            print(f"FAIL {path}: {exc}")
            failures += 1
            continue
        if len(args.files) > 1:
            print(f"{spec.spec_hash()}  {path}")
        else:
            print(spec.spec_hash())
    return 1 if failures else 0


def add_parsers(sub) -> None:
    p = sub.add_parser("spec",
                       help="validate / show / hash experiment spec files")
    spec_sub = p.add_subparsers(dest="spec_command", required=True)

    v = spec_sub.add_parser("validate",
                            help="parse + validate spec files (exit 1 on "
                                 "any failure)")
    v.add_argument("files", nargs="+", metavar="FILE")
    v.set_defaults(func=cmd_spec_validate)

    s = spec_sub.add_parser("show",
                            help="print a spec as canonical JSON")
    s.add_argument("file", metavar="FILE")
    s.add_argument("--resolved", action="store_true",
                   help="print the fully-defaulted document (what "
                        "artifacts embed) instead of the sparse one")
    s.add_argument("--toml", action="store_true",
                   help="render as TOML instead of JSON")
    s.set_defaults(func=cmd_spec_show)

    h = spec_sub.add_parser("hash",
                            help="print the canonical spec_hash of spec "
                                 "files")
    h.add_argument("files", nargs="+", metavar="FILE")
    h.set_defaults(func=cmd_spec_hash)

"""``repro sanitize`` — workloads under the runtime sanitizers."""

from __future__ import annotations

import json

from repro.cli.common import resolve_spec, spec_opts, vendor_opt

SANITIZE_BASE = {
    "name": "sanitize",
    "stack": {"luns_per_channel": 4},
    "workload": {"io_count": 18},
    "campaign": {},
}


def cmd_sanitize(args) -> int:
    """Run workloads (BABOL and, by default, both hardware baselines)
    under every runtime sanitizer plus the capture-time timing checker.
    Exit 0 clean / 1 findings / 2 internal error."""
    from repro.analysis.diagnostics import EXIT_INTERNAL
    from repro.config.build import stack_profile
    from repro.sanitize import run_all_sanitized

    spec = resolve_spec(args, SANITIZE_BASE, flags=(
        ("vendor", "stack.vendor"),
        ("luns", "stack.luns_per_channel"),
        ("ops", "workload.io_count"),
        ("runtime", "stack.runtime"),
        ("no_baselines", "campaign.baselines", lambda v: not v),
    ))
    baselines = (spec.campaign.baselines
                 if spec.campaign is not None else True)
    try:
        report = run_all_sanitized(
            stack_profile(spec.stack),
            lun_count=spec.stack.luns_per_channel,
            ops=spec.workload.io_count,
            runtime=spec.stack.runtime,
            baselines=baselines,
        )
        if args.json:
            obj = json.loads(report.render_json())
            obj["spec"] = spec.resolved()
            obj["spec_hash"] = spec.spec_hash()
            with open(args.json, "w") as handle:
                handle.write(json.dumps(obj, indent=2, sort_keys=True) + "\n")
            print(f"sanitize: findings -> {args.json}")
        print(report.render_text(title="sanitize"))
    except Exception as exc:  # the harness broke — not a finding
        print(f"sanitize: internal error: {exc!r}")
        return EXIT_INTERNAL
    return report.exit_code()


def add_parsers(sub) -> None:
    p = sub.add_parser("sanitize",
                       help="run workloads under the runtime sanitizers")
    vendor_opt(p)
    p.add_argument("--luns", type=int, default=None)
    p.add_argument("--ops", type=int, default=None,
                   help="operations in the BABOL workload")
    p.add_argument("--runtime", default=None, choices=["coroutine", "rtos"])
    p.add_argument("--no-baselines", action="store_true", default=None,
                   help="skip the sync/async hardware baselines")
    p.add_argument("--json", metavar="OUT.json", default=None,
                   help="also write the findings report as JSON")
    spec_opts(p)
    p.set_defaults(func=cmd_sanitize)

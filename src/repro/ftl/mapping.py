"""Logical-to-physical page mapping.

A flat page map (LPN → LUN/block/page) plus the reverse map GC needs to
identify the LPN a physical page holds.  Invariants (pinned by property
tests): the forward and reverse maps agree, and a physical page is
mapped by at most one LPN.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class MapEntry:
    """Physical location of one logical page."""

    lun: int
    block: int
    page: int


@dataclass(frozen=True)
class ShardRouter:
    """Round-robin LPN striping across channel shards.

    Global LPN ``g`` lives on shard ``g % shards`` as local LPN
    ``g // shards`` — consecutive logical pages land on consecutive
    channels, so sequential streams fan out over the whole array the
    same way :class:`PageMappedFtl` stripes writes over LUNs.
    """

    shards: int

    def __post_init__(self) -> None:
        if self.shards <= 0:
            raise ValueError("shards must be positive")

    def route(self, lpn: int) -> tuple[int, int]:
        """``(shard index, shard-local LPN)`` for a global LPN."""
        return lpn % self.shards, lpn // self.shards

    def global_lpn(self, shard: int, local_lpn: int) -> int:
        """Inverse of :meth:`route`."""
        if not 0 <= shard < self.shards:
            raise ValueError(f"shard {shard} out of range [0, {self.shards})")
        return local_lpn * self.shards + shard

    def local_capacity(self, shard: int, logical_pages: int) -> int:
        """How many of ``logical_pages`` globals land on ``shard``."""
        base, extra = divmod(logical_pages, self.shards)
        return base + (1 if shard < extra else 0)


class PageMapTable:
    """Bidirectional LPN ↔ physical-page map."""

    def __init__(self, logical_pages: int):
        if logical_pages <= 0:
            raise ValueError("logical_pages must be positive")
        self.logical_pages = logical_pages
        self._forward: dict[int, MapEntry] = {}
        self._reverse: dict[MapEntry, int] = {}

    def lookup(self, lpn: int) -> Optional[MapEntry]:
        self._check_lpn(lpn)
        return self._forward.get(lpn)

    def owner_of(self, entry: MapEntry) -> Optional[int]:
        return self._reverse.get(entry)

    def bind(self, lpn: int, entry: MapEntry) -> Optional[MapEntry]:
        """Map ``lpn`` to ``entry``; returns the superseded location."""
        self._check_lpn(lpn)
        if entry in self._reverse:
            if self._reverse[entry] == lpn:
                return entry  # idempotent rebind
            raise ValueError(f"{entry} already holds LPN {self._reverse[entry]}")
        old = self._forward.get(lpn)
        if old is not None:
            del self._reverse[old]
        self._forward[lpn] = entry
        self._reverse[entry] = lpn
        return old

    def unbind(self, lpn: int) -> Optional[MapEntry]:
        """Drop the mapping for ``lpn`` (trim); returns the old location."""
        self._check_lpn(lpn)
        old = self._forward.pop(lpn, None)
        if old is not None:
            del self._reverse[old]
        return old

    @property
    def mapped_count(self) -> int:
        return len(self._forward)

    def check_invariants(self) -> None:
        """Property-test hook: forward and reverse maps must agree."""
        if len(self._forward) != len(self._reverse):
            raise AssertionError("forward/reverse size mismatch")
        for lpn, entry in self._forward.items():
            if self._reverse.get(entry) != lpn:
                raise AssertionError(f"reverse map disagrees for LPN {lpn}")

    def _check_lpn(self, lpn: int) -> None:
        if not 0 <= lpn < self.logical_pages:
            raise ValueError(f"LPN {lpn} out of range [0, {self.logical_pages})")

"""FTL persistence: checkpoints + journal in a reserved meta region.

Power-loss protection needs the FTL's volatile state — the page map,
wear counters, and the grown-bad-block journal — to be reconstructable
from the NAND itself.  This module owns the on-media format and the
write paths; :mod:`repro.ftl.spor` owns the read path (the mount).

Layout
------

The last ``FtlConfig.meta_blocks`` factory-good blocks of LUN 0 are
withheld from the data rotation and used as a small log ring:

* **Checkpoint pages** — the full FTL state (map + per-entry write
  sequence numbers, wear counts, bad-block journal, rotor, write
  sequence high-water mark) serialized as JSON and split into
  page-sized chunks.  Each chunk's spare area carries a
  :class:`~repro.flash.oob.OobRecord` of kind ``ckpt`` with the
  checkpoint id (``seq``) and its chunk index/count — a checkpoint
  counts only if *every* chunk committed, so a cut mid-checkpoint
  falls back to the previous one.
* **Journal pages** — batches of compact records (binds, trims,
  erases, retirements) appended since the last checkpoint, tagged with
  the checkpoint *epoch* they extend and a monotonically increasing
  meta sequence number for replay ordering.

Rotation is ping-pong: when the current meta block fills, the ring
advances, the (stale) target block is erased, and a **fresh checkpoint
is written first** — so the block holding the previous checkpoint is
never erased before a newer one is fully committed.  A crash at any
nanosecond therefore always leaves one complete checkpoint plus a
durable prefix of its journal on media.

Data pages carry their own OOB record (kind ``host`` or ``gc`` with
the LPN and write sequence number), staged by the FTL right before the
program op — the array attaches it only when the program commits, so a
torn page never presents a decodable record.  GC relocations reuse the
*original* write's sequence number: a copy is the same logical
version, and the mount must never prefer a stale copy over a newer
host write.
"""

from __future__ import annotations

import json
from typing import Generator, Optional

import numpy as np

from repro.flash.oob import (
    KIND_CKPT,
    KIND_GC,
    KIND_HOST,
    KIND_JOURNAL,
    OobRecord,
    encode_oob,
)
from repro.onfi.geometry import PhysicalAddress

# Journal record tags (first element of each compact record list).
REC_BIND = "b"       # ["b", lpn, lun, block, page, seq]
REC_TRIM = "t"       # ["t", lpn, seq]
REC_ERASE = "x"      # ["x", lun, block]
REC_RETIRE = "d"     # ["d", lun, block, reason, pe_cycles, time_ns]

# DRAM offset (past the GC staging page) used to stage meta pages.
_META_STAGING_PAGES = 2


class PersistenceLayer:
    """Checkpoint + journal writer for one :class:`PageMappedFtl` shard."""

    def __init__(self, ftl, meta_blocks: list[int], meta_lun: int = 0):
        from repro.ftl.ftl import FtlError

        self._FtlError = FtlError
        self.ftl = ftl
        self.meta_lun = meta_lun
        self.meta_blocks = list(meta_blocks)
        geometry = ftl.controller.codec.geometry
        self.spare_size = geometry.spare_size
        if self.spare_size < 24:
            raise FtlError(
                f"persistence needs >= 24 spare bytes/page, have "
                f"{self.spare_size}"
            )
        self._staging = (
            ftl.config.gc_staging_base
            + _META_STAGING_PAGES * geometry.full_page_size
        )

        # Ring cursor inside the meta region.
        self._ring_pos = 0
        self._next_page = 0

        # Monotonic counters.
        self.write_seq = 0       # per-shard host/GC data version counter
        self.meta_seq = 0        # journal-page replay order
        self.checkpoint_id = 0   # 0 = genesis (no checkpoint on media)

        # Volatile journal buffer + flush policy state.
        self._buffer: list[list] = []
        self._sync = False       # force a flush at the next opportunity
        self._writes_since_ckpt = 0
        self._busy = False       # one meta op in flight at a time

        # Host-side copies of what is durably on media (the crash-fuzz
        # verifier compares the rebuilt state against these).
        self.checkpoint_state: Optional[dict] = None
        self.durable_journal: list[list] = []

        # Counters.
        self.journal_pages_written = 0
        self.checkpoints_written = 0
        self.meta_program_failures = 0

    # ------------------------------------------------------------------
    # Sequence numbers
    # ------------------------------------------------------------------

    def next_seq(self) -> int:
        self.write_seq += 1
        return self.write_seq

    def _take_meta_seq(self) -> int:
        self.meta_seq += 1
        return self.meta_seq

    # ------------------------------------------------------------------
    # Data-page OOB staging (called by the FTL write/GC paths)
    # ------------------------------------------------------------------

    def stage_data_oob(self, lun: int, block: int, page: int,
                       kind: int, lpn: int, seq: int) -> None:
        record = OobRecord(kind=kind, lpn=lpn, seq=seq,
                           payload_len=self.ftl.page_size)
        self.ftl.controller.luns[lun].array.stage_oob(
            block, page, encode_oob(record, self.spare_size)
        )

    # ------------------------------------------------------------------
    # Journal recording (cheap, in-memory; durable at the next flush)
    # ------------------------------------------------------------------

    def note_bind(self, lpn: int, entry, seq: int) -> None:
        self._buffer.append(
            [REC_BIND, lpn, entry.lun, entry.block, entry.page, seq]
        )

    def note_trim(self, lpn: int, seq: int) -> None:
        self._buffer.append([REC_TRIM, lpn, seq])

    def note_erase(self, lun: int, block: int) -> None:
        self._buffer.append([REC_ERASE, lun, block])
        self._sync = True

    def note_retire(self, lun: int, block: int, reason: str,
                    pe_cycles: int, time_ns: int) -> None:
        self._buffer.append(
            [REC_RETIRE, lun, block, reason, pe_cycles, time_ns]
        )
        self._sync = True

    # ------------------------------------------------------------------
    # Flush / checkpoint policy
    # ------------------------------------------------------------------

    def after_host_write(self) -> Generator:
        """Hook run at the end of every successful host write."""
        self._writes_since_ckpt += 1
        if self._busy:
            return  # another worker is already persisting
        if self._writes_since_ckpt >= self.ftl.config.checkpoint_interval:
            yield from self.checkpoint()
        elif self._sync or (
            len(self._buffer) >= self.ftl.config.journal_flush_records
        ):
            yield from self.flush()

    def maybe_flush(self) -> Generator:
        """Flush if the sync flag or batch threshold says so."""
        if self._busy:
            return
        if self._sync or (
            len(self._buffer) >= self.ftl.config.journal_flush_records
        ):
            yield from self.flush()

    def flush(self) -> Generator:
        """Write the buffered journal records to meta pages."""
        if self._busy or not self._buffer:
            return
        self._busy = True
        try:
            while self._buffer:
                yield from self._ensure_room(1, with_checkpoint=True)
                if not self._buffer:
                    break  # the rotation checkpoint absorbed everything
                chunk = self._take_chunk()
                payload = json.dumps(
                    {"e": self.checkpoint_id, "r": chunk},
                    separators=(",", ":"),
                ).encode()
                record = OobRecord(kind=KIND_JOURNAL,
                                   seq=self._take_meta_seq(),
                                   payload_len=len(payload))
                ok = yield from self._program_meta(payload, record)
                if ok:
                    self.durable_journal.extend(chunk)
                    self.journal_pages_written += 1
                else:
                    # A failed meta program loses this batch's records;
                    # the OOB scan at mount is the safety net for binds.
                    self.meta_program_failures += 1
            self._sync = False
        finally:
            self._busy = False

    def checkpoint(self) -> Generator:
        """Serialize the full FTL state into the meta region."""
        if self._busy:
            return
        self._busy = True
        try:
            yield from self._write_checkpoint_pages()
        finally:
            self._busy = False
        # Records noted by concurrent workers *during* the checkpoint's
        # chunk programs (their maybe_flush saw _busy and bailed) stay
        # in the buffer; if one of them demanded a sync flush — a GC
        # erase, a retirement — honour it now rather than at the next
        # host write.
        yield from self.maybe_flush()

    def _take_chunk(self) -> list[list]:
        """Pop a prefix of the buffer that serializes within one page."""
        take = min(len(self._buffer),
                   max(self.ftl.config.journal_flush_records, 1))
        while take > 1:
            payload = json.dumps(
                {"e": self.checkpoint_id, "r": self._buffer[:take]},
                separators=(",", ":"),
            )
            if len(payload) <= self.ftl.page_size:
                break
            take //= 2
        chunk = self._buffer[:take]
        del self._buffer[:take]
        return chunk

    # ------------------------------------------------------------------
    # Meta-region mechanics
    # ------------------------------------------------------------------

    def _array(self):
        return self.ftl.controller.luns[self.meta_lun].array

    def _pages_left(self) -> int:
        return self.ftl.pages_per_block - self._next_page

    def _ensure_room(self, pages: int, with_checkpoint: bool) -> Generator:
        if self._pages_left() >= pages:
            return
        yield from self._rotate()
        if with_checkpoint:
            # Ping-pong invariant: a freshly entered meta block starts
            # with a checkpoint, so the *previous* block (holding the
            # old checkpoint) only becomes disposable once this commits.
            yield from self._write_checkpoint_pages()

    def _rotate(self) -> Generator:
        self._ring_pos = (self._ring_pos + 1) % len(self.meta_blocks)
        self._next_page = 0
        block = self.meta_blocks[self._ring_pos]
        info = self._array().block(block)
        if info.programmed or info.torn or info.erase_interrupted:
            task = self.ftl.controller.erase_block(self.meta_lun, block)
            ok = yield from self.ftl.controller.wait(task)
            if not ok:
                raise self._FtlError(
                    f"meta block {block} (LUN {self.meta_lun}) wore out; "
                    f"persistence region exhausted"
                )

    def _write_checkpoint_pages(self) -> Generator:
        new_id = self.checkpoint_id + 1
        # The state below absorbs exactly the records buffered *now*;
        # anything appended while the chunk programs yield is not in it
        # and must survive the commit for the next journal flush.
        absorbed = len(self._buffer)
        state = self._serialize(new_id)
        chunks = self._chunk_payload(
            json.dumps(state, separators=(",", ":"), sort_keys=True).encode()
        )
        if len(chunks) > self.ftl.pages_per_block:
            raise self._FtlError(
                f"checkpoint needs {len(chunks)} pages but a meta block "
                f"holds {self.ftl.pages_per_block}"
            )
        if self._pages_left() < len(chunks):
            yield from self._rotate()
        for index, chunk in enumerate(chunks):
            record = OobRecord(kind=KIND_CKPT, seq=new_id,
                               payload_len=len(chunk),
                               chunk=index, chunks=len(chunks))
            ok = yield from self._program_meta(chunk, record)
            if not ok:
                # Incomplete checkpoint: the previous one (plus its
                # journal) stays authoritative.
                self.meta_program_failures += 1
                return
        self._commit_checkpoint(new_id, state, absorbed)

    def _commit_checkpoint(self, new_id: int, state: dict,
                           absorbed: int) -> None:
        self.checkpoint_id = new_id
        self.checkpoint_state = state
        self.durable_journal = []
        # Only the records the serialized state absorbed are disposable;
        # records appended by concurrent workers during the chunk
        # programs (binds, trims, GC erases) are *not* in the state and
        # stay buffered for the next flush under the new epoch.
        del self._buffer[:absorbed]
        self._sync = any(
            rec[0] in (REC_ERASE, REC_RETIRE) for rec in self._buffer
        )
        self._writes_since_ckpt = 0
        self.checkpoints_written += 1

    def _chunk_payload(self, payload: bytes) -> list[bytes]:
        size = self.ftl.page_size
        return [payload[i:i + size] for i in range(0, len(payload), size)] \
            or [b"{}"]

    def _program_meta(self, payload: bytes, record: OobRecord) -> Generator:
        block = self.meta_blocks[self._ring_pos]
        page = self._next_page
        self._next_page += 1
        self._array().stage_oob(block, page, encode_oob(record, self.spare_size))
        padded = payload.ljust(self.ftl.page_size, b"\x00")
        data = np.frombuffer(padded, dtype=np.uint8)
        self.ftl.controller.dram.write(self._staging, data)
        task = self.ftl.controller.program_page(
            self.meta_lun, block, page, self._staging
        )
        ok = yield from self.ftl.controller.wait(task)
        return bool(ok)

    # ------------------------------------------------------------------
    # Offline checkpoint (prefill / end of mount: zero simulated time)
    # ------------------------------------------------------------------

    def write_checkpoint_offline(self, now_ns: int = 0) -> None:
        """Write a checkpoint directly into the arrays (no sim time).

        Used where the paper's methodology spends no simulated time:
        experiment prefill and the tail of the SPOR mount.
        """
        new_id = self.checkpoint_id + 1
        absorbed = len(self._buffer)  # no yields below: this is all of it
        state = self._serialize(new_id)
        chunks = self._chunk_payload(
            json.dumps(state, separators=(",", ":"), sort_keys=True).encode()
        )
        if len(chunks) > self.ftl.pages_per_block:
            raise self._FtlError("checkpoint does not fit in one meta block")
        array = self._array()
        if self._pages_left() < len(chunks):
            self._ring_pos = (self._ring_pos + 1) % len(self.meta_blocks)
            self._next_page = 0
            block = self.meta_blocks[self._ring_pos]
            info = array.block(block)
            if info.programmed or info.torn or info.erase_interrupted:
                if not array.erase(block, now_ns=now_ns):
                    raise self._FtlError(
                        f"meta block {block} wore out during offline "
                        f"checkpoint"
                    )
        for index, chunk in enumerate(chunks):
            record = OobRecord(kind=KIND_CKPT, seq=new_id,
                               payload_len=len(chunk),
                               chunk=index, chunks=len(chunks))
            block = self.meta_blocks[self._ring_pos]
            page = self._next_page
            self._next_page += 1
            array.stage_oob(block, page, encode_oob(record, self.spare_size))
            ok = array.program(
                PhysicalAddress(block=block, page=page),
                np.frombuffer(chunk, dtype=np.uint8),
                now_ns=now_ns,
            )
            if not ok:
                raise self._FtlError(
                    "meta block wore out during offline checkpoint"
                )
        self._commit_checkpoint(new_id, state, absorbed)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------

    def _serialize(self, new_id: int) -> dict:
        ftl = self.ftl
        entry_seq = ftl._entry_seq
        mapped = ftl.map._forward
        return {
            "ckpt": new_id,
            "write_seq": self.write_seq,
            "rotor": ftl._write_rotor,
            "map": [
                [lpn, e.lun, e.block, e.page, entry_seq.get(lpn, 0)]
                for lpn, e in sorted(mapped.items())
            ],
            # Trim tombstones: an LPN with a sequence number but no
            # mapping was trimmed.  Without these the checkpoint would
            # absorb (and clear) the REC_TRIM journal record while
            # leaving no durable floor, and the mount's OOB scan could
            # resurrect the pre-trim version from uncollected pages.
            "trim": [
                [lpn, seq]
                for lpn, seq in sorted(entry_seq.items())
                if lpn not in mapped
            ],
            "wear": [
                [lun, block, count]
                for (lun, block), count in sorted(ftl.wear.counts.items())
            ],
            "bad": ftl.bad_blocks.as_dict(),
        }

    # ------------------------------------------------------------------
    # Durable projections (crash-fuzz verifier oracles)
    # ------------------------------------------------------------------

    def durable_wear(self) -> dict:
        """Wear counts provable from media: checkpoint + durable journal."""
        counts: dict[tuple[int, int], int] = {}
        if self.checkpoint_state is not None:
            for lun, block, count in self.checkpoint_state["wear"]:
                counts[(lun, block)] = count
        for rec in self.durable_journal:
            if rec[0] == REC_ERASE:
                key = (rec[1], rec[2])
                counts[key] = counts.get(key, 0) + 1
            elif rec[0] == REC_RETIRE:
                counts.pop((rec[1], rec[2]), None)
        return counts

    def durable_trims(self) -> set:
        """LPNs whose durably-recorded *latest* state is a trim.

        Replays the checkpoint and the durable journal in order and
        keeps the LPNs whose last record is a tombstone with no later
        durable bind.  A write acked after the trim may still be
        durable via its OOB record alone (the mount's roll-forward
        handles that); what this projection promises is only that the
        trim itself reached media, so the mount can never resurrect a
        *pre*-trim version of these LPNs.
        """
        latest_is_trim: dict[int, bool] = {}
        if self.checkpoint_state is not None:
            for lpn, *_ in self.checkpoint_state["map"]:
                latest_is_trim[lpn] = False
            for lpn, _seq in self.checkpoint_state.get("trim", ()):
                latest_is_trim[lpn] = True
        for rec in self.durable_journal:
            if rec[0] == REC_BIND:
                latest_is_trim[rec[1]] = False
            elif rec[0] == REC_TRIM:
                latest_is_trim[rec[1]] = True
        return {lpn for lpn, trimmed in latest_is_trim.items() if trimmed}

    def durable_retirements(self) -> dict:
        """Non-factory retirements provable from media, keyed by block."""
        retired: dict[tuple[int, int], str] = {}
        if self.checkpoint_state is not None:
            for rec in self.checkpoint_state["bad"]:
                if rec["reason"] != "factory":
                    retired[(rec["lun"], rec["block"])] = rec["reason"]
        for rec in self.durable_journal:
            if rec[0] == REC_RETIRE:
                retired.setdefault((rec[1], rec[2]), rec[3])
        return retired

"""Wear accounting and static wear-leveling advice."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class WearTracker:
    """Per-(lun, block) erase counters with imbalance reporting."""

    counts: dict[tuple[int, int], int] = field(default_factory=dict)

    def record_erase(self, lun: int, block: int) -> None:
        key = (lun, block)
        self.counts[key] = self.counts.get(key, 0) + 1

    def erase_count(self, lun: int, block: int) -> int:
        return self.counts.get((lun, block), 0)

    @property
    def max_erase(self) -> int:
        return max(self.counts.values(), default=0)

    @property
    def mean_erase(self) -> float:
        if not self.counts:
            return 0.0
        return sum(self.counts.values()) / len(self.counts)

    def imbalance(self) -> float:
        """max/mean ratio; 1.0 is perfectly level."""
        mean = self.mean_erase
        if mean == 0.0:
            return 1.0
        return self.max_erase / mean

    def should_level(self, threshold: float = 2.0) -> bool:
        """Advise static wear leveling when imbalance exceeds threshold."""
        return len(self.counts) > 1 and self.imbalance() > threshold

    def coldest_block(self):
        """The least-worn tracked block — the wear-leveling swap target."""
        if not self.counts:
            return None
        return min(self.counts, key=lambda key: self.counts[key])

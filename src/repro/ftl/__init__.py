"""Flash Translation Layer substrate.

A page-mapped FTL (map table, per-LUN block allocation with channel
striping, greedy garbage collection, wear accounting) so the Fig. 12
end-to-end experiment runs against a full SSD stack rather than bare
channel injection.
"""

from repro.ftl.badblocks import GrownBadBlockTable, RetirementRecord
from repro.ftl.mapping import MapEntry, PageMapTable
from repro.ftl.gc import CostBenefitPolicy, GreedyPolicy, VictimPolicy
from repro.ftl.ftl import FtlConfig, PageMappedFtl
from repro.ftl.wear import WearTracker

__all__ = [
    "GrownBadBlockTable",
    "RetirementRecord",
    "MapEntry",
    "PageMapTable",
    "CostBenefitPolicy",
    "GreedyPolicy",
    "VictimPolicy",
    "FtlConfig",
    "PageMappedFtl",
    "WearTracker",
]

"""Flash Translation Layer substrate.

A page-mapped FTL (map table, per-LUN block allocation with channel
striping, greedy garbage collection, wear accounting) so the Fig. 12
end-to-end experiment runs against a full SSD stack rather than bare
channel injection.  For scale-out runs, :class:`ShardedFtl` stripes
global LPNs round-robin over one :class:`PageMappedFtl` per channel.
"""

from repro.ftl.badblocks import GrownBadBlockTable, RetirementRecord
from repro.ftl.mapping import MapEntry, PageMapTable, ShardRouter
from repro.ftl.gc import CostBenefitPolicy, GreedyPolicy, VictimPolicy
from repro.ftl.ftl import BlockInfo, FtlConfig, FtlError, PageMappedFtl, ShardedFtl
from repro.ftl.persist import PersistenceLayer
from repro.ftl.spor import MountReport, mount_sharded
from repro.ftl.wear import WearTracker

__all__ = [
    "GrownBadBlockTable",
    "RetirementRecord",
    "MapEntry",
    "PageMapTable",
    "ShardRouter",
    "CostBenefitPolicy",
    "GreedyPolicy",
    "VictimPolicy",
    "BlockInfo",
    "FtlConfig",
    "FtlError",
    "MountReport",
    "PageMappedFtl",
    "PersistenceLayer",
    "ShardedFtl",
    "WearTracker",
    "mount_sharded",
]

"""Page-mapped FTL with striping, foreground GC, and wear accounting.

The FTL drives any controller exposing the shared request surface
(``read_page`` / ``program_page`` / ``erase_block`` / ``wait``) — the
BABOL controller and both hardware baselines qualify — so the Fig. 12
comparison swaps storage controllers under an identical FTL, exactly as
the paper swaps them inside the Cosmos+.

Design choices (conventional, per the FTL surveys the paper cites):

* **Page mapping**: a flat LPN→PPN table (:class:`PageMapTable`).
* **Striping**: consecutive writes rotate across LUNs so sequential
  reads later fan out over the whole channel.
* **Foreground GC**: when a LUN's free-block pool dips below the
  threshold, the write path reclaims a victim (policy-pluggable)
  before continuing — deterministic and easy to reason about.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Generator, Optional

from repro.ftl.badblocks import (
    GrownBadBlockTable,
    REASON_ERASE_FAIL,
    REASON_FACTORY,
    REASON_PROGRAM_FAIL,
)
from repro.ftl.gc import GreedyPolicy, VictimPolicy
from repro.ftl.mapping import MapEntry, PageMapTable, ShardRouter
from repro.ftl.wear import WearTracker
from repro.onfi.geometry import PhysicalAddress
from repro.sim import Simulator
from repro.sim.sync import Condition


@dataclass
class FtlConfig:
    """FTL sizing and thresholds."""

    blocks_per_lun: int = 32          # physical blocks the FTL manages per LUN
    gc_free_threshold: int = 2        # reclaim when a pool dips below this
    overprovision_blocks: int = 4     # per LUN, withheld from logical capacity
    gc_staging_base: int = 48 * 1024 * 1024  # DRAM region for GC moves
    # Power-loss protection (0 = off: the historical volatile FTL).
    # When on, the FTL reserves ``meta_blocks`` blocks on LUN 0 for
    # checkpoints + journal and stamps every data page's spare area.
    checkpoint_interval: int = 0      # checkpoint every N host writes
    journal_flush_records: int = 32   # flush the journal at this batch size
    meta_blocks: int = 2              # reserved checkpoint/journal blocks

    def validate(self) -> None:
        if self.blocks_per_lun <= self.overprovision_blocks:
            raise ValueError("need more blocks than overprovisioning")
        if self.gc_free_threshold < 1:
            raise ValueError("gc threshold must be >= 1")
        if self.checkpoint_interval < 0:
            raise ValueError("checkpoint_interval must be >= 0")
        if self.checkpoint_interval > 0:
            if self.meta_blocks < 2:
                raise ValueError("persistence needs >= 2 meta blocks "
                                 "(ping-pong checkpoint rotation)")
            if self.journal_flush_records < 1:
                raise ValueError("journal_flush_records must be >= 1")
            if self.overprovision_blocks <= self.meta_blocks:
                raise ValueError(
                    "persistence meta blocks must fit inside the "
                    "overprovisioning budget (overprovision_blocks > "
                    "meta_blocks)"
                )


@dataclass
class BlockInfo:
    """FTL-side state of one physical block."""

    lun: int
    block: int
    capacity: int
    write_ptr: int = 0
    valid: set = field(default_factory=set)
    closed_at_ns: int = 0
    inflight: int = 0  # pages allocated but not yet committed/validated
    retired: bool = False  # grown-bad: must never be a GC victim again

    @property
    def valid_count(self) -> int:
        return len(self.valid)

    @property
    def is_full(self) -> bool:
        return self.write_ptr >= self.capacity


class FtlError(RuntimeError):
    """Raised on capacity exhaustion or misuse."""


class PageMappedFtl:
    """The translation layer."""

    def __init__(
        self,
        sim: Simulator,
        controller,
        config: Optional[FtlConfig] = None,
        victim_policy: Optional[VictimPolicy] = None,
    ):
        self.sim = sim
        self.controller = controller
        self.config = config or FtlConfig()
        self.config.validate()
        self.victim_policy = victim_policy or GreedyPolicy()

        geometry = controller.codec.geometry
        self.pages_per_block = geometry.pages_per_block
        self.page_size = geometry.page_size
        self.lun_count = len(controller.luns)

        usable_blocks = self.config.blocks_per_lun - self.config.overprovision_blocks
        self.logical_pages = self.lun_count * usable_blocks * self.pages_per_block
        self.map = PageMapTable(self.logical_pages)
        self.wear = WearTracker()
        # Power-loss protection (attached below once the free lists
        # exist; ``None`` keeps the historical volatile behaviour).
        self.persist = None
        self._entry_seq: dict[int, int] = {}

        self._free: list[deque[int]] = []
        self._active: list[Optional[BlockInfo]] = [None] * self.lun_count
        self._closed: list[list[BlockInfo]] = [[] for _ in range(self.lun_count)]
        self._info: dict[tuple[int, int], BlockInfo] = {}
        # ``bad_blocks`` is the journaled table; ``retired_blocks`` is a
        # plain (lun, block) list kept as the historical view of it.
        self.bad_blocks = GrownBadBlockTable()
        self.retired_blocks: list[tuple[int, int]] = []
        for lun in range(self.lun_count):
            # Factory bad-block scan: defective blocks never enter the
            # rotation; the overprovisioning budget absorbs them.
            bad = {
                b for b in range(self.config.blocks_per_lun)
                if controller.luns[lun].array.is_bad(b)
            }
            usable = [b for b in range(self.config.blocks_per_lun) if b not in bad]
            if len(usable) * self.pages_per_block < (
                usable_blocks * self.pages_per_block
            ):
                raise FtlError(
                    f"LUN {lun}: only {len(usable)} good blocks for "
                    f"{usable_blocks} logical blocks"
                )
            for b in sorted(bad):
                self._retire_block(lun, b, REASON_FACTORY)
            self._free.append(deque(usable))

        if self.config.checkpoint_interval > 0:
            self._attach_persistence(usable_blocks)

        self._write_rotor = 0
        self._gc_inflight: dict[int, int] = {}
        self._gc_done = Condition(sim)
        self.host_reads = 0
        self.host_writes = 0
        self.gc_runs = 0
        self.gc_page_moves = 0
        self.program_fail_rewrites = 0

    def _attach_persistence(self, usable_blocks: int) -> None:
        """Reserve the meta region and stand up the persistence layer.

        The last ``meta_blocks`` factory-good blocks of LUN 0 leave the
        data rotation; logical capacity shrinks by the same amount so
        the rest of the overprovisioning budget is untouched.
        """
        from repro.ftl.persist import PersistenceLayer

        if not self.controller.luns[0].array.track_data:
            raise FtlError("persistence requires track_data=True "
                           "(checkpoints are read back from the arrays)")
        free0 = self._free[0]
        if len(free0) <= self.config.meta_blocks:
            raise FtlError(
                f"LUN 0 has only {len(free0)} good blocks; cannot reserve "
                f"{self.config.meta_blocks} for the meta region"
            )
        meta = sorted(free0.pop() for _ in range(self.config.meta_blocks))
        self.logical_pages -= self.config.meta_blocks * self.pages_per_block
        self.map = PageMapTable(self.logical_pages)
        self.persist = PersistenceLayer(self, meta, meta_lun=0)

    # ------------------------------------------------------------------
    # Host-facing I/O (generators: drive from a simulation process)
    # ------------------------------------------------------------------

    def read(self, lpn: int, dram_address: int) -> Generator:
        """Read one logical page into DRAM; returns the map entry used."""
        entry = self.map.lookup(lpn)
        if entry is None:
            raise FtlError(f"read of unmapped LPN {lpn}")
        self.host_reads += 1
        task = self.controller.read_page(
            entry.lun, entry.block, entry.page, dram_address
        )
        yield from self.controller.wait(task)
        return entry

    def write(self, lpn: int, dram_address: int, _seq: int = None) -> Generator:
        """Write one logical page from DRAM; returns the new map entry."""
        self.map._check_lpn(lpn)
        persist = self.persist
        seq = _seq
        if persist is not None and seq is None:
            # The version number is taken at *submission* order, before
            # any GC yield, so per-LPN sequence order equals the order
            # the host issued the writes in.
            seq = persist.next_seq()
        lun = self._write_rotor % self.lun_count
        self._write_rotor += 1
        yield from self._gc_if_needed(lun)
        info = self._active_block(lun)
        page = info.write_ptr
        info.write_ptr += 1
        info.inflight += 1
        if info.is_full:
            # Rotate at *allocation* time: concurrent writers (the HIC
            # runs several workers) must never be handed page indexes
            # beyond the block.
            self._close_active(lun)
        if persist is not None:
            from repro.flash.oob import KIND_HOST

            persist.stage_data_oob(lun, info.block, page, KIND_HOST, lpn, seq)
        task = self.controller.program_page(lun, info.block, page, dram_address)
        ok = yield from self.controller.wait(task)
        if not ok:
            # Grown bad block: retire it (relocating its survivors) and
            # retry the host write on a fresh block.
            info.inflight -= 1
            yield from self._retire(info)
            entry = yield from self.write(lpn, dram_address, _seq=seq)
            self.program_fail_rewrites += 1
            return entry
        entry = MapEntry(lun=lun, block=info.block, page=page)
        if self._bind_versioned(lpn, entry, seq):
            info.valid.add(page)
        info.inflight -= 1
        self.host_writes += 1
        if persist is not None:
            yield from persist.after_host_write()
        return entry

    def _bind_versioned(self, lpn: int, entry: MapEntry, seq) -> bool:
        """Bind unless a newer version of the LPN already landed.

        With persistence off this is exactly the historical bind.  With
        it on, concurrent writers (and GC relocations, which reuse the
        original write's sequence number) may complete out of order;
        the sequence number decides, and a superseded program's page is
        simply left invalid for GC to reclaim.
        """
        persist = self.persist
        if persist is None:
            old = self.map.bind(lpn, entry)
            if old is not None:
                self._invalidate(old)
            return True
        current = self._entry_seq.get(lpn)
        if current is not None and current > seq:
            return False  # a newer version won the race
        self._entry_seq[lpn] = seq
        old = self.map.bind(lpn, entry)
        if old is not None:
            self._invalidate(old)
        persist.note_bind(lpn, entry, seq)
        return True

    def trim(self, lpn: int) -> None:
        """Discard a logical page (no media work until GC)."""
        old = self.map.unbind(lpn)
        if old is not None:
            self._invalidate(old)
        persist = self.persist
        if persist is not None:
            # Tombstone: the trim gets its own sequence number so the
            # mount's OOB scan cannot resurrect an older version.
            seq = persist.next_seq()
            self._entry_seq[lpn] = seq
            persist.note_trim(lpn, seq)

    # ------------------------------------------------------------------
    # Prefill (zero-simulated-time initialization for experiments)
    # ------------------------------------------------------------------

    def prefill(self, logical_pages: int, fill_byte: int = 0x5A) -> None:
        """Populate the first ``logical_pages`` LPNs directly in the
        arrays (the paper 'initialized the SSDs with data' before the
        fio runs; replaying that fill in simulated time would add
        nothing)."""
        import numpy as np

        if logical_pages > self.logical_pages:
            raise FtlError("prefill exceeds logical capacity")
        persist = self.persist
        payload = np.full(64, fill_byte, dtype=np.uint8)  # token content
        for lpn in range(logical_pages):
            lun = self._write_rotor % self.lun_count
            self._write_rotor += 1
            info = self._active_block(lun)
            page = info.write_ptr
            info.write_ptr += 1
            if persist is not None:
                from repro.flash.oob import KIND_HOST

                seq = persist.next_seq()
                self._entry_seq[lpn] = seq
                persist.stage_data_oob(lun, info.block, page,
                                       KIND_HOST, lpn, seq)
            self.controller.luns[lun].array.program(
                PhysicalAddress(block=info.block, page=page),
                payload,
                now_ns=self.sim.now,
            )
            self.map.bind(lpn, MapEntry(lun=lun, block=info.block, page=page))
            info.valid.add(page)
            if info.is_full:
                self._close_active(lun)
        if persist is not None:
            # Anchor the prefilled state so a crash before the first
            # periodic checkpoint still mounts.
            persist.write_checkpoint_offline(self.sim.now)

    # ------------------------------------------------------------------
    # Block management
    # ------------------------------------------------------------------

    def _active_block(self, lun: int) -> BlockInfo:
        info = self._active[lun]
        if info is None:
            if not self._free[lun]:
                raise FtlError(f"LUN {lun} out of free blocks (GC failed?)")
            block = self._free[lun].popleft()
            info = self._info.get((lun, block))
            if info is None or info.write_ptr:
                info = BlockInfo(lun=lun, block=block, capacity=self.pages_per_block)
                self._info[(lun, block)] = info
            self._active[lun] = info
        return info

    def _close_active(self, lun: int) -> None:
        info = self._active[lun]
        if info is not None:
            info.closed_at_ns = self.sim.now
            self._closed[lun].append(info)
            self._active[lun] = None

    def _invalidate(self, entry: MapEntry) -> None:
        info = self._info.get((entry.lun, entry.block))
        if info is not None:
            info.valid.discard(entry.page)

    def free_blocks(self, lun: int) -> int:
        return len(self._free[lun])

    # ------------------------------------------------------------------
    # Garbage collection (foreground)
    # ------------------------------------------------------------------

    def _gc_if_needed(self, lun: int) -> Generator:
        while len(self._free[lun]) < self.config.gc_free_threshold:
            victim = self.victim_policy.select(self._closed[lun], self.sim.now)
            if victim is None:
                if self._free[lun]:
                    return  # nothing reclaimable; live off the remainder
                if self._gc_inflight.get(lun, 0):
                    # Another worker is already reclaiming; let it finish.
                    yield from self._gc_done.wait_for(
                        lambda: not self._gc_inflight.get(lun, 0)
                    )
                    continue
                raise FtlError(f"LUN {lun} has no reclaimable blocks")
            # Claim the victim *before* yielding so concurrent writers
            # (HIC workers share LUNs) cannot collect it twice.
            self._closed[lun].remove(victim)
            self._gc_inflight[lun] = self._gc_inflight.get(lun, 0) + 1
            try:
                yield from self._collect(victim)
            finally:
                self._gc_inflight[lun] -= 1
                self._gc_done.notify()

    def _gc_staging(self, lun: int, block: int) -> int:
        """Per-victim staging buffer, growing *down* from the staging
        base (meta staging and NVMe bounce slots own the space above
        it).  A queue-depth host runs several GC collects at once —
        relocations sharing one buffer write each other's bytes."""
        full = self.controller.codec.geometry.full_page_size
        slot = 1 + lun * self.config.blocks_per_lun + block
        return self.config.gc_staging_base - slot * full

    def _collect(self, victim: BlockInfo) -> Generator:
        """Move the victim's valid pages, then erase it."""
        self.gc_runs += 1
        lun = victim.lun
        staging = self._gc_staging(lun, victim.block)
        persist = self.persist
        for page in sorted(victim.valid):
            source = MapEntry(lun=lun, block=victim.block, page=page)
            lpn = self.map.owner_of(source)
            if lpn is None:  # raced with a trim; nothing to preserve
                continue
            task = self.controller.read_page(lun, victim.block, page, staging)
            yield from self.controller.wait(task)
            if self.map.owner_of(source) != lpn:
                continue  # a host write/trim superseded it mid-read
            seq = self._entry_seq.get(lpn, 0)
            dest = self._active_block(lun)
            dest_page = dest.write_ptr
            dest.write_ptr += 1
            dest.inflight += 1
            if dest.is_full:
                self._close_active(lun)
            if persist is not None:
                from repro.flash.oob import KIND_GC

                # A relocation is the *same* logical version: it keeps
                # the original write's sequence number so the mount can
                # never prefer a stale copy over a newer host write.
                persist.stage_data_oob(lun, dest.block, dest_page,
                                       KIND_GC, lpn, seq)
            task = self.controller.program_page(lun, dest.block, dest_page, staging)
            ok = yield from self.controller.wait(task)
            if not ok:
                raise FtlError("GC relocation program failed")
            entry = MapEntry(lun=lun, block=dest.block, page=dest_page)
            if self._bind_versioned(lpn, entry, seq):
                dest.valid.add(dest_page)
            dest.inflight -= 1
            self.gc_page_moves += 1
        victim.valid.clear()
        task = self.controller.erase_block(lun, victim.block)
        ok = yield from self.controller.wait(task)
        self._info.pop((lun, victim.block), None)
        if not ok:
            # The block wore out: retire it; the pool shrinks into the
            # overprovisioning budget.
            self._retire_block(lun, victim.block, REASON_ERASE_FAIL)
        else:
            self.wear.record_erase(lun, victim.block)
            self._free[lun].append(victim.block)
            if persist is not None:
                persist.note_erase(lun, victim.block)
        if persist is not None:
            # Erases and retirements flush synchronously: the journal
            # must not lag far behind a block being reused.
            yield from persist.maybe_flush()

    def _retire(self, victim: BlockInfo) -> Generator:
        """Permanently remove a grown-bad block from the rotation,
        relocating any pages it still validly holds."""
        lun = victim.lun
        if self._active[lun] is victim:
            self._active[lun] = None
        if victim in self._closed[lun]:
            self._closed[lun].remove(victim)
        staging = self._gc_staging(lun, victim.block)
        persist = self.persist
        for page in sorted(victim.valid):
            source = MapEntry(lun=lun, block=victim.block, page=page)
            lpn = self.map.owner_of(source)
            if lpn is None:
                continue
            task = self.controller.read_page(lun, victim.block, page, staging)
            yield from self.controller.wait(task)
            if self.map.owner_of(source) != lpn:
                continue  # superseded while the rescue read ran
            seq = self._entry_seq.get(lpn, 0)
            dest = self._active_block(lun)
            dest_page = dest.write_ptr
            dest.write_ptr += 1
            dest.inflight += 1
            if dest.is_full:
                self._close_active(lun)
            if persist is not None:
                from repro.flash.oob import KIND_GC

                persist.stage_data_oob(lun, dest.block, dest_page,
                                       KIND_GC, lpn, seq)
            task = self.controller.program_page(lun, dest.block, dest_page, staging)
            ok = yield from self.controller.wait(task)
            dest.inflight -= 1
            if not ok:
                raise FtlError("relocation during block retirement failed")
            entry = MapEntry(lun=lun, block=dest.block, page=dest_page)
            if self._bind_versioned(lpn, entry, seq):
                dest.valid.add(dest_page)
            self.gc_page_moves += 1
        victim.valid.clear()
        self._info.pop((lun, victim.block), None)
        self._retire_block(lun, victim.block, REASON_PROGRAM_FAIL)
        if persist is not None:
            yield from persist.maybe_flush()

    def _retire_block(self, lun: int, block: int, reason: str) -> None:
        """Journal a retirement and drop the block from wear tracking
        (a dead block must not skew the leveling statistics)."""
        pe = self.wear.erase_count(lun, block)
        if not pe:
            pe = self.controller.luns[lun].array.block(block).erase_count
        self.bad_blocks.retire(self.sim.now, lun, block, reason, pe_cycles=pe)
        self.retired_blocks.append((lun, block))
        self.wear.counts.pop((lun, block), None)
        info = self._info.get((lun, block))
        if info is not None:
            info.retired = True
        persist = getattr(self, "persist", None)
        if persist is not None and reason != REASON_FACTORY:
            persist.note_retire(lun, block, reason, pe, self.sim.now)

    # ------------------------------------------------------------------
    # Durability barrier
    # ------------------------------------------------------------------

    def flush(self) -> Generator:
        """Force buffered journal records onto media (host FLUSH)."""
        if self.persist is not None:
            yield from self.persist.flush()

    # ------------------------------------------------------------------
    # Static wear leveling
    # ------------------------------------------------------------------

    def level_wear(self, threshold: float = 2.0) -> Generator:
        """Static wear leveling pass.

        When the erase-count imbalance exceeds ``threshold``, the
        coldest closed block (least-worn, holding the stalest data) is
        forcibly relocated and erased so it rejoins the rotation —
        otherwise cold data pins fresh blocks forever while hot blocks
        cycle.  Returns the number of blocks leveled.
        """
        leveled = 0
        if not self.wear.should_level(threshold):
            return leveled
            yield  # pragma: no cover - generator marker
        coldest = self.wear.coldest_block()
        if coldest is None:
            return leveled
        lun, block = coldest
        victim = self._info.get((lun, block))
        if victim is None or victim is self._active[lun]:
            return leveled
        if victim not in self._closed[lun] or victim.inflight:
            return leveled
        self._closed[lun].remove(victim)
        self._gc_inflight[lun] = self._gc_inflight.get(lun, 0) + 1
        try:
            yield from self._collect(victim)
            leveled = 1
        finally:
            self._gc_inflight[lun] -= 1
            self._gc_done.notify()
        return leveled

    # ------------------------------------------------------------------

    @property
    def write_amplification(self) -> float:
        if self.host_writes == 0:
            return 1.0
        return (self.host_writes + self.gc_page_moves) / self.host_writes

    def describe(self) -> str:
        return (
            f"FTL[{self.victim_policy.name}] {self.lun_count} LUNs, "
            f"{self.map.mapped_count}/{self.logical_pages} mapped, "
            f"WA={self.write_amplification:.2f}"
        )


class ShardedFtl:
    """Channel-striped FTL: one :class:`PageMappedFtl` shard per channel.

    The scale-out translation layer.  Each attached controller owns one
    NAND channel (its own bus, executor, runtime, and DRAM); a
    :class:`~repro.ftl.mapping.ShardRouter` stripes global LPNs
    round-robin across the shards so sequential streams occupy every
    channel at once.  Shards never share physical state — GC, wear, and
    bad-block bookkeeping stay channel-local — and this facade
    aggregates their health counters into one array-wide view.

    The host-facing surface mirrors :class:`PageMappedFtl` (``read`` /
    ``write`` / ``trim`` / ``prefill`` generators plus the stats
    properties), so workload drivers run unchanged against either.
    """

    def __init__(
        self,
        sim: Simulator,
        controllers,
        config: Optional[FtlConfig] = None,
        victim_policy_factory=None,
    ):
        if not controllers:
            raise FtlError("ShardedFtl needs at least one channel controller")
        self.sim = sim
        self.controllers = list(controllers)
        self.config = config or FtlConfig()
        self.shards: list[PageMappedFtl] = [
            PageMappedFtl(
                sim,
                controller,
                self.config,
                victim_policy=victim_policy_factory() if victim_policy_factory else None,
            )
            for controller in self.controllers
        ]
        self.router = ShardRouter(len(self.shards))
        # Uniform striping: capacity is bounded by the smallest shard so
        # every global LPN routes to a valid shard-local LPN.
        per_shard = min(shard.logical_pages for shard in self.shards)
        self.logical_pages = per_shard * len(self.shards)
        self.page_size = self.shards[0].page_size

    # -- host-facing I/O (generators) ----------------------------------

    def read(self, lpn: int, dram_address: int) -> Generator:
        """Read one global LPN into its channel's DRAM at ``dram_address``."""
        shard, local = self._route(lpn)
        entry = yield from self.shards[shard].read(local, dram_address)
        return entry

    def write(self, lpn: int, dram_address: int) -> Generator:
        """Write one global LPN from its channel's DRAM at ``dram_address``."""
        shard, local = self._route(lpn)
        entry = yield from self.shards[shard].write(local, dram_address)
        return entry

    def trim(self, lpn: int) -> None:
        shard, local = self._route(lpn)
        self.shards[shard].trim(local)

    def flush(self) -> Generator:
        """Durability barrier: flush every shard's journal."""
        for shard in self.shards:
            yield from shard.flush()

    def is_mapped(self, lpn: int) -> bool:
        shard, local = self._route(lpn)
        return self.shards[shard].map.lookup(local) is not None

    def shard_of(self, lpn: int) -> int:
        """The channel index a global LPN stripes onto."""
        return self._route(lpn)[0]

    def prefill(self, logical_pages: int, fill_byte: int = 0x5A) -> None:
        """Populate the first ``logical_pages`` global LPNs.

        Globals ``i, i+S, i+2S, ...`` are shard ``i``'s locals
        ``0, 1, 2, ...`` — consecutive — so the per-shard prefill path
        applies unchanged."""
        if logical_pages > self.logical_pages:
            raise FtlError("prefill exceeds logical capacity")
        for index, shard in enumerate(self.shards):
            count = self.router.local_capacity(index, logical_pages)
            if count:
                shard.prefill(count, fill_byte=fill_byte)

    def _route(self, lpn: int) -> tuple[int, int]:
        if not 0 <= lpn < self.logical_pages:
            raise FtlError(
                f"LPN {lpn} out of range [0, {self.logical_pages})"
            )
        return self.router.route(lpn)

    # -- aggregated topology and health view ---------------------------

    @property
    def channel_count(self) -> int:
        return len(self.shards)

    @property
    def lun_count(self) -> int:
        return sum(shard.lun_count for shard in self.shards)

    @property
    def mapped_count(self) -> int:
        return sum(shard.map.mapped_count for shard in self.shards)

    @property
    def host_reads(self) -> int:
        return sum(shard.host_reads for shard in self.shards)

    @property
    def host_writes(self) -> int:
        return sum(shard.host_writes for shard in self.shards)

    @property
    def gc_runs(self) -> int:
        return sum(shard.gc_runs for shard in self.shards)

    @property
    def gc_page_moves(self) -> int:
        return sum(shard.gc_page_moves for shard in self.shards)

    @property
    def program_fail_rewrites(self) -> int:
        return sum(shard.program_fail_rewrites for shard in self.shards)

    @property
    def checkpoints_written(self) -> int:
        return sum(
            shard.persist.checkpoints_written
            for shard in self.shards if shard.persist is not None
        )

    @property
    def journal_pages_written(self) -> int:
        return sum(
            shard.persist.journal_pages_written
            for shard in self.shards if shard.persist is not None
        )

    @property
    def write_amplification(self) -> float:
        writes = self.host_writes
        if writes == 0:
            return 1.0
        return (writes + self.gc_page_moves) / writes

    @property
    def retired_blocks(self) -> list[tuple[int, int, int]]:
        """Every retirement as ``(channel, lun, block)``."""
        return [
            (channel, lun, block)
            for channel, shard in enumerate(self.shards)
            for lun, block in shard.retired_blocks
        ]

    def bad_block_records(self) -> list:
        """All shards' grown-bad-block journal entries, by channel."""
        return [
            (channel, record)
            for channel, shard in enumerate(self.shards)
            for record in shard.bad_blocks.journal
        ]

    def free_blocks_total(self) -> int:
        return sum(
            shard.free_blocks(lun)
            for shard in self.shards
            for lun in range(shard.lun_count)
        )

    def health_summary(self) -> dict:
        """Array-wide health counters (sorted keys, JSON-ready)."""
        return {
            "channels": self.channel_count,
            "gc_page_moves": self.gc_page_moves,
            "gc_runs": self.gc_runs,
            "host_reads": self.host_reads,
            "host_writes": self.host_writes,
            "luns": self.lun_count,
            "mapped_pages": self.mapped_count,
            "program_fail_rewrites": self.program_fail_rewrites,
            "retired_blocks": len(self.retired_blocks),
            "write_amplification": round(self.write_amplification, 4),
        }

    def describe(self) -> str:
        return (
            f"ShardedFtl x{self.channel_count} channels "
            f"({self.lun_count} LUNs), "
            f"{self.mapped_count}/{self.logical_pages} mapped, "
            f"WA={self.write_amplification:.2f}"
        )
